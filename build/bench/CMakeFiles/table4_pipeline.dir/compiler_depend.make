# Empty compiler generated dependencies file for table4_pipeline.
# This may be replaced when dependencies are built.
