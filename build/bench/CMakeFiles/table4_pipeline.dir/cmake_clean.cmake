file(REMOVE_RECURSE
  "CMakeFiles/table4_pipeline.dir/table4_pipeline.cc.o"
  "CMakeFiles/table4_pipeline.dir/table4_pipeline.cc.o.d"
  "table4_pipeline"
  "table4_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
