# Empty dependencies file for fig8_stack_thermals.
# This may be replaced when dependencies are built.
