file(REMOVE_RECURSE
  "CMakeFiles/fig8_stack_thermals.dir/fig8_stack_thermals.cc.o"
  "CMakeFiles/fig8_stack_thermals.dir/fig8_stack_thermals.cc.o.d"
  "fig8_stack_thermals"
  "fig8_stack_thermals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stack_thermals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
