# Empty dependencies file for fig3_thermal_sensitivity.
# This may be replaced when dependencies are built.
