# Empty dependencies file for table5_vf_scaling.
# This may be replaced when dependencies are built.
