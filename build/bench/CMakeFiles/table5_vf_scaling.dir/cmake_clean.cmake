file(REMOVE_RECURSE
  "CMakeFiles/table5_vf_scaling.dir/table5_vf_scaling.cc.o"
  "CMakeFiles/table5_vf_scaling.dir/table5_vf_scaling.cc.o.d"
  "table5_vf_scaling"
  "table5_vf_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_vf_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
