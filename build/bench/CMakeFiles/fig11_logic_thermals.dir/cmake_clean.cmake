file(REMOVE_RECURSE
  "CMakeFiles/fig11_logic_thermals.dir/fig11_logic_thermals.cc.o"
  "CMakeFiles/fig11_logic_thermals.dir/fig11_logic_thermals.cc.o.d"
  "fig11_logic_thermals"
  "fig11_logic_thermals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_logic_thermals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
