# Empty dependencies file for fig11_logic_thermals.
# This may be replaced when dependencies are built.
