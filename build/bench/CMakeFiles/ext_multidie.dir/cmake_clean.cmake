file(REMOVE_RECURSE
  "CMakeFiles/ext_multidie.dir/ext_multidie.cc.o"
  "CMakeFiles/ext_multidie.dir/ext_multidie.cc.o.d"
  "ext_multidie"
  "ext_multidie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multidie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
