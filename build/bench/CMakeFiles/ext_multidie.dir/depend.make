# Empty dependencies file for ext_multidie.
# This may be replaced when dependencies are built.
