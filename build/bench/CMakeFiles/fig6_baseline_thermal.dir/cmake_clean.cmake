file(REMOVE_RECURSE
  "CMakeFiles/fig6_baseline_thermal.dir/fig6_baseline_thermal.cc.o"
  "CMakeFiles/fig6_baseline_thermal.dir/fig6_baseline_thermal.cc.o.d"
  "fig6_baseline_thermal"
  "fig6_baseline_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_baseline_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
