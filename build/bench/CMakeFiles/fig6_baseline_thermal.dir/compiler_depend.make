# Empty compiler generated dependencies file for fig6_baseline_thermal.
# This may be replaced when dependencies are built.
