# Empty compiler generated dependencies file for fig5_cpma_bandwidth.
# This may be replaced when dependencies are built.
