
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/test_cpu.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/test_cpu.dir/test_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stack3d_core.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/stack3d_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/stack3d_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/stack3d_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/stack3d_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/stack3d_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/stack3d_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stack3d_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stack3d_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
