file(REMOVE_RECURSE
  "libstack3d_mem.a"
)
