# Empty dependencies file for stack3d_mem.
# This may be replaced when dependencies are built.
