file(REMOVE_RECURSE
  "CMakeFiles/stack3d_mem.dir/cache.cc.o"
  "CMakeFiles/stack3d_mem.dir/cache.cc.o.d"
  "CMakeFiles/stack3d_mem.dir/dram.cc.o"
  "CMakeFiles/stack3d_mem.dir/dram.cc.o.d"
  "CMakeFiles/stack3d_mem.dir/engine.cc.o"
  "CMakeFiles/stack3d_mem.dir/engine.cc.o.d"
  "CMakeFiles/stack3d_mem.dir/hierarchy.cc.o"
  "CMakeFiles/stack3d_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/stack3d_mem.dir/params.cc.o"
  "CMakeFiles/stack3d_mem.dir/params.cc.o.d"
  "libstack3d_mem.a"
  "libstack3d_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
