file(REMOVE_RECURSE
  "libstack3d_common.a"
)
