file(REMOVE_RECURSE
  "CMakeFiles/stack3d_common.dir/logging.cc.o"
  "CMakeFiles/stack3d_common.dir/logging.cc.o.d"
  "CMakeFiles/stack3d_common.dir/stats.cc.o"
  "CMakeFiles/stack3d_common.dir/stats.cc.o.d"
  "CMakeFiles/stack3d_common.dir/table.cc.o"
  "CMakeFiles/stack3d_common.dir/table.cc.o.d"
  "libstack3d_common.a"
  "libstack3d_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
