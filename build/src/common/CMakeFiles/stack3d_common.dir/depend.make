# Empty dependencies file for stack3d_common.
# This may be replaced when dependencies are built.
