
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/scaling.cc" "src/power/CMakeFiles/stack3d_power.dir/scaling.cc.o" "gcc" "src/power/CMakeFiles/stack3d_power.dir/scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/stack3d_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stack3d_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stack3d_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
