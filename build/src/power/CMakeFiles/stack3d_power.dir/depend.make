# Empty dependencies file for stack3d_power.
# This may be replaced when dependencies are built.
