file(REMOVE_RECURSE
  "libstack3d_power.a"
)
