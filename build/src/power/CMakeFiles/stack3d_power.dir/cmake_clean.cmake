file(REMOVE_RECURSE
  "CMakeFiles/stack3d_power.dir/scaling.cc.o"
  "CMakeFiles/stack3d_power.dir/scaling.cc.o.d"
  "libstack3d_power.a"
  "libstack3d_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
