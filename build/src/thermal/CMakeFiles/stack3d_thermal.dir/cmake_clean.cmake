file(REMOVE_RECURSE
  "CMakeFiles/stack3d_thermal.dir/mesh.cc.o"
  "CMakeFiles/stack3d_thermal.dir/mesh.cc.o.d"
  "CMakeFiles/stack3d_thermal.dir/power_map.cc.o"
  "CMakeFiles/stack3d_thermal.dir/power_map.cc.o.d"
  "CMakeFiles/stack3d_thermal.dir/render.cc.o"
  "CMakeFiles/stack3d_thermal.dir/render.cc.o.d"
  "CMakeFiles/stack3d_thermal.dir/solver.cc.o"
  "CMakeFiles/stack3d_thermal.dir/solver.cc.o.d"
  "CMakeFiles/stack3d_thermal.dir/stacks.cc.o"
  "CMakeFiles/stack3d_thermal.dir/stacks.cc.o.d"
  "CMakeFiles/stack3d_thermal.dir/transient.cc.o"
  "CMakeFiles/stack3d_thermal.dir/transient.cc.o.d"
  "libstack3d_thermal.a"
  "libstack3d_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
