file(REMOVE_RECURSE
  "libstack3d_thermal.a"
)
