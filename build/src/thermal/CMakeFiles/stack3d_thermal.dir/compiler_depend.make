# Empty compiler generated dependencies file for stack3d_thermal.
# This may be replaced when dependencies are built.
