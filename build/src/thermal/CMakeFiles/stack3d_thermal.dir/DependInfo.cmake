
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/mesh.cc" "src/thermal/CMakeFiles/stack3d_thermal.dir/mesh.cc.o" "gcc" "src/thermal/CMakeFiles/stack3d_thermal.dir/mesh.cc.o.d"
  "/root/repo/src/thermal/power_map.cc" "src/thermal/CMakeFiles/stack3d_thermal.dir/power_map.cc.o" "gcc" "src/thermal/CMakeFiles/stack3d_thermal.dir/power_map.cc.o.d"
  "/root/repo/src/thermal/render.cc" "src/thermal/CMakeFiles/stack3d_thermal.dir/render.cc.o" "gcc" "src/thermal/CMakeFiles/stack3d_thermal.dir/render.cc.o.d"
  "/root/repo/src/thermal/solver.cc" "src/thermal/CMakeFiles/stack3d_thermal.dir/solver.cc.o" "gcc" "src/thermal/CMakeFiles/stack3d_thermal.dir/solver.cc.o.d"
  "/root/repo/src/thermal/stacks.cc" "src/thermal/CMakeFiles/stack3d_thermal.dir/stacks.cc.o" "gcc" "src/thermal/CMakeFiles/stack3d_thermal.dir/stacks.cc.o.d"
  "/root/repo/src/thermal/transient.cc" "src/thermal/CMakeFiles/stack3d_thermal.dir/transient.cc.o" "gcc" "src/thermal/CMakeFiles/stack3d_thermal.dir/transient.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stack3d_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
