
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/config.cc" "src/cpu/CMakeFiles/stack3d_cpu.dir/config.cc.o" "gcc" "src/cpu/CMakeFiles/stack3d_cpu.dir/config.cc.o.d"
  "/root/repo/src/cpu/pipeline.cc" "src/cpu/CMakeFiles/stack3d_cpu.dir/pipeline.cc.o" "gcc" "src/cpu/CMakeFiles/stack3d_cpu.dir/pipeline.cc.o.d"
  "/root/repo/src/cpu/suite.cc" "src/cpu/CMakeFiles/stack3d_cpu.dir/suite.cc.o" "gcc" "src/cpu/CMakeFiles/stack3d_cpu.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/stack3d_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stack3d_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stack3d_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
