# Empty dependencies file for stack3d_cpu.
# This may be replaced when dependencies are built.
