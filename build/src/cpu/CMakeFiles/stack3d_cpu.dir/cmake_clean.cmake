file(REMOVE_RECURSE
  "CMakeFiles/stack3d_cpu.dir/config.cc.o"
  "CMakeFiles/stack3d_cpu.dir/config.cc.o.d"
  "CMakeFiles/stack3d_cpu.dir/pipeline.cc.o"
  "CMakeFiles/stack3d_cpu.dir/pipeline.cc.o.d"
  "CMakeFiles/stack3d_cpu.dir/suite.cc.o"
  "CMakeFiles/stack3d_cpu.dir/suite.cc.o.d"
  "libstack3d_cpu.a"
  "libstack3d_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
