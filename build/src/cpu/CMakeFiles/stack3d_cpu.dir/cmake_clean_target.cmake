file(REMOVE_RECURSE
  "libstack3d_cpu.a"
)
