file(REMOVE_RECURSE
  "libstack3d_core.a"
)
