# Empty compiler generated dependencies file for stack3d_core.
# This may be replaced when dependencies are built.
