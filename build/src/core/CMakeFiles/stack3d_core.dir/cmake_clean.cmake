file(REMOVE_RECURSE
  "CMakeFiles/stack3d_core.dir/logic_study.cc.o"
  "CMakeFiles/stack3d_core.dir/logic_study.cc.o.d"
  "CMakeFiles/stack3d_core.dir/memory_study.cc.o"
  "CMakeFiles/stack3d_core.dir/memory_study.cc.o.d"
  "CMakeFiles/stack3d_core.dir/thermal_study.cc.o"
  "CMakeFiles/stack3d_core.dir/thermal_study.cc.o.d"
  "libstack3d_core.a"
  "libstack3d_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
