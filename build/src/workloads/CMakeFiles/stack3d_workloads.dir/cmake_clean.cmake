file(REMOVE_RECURSE
  "CMakeFiles/stack3d_workloads.dir/cpu_workload.cc.o"
  "CMakeFiles/stack3d_workloads.dir/cpu_workload.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/kernel.cc.o"
  "CMakeFiles/stack3d_workloads.dir/kernel.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/registry.cc.o"
  "CMakeFiles/stack3d_workloads.dir/registry.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/rms_dense.cc.o"
  "CMakeFiles/stack3d_workloads.dir/rms_dense.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/rms_rigidity.cc.o"
  "CMakeFiles/stack3d_workloads.dir/rms_rigidity.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/rms_solvers.cc.o"
  "CMakeFiles/stack3d_workloads.dir/rms_solvers.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/rms_sparse.cc.o"
  "CMakeFiles/stack3d_workloads.dir/rms_sparse.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/rms_svm.cc.o"
  "CMakeFiles/stack3d_workloads.dir/rms_svm.cc.o.d"
  "CMakeFiles/stack3d_workloads.dir/sparse_util.cc.o"
  "CMakeFiles/stack3d_workloads.dir/sparse_util.cc.o.d"
  "libstack3d_workloads.a"
  "libstack3d_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
