
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cpu_workload.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/cpu_workload.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/cpu_workload.cc.o.d"
  "/root/repo/src/workloads/kernel.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/kernel.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/kernel.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/rms_dense.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_dense.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_dense.cc.o.d"
  "/root/repo/src/workloads/rms_rigidity.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_rigidity.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_rigidity.cc.o.d"
  "/root/repo/src/workloads/rms_solvers.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_solvers.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_solvers.cc.o.d"
  "/root/repo/src/workloads/rms_sparse.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_sparse.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_sparse.cc.o.d"
  "/root/repo/src/workloads/rms_svm.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_svm.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/rms_svm.cc.o.d"
  "/root/repo/src/workloads/sparse_util.cc" "src/workloads/CMakeFiles/stack3d_workloads.dir/sparse_util.cc.o" "gcc" "src/workloads/CMakeFiles/stack3d_workloads.dir/sparse_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/stack3d_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stack3d_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
