file(REMOVE_RECURSE
  "libstack3d_workloads.a"
)
