# Empty dependencies file for stack3d_workloads.
# This may be replaced when dependencies are built.
