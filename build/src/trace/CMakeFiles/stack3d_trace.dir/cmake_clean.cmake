file(REMOVE_RECURSE
  "CMakeFiles/stack3d_trace.dir/buffer.cc.o"
  "CMakeFiles/stack3d_trace.dir/buffer.cc.o.d"
  "CMakeFiles/stack3d_trace.dir/file.cc.o"
  "CMakeFiles/stack3d_trace.dir/file.cc.o.d"
  "CMakeFiles/stack3d_trace.dir/writer.cc.o"
  "CMakeFiles/stack3d_trace.dir/writer.cc.o.d"
  "libstack3d_trace.a"
  "libstack3d_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
