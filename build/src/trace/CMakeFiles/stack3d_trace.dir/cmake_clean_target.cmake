file(REMOVE_RECURSE
  "libstack3d_trace.a"
)
