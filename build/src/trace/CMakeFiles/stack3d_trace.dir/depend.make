# Empty dependencies file for stack3d_trace.
# This may be replaced when dependencies are built.
