file(REMOVE_RECURSE
  "libstack3d_floorplan.a"
)
