
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/floorplan/floorplan.cc" "src/floorplan/CMakeFiles/stack3d_floorplan.dir/floorplan.cc.o" "gcc" "src/floorplan/CMakeFiles/stack3d_floorplan.dir/floorplan.cc.o.d"
  "/root/repo/src/floorplan/planner.cc" "src/floorplan/CMakeFiles/stack3d_floorplan.dir/planner.cc.o" "gcc" "src/floorplan/CMakeFiles/stack3d_floorplan.dir/planner.cc.o.d"
  "/root/repo/src/floorplan/reference.cc" "src/floorplan/CMakeFiles/stack3d_floorplan.dir/reference.cc.o" "gcc" "src/floorplan/CMakeFiles/stack3d_floorplan.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thermal/CMakeFiles/stack3d_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stack3d_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
