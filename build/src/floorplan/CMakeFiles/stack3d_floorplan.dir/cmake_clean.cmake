file(REMOVE_RECURSE
  "CMakeFiles/stack3d_floorplan.dir/floorplan.cc.o"
  "CMakeFiles/stack3d_floorplan.dir/floorplan.cc.o.d"
  "CMakeFiles/stack3d_floorplan.dir/planner.cc.o"
  "CMakeFiles/stack3d_floorplan.dir/planner.cc.o.d"
  "CMakeFiles/stack3d_floorplan.dir/reference.cc.o"
  "CMakeFiles/stack3d_floorplan.dir/reference.cc.o.d"
  "libstack3d_floorplan.a"
  "libstack3d_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack3d_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
