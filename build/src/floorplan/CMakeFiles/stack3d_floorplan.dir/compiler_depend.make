# Empty compiler generated dependencies file for stack3d_floorplan.
# This may be replaced when dependencies are built.
