# Empty dependencies file for memory_stacking.
# This may be replaced when dependencies are built.
