file(REMOVE_RECURSE
  "CMakeFiles/memory_stacking.dir/memory_stacking.cpp.o"
  "CMakeFiles/memory_stacking.dir/memory_stacking.cpp.o.d"
  "memory_stacking"
  "memory_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
