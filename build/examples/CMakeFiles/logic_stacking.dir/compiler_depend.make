# Empty compiler generated dependencies file for logic_stacking.
# This may be replaced when dependencies are built.
