file(REMOVE_RECURSE
  "CMakeFiles/logic_stacking.dir/logic_stacking.cpp.o"
  "CMakeFiles/logic_stacking.dir/logic_stacking.cpp.o.d"
  "logic_stacking"
  "logic_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
