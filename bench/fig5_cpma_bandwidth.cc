/**
 * @file
 * Figure 5: CPMA and off-die bandwidth for the two-threaded RMS
 * benchmarks as the last-level cache grows 4 -> 12 -> 32 -> 64 MB
 * (the four Figure 7 organizations). Also echoes Table 3's
 * microarchitecture parameters and prints the Section 3 headline
 * aggregates.
 *
 * Usage: fig5_cpma_bandwidth [--quick] [--depth F]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/memory_study.hh"

using namespace stack3d;

namespace {

void
printTable3(std::ostream &os)
{
    printBanner(os, "Table 3: microarchitecture parameters");
    mem::HierarchyParams p =
        mem::makeHierarchyParams(mem::StackOption::Baseline4MB);
    TextTable t({"parameter", "value"});
    t.newRow().cell("L1D cache").cell("32KB, 64B line, 8-way, 4 cyc");
    t.newRow().cell("Shared L2").cell("4MB, 64B line, 16-way, 16 cyc");
    t.newRow().cell("Stacked L2 SRAM").cell("12MB, 24 cyc");
    t.newRow().cell("Stacked L2 DRAM").cell(
        "4-64MB, 512B page, 16 banks, 64B sectors");
    t.newRow().cell("Bank delays").cell(
        "open 50 / precharge 54 / read 50 cyc");
    t.newRow().cell("DDR main memory").cell(
        "16 banks, 4KB page, 192 cyc");
    t.newRow().cell("Off-die bus BW").cell(
        std::to_string(int(p.bus.bandwidth_gbps)) + " GB/s");
    t.print(os);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::MemoryStudyConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            cfg.depth = 0.25;
        else if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc)
            cfg.depth = std::stod(argv[++i]);
    }

    printTable3(std::cout);

    printBanner(std::cout,
                "Figure 5: CPMA and off-die BW vs LLC capacity");
    std::cout << "(two-threaded RMS traces, depth " << cfg.depth
              << "; columns are the 4/12/32/64 MB organizations)\n\n";

    core::MemoryStudyResult result = core::runMemoryStudy(cfg);

    TextTable t({"benchmark", "MB", "CPMA 4", "CPMA 12", "CPMA 32",
                 "CPMA 64", "BW 4", "BW 12", "BW 32", "BW 64"});
    double avg_cpma[4] = {0, 0, 0, 0};
    double avg_bw[4] = {0, 0, 0, 0};
    for (const auto &row : result.rows) {
        t.newRow().cell(row.benchmark).cell(row.footprint_mb, 1);
        for (int o = 0; o < 4; ++o)
            t.cell(row.cpma[o], 3);
        for (int o = 0; o < 4; ++o)
            t.cell(row.bw_gbps[o], 2);
        for (int o = 0; o < 4; ++o) {
            avg_cpma[o] += row.cpma[o] / double(result.rows.size());
            avg_bw[o] += row.bw_gbps[o] / double(result.rows.size());
        }
    }
    t.newRow().cell("Avg").cell("");
    for (int o = 0; o < 4; ++o)
        t.cell(avg_cpma[o], 3);
    for (int o = 0; o < 4; ++o)
        t.cell(avg_bw[o], 2);
    t.print(std::cout);
    std::cout << "\nCSV:\n";
    t.printCsv(std::cout);

    const auto &s = result.summary;
    printBanner(std::cout, "Section 3 headlines (32 MB DRAM option)");
    std::cout << "avg CPMA reduction:   " << s.avg_cpma_reduction_32m *
                     100.0
              << " %   (paper: 13% avg)\n"
              << "max CPMA reduction:   " << s.max_cpma_reduction_32m *
                     100.0
              << " %   (paper: up to 55%)\n"
              << "avg BW reduction:     " << s.avg_bw_reduction_factor_32m
              << " x   (paper: ~3x)\n"
              << "avg bus-power saving: "
              << s.avg_bus_power_reduction_32m * 100.0
              << " %  (" << s.avg_bus_power_saving_w
              << " W)   (paper: 66%, ~0.5 W)\n";
    return 0;
}
