/**
 * @file
 * Figure 5: CPMA and off-die bandwidth for the two-threaded RMS
 * benchmarks as the last-level cache grows 4 -> 12 -> 32 -> 64 MB
 * (the four Figure 7 organizations). Also echoes Table 3's
 * microarchitecture parameters and prints the Section 3 headline
 * aggregates.
 *
 * Usage: fig5_cpma_bandwidth [--quick] [--json PATH] [shared flags]
 *
 *   --quick      depth 0.25 (a fast smoke run)
 *   --json PATH  write manifest + counters + results to PATH
 *   plus the shared observability flags (--threads, --depth, --seed,
 *   --trace-out, --stats-json, --quiet, ...); see core::BenchCli.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "common/table.hh"
#include "core/cli.hh"
#include "core/memory_study.hh"

using namespace stack3d;

namespace {

void
printTable3(std::ostream &os)
{
    printBanner(os, "Table 3: microarchitecture parameters");
    mem::HierarchyParams p =
        mem::makeHierarchyParams(mem::StackOption::Baseline4MB);
    TextTable t({"parameter", "value"});
    t.newRow().cell("L1D cache").cell("32KB, 64B line, 8-way, 4 cyc");
    t.newRow().cell("Shared L2").cell("4MB, 64B line, 16-way, 16 cyc");
    t.newRow().cell("Stacked L2 SRAM").cell("12MB, 24 cyc");
    t.newRow().cell("Stacked L2 DRAM").cell(
        "4-64MB, 512B page, 16 banks, 64B sectors");
    t.newRow().cell("Bank delays").cell(
        "open 50 / precharge 54 / read 50 cyc");
    t.newRow().cell("DDR main memory").cell(
        "16 banks, 4KB page, 192 cyc");
    t.newRow().cell("Off-die bus BW").cell(
        std::to_string(int(p.bus.bandwidth_gbps)) + " GB/s");
    t.print(os);
}

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("fig5_cpma_bandwidth");
    core::RunOptions &opts = cli.options;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--quick") == 0)
            opts.depth = 0.25;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    cli.begin();

    if (!cli.quiet()) {
        printTable3(std::cout);

        printBanner(std::cout,
                    "Figure 5: CPMA and off-die BW vs LLC capacity");
        std::cout << "(two-threaded RMS traces, depth " << opts.depth
                  << ", " << opts.resolvedThreads()
                  << " thread(s); columns are the 4/12/32/64 MB "
                     "organizations)\n\n";
    }

    opts.progress = cli.progress();
    auto report = core::runMemoryStudy(opts);
    const core::MemoryStudyResult &result = report.payload;
    cli.recordMeta(report.meta);

    const auto &s = result.summary;
    if (!cli.quiet()) {
        TextTable t({"benchmark", "MB", "CPMA 4", "CPMA 12", "CPMA 32",
                     "CPMA 64", "BW 4", "BW 12", "BW 32", "BW 64"});
        double avg_cpma[4] = {0, 0, 0, 0};
        double avg_bw[4] = {0, 0, 0, 0};
        for (const auto &row : result.rows) {
            t.newRow().cell(row.benchmark).cell(row.footprint_mb, 1);
            for (int o = 0; o < 4; ++o)
                t.cell(row.cpma[o], 3);
            for (int o = 0; o < 4; ++o)
                t.cell(row.bw_gbps[o], 2);
            for (int o = 0; o < 4; ++o) {
                avg_cpma[o] += row.cpma[o] / double(result.rows.size());
                avg_bw[o] += row.bw_gbps[o] / double(result.rows.size());
            }
        }
        t.newRow().cell("Avg").cell("");
        for (int o = 0; o < 4; ++o)
            t.cell(avg_cpma[o], 3);
        for (int o = 0; o < 4; ++o)
            t.cell(avg_bw[o], 2);
        t.print(std::cout);
        std::cout << "\nCSV:\n";
        t.printCsv(std::cout);

        printBanner(std::cout,
                    "Section 3 headlines (32 MB DRAM option)");
        std::cout << "avg CPMA reduction:   "
                  << s.avg_cpma_reduction_32m * 100.0
                  << " %   (paper: 13% avg)\n"
                  << "max CPMA reduction:   "
                  << s.max_cpma_reduction_32m * 100.0
                  << " %   (paper: up to 55%)\n"
                  << "avg BW reduction:     "
                  << s.avg_bw_reduction_factor_32m
                  << " x   (paper: ~3x)\n"
                  << "avg bus-power saving: "
                  << s.avg_bus_power_reduction_32m * 100.0
                  << " %  (" << s.avg_bus_power_saving_w
                  << " W)   (paper: 66%, ~0.5 W)\n";

        std::cout << "\nwall " << report.meta.wall_seconds
                  << " s over " << report.meta.cells.size()
                  << " cells (serial-equivalent "
                  << report.meta.serial_seconds << " s, speedup "
                  << report.meta.speedup() << "x at "
                  << report.meta.threads_used << " threads)\n";
    }

    if (!json_path.empty()) {
        std::ofstream jf(json_path);
        if (!jf) {
            std::cerr << "cannot open " << json_path << "\n";
            return 1;
        }
        JsonWriter w(jf);
        w.beginObject();
        cli.writeJsonHeader(w);
        core::writeMetaJson(w, report.meta);
        w.key("depth").value(opts.depth);
        w.key("rows").beginArray();
        for (const auto &row : result.rows) {
            w.beginObject();
            w.key("benchmark").value(row.benchmark);
            w.key("footprint_mb").value(row.footprint_mb);
            w.key("cpma").beginArray();
            for (double v : row.cpma)
                w.value(v);
            w.endArray();
            w.key("bw_gbps").beginArray();
            for (double v : row.bw_gbps)
                w.value(v);
            w.endArray();
            w.key("bus_power_w").beginArray();
            for (double v : row.bus_power_w)
                w.value(v);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.key("summary").beginObject();
        w.key("avg_cpma_reduction_32m").value(s.avg_cpma_reduction_32m);
        w.key("max_cpma_reduction_32m").value(s.max_cpma_reduction_32m);
        w.key("avg_bw_reduction_factor_32m")
            .value(s.avg_bw_reduction_factor_32m);
        w.key("avg_bus_power_reduction_32m")
            .value(s.avg_bus_power_reduction_32m);
        w.endObject();
        w.endObject();
        jf << "\n";
        if (!cli.quiet())
            std::cout << "wrote " << json_path << "\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
