/**
 * @file
 * Table 5: frequency and voltage scaling of the Logic+Logic stacked
 * 3D floorplan. Uses the conversion laws the paper states (0.82%
 * performance per 1% frequency; 1% frequency per 1% Vcc) and the 3D
 * design point (simultaneous ~15% performance gain and ~15% power
 * reduction), attaching simulated peak temperatures per row.
 *
 * Paper rows: Baseline 147 W / 99 C / 100%; Same Pwr 147 W / 127 C /
 * 129%; Same Freq 125 W / 113 C / 115%; Same Temp 97.28 W / 99 C /
 * 108%; Same Perf 68.2 W / 77 C / 100%.
 *
 * Usage: table5_vf_scaling [--uops N] [--nominal] [--json PATH]
 *                          [shared flags]
 *   --nominal    use the paper's nominal 15% gain instead of the
 *                measured Table 4 total
 *   --json PATH  write manifest + counters + rows to PATH
 *   plus the shared observability flags (--threads, --trace-out,
 *   --stats-json, --quiet, ...); see core::BenchCli.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "common/table.hh"
#include "core/cli.hh"
#include "core/logic_study.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("table5_vf_scaling");
    core::RunOptions &opts = cli.options;
    opts.seed = 7;   // the suite's historical default
    core::LogicStudySpec spec;
    spec.suite.uops_per_trace = 60000;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc)
            spec.suite.uops_per_trace = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--nominal") == 0)
            spec.use_measured_gain = false;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    cli.begin();
    cli.addConfig("uops_per_trace", double(spec.suite.uops_per_trace));
    cli.addConfig("use_measured_gain",
                  spec.use_measured_gain ? "true" : "false");

    if (!cli.quiet())
        printBanner(std::cout, "Table 5: V/f scaling the 3D floorplan");

    opts.progress = cli.progress();
    auto report = core::runLogicStudy(opts, spec);
    const core::LogicStudyResult &result = report.payload;
    cli.recordMeta(report.meta);

    if (!cli.quiet()) {
        std::cout << "3D design point: +"
                  << result.table4.total_perf_gain_pct
                  << "% performance (measured; paper ~15%), -"
                  << result.power_saving_3d * 100.0
                  << "% power (roll-up; paper ~15%)\n\n";

        TextTable t({"row", "Pwr W", "Pwr %", "Temp C", "Perf %", "Vcc",
                     "Freq"});
        for (const auto &row : result.table5) {
            t.newRow()
                .cell(row.point.label)
                .cell(row.point.power_w, 1)
                .cell(row.point.power_rel * 100.0, 0)
                .cell(row.temp_c, 1)
                .cell(row.point.perf_rel * 100.0, 0)
                .cell(row.point.vcc, 2)
                .cell(row.point.freq, 2);
        }
        t.print(std::cout);

        std::cout <<
            "\npaper:        Pwr     Pwr%  Temp  Perf  Vcc   Freq\n"
            "  Baseline    147     100%   99   100%  1.00  1.00\n"
            "  Same Pwr    147     100%  127   129%  1.00  1.18\n"
            "  Same Freq.  125      85%  113   115%  1.00  1.00\n"
            "  Same Temp    97.28   66%   99   108%  0.92  0.92\n"
            "  Same Perf.   68.2    46%   77   100%  0.82  0.82\n";

        std::cout << "\nconversion laws: 0.82% perf per 1% freq; "
                     "1% freq per 1% Vcc; P ~ V^2 f\n";

        std::cout << "\nwall " << report.meta.wall_seconds
                  << " s over " << report.meta.cells.size()
                  << " cells (serial-equivalent "
                  << report.meta.serial_seconds << " s, speedup "
                  << report.meta.speedup() << "x at "
                  << report.meta.threads_used << " threads)\n";
    }

    if (!json_path.empty()) {
        std::ofstream jf(json_path);
        if (!jf) {
            std::cerr << "cannot open " << json_path << "\n";
            return 1;
        }
        JsonWriter w(jf);
        w.beginObject();
        cli.writeJsonHeader(w);
        core::writeMetaJson(w, report.meta);
        w.key("perf_gain_pct").value(result.table4.total_perf_gain_pct);
        w.key("power_saving_3d").value(result.power_saving_3d);
        w.key("rows").beginArray();
        for (const auto &row : result.table5) {
            w.beginObject();
            w.key("label").value(row.point.label);
            w.key("power_w").value(row.point.power_w);
            w.key("power_rel").value(row.point.power_rel);
            w.key("temp_c").value(row.temp_c);
            w.key("perf_rel").value(row.point.perf_rel);
            w.key("vcc").value(row.point.vcc);
            w.key("freq").value(row.point.freq);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        jf << "\n";
        if (!cli.quiet())
            std::cout << "wrote " << json_path << "\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
