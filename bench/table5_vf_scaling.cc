/**
 * @file
 * Table 5: frequency and voltage scaling of the Logic+Logic stacked
 * 3D floorplan. Uses the conversion laws the paper states (0.82%
 * performance per 1% frequency; 1% frequency per 1% Vcc) and the 3D
 * design point (simultaneous ~15% performance gain and ~15% power
 * reduction), attaching simulated peak temperatures per row.
 *
 * Paper rows: Baseline 147 W / 99 C / 100%; Same Pwr 147 W / 127 C /
 * 129%; Same Freq 125 W / 113 C / 115%; Same Temp 97.28 W / 99 C /
 * 108%; Same Perf 68.2 W / 77 C / 100%.
 *
 * Usage: table5_vf_scaling [--uops N] [--nominal]
 *   --nominal  use the paper's nominal 15% gain instead of the
 *              measured Table 4 total
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/logic_study.hh"

using namespace stack3d;

int
main(int argc, char **argv)
{
    core::LogicStudyConfig cfg;
    cfg.suite.uops_per_trace = 60000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc)
            cfg.suite.uops_per_trace = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--nominal") == 0)
            cfg.use_measured_gain = false;
    }

    printBanner(std::cout, "Table 5: V/f scaling the 3D floorplan");

    core::LogicStudyResult result = core::runLogicStudy(cfg);

    std::cout << "3D design point: +"
              << result.table4.total_perf_gain_pct
              << "% performance (measured; paper ~15%), -"
              << result.power_saving_3d * 100.0
              << "% power (roll-up; paper ~15%)\n\n";

    TextTable t({"row", "Pwr W", "Pwr %", "Temp C", "Perf %", "Vcc",
                 "Freq"});
    for (const auto &row : result.table5) {
        t.newRow()
            .cell(row.point.label)
            .cell(row.point.power_w, 1)
            .cell(row.point.power_rel * 100.0, 0)
            .cell(row.temp_c, 1)
            .cell(row.point.perf_rel * 100.0, 0)
            .cell(row.point.vcc, 2)
            .cell(row.point.freq, 2);
    }
    t.print(std::cout);

    std::cout <<
        "\npaper:        Pwr     Pwr%  Temp  Perf  Vcc   Freq\n"
        "  Baseline    147     100%   99   100%  1.00  1.00\n"
        "  Same Pwr    147     100%  127   129%  1.00  1.18\n"
        "  Same Freq.  125      85%  113   115%  1.00  1.00\n"
        "  Same Temp    97.28   66%   99   108%  0.92  0.92\n"
        "  Same Perf.   68.2    46%   77   100%  0.82  0.82\n";

    std::cout << "\nconversion laws: 0.82% perf per 1% freq; "
                 "1% freq per 1% Vcc; P ~ V^2 f\n";
    return 0;
}
