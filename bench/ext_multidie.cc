/**
 * @file
 * Extension experiment: beyond the paper's two-die limit. The paper
 * notes "it is possible to stack many die; however, this work limits
 * the discussion to two die stacks" — this bench asks what happens
 * when it doesn't. Each additional 32 MB DRAM die doubles down on
 * capacity (32 -> 64 -> 96 MB of stacked cache on the Core 2 Duo
 * base) while pushing the extra dies farther from the heat sink.
 *
 * Output: peak temperature and the performance of an equivalent-
 * capacity DRAM cache for 1..4 stacked DRAM dies, plus the transient
 * power-on time constant of the tallest stack.
 *
 * Usage: ext_multidie [shared flags] — see core::BenchCli for
 * --seed/--trace-out/--stats-json/--quiet/...
 */

#include <iostream>
#include <streambuf>
#include <vector>

#include "common/table.hh"
#include "core/cli.hh"
#include "core/memory_study.hh"
#include "floorplan/reference.hh"
#include "mem/engine.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"
#include "thermal/transient.hh"
#include "workloads/registry.hh"

using namespace stack3d;
using namespace stack3d::thermal;

namespace {

/** Peak temperature with n stacked DRAM dies (3.1 W each). */
double
solveStackOfN(unsigned n_dram, double &die2_peak_out)
{
    auto base = floorplan::makeCore2BaseDie32MKeepOutline();
    const unsigned nx = 40, ny = 32;

    std::vector<StackedDieType> uppers(n_dram, StackedDieType::Dram);
    StackGeometry geom =
        makeMultiDieStack(base.width(), base.height(), uppers);
    Mesh mesh(geom, nx, ny);
    mesh.setLayerPower(geom.layerIndex("active1"),
                       base.powerMap(nx, ny, 0));
    for (unsigned d = 0; d < n_dram; ++d) {
        PowerMap map(nx, ny, base.width(), base.height());
        map.addUniform(3.1);   // per Figure 7's 32 MB DRAM budget
        mesh.setLayerPower(
            geom.layerIndex("active" + std::to_string(d + 2)), map);
    }
    TemperatureField field = solveSteadyState(mesh);

    double peak = field.layerPeak(geom.layerIndex("active1"));
    die2_peak_out = 0.0;
    for (unsigned d = 0; d < n_dram; ++d) {
        die2_peak_out = std::max(
            die2_peak_out,
            field.layerPeak(
                geom.layerIndex("active" + std::to_string(d + 2))));
    }
    return peak;
}

/** CPMA of sUS (the 64 MB-class benchmark) at a given capacity. */
double
cpmaAtCapacity(const trace::TraceBuffer &buf, std::uint64_t mib)
{
    mem::HierarchyParams hp =
        mem::makeHierarchyParams(mem::StackOption::Dram32MB);
    hp.dram_cache.size_bytes = mib << 20;
    // Keep the page-set count a power of two at every capacity.
    hp.dram_cache.assoc = (mib % 3 == 0) ? 12 : 8;
    mem::MemoryHierarchy hier(hp);
    mem::TraceEngine engine;
    return engine.run(buf, hier).cpma;
}

/** Stream buffer discarding everything (backs --quiet). */
class NullBuf : public std::streambuf
{
  protected:
    int overflow(int c) override { return c; }
};

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("ext_multidie");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: ext_multidie [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();
    NullBuf null_buf;
    std::ostream null_os(&null_buf);
    std::ostream &out = cli.quiet() ? null_os : std::cout;

    printBanner(out,
                "Extension: stacking more than two dies");

    workloads::WorkloadConfig wcfg;
    wcfg.records_per_thread = 5500000;
    wcfg.seed = cli.options.seed;
    trace::TraceBuffer sus =
        workloads::makeRmsKernel("sUS")->generate(wcfg);

    TextTable t({"DRAM dies", "capacity MB", "cpu peak C",
                 "hottest DRAM die C", "sUS CPMA"});
    for (unsigned n = 1; n <= 4; ++n) {
        obs::Span span("multidie/" + std::to_string(n) + "die",
                       "bench");
        double dram_peak = 0.0;
        double cpu_peak = solveStackOfN(n, dram_peak);
        double cpma = cpmaAtCapacity(sus, std::uint64_t(32) * n);
        std::string prefix =
            "multidie." + std::to_string(n) + "die.";
        cli.counters().set(prefix + "cpu_peak_c", cpu_peak);
        cli.counters().set(prefix + "dram_peak_c", dram_peak);
        cli.counters().set(prefix + "sus_cpma", cpma);
        t.newRow()
            .cell((long long)n)
            .cell((long long)(32 * n))
            .cell(cpu_peak, 2)
            .cell(dram_peak, 2)
            .cell(cpma, 3);
    }
    t.print(out);
    out << "\neach extra DRAM die adds 3.1 W farther from the "
           "heat sink; capacity-bound workloads keep gaining "
           "while the thermal cost stays small — the paper's "
           "thesis extends to taller stacks\n";

    printBanner(out,
                "Extension: transient power-on of the 4-die stack");
    {
        auto base = floorplan::makeCore2BaseDie32MKeepOutline();
        std::vector<StackedDieType> uppers(3, StackedDieType::Dram);
        StackGeometry geom =
            makeMultiDieStack(base.width(), base.height(), uppers);
        Mesh mesh(geom, 27, 21);
        mesh.setLayerPower(geom.layerIndex("active1"),
                           base.powerMap(27, 21, 0));
        for (unsigned d = 0; d < 3; ++d) {
            PowerMap map(27, 21, base.width(), base.height());
            map.addUniform(3.1);
            mesh.setLayerPower(
                geom.layerIndex("active" + std::to_string(d + 2)),
                map);
        }
        obs::Span span("multidie/transient", "bench");
        TransientResult tr = solveTransient(mesh, 20.0, 0.25);
        cli.counters().set("multidie.transient.peak_c",
                           tr.samples.back().peak_c);
        cli.counters().set("multidie.transient.time_constant_s",
                           tr.time_constant_s);
        out << "peak after 20 s: " << tr.samples.back().peak_c
            << " C; thermal time constant ~ " << tr.time_constant_s
            << " s\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
