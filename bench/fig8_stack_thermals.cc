/**
 * @file
 * Figures 7 and 8: the memory-stacking options' power budgets and
 * peak temperatures, plus the 32 MB option's thermal map.
 *
 * Paper reference points (Figure 8a): 2D 4MB 88.35 C, 3D 12MB
 * 92.85 C, 3D 32MB 88.43 C, 3D 64MB 90.27 C.
 *
 * Usage: fig8_stack_thermals [--die-nx N] [--die-ny N] [--no-map]
 *                            [--json PATH] [shared flags]
 *
 *   --die-nx/--die-ny  lateral mesh resolution of the die window
 *   --no-map           skip the Figure 8(b) thermal map render
 *   --json PATH        machine-readable manifest + counters + results
 *   plus the shared observability flags (--threads, --trace-out,
 *   --stats-json, --quiet, ...); see core::BenchCli.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/cli.hh"
#include "core/thermal_study.hh"
#include "power/scaling.hh"

using namespace stack3d;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: fig8_stack_thermals [--die-nx N] [--die-ny N] "
          "[--no-map] [--json PATH]\n";
    core::BenchCli::printUsage(os);
}

unsigned
parseDimArg(const char *text, const char *flag)
{
    unsigned v = core::parseThreadArg(text, flag);
    if (v == 0)
        stack3d_fatal(flag, " must be positive");
    return v;
}

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("fig8_stack_thermals");
    core::StackThermalSpec spec;
    std::string json_path;
    bool render_map = true;
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--die-nx") == 0 && i + 1 < argc)
            spec.die_nx = parseDimArg(argv[++i], "--die-nx");
        else if (std::strcmp(argv[i], "--die-ny") == 0 && i + 1 < argc)
            spec.die_ny = parseDimArg(argv[++i], "--die-ny");
        else if (std::strcmp(argv[i], "--no-map") == 0)
            render_map = false;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else {
            usage(std::cerr);
            return 1;
        }
    }
    cli.begin();
    cli.addConfig("die_nx", double(spec.die_nx));
    cli.addConfig("die_ny", double(spec.die_ny));

    if (!cli.quiet()) {
        printBanner(std::cout,
                    "Figure 7: stack options and cache power");
        TextTable t({"option", "organization", "cache power (W)"});
        t.newRow().cell("(a) 2D 4MB").cell("4 MB SRAM on die")
            .cell(power::cachePowerWatts(mem::StackOption::Baseline4MB),
                  1);
        t.newRow().cell("(b) 3D 12MB")
            .cell("4 MB SRAM + 8 MB stacked SRAM")
            .cell(power::cachePowerWatts(mem::StackOption::Sram12MB), 1);
        t.newRow().cell("(c) 3D 32MB")
            .cell("32 MB stacked DRAM, SRAM removed")
            .cell(power::cachePowerWatts(mem::StackOption::Dram32MB), 1);
        t.newRow().cell("(d) 3D 64MB")
            .cell("64 MB stacked DRAM, tags in old SRAM")
            .cell(power::cachePowerWatts(mem::StackOption::Dram64MB), 1);
        t.print(std::cout);
        std::cout << "(paper: 4 MB SRAM 7 W; +8 MB SRAM +14 W; 32 MB "
                     "DRAM 3.1 W; 64 MB DRAM 6.2 W)\n";

        printBanner(std::cout,
                    "Figure 8(a): peak temperature per option");
    }

    cli.options.progress = cli.progress();
    auto report = core::runStackThermalStudy(cli.options, spec);
    const core::StackThermalResult &result = report.payload;
    cli.recordMeta(report.meta);

    const char *labels[4] = {"2D 4MB", "3D 12MB", "3D 32MB", "3D 64MB"};
    const double paper[4] = {88.35, 92.85, 88.43, 90.27};
    if (!cli.quiet()) {
        TextTable t({"option", "total W", "peak C", "paper C", "delta"});
        for (int o = 0; o < 4; ++o) {
            t.newRow()
                .cell(labels[o])
                .cell(result.options[o].total_power_w, 1)
                .cell(result.options[o].peak_c, 2)
                .cell(paper[o], 2)
                .cell(result.options[o].peak_c - paper[o], 2);
        }
        t.print(std::cout);
    }

    if (render_map) {
        if (!cli.quiet())
            printBanner(std::cout, "Figure 8(b): 3D 32MB thermal map");
        using namespace floorplan;
        Floorplan base = makeCore2BaseDie32MKeepOutline();
        Floorplan dram =
            makeCacheDie(base, "dram32m", budgets::stacked_dram_32mb);
        Floorplan combined = stackFloorplans(base, dram, "core2_32m");
        core::ThermalSolution solution;
        core::ThermalPoint map_point = core::solveFloorplanThermals(
            combined, thermal::StackedDieType::Dram, {}, {}, &solution,
            spec.die_nx, spec.die_ny);
        thermal::appendSolveCounters(cli.counters(),
                                     "thermal.fig8b_map.",
                                     map_point.solve);
        if (!cli.quiet()) {
            unsigned active =
                solution.mesh->geometry().layerIndex("active1");
            thermal::renderLayerMap(std::cout, *solution.field, active);
        }
    }
    if (!cli.quiet()) {
        std::cout << "\nheadline: stacking the 32 MB DRAM cache "
                     "changes peak temperature by "
                  << result.options[2].peak_c - result.options[0].peak_c
                  << " C (paper: +0.08 C)\n";
    }

    if (!json_path.empty()) {
        std::ofstream jf(json_path);
        if (!jf) {
            std::cerr << "cannot open " << json_path << "\n";
            return 1;
        }
        JsonWriter w(jf);
        w.beginObject();
        cli.writeJsonHeader(w);
        core::writeMetaJson(w, report.meta);
        w.key("options").beginArray();
        for (int o = 0; o < 4; ++o) {
            const core::ThermalPoint &p = result.options[o];
            w.beginObject();
            w.key("label").value(labels[o]);
            w.key("total_power_w").value(p.total_power_w);
            w.key("peak_c").value(p.peak_c);
            w.key("die1_peak_c").value(p.die1_peak_c);
            w.key("die2_peak_c").value(p.die2_peak_c);
            w.key("min_c").value(p.min_c);
            w.key("paper_peak_c").value(paper[o]);
            w.endObject();
        }
        w.endArray();
        w.key("delta_32m_vs_baseline_c")
            .value(result.options[2].peak_c - result.options[0].peak_c);
        w.endObject();
        jf << "\n";
        if (!cli.quiet())
            std::cout << "wrote " << json_path << "\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
