/**
 * @file
 * Figures 7 and 8: the memory-stacking options' power budgets and
 * peak temperatures, plus the 32 MB option's thermal map.
 *
 * Paper reference points (Figure 8a): 2D 4MB 88.35 C, 3D 12MB
 * 92.85 C, 3D 32MB 88.43 C, 3D 64MB 90.27 C.
 */

#include <iostream>

#include "common/table.hh"
#include "core/thermal_study.hh"
#include "power/scaling.hh"

using namespace stack3d;

int
main()
{
    printBanner(std::cout, "Figure 7: stack options and cache power");
    {
        TextTable t({"option", "organization", "cache power (W)"});
        t.newRow().cell("(a) 2D 4MB").cell("4 MB SRAM on die")
            .cell(power::cachePowerWatts(mem::StackOption::Baseline4MB),
                  1);
        t.newRow().cell("(b) 3D 12MB")
            .cell("4 MB SRAM + 8 MB stacked SRAM")
            .cell(power::cachePowerWatts(mem::StackOption::Sram12MB), 1);
        t.newRow().cell("(c) 3D 32MB")
            .cell("32 MB stacked DRAM, SRAM removed")
            .cell(power::cachePowerWatts(mem::StackOption::Dram32MB), 1);
        t.newRow().cell("(d) 3D 64MB")
            .cell("64 MB stacked DRAM, tags in old SRAM")
            .cell(power::cachePowerWatts(mem::StackOption::Dram64MB), 1);
        t.print(std::cout);
        std::cout << "(paper: 4 MB SRAM 7 W; +8 MB SRAM +14 W; 32 MB "
                     "DRAM 3.1 W; 64 MB DRAM 6.2 W)\n";
    }

    printBanner(std::cout, "Figure 8(a): peak temperature per option");
    core::StackThermalResult result = core::runStackThermalStudy();

    const char *labels[4] = {"2D 4MB", "3D 12MB", "3D 32MB", "3D 64MB"};
    const double paper[4] = {88.35, 92.85, 88.43, 90.27};
    TextTable t({"option", "total W", "peak C", "paper C", "delta"});
    for (int o = 0; o < 4; ++o) {
        t.newRow()
            .cell(labels[o])
            .cell(result.options[o].total_power_w, 1)
            .cell(result.options[o].peak_c, 2)
            .cell(paper[o], 2)
            .cell(result.options[o].peak_c - paper[o], 2);
    }
    t.print(std::cout);

    printBanner(std::cout, "Figure 8(b): 3D 32MB thermal map");
    {
        using namespace floorplan;
        Floorplan base = makeCore2BaseDie32MKeepOutline();
        Floorplan dram =
            makeCacheDie(base, "dram32m", budgets::stacked_dram_32mb);
        Floorplan combined = stackFloorplans(base, dram, "core2_32m");
        core::ThermalSolution solution;
        core::solveFloorplanThermals(combined,
                                     thermal::StackedDieType::Dram, {},
                                     {}, &solution);
        unsigned active =
            solution.mesh->geometry().layerIndex("active1");
        thermal::renderLayerMap(std::cout, *solution.field, active);
    }
    std::cout << "\nheadline: stacking the 32 MB DRAM cache changes "
                 "peak temperature by "
              << result.options[2].peak_c - result.options[0].peak_c
              << " C (paper: +0.08 C)\n";
    return 0;
}
