/**
 * @file
 * Table 4: Logic+Logic 3D stacking performance improvement and
 * pipeline changes — per-path stage eliminations and the performance
 * gain each one buys, plus the all-paths total (~15% in the paper),
 * measured over the synthetic single-thread benchmark suite.
 *
 * Usage: table4_pipeline [--uops N] [--full-suite] [shared flags]
 * (see core::BenchCli for --trace-out/--stats-json/--quiet/...)
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/cli.hh"
#include "cpu/suite.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("table4_pipeline");
    cpu::SuiteOptions opt;
    opt.uops_per_trace = 80000;
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc)
            opt.uops_per_trace = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--full-suite") == 0)
            opt.full_suite = true;
        else {
            std::cerr << "usage: table4_pipeline [--uops N] "
                         "[--full-suite] [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();
    cli.addConfig("uops_per_trace", double(opt.uops_per_trace));

    if (!cli.quiet()) {
        printBanner(std::cout,
                    "Table 4: 3D stacking pipeline changes and gains");
    }

    cpu::Table4Result t4 = cpu::computeTable4(opt);
    cpu::appendSuiteCounters(t4.planar, cli.counters(), "cpu.planar.");
    cpu::appendSuiteCounters(t4.stacked, cli.counters(),
                             "cpu.stacked.");

    if (!cli.quiet()) {
        static const double paper_gain[cpu::kNumPaths] = {
            0.2, 0.33, 0.66, 4.0, 0.5, 1.5, 1.0, 1.0, 2.0, 3.0};

        TextTable t({"functionality", "% stages eliminated",
                     "perf gain %", "paper %"});
        for (std::size_t i = 0; i < t4.rows.size(); ++i) {
            const auto &row = t4.rows[i];
            t.newRow().cell(cpu::pathName(row.path));
            if (row.stages_eliminated_pct < 0.0)
                t.cell("Variable");
            else
                t.cell(row.stages_eliminated_pct, 1);
            t.cell(row.perf_gain_pct, 2).cell(paper_gain[i], 2);
        }
        t.newRow()
            .cell("Total (all paths)")
            .cell("~25")
            .cell(t4.total_perf_gain_pct, 2)
            .cell(15.0, 2);
        t.print(std::cout);

        std::cout << "\nsuite: " << t4.planar.num_traces
                  << " traces; planar geomean IPC "
                  << t4.planar.geomean_ipc << " -> 3D "
                  << t4.stacked.geomean_ipc << "\n";

        std::cout << "\nper-class IPC (planar -> 3D):\n";
        for (std::size_t c = 0; c < t4.planar.class_ipc.size(); ++c) {
            std::cout << "  " << t4.planar.class_ipc[c].first << ": "
                      << t4.planar.class_ipc[c].second << " -> "
                      << t4.stacked.class_ipc[c].second << "\n";
        }
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
