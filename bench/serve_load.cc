/**
 * @file
 * Closed-loop load generator for the stack3d-serve study service.
 *
 * Drives a StudyService in process (no sockets), so it measures the
 * service itself — request parsing, digesting, scheduling, and the
 * result cache — rather than kernel networking. A sweep over target
 * cache hit rates shows how throughput scales from all-cold (every
 * request runs a study) to all-hot (every request is a memoized
 * lookup), and the hit/cold latency split quantifies what the cache
 * buys.
 *
 * Each sweep point gets a fresh service. The hot working set is
 * pre-warmed untimed; then --clients client threads fire --requests
 * requests with a deterministic hot/cold interleave and the point is
 * scored from the service's own serve.* counters (delta across the
 * timed phase for the hit rate; cumulative for the latency split,
 * since pre-warm misses are real cold runs too).
 *
 * Usage: serve_load [--clients N] [--requests N] [--hot N]
 *                   [--workers N] [--die-nx N] [--die-ny N]
 *                   [--queue N] [--retry N] [--backoff-ms N]
 *                   [--json PATH] [shared flags]
 *
 * Overload behavior: by default the admission queue is sized so
 * nothing is ever rejected (the sweep measures the cache, not
 * shedding). --queue N shrinks it so the service rejects under
 * load; clients then retry with jittered exponential backoff
 * (deterministically seeded) honoring the server's retry_after_ms
 * hint, and the sweep reports retries/give-ups alongside goodput —
 * the measure of what survives overload.
 *
 * While each point's clients run, a sampler thread scrapes the
 * service's stats snapshot every 25 ms — the same pull an external
 * /metrics scraper would do — and the resulting time series
 * (requests, hits, in-flight, cold p95) is emitted per point under
 * "timeline" in the JSON output.
 *
 * The committed BENCH_serve.json is this tool's --json output.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "common/timing.hh"
#include "core/cli.hh"
#include "core/run_options.hh"
#include "exec/pool.hh"
#include "obs/provenance.hh"
#include "serve/service.hh"

using namespace stack3d;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: serve_load [--clients N] [--requests N] [--hot N] "
          "[--workers N]\n"
          "                  [--die-nx N] [--die-ny N] [--queue N] "
          "[--retry N]\n"
          "                  [--backoff-ms N] [--json PATH]\n"
          "                  [--study stack-thermal|memory]\n";
    core::BenchCli::printUsage(os);
}

/** Like core::parseThreadArg but without its 4096 thread-count cap —
 *  request counts legitimately exceed it. */
unsigned
parseCountArg(const char *text, const char *flag)
{
    char *end = nullptr;
    unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || value > 0xfffffffful)
        stack3d_fatal(flag, " expects a non-negative number, got '",
                      text, "'");
    return unsigned(value);
}

/** A request line; the seed makes digests distinct. The memory
 *  variant exercises the trace-replay cold path (one small kernel at
 *  low depth, so a cold request is a bounded replay, not the full
 *  Figure 5 sweep). */
std::string
requestLine(const std::string &study, std::uint64_t seed,
            unsigned die_nx, unsigned die_ny)
{
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("schema_version").value(unsigned(obs::kSchemaVersion));
    w.key("study").value(study);
    w.key("options").beginObject();
    w.key("seed").value(seed);
    if (study == "memory")
        w.key("depth").value(0.05);
    w.endObject();
    w.key("spec").beginObject();
    if (study == "memory") {
        w.key("benchmarks").beginArray();
        w.value("sMVM");
        w.endArray();
    } else {
        w.key("die_nx").value(die_nx);
        w.key("die_ny").value(die_ny);
    }
    w.endObject();
    w.endObject();
    return os.str();
}

/** One mid-run stats scrape (the live-telemetry time series). */
struct TimelineSample
{
    double t_s = 0;          ///< seconds since the point started
    double requests = 0;
    double ok = 0;
    double hits = 0;
    double in_flight = 0;
    double cold_p95_ms = 0;
};

struct SweepPoint
{
    unsigned hit_pct_target = 0;
    double hit_pct_measured = 0;
    double wall_s = 0;
    double req_per_s = 0;
    double goodput_per_s = 0;   ///< ok responses per second
    double cold_ms = 0;
    double hit_ms = 0;
    double cold_p99_ms = 0;
    double hit_p99_ms = 0;
    double cold_over_hit = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t retries = 0;
    std::uint64_t gave_up = 0;
    std::vector<TimelineSample> timeline;
};

/** Per-client tally a worker returns to the sweep loop. */
struct ClientTally
{
    std::uint64_t ok = 0;
    std::uint64_t retries = 0;
    std::uint64_t gave_up = 0;
};

/**
 * The retry client: handle one request, backing off and retrying on
 * rejection. Waits are jittered exponential — at least the server's
 * retry_after_ms hint, scaled by a deterministic jitter in
 * [0.5, 1.5) — so retry storms decorrelate but runs stay seeded.
 */
serve::ServeResult
handleWithRetry(serve::StudyService &service, const std::string &line,
                unsigned max_retries, unsigned backoff_ms, Random &rng,
                ClientTally &tally)
{
    for (unsigned attempt = 0;; ++attempt) {
        serve::ServeResult r = service.handle(line);
        if (r.status != serve::ServeResult::Status::Rejected ||
            attempt >= max_retries) {
            if (r.status == serve::ServeResult::Status::Rejected)
                ++tally.gave_up;
            return r;
        }
        double base_ms = double(backoff_ms) *
                         double(1u << std::min(attempt, 10u));
        double wait_ms = std::max(double(r.retry_after_ms), base_ms);
        wait_ms *= rng.uniformDouble(0.5, 1.5);
        wait_ms = std::min(wait_ms, 1000.0);
        ++tally.retries;
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::int64_t(wait_ms * 1000.0)));
    }
}

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("serve_load");
    unsigned n_clients = 4;
    unsigned n_requests = 200;
    unsigned n_hot = 8;
    unsigned n_workers = 2;
    unsigned die_nx = 10;
    unsigned die_ny = 8;
    unsigned queue_limit = 0;   // 0 = effectively unbounded
    unsigned max_retries = 4;
    unsigned backoff_ms = 5;
    std::string json_path;
    std::string study = "stack-thermal";
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
            n_clients = core::parseThreadArg(argv[++i], "--clients");
        else if (std::strcmp(argv[i], "--requests") == 0 &&
                 i + 1 < argc)
            n_requests = parseCountArg(argv[++i], "--requests");
        else if (std::strcmp(argv[i], "--hot") == 0 && i + 1 < argc)
            n_hot = parseCountArg(argv[++i], "--hot");
        else if (std::strcmp(argv[i], "--workers") == 0 &&
                 i + 1 < argc)
            n_workers = core::parseThreadArg(argv[++i], "--workers");
        else if (std::strcmp(argv[i], "--die-nx") == 0 && i + 1 < argc)
            die_nx = core::parseThreadArg(argv[++i], "--die-nx");
        else if (std::strcmp(argv[i], "--die-ny") == 0 && i + 1 < argc)
            die_ny = core::parseThreadArg(argv[++i], "--die-ny");
        else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc)
            queue_limit = parseCountArg(argv[++i], "--queue");
        else if (std::strcmp(argv[i], "--retry") == 0 && i + 1 < argc)
            max_retries = parseCountArg(argv[++i], "--retry");
        else if (std::strcmp(argv[i], "--backoff-ms") == 0 &&
                 i + 1 < argc)
            backoff_ms = parseCountArg(argv[++i], "--backoff-ms");
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--study") == 0 && i + 1 < argc)
            study = argv[++i];
        else {
            usage(std::cerr);
            return 1;
        }
    }
    if (study != "stack-thermal" && study != "memory")
        stack3d_fatal("--study must be stack-thermal or memory");
    if (n_clients == 0 || n_requests == 0 || n_hot == 0)
        stack3d_fatal("--clients/--requests/--hot must be positive");

    cli.begin();
    cli.addConfig("clients", double(n_clients));
    cli.addConfig("requests", double(n_requests));
    cli.addConfig("hot", double(n_hot));
    cli.addConfig("workers", double(n_workers));
    cli.addConfig("die_nx", double(die_nx));
    cli.addConfig("die_ny", double(die_ny));
    cli.addConfig("queue", double(queue_limit));
    cli.addConfig("retry", double(max_retries));
    cli.addConfig("backoff_ms", double(backoff_ms));

    const unsigned kHitTargets[] = {0, 50, 90, 100};
    std::vector<SweepPoint> points;
    for (unsigned sweep = 0; sweep < 4; ++sweep) {
        SweepPoint point;
        point.hit_pct_target = kHitTargets[sweep];

        serve::ServiceOptions service_options;
        service_options.workers = n_workers;
        service_options.queue_limit =
            queue_limit != 0 ? queue_limit : n_clients + n_requests;
        service_options.cache_entries = n_requests + n_hot;
        service_options.max_study_threads = 1;
        serve::StudyService service(service_options);

        // Request i is "hot" (pre-warmed, guaranteed hit) when its
        // percentile lands under the target; cold seeds are unique
        // per sweep so nothing leaks across points.
        std::vector<std::string> lines;
        lines.reserve(n_requests);
        for (unsigned i = 0; i < n_requests; ++i) {
            bool hot = i % 100 < point.hit_pct_target;
            std::uint64_t seed =
                hot ? 1 + (i % n_hot)
                    : 1000000ull * (sweep + 1) + i;
            lines.push_back(requestLine(study, seed, die_nx, die_ny));
        }
        for (unsigned h = 0; h < n_hot; ++h)
            (void)service.handle(
                requestLine(study, 1 + h, die_nx, die_ny));

        obs::CounterSet before = service.counters();

        // Mid-run sampler: scrape the service's own stats snapshot
        // on a cadence while the clients hammer it, exactly like an
        // external Prometheus scraper would — the counters must be
        // readable (and cheap) under full load, and the resulting
        // time series goes into the committed JSON.
        std::atomic<bool> sampling{true};
        std::vector<TimelineSample> timeline;
        exec::ThreadPool sampler_pool(1);
        WallTimer timer;
        std::future<void> sampler_done =
            sampler_pool.submit([&sampling, &timeline, &timer,
                                 &service] {
                while (sampling.load(std::memory_order_relaxed)) {
                    obs::CounterSet now = service.counters();
                    TimelineSample s;
                    s.t_s = timer.seconds();
                    s.requests = now.value("serve.requests");
                    s.ok = now.value("serve.ok");
                    s.hits = now.value("serve.cache.hits");
                    s.in_flight = now.value("serve.in_flight");
                    s.cold_p95_ms =
                        now.value("serve.latency.cold.p95_ms");
                    timeline.push_back(s);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(25));
                }
            });

        exec::ThreadPool clients(n_clients);
        std::vector<std::future<ClientTally>> futures;
        futures.reserve(n_clients);
        std::uint64_t client_seed_base = cli.options.seed;
        for (unsigned c = 0; c < n_clients; ++c) {
            futures.push_back(clients.submit(
                [c, n_clients, max_retries, backoff_ms,
                 client_seed_base, &lines, &service]() -> ClientTally {
                    ClientTally tally;
                    Random rng(core::deriveCellSeed(
                        client_seed_base,
                        core::cellKey("serve-client") + c));
                    for (std::size_t i = c; i < lines.size();
                         i += n_clients) {
                        serve::ServeResult r = handleWithRetry(
                            service, lines[i], max_retries,
                            backoff_ms, rng, tally);
                        if (r.status == serve::ServeResult::Status::Ok)
                            ++tally.ok;
                    }
                    return tally;
                }));
        }
        for (auto &f : futures) {
            ClientTally tally = f.get();
            point.ok += tally.ok;
            point.retries += tally.retries;
            point.gave_up += tally.gave_up;
        }
        point.wall_s = timer.seconds();
        sampling.store(false, std::memory_order_relaxed);
        sampler_done.get();
        point.timeline = std::move(timeline);

        obs::CounterSet after = service.counters();
        double hits = after.value("serve.cache.hits") -
                      before.value("serve.cache.hits");
        point.hit_pct_measured = 100.0 * hits / n_requests;
        point.req_per_s = n_requests / point.wall_s;
        point.goodput_per_s = double(point.ok) / point.wall_s;
        point.errors = std::uint64_t(after.value("serve.errors"));
        double cold_n = after.value("serve.latency.cold.count");
        double hit_n = after.value("serve.latency.hit.count");
        if (cold_n > 0)
            point.cold_ms =
                1e3 * after.value("serve.latency.cold.total_s") /
                cold_n;
        if (hit_n > 0)
            point.hit_ms =
                1e3 * after.value("serve.latency.hit.total_s") / hit_n;
        point.cold_p99_ms = after.value("serve.latency.cold.p99_ms");
        point.hit_p99_ms = after.value("serve.latency.hit.p99_ms");
        if (point.hit_ms > 0)
            point.cold_over_hit = point.cold_ms / point.hit_ms;
        points.push_back(point);
    }

    if (!cli.quiet()) {
        printBanner(std::cout, "stack3d-serve sustained load");
        TextTable t({"hit% target", "hit% seen", "req/s", "good/s",
                     "retries", "cold ms", "hit ms", "cold/hit",
                     "samples"});
        for (const SweepPoint &p : points) {
            t.newRow()
                .cell(double(p.hit_pct_target), 0)
                .cell(p.hit_pct_measured, 1)
                .cell(p.req_per_s, 1)
                .cell(p.goodput_per_s, 1)
                .cell(double(p.retries), 0)
                .cell(p.cold_ms, 3)
                .cell(p.hit_ms, 4)
                .cell(p.cold_over_hit, 0)
                .cell(double(p.timeline.size()), 0);
        }
        t.print(std::cout);
        std::cout << "(" << n_clients << " clients, " << n_workers
                  << " workers, " << n_requests
                  << " requests per point, stack-thermal " << die_nx
                  << "x" << die_ny << ")\n";
    }

    for (const SweepPoint &p : points) {
        if (p.errors != 0)
            stack3d_fatal("sweep point had ", p.errors,
                          " error responses");
    }

    if (!json_path.empty()) {
        std::ofstream jf(json_path);
        if (!jf) {
            std::cerr << "cannot open " << json_path << "\n";
            return 1;
        }
        JsonWriter w(jf);
        w.beginObject();
        cli.writeJsonHeader(w);
        w.key("machine").beginObject();
        w.key("hardware_threads")
            .value(exec::ThreadPool::hardwareThreads());
        w.endObject();
        w.key("sweep").beginArray();
        for (const SweepPoint &p : points) {
            w.beginObject();
            w.key("hit_pct_target").value(p.hit_pct_target);
            w.key("hit_pct_measured").value(p.hit_pct_measured);
            w.key("wall_s").value(p.wall_s);
            w.key("req_per_s").value(p.req_per_s);
            w.key("cold_ms").value(p.cold_ms);
            w.key("cold_p99_ms").value(p.cold_p99_ms);
            w.key("hit_ms").value(p.hit_ms);
            w.key("hit_p99_ms").value(p.hit_p99_ms);
            w.key("cold_over_hit").value(p.cold_over_hit);
            w.key("ok").value(std::uint64_t(p.ok));
            w.key("goodput_per_s").value(p.goodput_per_s);
            w.key("retries").value(std::uint64_t(p.retries));
            w.key("gave_up").value(std::uint64_t(p.gave_up));
            w.key("timeline").beginArray();
            for (const TimelineSample &s : p.timeline) {
                w.beginObject();
                w.key("t_s").value(s.t_s);
                w.key("requests").value(s.requests);
                w.key("ok").value(s.ok);
                w.key("hits").value(s.hits);
                w.key("in_flight").value(s.in_flight);
                w.key("cold_p95_ms").value(s.cold_p95_ms);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        jf << "\n";
        if (!cli.quiet())
            std::cout << "wrote " << json_path << "\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
