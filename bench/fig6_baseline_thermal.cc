/**
 * @file
 * Figure 6: the planar Core 2 Duo baseline — (a) the power map and
 * (b) the thermal map of the 92 W part, with the FP / RS / LdSt hot
 * spots. Paper reference points: hottest spots 88.35 C, coolest
 * 59 C at 40 C ambient.
 *
 * Usage: fig6_baseline_thermal [shared flags] — see core::BenchCli
 * for --trace-out/--stats-json/--quiet/...
 */

#include <iostream>

#include "common/table.hh"
#include "core/cli.hh"
#include "core/thermal_study.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("fig6_baseline_thermal");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: fig6_baseline_thermal [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();

    floorplan::Floorplan fp = floorplan::makeCore2Duo();
    if (!cli.quiet()) {
        printBanner(std::cout, "Figure 6(a): Core 2 Duo power map");
        std::cout << "total power: " << fp.totalPower()
                  << " W (92 W skew)\n"
                  << "die: " << fp.width() * 1e3 << " x "
                  << fp.height() * 1e3
                  << " mm; L2 cache occupies ~50% of the die\n\n";

        thermal::PowerMap map =
            fp.powerMap(core::kDefaultDieNx, core::kDefaultDieNy, 0);
        thermal::renderPowerMap(std::cout, map);

        printBanner(std::cout, "Figure 6(b): thermal map");
    }
    core::ThermalSolution solution;
    core::ThermalPoint pt = core::solveFloorplanThermals(
        fp, thermal::StackedDieType::None, {}, {}, &solution);
    thermal::appendSolveCounters(cli.counters(), "thermal.baseline.",
                                 pt.solve);

    if (!cli.quiet()) {
        unsigned active =
            solution.mesh->geometry().layerIndex("active1");
        thermal::renderLayerMap(std::cout, *solution.field, active);

        TextTable t({"metric", "measured", "paper"});
        t.newRow().cell("hottest spot (C)").cell(pt.peak_c, 2)
            .cell("88.35");
        t.newRow().cell("coolest area (C)").cell(pt.min_c, 2).cell("59");
        t.print(std::cout);

        // Name the hot blocks: the three hottest by block power
        // density.
        std::cout << "\nhot blocks (power density, W/mm^2): ";
        for (const auto &b : fp.blocks()) {
            if (b.powerDensity() > 2.5e6) {
                std::cout << b.name << "=" << b.powerDensity() / 1e6
                          << " ";
            }
        }
        std::cout << "\n(paper: FP units, reservation stations, and "
                     "the load/store unit)\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
