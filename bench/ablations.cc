/**
 * @file
 * Ablation studies of the modeling decisions DESIGN.md calls out,
 * each run on a representative workload:
 *
 *  - dependency-honoring vs infinite-MLP trace issue
 *  - stream prefetcher on/off
 *  - sectored (64 B) vs non-sectored (512 B) DRAM-cache fills
 *  - pipelined vs full-occupancy DRAM-cache activation
 *  - prefetch degree and issue-window sweeps
 *  - d2d interface latency sweep (what if the bond were slower?)
 *
 * Usage: ablations [shared flags] — see core::BenchCli for
 * --trace-out/--stats-json/--quiet/...
 */

#include <iostream>
#include <streambuf>

#include "common/table.hh"
#include "core/cli.hh"
#include "mem/engine.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

trace::TraceBuffer
makeTrace(const char *name, std::uint64_t records)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = records;
    return workloads::makeRmsKernel(name)->generate(cfg);
}

mem::EngineResult
run(const trace::TraceBuffer &buf, mem::HierarchyParams hp,
    mem::EngineParams ep = {})
{
    mem::MemoryHierarchy hier(hp);
    return mem::TraceEngine(ep).run(buf, hier);
}

/** Stream buffer discarding everything (backs --quiet). */
class NullBuf : public std::streambuf
{
  protected:
    int overflow(int c) override { return c; }
};

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("ablations");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: ablations [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();
    NullBuf null_buf;
    std::ostream null_os(&null_buf);
    std::ostream &out = cli.quiet() ? null_os : std::cout;

    printBanner(out, "Ablation: dependency honoring (sSym, 32MB)");
    {
        // sSym's gathers are chained through the column-index loads;
        // at the stacked DRAM's hit latency the chains are what
        // limits CPMA once bandwidth is ample.
        trace::TraceBuffer buf = makeTrace("sSym", 2000000);
        mem::HierarchyParams hp =
            mem::makeHierarchyParams(mem::StackOption::Dram32MB);
        // At a 16-entry window (a small-MSHR machine) the chains
        // bind; the deep default window overlaps them away.
        TextTable t({"issue model", "CPMA @win16", "CPMA @win128"});
        for (bool honor : {true, false}) {
            mem::EngineParams ep16, ep128;
            ep16.window = 16;
            ep16.honor_dependencies = honor;
            ep128.honor_dependencies = honor;
            t.newRow()
                .cell(honor ? "dependencies honored" : "infinite MLP")
                .cell(run(buf, hp, ep16).cpma, 3)
                .cell(run(buf, hp, ep128).cpma, 3);
        }
        t.print(out);
        out << "(index-gather chains are what the paper's "
                     "dependency-annotated traces preserve; their "
                     "cost depends on how much MLP the core has)\n";
    }

    printBanner(out, "Ablation: stream prefetcher (conj, 32MB)");
    {
        // conj's vector sweeps carry store->load dependencies; with
        // the prefetcher off, those chains are exposed to the
        // stacked DRAM's hit latency on every line.
        trace::TraceBuffer buf = makeTrace("conj", 1000000);
        mem::HierarchyParams on =
            mem::makeHierarchyParams(mem::StackOption::Dram32MB);
        mem::HierarchyParams off = on;
        off.prefetcher.enable = false;
        TextTable t({"prefetcher", "CPMA", "avg latency",
                     "demand L1 miss %"});
        auto r_on = run(buf, on);
        auto r_off = run(buf, off);
        t.newRow()
            .cell("on")
            .cell(r_on.cpma, 3)
            .cell(r_on.avg_latency, 1)
            .cell(100.0 * double(r_on.hier.demand_l1d_misses) /
                      double(r_on.hier.accesses),
                  1);
        t.newRow()
            .cell("off")
            .cell(r_off.cpma, 3)
            .cell(r_off.avg_latency, 1)
            .cell(100.0 * double(r_off.hier.demand_l1d_misses) /
                      double(r_off.hier.accesses),
                  1);
        t.print(out);
        out << "(the deep issue window hides most of the "
                     "exposed latency at CPMA level; per-reference "
                     "latency shows the prefetcher's coverage)\n";
    }

    printBanner(out,
                "Ablation: DRAM-cache sectoring (sMVM, 32MB)");
    {
        trace::TraceBuffer buf = makeTrace("sMVM", 1000000);
        TextTable t({"sector bytes", "CPMA", "off-die GB/s"});
        for (std::uint32_t sector : {64u, 128u, 512u}) {
            mem::HierarchyParams hp =
                mem::makeHierarchyParams(mem::StackOption::Dram32MB);
            hp.dram_cache.sector_bytes = sector;
            auto r = run(buf, hp);
            t.newRow()
                .cell((long long)sector)
                .cell(r.cpma, 3)
                .cell(r.offdie_gbps, 2);
        }
        t.print(out);
        out << "(the paper's 64 B sectors avoid fetching whole "
                     "512 B pages over the off-die bus)\n";
    }

    printBanner(out,
                "Ablation: DRAM-cache activation model (sAVDF, 32MB)");
    {
        trace::TraceBuffer buf = makeTrace("sAVDF", 1000000);
        TextTable t({"activation", "CPMA"});
        for (bool pipelined : {true, false}) {
            mem::HierarchyParams hp =
                mem::makeHierarchyParams(mem::StackOption::Dram32MB);
            hp.dram_cache.timing.pipelined_activate = pipelined;
            t.newRow()
                .cell(pipelined ? "pipelined subarrays" : "full tRC")
                .cell(run(buf, hp).cpma, 3);
        }
        t.print(out);
        out << "(full-occupancy activation would make gather "
                     "benchmarks regress at 32 MB, contradicting "
                     "Figure 5)\n";
    }

    printBanner(out, "Sweep: prefetch degree (conj, 32MB)");
    {
        trace::TraceBuffer buf = makeTrace("conj", 1500000);
        TextTable t({"degree", "CPMA", "avg latency"});
        for (unsigned degree : {0u, 1u, 2u, 4u, 8u}) {
            mem::HierarchyParams hp =
                mem::makeHierarchyParams(mem::StackOption::Dram32MB);
            if (degree == 0)
                hp.prefetcher.enable = false;
            else
                hp.prefetcher.degree = degree;
            auto r = run(buf, hp);
            t.newRow()
                .cell((long long)degree)
                .cell(r.cpma, 3)
                .cell(r.avg_latency, 1);
        }
        t.print(out);
    }

    printBanner(out, "Sweep: issue window (sSym, 32MB)");
    {
        trace::TraceBuffer buf = makeTrace("sSym", 1000000);
        mem::HierarchyParams hp =
            mem::makeHierarchyParams(mem::StackOption::Dram32MB);
        TextTable t({"window", "CPMA"});
        for (unsigned window : {16u, 32u, 64u, 128u, 256u}) {
            mem::EngineParams ep;
            ep.window = window;
            t.newRow().cell((long long)window).cell(
                run(buf, hp, ep).cpma, 3);
        }
        t.print(out);
        out << "(window MLP is what covers the stacked DRAM's "
                     "higher random-access latency)\n";
    }

    printBanner(out,
                "Sweep: d2d interface latency (sSym, 32MB, 32-entry "
                "window)");
    {
        // A gather-dominated workload on a modest-MLP core exposes
        // the LLC round trip directly.
        trace::TraceBuffer buf = makeTrace("sSym", 1500000);
        TextTable t({"d2d cycles", "CPMA", "avg latency"});
        for (unsigned d2d : {1u, 4u, 16u, 64u}) {
            mem::HierarchyParams hp =
                mem::makeHierarchyParams(mem::StackOption::Dram32MB);
            hp.dram_cache.d2d_latency = d2d;
            mem::EngineParams ep;
            ep.window = 32;
            auto r = run(buf, hp, ep);
            t.newRow()
                .cell((long long)d2d)
                .cell(r.cpma, 3)
                .cell(r.avg_latency, 1);
        }
        t.print(out);
        out << "(the face-to-face bond's ~via-class latency is "
                     "what makes the stacked DRAM feel on-die; at "
                     "off-die-class latencies the benefit erodes)\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
