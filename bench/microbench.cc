/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates:
 * cache tag lookups, DRAM bank timing, the dependency-honoring trace
 * engine, the thermal CG solver, and the cpu pipeline model. These
 * track the cost of the primitives everything else is built on.
 */

#include <benchmark/benchmark.h>

#include "cpu/pipeline.hh"
#include "mem/engine.hh"
#include "obs/trace.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheParams params{units::fromMiB(4), 64, 16, 16};
    mem::Cache cache(params, "bench");
    Random rng(42);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.uniformInt(64u << 20) & ~Addr(63);

    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DramBankAccess(benchmark::State &state)
{
    mem::DramTiming timing;
    mem::DramBankEngine banks(16, 512, timing, "bench");
    Random rng(42);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.uniformInt(32u << 20) & ~Addr(63);

    Cycles now = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(banks.access(addrs[i++ & 4095], now));
        now += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramBankAccess);

void
BM_TraceEngine(benchmark::State &state)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 100000;
    auto kernel = workloads::makeRmsKernel("sMVM");
    trace::TraceBuffer buf = kernel->generate(cfg);

    for (auto _ : state) {
        mem::MemoryHierarchy hier(
            mem::makeHierarchyParams(mem::StackOption::Baseline4MB));
        mem::TraceEngine engine;
        benchmark::DoNotOptimize(engine.run(buf, hier));
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(buf.size()));
}
BENCHMARK(BM_TraceEngine)->Unit(benchmark::kMillisecond);

void
BM_TraceGeneration(benchmark::State &state)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 100000;
    auto kernel = workloads::makeRmsKernel("conj");
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernel->generate(cfg));
    }
    state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_ThermalSolve(benchmark::State &state)
{
    auto die_n = unsigned(state.range(0));
    thermal::StackGeometry geom =
        thermal::makeTwoDieStack(12e-3, 12e-3,
                                 thermal::StackedDieType::Dram);
    for (auto _ : state) {
        thermal::Mesh mesh(geom, die_n, die_n);
        thermal::PowerMap map(die_n, die_n, 12e-3, 12e-3);
        map.addUniform(90.0);
        mesh.setLayerPower(geom.layerIndex("active1"), map);
        benchmark::DoNotOptimize(thermal::solveSteadyState(mesh, 1e-6));
    }
}
BENCHMARK(BM_ThermalSolve)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void
BM_PipelineModel(benchmark::State &state)
{
    workloads::CpuWorkloadParams params;
    params.name = "bench";
    auto uops = workloads::generateCpuTrace(params, 100000, 7);
    cpu::PipelineModel model(cpu::PipelineConfig::planar());
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.run(uops));
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(uops.size()));
}
BENCHMARK(BM_PipelineModel)->Unit(benchmark::kMillisecond);

void
BM_SpanNoCollector(benchmark::State &state)
{
    // The instrumentation cost every hot path pays when tracing is
    // off: one relaxed load + branch per span.
    for (auto _ : state) {
        obs::Span span("bench.span", "bench");
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanNoCollector);

void
BM_SpanRecording(benchmark::State &state)
{
    obs::TraceCollector collector;
    collector.install();
    for (auto _ : state) {
        obs::Span span("bench.span", "bench");
        benchmark::DoNotOptimize(&span);
    }
    collector.uninstall();
    state.SetItemsProcessed(state.iterations());
}
// Fixed iteration count: every recorded span stays buffered in the
// collector, so an open-ended run would grow without bound.
BENCHMARK(BM_SpanRecording)->Iterations(1 << 18);

} // anonymous namespace

BENCHMARK_MAIN();
