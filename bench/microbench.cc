/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates:
 * cache tag lookups, DRAM bank timing, the dependency-honoring trace
 * engine, the thermal CG solver, and the cpu pipeline model. These
 * track the cost of the primitives everything else is built on.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "cpu/pipeline.hh"
#include "exec/pool.hh"
#include "mem/engine.hh"
#include "mem/tagsearch.hh"
#include "trace/columns.hh"
#include "obs/histogram.hh"
#include "obs/trace.hh"
#include "serve/service.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheParams params{units::fromMiB(4), 64, 16, 16};
    mem::Cache cache(params, "bench");
    Random rng(42);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.uniformInt(64u << 20) & ~Addr(63);

    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

// Scalar-vs-SWAR tag-search comparison on the raw probe primitive:
// a full 16-way set of valid tags probed for each way in turn, the
// shape the L2 lookup takes on the Fig 5 sweep.
template <int (*Find)(const mem::TagSig *, const std::uint64_t *,
                      std::uint32_t, unsigned, std::uint64_t)>
void
tagSearchBench(benchmark::State &state)
{
    constexpr unsigned kAssoc = 16;
    std::uint64_t tags[kAssoc];
    mem::TagSig sigs[mem::sigStride(kAssoc)] = {};
    Random rng(7);
    for (unsigned w = 0; w < kAssoc; ++w) {
        tags[w] = rng.uniformInt(1u << 30) + 1;
        sigs[w] = mem::sigOf(tags[w]);
    }
    const std::uint32_t valid = (1u << kAssoc) - 1;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Find(sigs, tags, valid, kAssoc, tags[i++ & (kAssoc - 1)]));
    }
    state.SetItemsProcessed(state.iterations());
}

int
findWayScalarAdapter(const mem::TagSig *sigs, const std::uint64_t *t,
                     std::uint32_t v, unsigned a, std::uint64_t tag)
{
    (void)sigs;
    return mem::findWayScalar(t, v, a, tag);
}

void
BM_TagSearchScalar(benchmark::State &state)
{
    tagSearchBench<findWayScalarAdapter>(state);
}
BENCHMARK(BM_TagSearchScalar);

void
BM_TagSearchSwar(benchmark::State &state)
{
    tagSearchBench<mem::findWaySwar>(state);
}
BENCHMARK(BM_TagSearchSwar);

void
BM_TagSearchSimd(benchmark::State &state)
{
    tagSearchBench<mem::findWaySimd>(state);
}
BENCHMARK(BM_TagSearchSimd);

void
BM_DramBankAccess(benchmark::State &state)
{
    mem::DramTiming timing;
    mem::DramBankEngine banks(16, 512, timing, "bench");
    Random rng(42);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.uniformInt(32u << 20) & ~Addr(63);

    Cycles now = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(banks.access(addrs[i++ & 4095], now));
        now += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramBankAccess);

void
BM_TraceEngine(benchmark::State &state)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 100000;
    auto kernel = workloads::makeRmsKernel("sMVM");
    trace::TraceBuffer buf = kernel->generate(cfg);

    for (auto _ : state) {
        mem::MemoryHierarchy hier(
            mem::makeHierarchyParams(mem::StackOption::Baseline4MB));
        mem::TraceEngine engine;
        benchmark::DoNotOptimize(engine.run(buf, hier));
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(buf.size()));
}
BENCHMARK(BM_TraceEngine)->Unit(benchmark::kMillisecond);

void
BM_TraceEngineReference(benchmark::State &state)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 100000;
    auto kernel = workloads::makeRmsKernel("sMVM");
    trace::TraceBuffer buf = kernel->generate(cfg);

    for (auto _ : state) {
        mem::MemoryHierarchy hier(
            mem::makeHierarchyParams(mem::StackOption::Baseline4MB));
        mem::TraceEngine engine;
        benchmark::DoNotOptimize(engine.runReference(buf, hier));
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(buf.size()));
}
BENCHMARK(BM_TraceEngineReference)->Unit(benchmark::kMillisecond);

void
BM_TraceDecode(benchmark::State &state)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 100000;
    auto kernel = workloads::makeRmsKernel("sMVM");
    trace::TraceBuffer buf = kernel->generate(cfg);

    trace::TraceColumns cols;
    for (auto _ : state) {
        cols.assign(buf);
        benchmark::DoNotOptimize(cols.addr());
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(buf.size()));
}
BENCHMARK(BM_TraceDecode);

void
BM_TraceGeneration(benchmark::State &state)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 100000;
    auto kernel = workloads::makeRmsKernel("conj");
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernel->generate(cfg));
    }
    state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

namespace {

/** The fixed two-die DRAM stack every thermal benchmark solves. */
thermal::Mesh
makeBenchMesh(const thermal::StackGeometry &geom, unsigned die_n)
{
    thermal::Mesh mesh(geom, die_n, die_n);
    thermal::PowerMap map(die_n, die_n, 12e-3, 12e-3);
    map.addUniform(90.0);
    mesh.setLayerPower(geom.layerIndex("active1"), map);
    return mesh;
}

void
thermalSolveBench(benchmark::State &state, thermal::Precond precond,
                  bool use_pool)
{
    auto die_n = unsigned(state.range(0));
    thermal::StackGeometry geom =
        thermal::makeTwoDieStack(12e-3, 12e-3,
                                 thermal::StackedDieType::Dram);
    // Mirror the studies' idiom: a worker pool only when the machine
    // can actually fan out (a 1-core pool is pure handoff overhead).
    std::unique_ptr<exec::ThreadPool> pool;
    unsigned hw = exec::ThreadPool::hardwareThreads();
    if (use_pool && hw > 1)
        pool = std::make_unique<exec::ThreadPool>(hw);
    for (auto _ : state) {
        thermal::Mesh mesh = makeBenchMesh(geom, die_n);
        thermal::SolverOptions opt;
        opt.precond = precond;
        opt.tolerance = 1e-6;
        opt.pool = pool.get();
        benchmark::DoNotOptimize(thermal::solveSteadyState(mesh, opt));
    }
}

} // anonymous namespace

/** The production fast path: multigrid + slab-parallel kernels. */
void
BM_ThermalSolve(benchmark::State &state)
{
    thermalSolveBench(state, thermal::Precond::Multigrid, true);
}
BENCHMARK(BM_ThermalSolve)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/** Multigrid alone (serial kernels), for the parallel-gain split. */
void
BM_ThermalSolveMG(benchmark::State &state)
{
    thermalSolveBench(state, thermal::Precond::Multigrid, false);
}
BENCHMARK(BM_ThermalSolveMG)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/** The original serial Jacobi-CG solver, kept as the baseline. */
void
BM_ThermalSolveJacobi(benchmark::State &state)
{
    thermalSolveBench(state, thermal::Precond::Jacobi, false);
}
BENCHMARK(BM_ThermalSolveJacobi)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_PipelineModel(benchmark::State &state)
{
    workloads::CpuWorkloadParams params;
    params.name = "bench";
    auto uops = workloads::generateCpuTrace(params, 100000, 7);
    cpu::PipelineModel model(cpu::PipelineConfig::planar());
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.run(uops));
    }
    state.SetItemsProcessed(state.iterations() *
                            std::int64_t(uops.size()));
}
BENCHMARK(BM_PipelineModel)->Unit(benchmark::kMillisecond);

void
BM_SpanNoCollector(benchmark::State &state)
{
    // The instrumentation cost every hot path pays when tracing is
    // off: one relaxed load + branch per span.
    for (auto _ : state) {
        obs::Span span("bench.span", "bench");
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanNoCollector);

void
BM_SpanRecording(benchmark::State &state)
{
    obs::TraceCollector collector;
    collector.install();
    for (auto _ : state) {
        obs::Span span("bench.span", "bench");
        benchmark::DoNotOptimize(&span);
    }
    collector.uninstall();
    state.SetItemsProcessed(state.iterations());
}
// Fixed iteration count: every recorded span stays buffered in the
// collector, so an open-ended run would grow without bound.
BENCHMARK(BM_SpanRecording)->Iterations(1 << 18);

void
BM_HistogramRecord(benchmark::State &state)
{
    // The per-sample cost the serve request path pays: one bucket
    // index computation plus a relaxed fetch_add and a CAS.
    obs::Histogram h;
    double value = 1e-4;
    for (auto _ : state) {
        h.record(value);
        value = value < 1.0 ? value * 1.0001 : 1e-4;
        benchmark::DoNotOptimize(&h);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_StatsSnapshot(benchmark::State &state)
{
    // The cost of one {"op":"stats"} / scrape pull with populated
    // latency instruments. The old LatencyRing copy-sorted up to
    // 4096 samples under the service mutex on every counters() call;
    // the histogram walk must stay well under 50 µs.
    serve::ServiceOptions options;
    options.workers = 0;        // inline; no pool threads in a bench
    options.watchdog_factor = 0;
    options.cache_entries = 8;
    serve::StudyService service(options);
    // One tiny cold run, then thousands of hits: fills the hit
    // histogram with real samples the way a live daemon would.
    const std::string line =
        "{\"schema_version\":2,\"study\":\"stack-thermal\","
        "\"spec\":{\"die_nx\":6,\"die_ny\":6}}";
    for (unsigned i = 0; i < 4096; ++i)
        (void)service.handle(line);

    for (auto _ : state) {
        obs::CounterSet c = service.counters();
        benchmark::DoNotOptimize(&c);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatsSnapshot);

} // anonymous namespace

BENCHMARK_MAIN();
