/**
 * @file
 * Figure 11: peak temperature of the Logic+Logic fold — the 2D
 * baseline (paper: 98.6 C at 147 W), the repaired 3D floorplan
 * (112.5 C at 125 W, ~1.3x peak density), and the worst-case naive
 * fold (124.75 C at 147 W, ~2x density). Also exercises the
 * automatic density-repair planner as an ablation.
 *
 * Usage: fig11_logic_thermals [shared flags] — see core::BenchCli
 * for --trace-out/--stats-json/--quiet/...
 */

#include <iostream>

#include "common/table.hh"
#include "core/cli.hh"
#include "core/logic_study.hh"
#include "floorplan/planner.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("fig11_logic_thermals");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: fig11_logic_thermals [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();

    if (!cli.quiet())
        printBanner(std::cout, "Figure 11: Logic+Logic thermals");

    thermal::PackageModel pkg = thermal::makeP4Package();
    floorplan::Floorplan planar = floorplan::makePentium4Planar();
    double planar_density = planar.peakBlockDensity(0);

    auto planar_pt = core::solveFloorplanThermals(
        planar, thermal::StackedDieType::None, pkg);

    power::LogicPowerBreakdown breakdown;
    floorplan::Floorplan stacked = floorplan::makePentium43D(
        breakdown.stackedRelativePower());
    auto stacked_pt = core::solveFloorplanThermals(
        stacked, thermal::StackedDieType::LogicSram, pkg);

    floorplan::Floorplan worst = floorplan::makePentium43DWorstCase();
    auto worst_pt = core::solveFloorplanThermals(
        worst, thermal::StackedDieType::LogicSram, pkg);

    thermal::appendSolveCounters(cli.counters(), "thermal.planar.",
                                 planar_pt.solve);
    thermal::appendSolveCounters(cli.counters(), "thermal.stacked.",
                                 stacked_pt.solve);
    thermal::appendSolveCounters(cli.counters(), "thermal.worst.",
                                 worst_pt.solve);

    if (!cli.quiet()) {
        TextTable t({"configuration", "power W", "density x", "peak C",
                     "paper C"});
        t.newRow()
            .cell("2D Baseline")
            .cell(planar_pt.total_power_w, 1)
            .cell(1.0, 2)
            .cell(planar_pt.peak_c, 2)
            .cell("98.6");
        t.newRow()
            .cell("3D")
            .cell(stacked_pt.total_power_w, 1)
            .cell(stacked.peakStackedDensity() / planar_density, 2)
            .cell(stacked_pt.peak_c, 2)
            .cell("112.5");
        t.newRow()
            .cell("3D Worstcase")
            .cell(worst_pt.total_power_w, 1)
            .cell(worst.peakStackedDensity() / planar_density, 2)
            .cell(worst_pt.peak_c, 2)
            .cell("124.75");
        t.print(std::cout);

        printBanner(std::cout,
                    "Ablation: iterative density repair on/off");
    }
    {
        obs::Span span("fig11.planner_ablation", "bench");
        floorplan::PlannerParams pp;
        pp.seed = 3;
        auto repaired = floorplan::planStacking(planar, pp);

        floorplan::PlannerParams naive = pp;
        naive.beta_density = 0.0;   // wirelength only, no repair
        auto unrepaired = floorplan::planStacking(planar, naive);

        cli.counters().set("planner.repaired_density_ratio",
                           repaired.peak_density_ratio);
        cli.counters().set("planner.unrepaired_density_ratio",
                           unrepaired.peak_density_ratio);

        if (!cli.quiet()) {
            TextTable a({"planner", "wirelength mm", "peak density x"});
            a.newRow()
                .cell("planar reference")
                .cell(repaired.planar_wirelength * 1e3, 1)
                .cell(1.0, 2);
            a.newRow()
                .cell("3D, density repair ON")
                .cell(repaired.wirelength * 1e3, 1)
                .cell(repaired.peak_density_ratio, 2);
            a.newRow()
                .cell("3D, density repair OFF")
                .cell(unrepaired.wirelength * 1e3, 1)
                .cell(unrepaired.peak_density_ratio, 2);
            a.print(std::cout);
            std::cout << "(the paper's iterative place/observe/repair "
                         "process holds the stacked peak near 1.3x; "
                         "without it naive stacking approaches 2x)\n";
        }
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
