/**
 * @file
 * Table 1: the RMS workload population. Generates a short trace from
 * every kernel and prints its descriptor, footprint, record mix, and
 * dependency statistics — validating the trace substrate the
 * Memory+Logic study stands on.
 *
 * Usage: table1_workloads [shared flags] — see core::BenchCli for
 * --seed/--trace-out/--stats-json/--quiet/...
 */

#include <iostream>

#include "common/table.hh"
#include "core/cli.hh"
#include "workloads/registry.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("table1_workloads");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: table1_workloads [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();

    if (!cli.quiet()) {
        printBanner(std::cout,
                    "Table 1: RMS workloads used in Section 3");
    }

    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 150000;
    cfg.seed = cli.options.seed;
    cli.addConfig("records_per_thread", double(cfg.records_per_thread));

    TextTable table({"name", "footprint MB", "records", "loads%",
                     "stores%", "with-dep%", "max chain",
                     "description"});

    for (const std::string &name : workloads::rmsKernelNames()) {
        obs::Span span("table1/" + name, "bench");
        auto kernel = workloads::makeRmsKernel(name);
        trace::TraceBuffer buf = kernel->generate(cfg);
        trace::TraceStats st = buf.computeStats();
        cli.counters().set("workload." + name + ".records",
                           double(st.num_records));
        cli.counters().set("workload." + name + ".loads",
                           double(st.num_loads));
        cli.counters().set("workload." + name + ".stores",
                           double(st.num_stores));
        table.newRow()
            .cell(name)
            .cell(kernel->nominalFootprintBytes(cfg) / 1048576.0, 1)
            .cell((long long)st.num_records)
            .cell(100.0 * double(st.num_loads) / double(st.num_records),
                  1)
            .cell(100.0 * double(st.num_stores) /
                      double(st.num_records),
                  1)
            .cell(100.0 * double(st.num_with_dep) /
                      double(st.num_records),
                  1)
            .cell((long long)st.max_dep_chain)
            .cell(kernel->description());
    }
    if (!cli.quiet()) {
        table.print(std::cout);

        std::cout
            << "\nfootprints straddle the 4/12/32/64 MB capacity\n"
               "points of Figure 5: conj, dSym, sSym, sAVDF, sAVIF,\n"
               "svd fit the 4 MB baseline; gauss fits from 12 MB;\n"
               "pcg, sMVM, sTrans, svm fit from 32 MB; sUS needs\n"
               "64 MB.\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
