/**
 * @file
 * Table 1: the RMS workload population. Generates a short trace from
 * every kernel and prints its descriptor, footprint, record mix, and
 * dependency statistics — validating the trace substrate the
 * Memory+Logic study stands on.
 */

#include <iostream>

#include "common/table.hh"
#include "workloads/registry.hh"

using namespace stack3d;

int
main()
{
    printBanner(std::cout, "Table 1: RMS workloads used in Section 3");

    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 150000;

    TextTable table({"name", "footprint MB", "records", "loads%",
                     "stores%", "with-dep%", "max chain",
                     "description"});

    for (const std::string &name : workloads::rmsKernelNames()) {
        auto kernel = workloads::makeRmsKernel(name);
        trace::TraceBuffer buf = kernel->generate(cfg);
        trace::TraceStats st = buf.computeStats();
        table.newRow()
            .cell(name)
            .cell(kernel->nominalFootprintBytes(cfg) / 1048576.0, 1)
            .cell((long long)st.num_records)
            .cell(100.0 * double(st.num_loads) / double(st.num_records),
                  1)
            .cell(100.0 * double(st.num_stores) /
                      double(st.num_records),
                  1)
            .cell(100.0 * double(st.num_with_dep) /
                      double(st.num_records),
                  1)
            .cell((long long)st.max_dep_chain)
            .cell(kernel->description());
    }
    table.print(std::cout);

    std::cout << "\nfootprints straddle the 4/12/32/64 MB capacity\n"
                 "points of Figure 5: conj, dSym, sSym, sAVDF, sAVIF,\n"
                 "svd fit the 4 MB baseline; gauss fits from 12 MB;\n"
                 "pcg, sMVM, sTrans, svm fit from 32 MB; sUS needs\n"
                 "64 MB.\n";
    return 0;
}
