/**
 * @file
 * Figure 3: peak-temperature sensitivity of a stacked microprocessor
 * to the Cu metal-layer and bonding-layer thermal conductivity,
 * swept from 60 down to 3 W/mK. Also echoes Table 2's constants.
 *
 * Paper's observations to reproduce: both curves rise as k falls;
 * the Cu metal layer is the more sensitive of the two (and sits at
 * the unfavourable actual value of 12 W/mK, vs the bond layer's 60).
 *
 * Usage: fig3_thermal_sensitivity [shared flags] — see
 * core::BenchCli for --threads/--trace-out/--stats-json/--quiet/...
 */

#include <iostream>

#include "common/table.hh"
#include "core/cli.hh"
#include "core/thermal_study.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("fig3_thermal_sensitivity");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: fig3_thermal_sensitivity [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();

    if (!cli.quiet()) {
        printBanner(std::cout,
                    "Table 2: thermal constants (Figure 1 stack)");
        using namespace thermal::table2;
        TextTable t({"name", "value", "unit"});
        t.newRow().cell("Si #1 thickness").cell(si1_thickness * 1e6, 0)
            .cell("um");
        t.newRow().cell("Si #2 thickness").cell(si2_thickness * 1e6, 0)
            .cell("um");
        t.newRow().cell("Si ther cond").cell(si_conductivity, 0)
            .cell("W/mK");
        t.newRow().cell("Cu metal thickness")
            .cell(cu_metal_thickness * 1e6, 0).cell("um");
        t.newRow().cell("Cu metal ther cond")
            .cell(cu_metal_conductivity, 0).cell("W/mK");
        t.newRow().cell("Al metal thickness")
            .cell(al_metal_thickness * 1e6, 0).cell("um");
        t.newRow().cell("Al metal ther cond")
            .cell(al_metal_conductivity, 0).cell("W/mK");
        t.newRow().cell("Bond thickness").cell(bond_thickness * 1e6, 0)
            .cell("um");
        t.newRow().cell("Bond ther cond").cell(bond_conductivity, 0)
            .cell("W/mK");
        t.newRow().cell("Heat sink ther cond")
            .cell(heat_sink_conductivity, 0).cell("W/mK");
        t.newRow().cell("Ambient temperature").cell(ambient, 0)
            .cell("C");
        t.print(std::cout);

        printBanner(std::cout,
                    "Figure 3: peak temperature vs layer conductivity");
    }

    core::SensitivitySpec spec;
    spec.conductivities = {60, 48, 36, 24, 12, 6, 3};
    cli.addConfig("sweep_points", double(spec.conductivities.size()));
    cli.options.progress = cli.progress();
    auto report = core::runConductivitySensitivity(cli.options, spec);
    const std::vector<core::SensitivityPoint> &points = report.payload;
    cli.recordMeta(report.meta);

    if (!cli.quiet()) {
        TextTable t(
            {"k (W/mK)", "Cu metal swept (C)", "bond swept (C)"});
        for (const auto &p : points) {
            t.newRow()
                .cell(p.conductivity, 0)
                .cell(p.peak_cu_swept, 2)
                .cell(p.peak_bond_swept, 2);
        }
        t.print(std::cout);
        std::cout << "\nCSV:\n";
        t.printCsv(std::cout);

        double cu_span =
            points.back().peak_cu_swept - points.front().peak_cu_swept;
        double bond_span = points.back().peak_bond_swept -
                           points.front().peak_bond_swept;
        std::cout << "\nswing over the sweep: Cu metal " << cu_span
                  << " C, bond layer " << bond_span
                  << " C  (paper: metal layer dominates; ~2-5 C swings "
                     "on an ~85 C part)\n";
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
