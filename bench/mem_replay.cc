/**
 * @file
 * Before/after throughput benchmark for the trace-replay data path,
 * the source of the committed BENCH_mem.json.
 *
 * Runs the Figure 5 sweep (12 RMS kernels x 4 stack options) twice
 * in one process:
 *
 *  - "baseline": TraceEngine::runReference() with the scalar tag
 *    probe — the pre-optimization replay path, kept as the
 *    correctness oracle;
 *  - "after": TraceEngine::run() with the process-default tag probe
 *    (SSE2 signature search where available).
 *
 * Both legs must produce bit-identical model results (cycles, CPMA);
 * the bench exits non-zero on any divergence, so it doubles as an
 * end-to-end equivalence check. Throughput is reported as replayed
 * records per second (best of --reps runs per cell, summed over the
 * sweep).
 *
 * Usage:
 *   mem_replay [--records N] [--reps N] [--json FILE]
 *
 * CI runs a tiny sweep (--records 2000 --reps 1) for JSON validity;
 * the committed BENCH_mem.json comes from the full default sweep.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "mem/engine.hh"
#include "mem/tagsearch.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

constexpr mem::StackOption kOptions[] = {
    mem::StackOption::Baseline4MB,
    mem::StackOption::Sram12MB,
    mem::StackOption::Dram32MB,
    mem::StackOption::Dram64MB,
};

struct LegTotals
{
    double seconds[4] = {0, 0, 0, 0}; ///< per stack option
    std::uint64_t records[4] = {0, 0, 0, 0};

    double
    totalSeconds() const
    {
        return seconds[0] + seconds[1] + seconds[2] + seconds[3];
    }

    std::uint64_t
    totalRecords() const
    {
        return records[0] + records[1] + records[2] + records[3];
    }
};

struct CellCheck
{
    Cycles cycles = 0;
    double cpma = 0.0;
    double avg_latency = 0.0;
};

const char *
tagModeName(mem::TagSearchMode mode)
{
    switch (mode) {
      case mem::TagSearchMode::Scalar:
        return "scalar";
      case mem::TagSearchMode::Swar:
        return "swar";
      case mem::TagSearchMode::Simd:
        return "simd";
    }
    return "?";
}

double
refsPerSec(std::uint64_t records, double seconds)
{
    return seconds > 0.0 ? double(records) / seconds : 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::uint64_t records = 50000;
    int reps = 3;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--records") && i + 1 < argc) {
            records = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: mem_replay [--records N] [--reps N]"
                         " [--json FILE]\n");
            return 2;
        }
    }
    if (records == 0 || reps < 1) {
        std::fprintf(stderr, "mem_replay: bad --records/--reps\n");
        return 2;
    }

    const mem::TagSearchMode fast_mode = mem::tagSearchMode();
    std::vector<std::string> kernels = workloads::rmsKernelNames();

    LegTotals base, after;
    bool mismatch = false;

    for (const std::string &name : kernels) {
        auto kernel = workloads::makeRmsKernel(name);
        workloads::WorkloadConfig cfg;
        cfg.records_per_thread = records;
        trace::TraceBuffer buf = kernel->generate(cfg);

        for (std::size_t o = 0; o < 4; ++o) {
            mem::HierarchyParams hp =
                mem::makeHierarchyParams(kOptions[o]);
            mem::TraceEngine eng;

            CellCheck ref_check, fast_check;
            double ref_best = 1e300, fast_best = 1e300;
            for (int r = 0; r < reps; ++r) {
                mem::setTagSearchMode(mem::TagSearchMode::Scalar);
                mem::MemoryHierarchy h1(hp);
                auto t0 = std::chrono::steady_clock::now();
                mem::EngineResult er = eng.runReference(buf, h1);
                auto t1 = std::chrono::steady_clock::now();
                ref_best = std::min(
                    ref_best,
                    std::chrono::duration<double>(t1 - t0).count());
                ref_check = {er.total_cycles, er.cpma,
                             er.avg_latency};

                mem::setTagSearchMode(fast_mode);
                mem::MemoryHierarchy h2(hp);
                auto t2 = std::chrono::steady_clock::now();
                mem::EngineResult ef = eng.run(buf, h2);
                auto t3 = std::chrono::steady_clock::now();
                fast_best = std::min(
                    fast_best,
                    std::chrono::duration<double>(t3 - t2).count());
                fast_check = {ef.total_cycles, ef.cpma,
                              ef.avg_latency};
            }
            mem::clearTagSearchMode();

            if (ref_check.cycles != fast_check.cycles ||
                ref_check.cpma != fast_check.cpma ||
                ref_check.avg_latency != fast_check.avg_latency) {
                std::fprintf(
                    stderr,
                    "mem_replay: MISMATCH %s/%s: cycles %llu vs "
                    "%llu cpma %.9f vs %.9f\n",
                    name.c_str(), mem::stackOptionName(kOptions[o]),
                    (unsigned long long)ref_check.cycles,
                    (unsigned long long)fast_check.cycles,
                    ref_check.cpma, fast_check.cpma);
                mismatch = true;
            }

            base.seconds[o] += ref_best;
            base.records[o] += buf.size();
            after.seconds[o] += fast_best;
            after.records[o] += buf.size();

            std::fprintf(stderr, "%-8s %-12s ref %7.2f ms  fast %7.2f ms\n",
                         name.c_str(),
                         mem::stackOptionName(kOptions[o]),
                         ref_best * 1e3, fast_best * 1e3);
        }
    }

    double base_total = refsPerSec(base.totalRecords(),
                                   base.totalSeconds());
    double after_total = refsPerSec(after.totalRecords(),
                                    after.totalSeconds());
    double speedup = base_total > 0.0 ? after_total / base_total : 0.0;

    char date[16];
    {
        // Date stamp for the committed JSON's provenance only; no
        // model result depends on it.
        std::time_t t = std::time(nullptr);   // lint3d: det-wallclock-ok
        std::tm tm{};
        localtime_r(&t, &tm);
        std::strftime(date, sizeof(date), "%Y-%m-%d", &tm);
    }

    std::ostringstream os;
    JsonWriter w(os, /*compact=*/false);
    w.beginObject();
    w.key("comment").beginArray();
    w.value("Committed before/after baseline for the trace-replay");
    w.value("data path. 'baseline' is TraceEngine::runReference with");
    w.value("the scalar tag probe (the pre-optimization engine, kept");
    w.value("as the correctness oracle); 'after' is TraceEngine::run");
    w.value("(event-driven issue, calendar-queue completions, SoA");
    w.value("decode) with the SIMD signature tag search. Both legs");
    w.value("replay the Figure 5 sweep (12 RMS kernels x 4 stack");
    w.value("options) and must agree bit-for-bit on every model");
    w.value("output. refs_per_s = trace records replayed per second,");
    w.value("best-of-reps per cell, summed over the sweep.");
    w.value("Refresh with: bench/mem_replay --json BENCH_mem.json");
    w.endArray();
    w.key("machine").beginObject();
    w.key("hardware_threads")
        .value(std::uint64_t(std::thread::hardware_concurrency()));
    w.key("records_per_thread").value(records);
    w.key("reps").value(reps);
    w.key("tag_search").value(tagModeName(fast_mode));
#ifdef STACK3D_MARCH_STR
    w.key("march").value(STACK3D_MARCH_STR);
#else
    w.key("march").value("default");
#endif
    w.key("date").value(date);
    w.endObject();
    w.key("baseline_refs_per_s").beginObject();
    for (std::size_t o = 0; o < 4; ++o) {
        w.key(mem::stackOptionName(kOptions[o]))
            .value(refsPerSec(base.records[o], base.seconds[o]));
    }
    w.key("total").value(base_total);
    w.endObject();
    w.key("after_refs_per_s").beginObject();
    for (std::size_t o = 0; o < 4; ++o) {
        w.key(mem::stackOptionName(kOptions[o]))
            .value(refsPerSec(after.records[o], after.seconds[o]));
    }
    w.key("total").value(after_total);
    w.endObject();
    w.key("speedup").value(speedup);
    w.key("bit_identical").value(!mismatch);
    w.endObject();
    os << "\n";

    if (!json_path.empty()) {
        std::ofstream f(json_path);
        f << os.str();
        if (!f) {
            std::fprintf(stderr, "mem_replay: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
    } else {
        std::cout << os.str();
    }
    std::fprintf(stderr,
                 "mem_replay: baseline %.2fM refs/s, after %.2fM "
                 "refs/s, speedup %.2fx%s\n",
                 base_total / 1e6, after_total / 1e6, speedup,
                 mismatch ? " [MISMATCH]" : "");
    return mismatch ? 1 : 0;
}
