/**
 * @file
 * stack3d-serve: a study service daemon. Accepts newline-delimited
 * JSON study requests (see src/serve/request.hh for the schema) over
 * a TCP socket or a stdin pipe, runs them on a worker pool, and
 * memoizes results by request digest — a repeated request returns
 * the byte-identical cached report without recomputing.
 *
 * Usage: stack3d_serve [--stdin | --port N] [--workers N]
 *                      [--queue N] [--cache-entries N]
 *                      [--cache-dir PATH] [--conn-threads N]
 *                      [--max-line BYTES] [--drain-ms N]
 *                      [--metrics-port N] [--flight N] [--log-json]
 *                      [shared flags]
 *
 *   --stdin            serve requests from stdin, responses to stdout
 *                      (default when --port is not given)
 *   --port N           listen on 127.0.0.1:N (0 = kernel-assigned)
 *   --workers N        concurrent study executions (default 2)
 *   --queue N          extra requests admitted beyond the workers
 *                      before rejecting with "rejected" (default 16)
 *   --cache-entries N  in-memory result-cache entries; 0 disables
 *                      caching (default 64)
 *   --cache-dir PATH   also persist results to PATH/<digest>.json
 *   --conn-threads N   TCP connection-handler threads (default 4)
 *   --max-line BYTES   request-line length cap (default 1 MiB)
 *   --drain-ms N       shutdown grace for in-flight work before it
 *                      is cancelled (default 5000)
 *   --metrics-port N   serve Prometheus text on 127.0.0.1:N
 *                      (GET /metrics; GET /healthz for health JSON;
 *                      0 = kernel-assigned, printed at startup)
 *   --flight N         flight-recorder entries (default 128)
 *   --log-json         structured stderr logs as JSON-per-line
 *
 * The shared --threads flag caps the per-study thread count a request
 * may ask for. --stats-json captures the serve.* counters (requests,
 * cache hits/misses, latency sums) at shutdown.
 *
 * Protocol control lines: {"op": "counters"} returns the counter
 * snapshot; {"op": "stats"} adds latency histogram snapshots;
 * {"op": "health"} is a cheap readiness probe; {"op": "flight"}
 * dumps the last-N request ring; {"op": "trace", "action":
 * "start"|"stop"} toggles runtime tracing; {"op": "stop"} shuts the
 * server down.
 *
 * SIGTERM/SIGINT take the same path as a stop op: stop admitting,
 * drain in-flight work (up to --drain-ms, then cancel), flush the
 * counters, exit 0. Handlers are installed without SA_RESTART so a
 * transport blocked in read()/accept() wakes via EINTR; the TCP
 * acceptor additionally polls a self-pipe the handler writes to.
 * SIGUSR1 (installed WITH SA_RESTART, so blocked reads survive it)
 * asks the service to dump its flight recorder to the log at the
 * next watchdog tick or request arrival.
 *
 * $STACK3D_FAULTS / $STACK3D_FAULT_SEED arm deterministic fault
 * injection (common/fault.hh) for chaos testing.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "common/fault.hh"
#include "common/logging.hh"
#include "core/cli.hh"
#include "obs/expo.hh"
#include "serve/metrics_http.hh"
#include "serve/server.hh"
#include "serve/service.hh"

using namespace stack3d;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: stack3d_serve [--stdin | --port N] [--workers N] "
          "[--queue N]\n"
          "                     [--cache-entries N] [--cache-dir "
          "PATH] [--conn-threads N]\n"
          "                     [--max-line BYTES] [--drain-ms N]\n"
          "                     [--metrics-port N] [--flight N] "
          "[--log-json]\n";
    core::BenchCli::printUsage(os);
}

extern "C" void
onShutdownSignal(int)
{
    // Only async-signal-safe work here: one atomic store plus a
    // write() to the transports' self-pipe.
    serve::requestShutdown();
}

extern "C" void
onFlightDumpSignal(int)
{
    // One relaxed atomic store; the dump itself happens on the
    // watchdog thread or the next request.
    serve::StudyService::requestFlightDump();
}

void
installSignalHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onShutdownSignal;
    sigemptyset(&action.sa_mask);
    // Deliberately no SA_RESTART: a transport blocked in read() or
    // accept() must come back with EINTR and notice the shutdown.
    action.sa_flags = 0;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    // SIGUSR1 is informational, not a shutdown: WITH SA_RESTART so a
    // pipe transport blocked in a stdin read() survives the signal
    // instead of seeing a spurious EOF via EINTR.
    struct sigaction dump;
    std::memset(&dump, 0, sizeof(dump));
    dump.sa_handler = onFlightDumpSignal;
    sigemptyset(&dump.sa_mask);
    dump.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &dump, nullptr);
}

/** Like core::parseThreadArg but without its 4096 thread-count cap —
 *  ports and queue/cache sizes legitimately exceed it. */
unsigned
parseCountArg(const char *text, const char *flag)
{
    char *end = nullptr;
    unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || value > 0xfffffffful)
        stack3d_fatal(flag, " expects a non-negative number, got '",
                      text, "'");
    return unsigned(value);
}

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("stack3d_serve");
    serve::ServiceOptions service_options;
    bool use_stdin = false;
    bool have_port = false;
    bool have_metrics_port = false;
    bool log_json = false;
    unsigned port = 0;
    unsigned metrics_port = 0;
    unsigned conn_threads = 4;
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--stdin") == 0)
            use_stdin = true;
        else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = parseCountArg(argv[++i], "--port");
            have_port = true;
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc)
            service_options.workers =
                parseCountArg(argv[++i], "--workers");
        else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc)
            service_options.queue_limit =
                parseCountArg(argv[++i], "--queue");
        else if (std::strcmp(argv[i], "--cache-entries") == 0 &&
                 i + 1 < argc)
            service_options.cache_entries =
                parseCountArg(argv[++i], "--cache-entries");
        else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                 i + 1 < argc)
            service_options.cache_dir = argv[++i];
        else if (std::strcmp(argv[i], "--conn-threads") == 0 &&
                 i + 1 < argc)
            conn_threads = parseCountArg(argv[++i], "--conn-threads");
        else if (std::strcmp(argv[i], "--max-line") == 0 &&
                 i + 1 < argc)
            service_options.max_line_bytes =
                parseCountArg(argv[++i], "--max-line");
        else if (std::strcmp(argv[i], "--drain-ms") == 0 &&
                 i + 1 < argc)
            service_options.drain_timeout_ms =
                parseCountArg(argv[++i], "--drain-ms");
        else if (std::strcmp(argv[i], "--metrics-port") == 0 &&
                 i + 1 < argc) {
            metrics_port = parseCountArg(argv[++i], "--metrics-port");
            have_metrics_port = true;
        } else if (std::strcmp(argv[i], "--flight") == 0 &&
                   i + 1 < argc)
            service_options.flight_entries =
                parseCountArg(argv[++i], "--flight");
        else if (std::strcmp(argv[i], "--log-json") == 0)
            log_json = true;
        else {
            usage(std::cerr);
            return 1;
        }
    }
    if (use_stdin && have_port) {
        std::cerr << "--stdin and --port are mutually exclusive\n";
        return 1;
    }
    if (!have_port)
        use_stdin = true;
    if (port > 65535)
        stack3d_fatal("--port must be <= 65535");
    if (metrics_port > 65535)
        stack3d_fatal("--metrics-port must be <= 65535");
    if (service_options.max_line_bytes < 256)
        stack3d_fatal("--max-line must be at least 256 bytes");

    setLogJson(log_json);
    FaultRegistry::configureFromEnvironment();
    installSignalHandlers();

    cli.begin();
    service_options.max_study_threads = cli.options.resolvedThreads();
    cli.addConfig("mode", use_stdin ? "stdin" : "tcp");
    cli.addConfig("workers", double(service_options.workers));
    cli.addConfig("queue", double(service_options.queue_limit));
    cli.addConfig("cache_entries",
                  double(service_options.cache_entries));

    serve::StudyService service(service_options);

    // The scrape endpoint outlives neither transport: started before
    // requests flow, stopped (joined) before the exit stats are
    // written, so a scrape can never observe a dying service.
    serve::MetricsHttpServer metrics;
    if (have_metrics_port) {
        metrics.addRoute("/metrics",
                         "text/plain; version=0.0.4",
                         [&service] {
                             std::ostringstream os;
                             obs::writePrometheusText(
                                 os, service.registry());
                             return os.str();
                         });
        metrics.addRoute("/healthz", "application/json",
                         [&service] {
                             return service.healthJson() + "\n";
                         });
        if (!metrics.start(metrics_port))
            stack3d_fatal("--metrics-port ", metrics_port,
                          ": cannot start the metrics endpoint");
    }

    int status = 0;
    if (use_stdin) {
        std::uint64_t handled =
            serve::runPipeServer(service, std::cin, std::cout);
        if (!cli.quiet())
            inform("stack3d-serve: handled ", handled, " request(s)");
    } else {
        status = serve::runTcpServer(service, port, conn_threads);
    }
    metrics.stop();

    cli.counters().accumulate(service.counters());
    int finish_status = cli.finish();
    return status != 0 ? status : finish_status;
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
