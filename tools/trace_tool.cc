/**
 * @file
 * Command-line utility for stack3d trace files:
 *
 *   trace_tool gen <kernel> <out.trace> [records_per_thread]
 *       Generate a benchmark's dependency-annotated trace to disk.
 *
 *   trace_tool info <file.trace>
 *       Print the trace's statistics (mix, footprint, dep chains).
 *
 *   trace_tool run <file.trace> <4|12|32|64>
 *       Simulate the trace against one Figure 7 cache organization
 *       and print CPMA / bandwidth plus the full hierarchy stats.
 *
 *   trace_tool sweep <file.trace> [--threads N]
 *       Simulate the trace against all four organizations — one
 *       study cell each, fanned out over N worker threads with live
 *       progress — and print the Figure 5-style comparison row.
 *
 * Traces written by `gen` are reusable across runs and across the
 * four organizations, exactly like the paper's trace methodology.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/memory_study.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"
#include "mem/engine.hh"
#include "trace/file.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool gen <kernel> <out.trace> [records]\n"
                 "  trace_tool info <file.trace>\n"
                 "  trace_tool run <file.trace> <4|12|32|64>\n"
                 "  trace_tool sweep <file.trace> [--threads N]\n");
    return 2;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    workloads::WorkloadConfig cfg;
    if (argc > 4)
        cfg.records_per_thread = std::stoull(argv[4]);
    auto kernel = workloads::makeRmsKernel(argv[2]);
    trace::TraceBuffer buf = kernel->generate(cfg);
    trace::writeTraceFile(argv[3], buf);
    std::printf("wrote %zu records to %s (%s)\n", buf.size(), argv[3],
                kernel->description());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceBuffer buf = trace::readTraceFile(argv[2]);
    trace::TraceStats st = buf.computeStats();
    std::printf("records:      %llu\n",
                (unsigned long long)st.num_records);
    std::printf("loads:        %llu (%.1f%%)\n",
                (unsigned long long)st.num_loads,
                100.0 * double(st.num_loads) / double(st.num_records));
    std::printf("stores:       %llu (%.1f%%)\n",
                (unsigned long long)st.num_stores,
                100.0 * double(st.num_stores) / double(st.num_records));
    std::printf("with dep:     %llu (%.1f%%)\n",
                (unsigned long long)st.num_with_dep,
                100.0 * double(st.num_with_dep) /
                    double(st.num_records));
    std::printf("max chain:    %llu\n",
                (unsigned long long)st.max_dep_chain);
    std::printf("footprint:    %.2f MB (%llu lines)\n",
                double(st.footprint_bytes) / (1 << 20),
                (unsigned long long)st.footprint_lines);
    std::printf("cpu split:    %llu / %llu\n",
                (unsigned long long)st.records_cpu0,
                (unsigned long long)st.records_cpu1);
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    trace::TraceBuffer buf = trace::readTraceFile(argv[2]);

    mem::StackOption opt;
    switch (std::stoi(argv[3])) {
      case 4:
        opt = mem::StackOption::Baseline4MB;
        break;
      case 12:
        opt = mem::StackOption::Sram12MB;
        break;
      case 32:
        opt = mem::StackOption::Dram32MB;
        break;
      case 64:
        opt = mem::StackOption::Dram64MB;
        break;
      default:
        return usage();
    }

    mem::MemoryHierarchy hier(mem::makeHierarchyParams(opt));
    mem::TraceEngine engine;
    mem::EngineResult res = engine.run(buf, hier);
    std::printf("%s: CPMA %.3f, off-die %.2f GB/s, bus %.2f W, "
                "%llu cycles\n",
                mem::stackOptionName(opt), res.cpma, res.offdie_gbps,
                res.bus_power_w, (unsigned long long)res.total_cycles);
    std::printf("\n");
    hier.dumpStats(std::cout);
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    unsigned threads = 1;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = core::parseThreadArg(argv[++i], "--threads");
    }

    trace::TraceBuffer buf = trace::readTraceFile(argv[2]);
    std::printf("sweeping %zu records over the four organizations "
                "(%u thread(s))...\n",
                buf.size(), threads);

    core::RunOptions opts;
    opts.threads = threads;
    core::ConsoleProgressSink sink(std::cout);
    opts.progress = &sink;

    // One cell per Figure 7 organization, reported through the same
    // ProgressSink/StudyTracker machinery the studies use.
    core::StudyTracker tracker("sweep", core::kStackOptions.size(),
                               opts);
    std::array<mem::EngineResult, 4> results;

    unsigned workers = opts.resolvedThreads();
    exec::ThreadPool pool(workers > 1 ? workers : 0);
    exec::parallelFor(pool, core::kStackOptions.size(),
                      [&](std::size_t o) {
        mem::StackOption option = core::kStackOptions[o];
        tracker.runCell(o, mem::stackOptionName(option), [&] {
            mem::MemoryHierarchy hier(
                mem::makeHierarchyParams(option));
            mem::TraceEngine engine;
            results[o] = engine.run(buf, hier);
        });
    });
    core::StudyMeta meta = tracker.finish();

    std::printf("\n%-12s %8s %10s %8s %10s\n", "option", "CPMA",
                "offdie", "bus W", "LLC miss");
    for (std::size_t o = 0; o < results.size(); ++o) {
        std::printf("%-12s %8.3f %10.2f %8.2f %9.1f%%\n",
                    mem::stackOptionName(core::kStackOptions[o]),
                    results[o].cpma, results[o].offdie_gbps,
                    results[o].bus_power_w,
                    results[o].llc_miss_rate * 100.0);
    }
    std::printf("\nwall %.2fs on %u thread(s), serial-equivalent "
                "%.2fs\n",
                meta.wall_seconds, meta.threads_used,
                meta.serial_seconds);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    try {
        if (std::strcmp(argv[1], "gen") == 0)
            return cmdGen(argc, argv);
        if (std::strcmp(argv[1], "info") == 0)
            return cmdInfo(argc, argv);
        if (std::strcmp(argv[1], "run") == 0)
            return cmdRun(argc, argv);
        if (std::strcmp(argv[1], "sweep") == 0)
            return cmdSweep(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return usage();
}
