/**
 * @file
 * Command-line utility for stack3d trace files:
 *
 *   trace_tool gen <kernel> <out.trace> [records_per_thread]
 *       Generate a benchmark's dependency-annotated trace to disk.
 *
 *   trace_tool info <file.trace>
 *       Print the trace's statistics (mix, footprint, dep chains).
 *
 *   trace_tool run <file.trace> <4|12|32|64>
 *       Simulate the trace against one Figure 7 cache organization
 *       and print CPMA / bandwidth plus the full hierarchy stats.
 *
 *   trace_tool stats <file.trace> [4|12|32|64] [--json]
 *       Replay the trace (default: the 32 MB DRAM cache) and dump
 *       the per-level counter snapshot — hits/misses/miss rates/mpkr
 *       for every cache, DRAM bank behaviour, bus occupancy, DDR
 *       traffic — as aligned text or as a manifest+counters JSON
 *       object on stdout.
 *
 *   trace_tool sweep <file.trace>
 *       Simulate the trace against all four organizations — one
 *       study cell each, fanned out over --threads workers with live
 *       progress — and print the Figure 5-style comparison row.
 *
 * All subcommands also accept the shared observability flags
 * (--threads, --seed, --trace-out FILE, --stats-json FILE, --quiet,
 * --verbose); see core::BenchCli.
 *
 * Traces written by `gen` are reusable across runs and across the
 * four organizations, exactly like the paper's trace methodology.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/cli.hh"
#include "core/memory_study.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"
#include "mem/engine.hh"
#include "trace/file.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool gen <kernel> <out.trace> [records]\n"
                 "  trace_tool info <file.trace>\n"
                 "  trace_tool run <file.trace> <4|12|32|64>\n"
                 "  trace_tool stats <file.trace> [4|12|32|64] "
                 "[--json]\n"
                 "  trace_tool sweep <file.trace>\n");
    core::BenchCli::printUsage(std::cerr);
    return 2;
}

/** Map a megabyte count argument to its Figure 7 organization. */
bool
parseOption(const std::string &arg, mem::StackOption &opt)
{
    if (arg == "4")
        opt = mem::StackOption::Baseline4MB;
    else if (arg == "12")
        opt = mem::StackOption::Sram12MB;
    else if (arg == "32")
        opt = mem::StackOption::Dram32MB;
    else if (arg == "64")
        opt = mem::StackOption::Dram64MB;
    else
        return false;
    return true;
}

int
cmdGen(core::BenchCli &cli, const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return usage();
    workloads::WorkloadConfig cfg;
    cfg.seed = cli.options.seed;
    if (args.size() > 3)
        cfg.records_per_thread = std::stoull(args[3]);
    auto kernel = workloads::makeRmsKernel(args[1].c_str());
    trace::TraceBuffer buf = kernel->generate(cfg);
    trace::writeTraceFile(args[2].c_str(), buf);
    if (!cli.quiet()) {
        std::printf("wrote %zu records to %s (%s)\n", buf.size(),
                    args[2].c_str(), kernel->description());
    }
    return cli.finish();
}

int
cmdInfo(core::BenchCli &cli, const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    trace::TraceBuffer buf = trace::readTraceFile(args[1].c_str());
    trace::TraceStats st = buf.computeStats();
    std::printf("records:      %llu\n",
                (unsigned long long)st.num_records);
    std::printf("loads:        %llu (%.1f%%)\n",
                (unsigned long long)st.num_loads,
                100.0 * double(st.num_loads) / double(st.num_records));
    std::printf("stores:       %llu (%.1f%%)\n",
                (unsigned long long)st.num_stores,
                100.0 * double(st.num_stores) / double(st.num_records));
    std::printf("with dep:     %llu (%.1f%%)\n",
                (unsigned long long)st.num_with_dep,
                100.0 * double(st.num_with_dep) /
                    double(st.num_records));
    std::printf("max chain:    %llu\n",
                (unsigned long long)st.max_dep_chain);
    std::printf("footprint:    %.2f MB (%llu lines)\n",
                double(st.footprint_bytes) / (1 << 20),
                (unsigned long long)st.footprint_lines);
    std::printf("cpu split:    %llu / %llu\n",
                (unsigned long long)st.records_cpu0,
                (unsigned long long)st.records_cpu1);
    return cli.finish();
}

int
cmdRun(core::BenchCli &cli, const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return usage();
    mem::StackOption opt;
    if (!parseOption(args[2], opt))
        return usage();
    trace::TraceBuffer buf = trace::readTraceFile(args[1].c_str());

    mem::MemoryHierarchy hier(mem::makeHierarchyParams(opt));
    mem::TraceEngine engine;
    mem::EngineResult res = engine.run(buf, hier);
    cli.counters().mergePrefixed(res.counters, "mem.");
    std::printf("%s: CPMA %.3f, off-die %.2f GB/s, bus %.2f W, "
                "%llu cycles\n",
                mem::stackOptionName(opt), res.cpma, res.offdie_gbps,
                res.bus_power_w, (unsigned long long)res.total_cycles);
    std::printf("\n");
    hier.dumpStats(std::cout);
    return cli.finish();
}

int
cmdStats(core::BenchCli &cli, const std::vector<std::string> &args)
{
    std::string file;
    mem::StackOption opt = mem::StackOption::Dram32MB;
    bool json = false;
    for (std::size_t k = 1; k < args.size(); ++k) {
        if (args[k] == "--json")
            json = true;
        else if (file.empty())
            file = args[k];
        else if (!parseOption(args[k], opt))
            return usage();
    }
    if (file.empty())
        return usage();

    trace::TraceBuffer buf = trace::readTraceFile(file.c_str());
    mem::MemoryHierarchy hier(mem::makeHierarchyParams(opt));
    mem::TraceEngine engine;
    mem::EngineResult res = engine.run(buf, hier);

    // Fold the replay's snapshot into the run-wide counters so it
    // also lands in --stats-json, then add the headline metrics.
    std::string prefix =
        "mem." + std::string(mem::stackOptionName(opt)) + ".";
    cli.counters().mergePrefixed(res.counters, prefix);
    cli.counters().set(prefix + "cpma", res.cpma);
    cli.counters().set(prefix + "offdie_gbps", res.offdie_gbps);
    cli.counters().set(prefix + "bus_power_w", res.bus_power_w);
    cli.counters().set(prefix + "total_cycles",
                       double(res.total_cycles));
    cli.addConfig("trace_file", file);
    cli.addConfig("stack_option", mem::stackOptionName(opt));

    if (json) {
        JsonWriter w(std::cout);
        w.beginObject();
        cli.writeJsonHeader(w);
        w.endObject();
        std::cout << "\n";
    } else {
        std::printf("%s on %s: %zu records\n\n",
                    mem::stackOptionName(opt), file.c_str(),
                    buf.size());
        for (const auto &[key, value] : cli.counters().scalars())
            std::printf("  %-36s %.6g\n", key.c_str(), value);
    }
    return cli.finish();
}

int
cmdSweep(core::BenchCli &cli, const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    core::RunOptions &opts = cli.options;

    trace::TraceBuffer buf = trace::readTraceFile(args[1].c_str());
    if (!cli.quiet()) {
        std::printf("sweeping %zu records over the four organizations "
                    "(%u thread(s))...\n",
                    buf.size(), opts.resolvedThreads());
    }

    // A tool run is interactive: show per-cell progress by default,
    // not only under --verbose like the benches.
    core::ConsoleProgressSink sink(std::cout);
    if (!cli.quiet())
        opts.progress = &sink;

    // One cell per Figure 7 organization, reported through the same
    // ProgressSink/StudyTracker machinery the studies use.
    core::StudyTracker tracker("sweep", core::kStackOptions.size(),
                               opts);
    std::array<mem::EngineResult, 4> results;

    unsigned workers = opts.resolvedThreads();
    exec::ThreadPool pool(workers > 1 ? workers : 0);
    exec::parallelFor(pool, core::kStackOptions.size(),
                      [&](std::size_t o) {
        mem::StackOption option = core::kStackOptions[o];
        tracker.runCell(o, mem::stackOptionName(option), [&] {
            mem::MemoryHierarchy hier(
                mem::makeHierarchyParams(option));
            mem::TraceEngine engine;
            results[o] = engine.run(buf, hier);
        });
    });
    core::StudyMeta meta = tracker.finish();
    pool.appendCounters(meta.counters, "pool.");
    cli.recordMeta(meta);
    for (std::size_t o = 0; o < results.size(); ++o) {
        std::string prefix =
            "mem." +
            std::string(mem::stackOptionName(core::kStackOptions[o])) +
            ".";
        cli.counters().set(prefix + "cpma", results[o].cpma);
        cli.counters().set(prefix + "offdie_gbps",
                           results[o].offdie_gbps);
    }

    if (!cli.quiet()) {
        std::printf("\n%-12s %8s %10s %8s %10s\n", "option", "CPMA",
                    "offdie", "bus W", "LLC miss");
        for (std::size_t o = 0; o < results.size(); ++o) {
            std::printf("%-12s %8.3f %10.2f %8.2f %9.1f%%\n",
                        mem::stackOptionName(core::kStackOptions[o]),
                        results[o].cpma, results[o].offdie_gbps,
                        results[o].bus_power_w,
                        results[o].llc_miss_rate * 100.0);
        }
        std::printf("\nwall %.2fs on %u thread(s), serial-equivalent "
                    "%.2fs\n",
                    meta.wall_seconds, meta.threads_used,
                    meta.serial_seconds);
    }
    return cli.finish();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        core::BenchCli cli("trace_tool");
        std::vector<std::string> args;
        for (int i = 1; i < argc; ++i) {
            if (!cli.consume(argc, argv, i))
                args.emplace_back(argv[i]);
        }
        if (args.empty())
            return usage();
        cli.begin();
        if (args[0] == "gen")
            return cmdGen(cli, args);
        if (args[0] == "info")
            return cmdInfo(cli, args);
        if (args[0] == "run")
            return cmdRun(cli, args);
        if (args[0] == "stats")
            return cmdStats(cli, args);
        if (args[0] == "sweep")
            return cmdSweep(cli, args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return usage();
}
