/**
 * @file
 * The lint3d tokenizer. Hand-rolled single pass: good enough line
 * accounting for diagnostics, and strings / comments / preprocessor
 * directives are consumed whole so rule trigger words inside them
 * can never produce a match.
 */

#include "lint3d.hh"

#include <cctype>

namespace lint3d {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Scan a comment's text for `lint3d: <rule>-ok [, <rule>-ok ...]`
 * markers and record the named rules against @p line. When the
 * comment is the only content on its line (@p whole_line), the
 * suppression also covers the next line, so a rule can be waived
 * without pushing the offending statement past the column limit.
 */
void
parseSuppressions(const std::string &comment, int line, bool whole_line,
                  Suppressions &supp)
{
    const std::string tag = "lint3d:";
    std::size_t at = comment.find(tag);
    if (at == std::string::npos)
        return;
    std::size_t pos = at + tag.size();
    while (pos < comment.size()) {
        while (pos < comment.size() &&
               !identStart(comment[pos]) )
            ++pos;
        std::size_t begin = pos;
        while (pos < comment.size() &&
               (identChar(comment[pos]) || comment[pos] == '-'))
            ++pos;
        if (pos == begin)
            break;
        std::string word = comment.substr(begin, pos - begin);
        const std::string ok = "-ok";
        if (word.size() > ok.size() &&
            word.compare(word.size() - ok.size(), ok.size(), ok) == 0) {
            std::string rule = word.substr(0, word.size() - ok.size());
            supp[line].insert(rule);
            if (whole_line)
                supp[line + 1].insert(rule);
        }
    }
}

const char *kMultiCharOps[] = {"::", "->", "==", "!=", "<=", ">=",
                               "&&", "||", "<<", ">>", "[[", "]]"};

} // namespace

std::vector<Token>
lex(const std::string &source, Suppressions &supp)
{
    std::vector<Token> toks;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();
    /** Offset where the current line's first non-blank content sits. */
    bool line_blank_so_far = true;

    auto newline = [&] {
        ++line;
        line_blank_so_far = true;
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }

        // Preprocessor directive: consume to end of (continued) line.
        if (c == '#' && line_blank_so_far) {
            while (i < n) {
                if (source[i] == '\\' && i + 1 < n &&
                    source[i + 1] == '\n') {
                    newline();
                    i += 2;
                    continue;
                }
                if (source[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t begin = i;
            while (i < n && source[i] != '\n')
                ++i;
            parseSuppressions(source.substr(begin, i - begin), line,
                              line_blank_so_far, supp);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t begin = i;
            int begin_line = line;
            bool whole_line = line_blank_so_far;
            i += 2;
            while (i + 1 < n &&
                   !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    newline();
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            // Suppressions in a block comment attach to the line the
            // comment *ends* on (and the next, for whole-line ones).
            parseSuppressions(source.substr(begin, i - begin),
                              begin_line == line ? begin_line : line,
                              whole_line, supp);
            continue;
        }

        line_blank_so_far = false;

        // String literal (including raw strings).
        if (c == '"' ||
            (c == 'R' && i + 1 < n && source[i + 1] == '"')) {
            Token t{TokKind::String, "\"\"", line};
            if (c == 'R') {
                // Raw string: R"delim( ... )delim"
                std::size_t open = source.find('(', i);
                std::string delim =
                    open == std::string::npos
                        ? std::string()
                        : source.substr(i + 2, open - (i + 2));
                std::string close = ")" + delim + "\"";
                std::size_t end = open == std::string::npos
                                      ? std::string::npos
                                      : source.find(close, open);
                std::size_t stop =
                    end == std::string::npos ? n : end + close.size();
                for (std::size_t k = i; k < stop; ++k) {
                    if (source[k] == '\n')
                        newline();
                }
                i = stop;
            } else {
                ++i;
                while (i < n && source[i] != '"') {
                    if (source[i] == '\\' && i + 1 < n)
                        ++i;
                    else if (source[i] == '\n')
                        newline();
                    ++i;
                }
                if (i < n)
                    ++i;
            }
            toks.push_back(t);
            continue;
        }

        // Character literal.
        if (c == '\'') {
            Token t{TokKind::CharLit, "''", line};
            ++i;
            while (i < n && source[i] != '\'') {
                if (source[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n)
                ++i;
            toks.push_back(t);
            continue;
        }

        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t begin = i;
            while (i < n && identChar(source[i]))
                ++i;
            toks.push_back({TokKind::Ident,
                            source.substr(begin, i - begin), line});
            continue;
        }

        // Number (integer or floating; pp-number-ish, handles 1.5e-3,
        // 0x1F, digit separators, and suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t begin = i;
            ++i;
            while (i < n) {
                char d = source[i];
                if (identChar(d) || d == '.' || d == '\'') {
                    ++i;
                    continue;
                }
                if ((d == '+' || d == '-') && i > begin) {
                    char prev = source[i - 1];
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        ++i;
                        continue;
                    }
                }
                break;
            }
            toks.push_back({TokKind::Number,
                            source.substr(begin, i - begin), line});
            continue;
        }

        // Punctuation: prefer two-character operators.
        if (i + 1 < n) {
            std::string two = source.substr(i, 2);
            bool matched = false;
            for (const char *op : kMultiCharOps) {
                if (two == op) {
                    toks.push_back({TokKind::Punct, two, line});
                    i += 2;
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
        }
        toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return toks;
}

} // namespace lint3d
