/**
 * @file
 * The lint3d tokenizer. Hand-rolled single pass: good enough line
 * accounting for diagnostics, byte offsets for --fix edits, and
 * comments / char literals / preprocessor directives are consumed
 * whole so rule trigger words inside them can never match. String
 * literal *contents* are preserved on the String token (the wire and
 * counter rules inspect them) but never lex as identifiers.
 * Preprocessor directives are captured separately for the include
 * graph and header-guard checks.
 */

#include "lint3d.hh"

#include <cctype>

namespace lint3d {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Scan a comment's text for `lint3d: <rule>-ok [, <rule>-ok ...]`
 * markers and record the named rules against @p line. When the
 * comment is the only content on its line (@p whole_line), the
 * suppression also covers the next line, so a rule can be waived
 * without pushing the offending statement past the column limit.
 */
void
parseSuppressions(const std::string &comment, int line, bool whole_line,
                  LexOutput &out)
{
    const std::string tag = "lint3d:";
    std::size_t at = comment.find(tag);
    if (at == std::string::npos)
        return;
    std::size_t pos = at + tag.size();
    while (pos < comment.size()) {
        while (pos < comment.size() && !identStart(comment[pos]))
            ++pos;
        std::size_t begin = pos;
        while (pos < comment.size() &&
               (identChar(comment[pos]) || comment[pos] == '-'))
            ++pos;
        if (pos == begin)
            break;
        std::string word = comment.substr(begin, pos - begin);
        const std::string ok = "-ok";
        if (word.size() > ok.size() &&
            word.compare(word.size() - ok.size(), ok.size(), ok) == 0) {
            std::string rule = word.substr(0, word.size() - ok.size());
            SuppressionDecl decl;
            decl.rule = rule;
            decl.comment_line = line;
            decl.lines.push_back(line);
            out.supp[line].insert(rule);
            if (whole_line) {
                out.supp[line + 1].insert(rule);
                decl.lines.push_back(line + 1);
            }
            out.supp_decls.push_back(decl);
        }
    }
}

const char *kMultiCharOps[] = {"::", "->", "==", "!=", "<=", ">=",
                               "&&", "||", "<<", ">>", "[[", "]]"};

std::string
trimDirective(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    bool prev_space = false;
    for (char c : s) {
        if (c == ' ' || c == '\t' || c == '\\' || c == '\r' ||
            c == '\n') {
            prev_space = !out.empty();
            continue;
        }
        if (prev_space)
            out += ' ';
        prev_space = false;
        out += c;
    }
    return out;
}

} // namespace

LexOutput
lex(const std::string &source)
{
    LexOutput out;
    std::vector<Token> &toks = out.toks;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();
    /** Whether the current line has only whitespace so far. */
    bool line_blank_so_far = true;

    auto newline = [&] {
        ++line;
        line_blank_so_far = true;
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }

        // Preprocessor directive: consume to end of (continued) line,
        // recording it (text after '#', whitespace-normalized) for
        // the include-graph and header-guard rules.
        if (c == '#' && line_blank_so_far) {
            int begin_line = line;
            std::size_t begin = i + 1;
            std::size_t end = begin;
            while (i < n) {
                if (source[i] == '\\' && i + 1 < n &&
                    source[i + 1] == '\n') {
                    newline();
                    i += 2;
                    end = i;
                    continue;
                }
                if (source[i] == '\n')
                    break;
                ++i;
                end = i;
            }
            std::string text = source.substr(begin, end - begin);
            // Strip a trailing // or /* comment from the directive.
            for (std::size_t k = 0; k + 1 < text.size(); ++k) {
                if (text[k] == '/' &&
                    (text[k + 1] == '/' || text[k + 1] == '*')) {
                    text = text.substr(0, k);
                    break;
                }
            }
            out.pp.push_back({begin_line, trimDirective(text)});
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t begin = i;
            while (i < n && source[i] != '\n')
                ++i;
            parseSuppressions(source.substr(begin, i - begin), line,
                              line_blank_so_far, out);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t begin = i;
            int begin_line = line;
            bool whole_line = line_blank_so_far;
            i += 2;
            while (i + 1 < n &&
                   !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    newline();
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            // Suppressions in a block comment attach to the line the
            // comment *ends* on (and the next, for whole-line ones).
            parseSuppressions(source.substr(begin, i - begin),
                              begin_line == line ? begin_line : line,
                              whole_line, out);
            continue;
        }

        line_blank_so_far = false;

        // String literal (including raw strings). The token carries
        // the literal's contents so the wire/counter rules can check
        // key spellings; TokKind::String keeps it from ever matching
        // an identifier rule.
        if (c == '"' ||
            (c == 'R' && i + 1 < n && source[i + 1] == '"')) {
            Token t{TokKind::String, "\"\"", "", line, i};
            if (c == 'R') {
                // Raw string: R"delim( ... )delim"
                std::size_t open = source.find('(', i);
                std::string delim =
                    open == std::string::npos
                        ? std::string()
                        : source.substr(i + 2, open - (i + 2));
                std::string close = ")" + delim + "\"";
                std::size_t end = open == std::string::npos
                                      ? std::string::npos
                                      : source.find(close, open);
                std::size_t stop =
                    end == std::string::npos ? n : end + close.size();
                if (open != std::string::npos &&
                    end != std::string::npos)
                    t.str = source.substr(open + 1, end - (open + 1));
                for (std::size_t k = i; k < stop; ++k) {
                    if (source[k] == '\n')
                        newline();
                }
                i = stop;
            } else {
                ++i;
                std::size_t content_begin = i;
                while (i < n && source[i] != '"') {
                    if (source[i] == '\\' && i + 1 < n)
                        ++i;
                    else if (source[i] == '\n')
                        newline();
                    ++i;
                }
                t.str = source.substr(content_begin,
                                      i - content_begin);
                if (i < n)
                    ++i;
            }
            toks.push_back(t);
            continue;
        }

        // Character literal.
        if (c == '\'') {
            Token t{TokKind::CharLit, "''", "", line, i};
            ++i;
            while (i < n && source[i] != '\'') {
                if (source[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n)
                ++i;
            toks.push_back(t);
            continue;
        }

        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t begin = i;
            while (i < n && identChar(source[i]))
                ++i;
            toks.push_back({TokKind::Ident,
                            source.substr(begin, i - begin), "",
                            line, begin});
            continue;
        }

        // Number (integer or floating; pp-number-ish, handles 1.5e-3,
        // 0x1F, digit separators, and suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t begin = i;
            ++i;
            while (i < n) {
                char d = source[i];
                if (identChar(d) || d == '.' || d == '\'') {
                    ++i;
                    continue;
                }
                if ((d == '+' || d == '-') && i > begin) {
                    char prev = source[i - 1];
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        ++i;
                        continue;
                    }
                }
                break;
            }
            toks.push_back({TokKind::Number,
                            source.substr(begin, i - begin), "",
                            line, begin});
            continue;
        }

        // Punctuation: prefer two-character operators.
        if (i + 1 < n) {
            std::string two = source.substr(i, 2);
            bool matched = false;
            for (const char *op : kMultiCharOps) {
                if (two == op) {
                    toks.push_back({TokKind::Punct, two, "", line, i});
                    i += 2;
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
        }
        toks.push_back({TokKind::Punct, std::string(1, c), "", line, i});
        ++i;
    }
    return out;
}

} // namespace lint3d
