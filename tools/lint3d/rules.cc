/**
 * @file
 * The lint3d rule passes. Each rule is a focused scan over the token
 * stream; a shared pre-pass computes, per token, the innermost brace
 * scope (namespace / class / function / initializer) and the paren
 * nesting depth, which is all the "parsing" the rules need.
 *
 * Heuristics are deliberately conservative about what they claim:
 * every rule documents its blind spots in DESIGN.md. When a rule and
 * reality disagree, the per-line `// lint3d: <rule>-ok` suppression
 * records the decision in the source.
 */

#include "lint3d.hh"

namespace lint3d {

namespace {

/** Innermost brace-scope classification. */
enum class Scope { TU, Namespace, Class, Enum, Function, Block, Init };

/** Per-token scope / paren-depth context. */
struct Context
{
    std::vector<Scope> scope;
    std::vector<int> paren;
};

bool
isScopeOpenerKeyword(const std::string &s)
{
    return s == "namespace" || s == "class" || s == "struct" ||
           s == "union" || s == "enum";
}

/**
 * Classify every token's innermost scope with a brace stack. The
 * opener of a brace is inferred from the tokens before it: `)` /
 * `const` / `noexcept` / `override` open function bodies, a
 * backward scan to the statement start finds `namespace` / `class` /
 * `enum`, and everything else (after `=`, `,`, `return`, an
 * identifier) is a braced initializer.
 */
Context
buildContext(const std::vector<Token> &t)
{
    Context ctx;
    ctx.scope.resize(t.size(), Scope::TU);
    ctx.paren.resize(t.size(), 0);
    std::vector<Scope> stack{Scope::TU};
    int paren = 0;

    for (std::size_t i = 0; i < t.size(); ++i) {
        ctx.scope[i] = stack.back();
        ctx.paren[i] = paren;
        const std::string &s = t[i].text;

        if (s == "(" || s == "[") {
            ++paren;
            continue;
        }
        if (s == ")" || s == "]") {
            if (paren > 0)
                --paren;
            continue;
        }
        if (s == "}") {
            if (stack.size() > 1)
                stack.pop_back();
            continue;
        }
        if (s != "{")
            continue;

        if (paren > 0) {
            stack.push_back(Scope::Init);
            continue;
        }
        if (i == 0) {
            stack.push_back(Scope::Block);
            continue;
        }
        const std::string &p = t[i - 1].text;
        if (p == ")" || p == "const" || p == "noexcept" ||
            p == "override" || p == "final" || p == "else" ||
            p == "do" || p == "try") {
            bool inside_fn = stack.back() == Scope::Function ||
                             stack.back() == Scope::Block;
            stack.push_back(inside_fn ? Scope::Block
                                      : Scope::Function);
            continue;
        }
        // Backward scan to the statement start for a scope keyword.
        Scope opened = Scope::Init;
        bool classified = false;
        for (std::size_t back = 1;
             back <= i && back <= 64; ++back) {
            const std::string &q = t[i - back].text;
            if (q == ";" || q == "{" || q == "}" || q == ")" ||
                q == "(" || q == ",")
                break;
            if (q == "enum") {
                opened = Scope::Enum;
                classified = true;
                break;
            }
            if (isScopeOpenerKeyword(q)) {
                opened = q == "namespace" ? Scope::Namespace
                                          : Scope::Class;
                classified = true;
                break;
            }
        }
        if (!classified &&
            !(t[i - 1].kind == TokKind::Ident || p == "=" ||
              p == "," || p == "(" || p == "[" || p == "return")) {
            opened = Scope::Block;
        }
        stack.push_back(opened);
    }
    return ctx;
}

/** True when @p path (relative, '/') starts with any listed prefix. */
bool
underAny(const std::string &path,
         const std::vector<std::string> &prefixes)
{
    for (const std::string &p : prefixes) {
        if (p.empty())
            continue;
        if (path.compare(0, p.size(), p) == 0)
            return true;
    }
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Everything one rule pass needs, plus the finding sink. */
struct Analysis
{
    const std::string &path;
    const std::vector<Token> &t;
    const Suppressions &supp;
    const Config &cfg;
    Context ctx;
    bool header = false;
    FileReport report;

    const std::string &
    text(std::size_t i) const
    {
        static const std::string empty;
        return i < t.size() ? t[i].text : empty;
    }

    void
    emit(int line, const std::string &rule, const std::string &msg)
    {
        const RuleConfig &rc = cfg.ruleConfig(rule);
        if (rc.severity == "off")
            return;
        if (underAny(path, rc.allow))
            return;
        if (!rc.paths.empty() && !underAny(path, rc.paths))
            return;
        auto it = supp.find(line);
        if (it != supp.end() && it->second.count(rule)) {
            ++report.suppressed;
            return;
        }
        report.findings.push_back(
            {path, line, rule, rc.severity, msg});
    }
};

bool
isFloatLiteral(const Token &tok)
{
    if (tok.kind != TokKind::Number)
        return false;
    const std::string &s = tok.text;
    if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        return false;
    for (char c : s) {
        if (c == '.' || c == 'e' || c == 'E')
            return true;
    }
    return false;
}

// --- determinism rules -------------------------------------------------

void
detRand(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (a.t[i].kind != TokKind::Ident ||
            (s != "rand" && s != "srand"))
            continue;
        if (a.text(i + 1) != "(")
            continue;
        const std::string &prev = i > 0 ? a.text(i - 1) : a.text(i);
        if (prev == "." || prev == "->")
            continue; // a member function of some project type
        if (i > 0 && a.t[i - 1].kind == TokKind::Ident &&
            prev != "return" && prev != "case")
            continue; // `int rand(` — declaring a member, not calling
        a.emit(a.t[i].line, "det-rand",
               "'" + s + "' draws from hidden global state; derive "
               "a stream from core::deriveCellSeed instead");
    }
}

void
detWallclock(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident)
            continue;
        const std::string &s = a.t[i].text;
        const std::string prev = i > 0 ? a.text(i - 1) : "";
        bool member = prev == "." || prev == "->";
        bool declared = i > 0 && a.t[i - 1].kind == TokKind::Ident &&
                        prev != "return" && prev != "case";
        if ((s == "time" || s == "clock") && a.text(i + 1) == "(" &&
            !member && !declared) {
            a.emit(a.t[i].line, "det-wallclock",
                   "wall-clock call '" + s + "(...)' makes runs "
                   "unreproducible; seeds must come from RunOptions");
            continue;
        }
        if (s == "system_clock" || s == "random_device") {
            a.emit(a.t[i].line, "det-wallclock",
                   "'" + s + "' is a nondeterministic source; use "
                   "steady_clock for intervals and RunOptions seeds "
                   "for randomness");
        }
    }
}

void
detUnordered(Analysis &a)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (s != "unordered_map" && s != "unordered_set" &&
            s != "unordered_multimap" && s != "unordered_multiset")
            continue;
        a.emit(a.t[i].line, "det-unordered-container",
               "std::" + s + " iterates in hash order, which varies "
               "across libraries and runs; use std::map/std::set or "
               "a sorted vector in result-affecting code");
        // Find the declared variable name: balance the template
        // argument list, then take the following identifier.
        std::size_t j = i + 1;
        if (a.text(j) != "<")
            continue;
        int depth = 0;
        for (; j < a.t.size(); ++j) {
            const std::string &q = a.t[j].text;
            if (q == "<")
                ++depth;
            else if (q == ">")
                --depth;
            else if (q == ">>")
                depth -= 2;
            if (depth <= 0)
                break;
        }
        ++j;
        while (a.text(j) == "*" || a.text(j) == "&")
            ++j;
        if (j < a.t.size() && a.t[j].kind == TokKind::Ident)
            names.insert(a.t[j].text);
    }
    if (names.empty())
        return;

    for (std::size_t i = 0; i < a.t.size(); ++i) {
        // Range-for whose range expression names an unordered
        // container declared in this file.
        if (a.t[i].text == "for" && a.text(i + 1) == "(") {
            int depth = 0;
            bool seen_colon = false;
            for (std::size_t j = i + 1; j < a.t.size(); ++j) {
                const std::string &q = a.t[j].text;
                if (q == "(") {
                    ++depth;
                } else if (q == ")") {
                    if (--depth == 0)
                        break;
                } else if (q == ":" && depth == 1) {
                    seen_colon = true;
                } else if (seen_colon &&
                           a.t[j].kind == TokKind::Ident &&
                           names.count(q)) {
                    a.emit(a.t[j].line, "det-unordered-iter",
                           "iterating unordered container '" + q +
                           "'; order is nondeterministic — sort "
                           "keys first or use an ordered container");
                    break;
                }
            }
        }
        // Explicit iterator loops: name.begin() / cbegin() / rbegin().
        if (a.t[i].kind == TokKind::Ident && names.count(a.t[i].text) &&
            a.text(i + 1) == "." &&
            (a.text(i + 2) == "begin" || a.text(i + 2) == "cbegin" ||
             a.text(i + 2) == "rbegin")) {
            a.emit(a.t[i].line, "det-unordered-iter",
                   "iterator over unordered container '" +
                   a.t[i].text + "'; order is nondeterministic — "
                   "sort keys first or use an ordered container");
        }
    }
}

void
detFloatReduce(Analysis &a)
{
    for (std::size_t i = 1; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if ((s == "reduce" || s == "transform_reduce") &&
            a.text(i - 1) == "::" && a.text(i + 1) == "(") {
            a.emit(a.t[i].line, "det-float-reduce",
                   "std::" + s + " sums in unspecified order; "
                   "float results vary — use "
                   "exec::parallelSlabReduce or an index-ordered "
                   "loop");
        }
    }
}

// --- safety rules ------------------------------------------------------

void
safeNakedNew(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (a.t[i].kind != TokKind::Ident ||
            (s != "new" && s != "delete"))
            continue;
        const std::string prev = i > 0 ? a.text(i - 1) : "";
        if (prev == "operator")
            continue;
        if (s == "delete" && prev == "=")
            continue; // deleted special member, not a deallocation
        a.emit(a.t[i].line, "safe-naked-new",
               std::string("naked '") + s + "'; prefer "
               "std::make_unique / containers, or suppress where "
               "manual lifetime is the design (lock-free chunks)");
    }
}

void
safeMemcpy(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (a.t[i].kind != TokKind::Ident ||
            (s != "memcpy" && s != "memmove"))
            continue;
        if (a.text(i + 1) != "(")
            continue;
        const std::string prev = i > 0 ? a.text(i - 1) : "";
        if (prev == "." || prev == "->")
            continue;
        if (i > 0 && a.t[i - 1].kind == TokKind::Ident &&
            prev != "return" && prev != "case")
            continue; // `void memcpy(` — a declaration, not a call
        a.emit(a.t[i].line, "safe-memcpy",
               "'" + s + "' bypasses constructors; prove the type "
               "is trivially copyable (static_assert) or use "
               "std::copy");
    }
}

void
safeFloatEq(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (s != "==" && s != "!=")
            continue;
        bool floaty = (i > 0 && isFloatLiteral(a.t[i - 1])) ||
                      (i + 1 < a.t.size() &&
                       isFloatLiteral(a.t[i + 1]));
        if (!floaty)
            continue;
        a.emit(a.t[i].line, "safe-float-eq",
               "exact floating-point comparison; use a tolerance, "
               "or suppress where bitwise equality is the contract");
    }
}

const std::set<std::string> &
builtinTypeWords()
{
    static const std::set<std::string> kTypes{
        "bool",     "char",     "short",    "int",      "long",
        "unsigned", "signed",   "float",    "double",   "size_t",
        "ssize_t",  "ptrdiff_t", "int8_t",  "int16_t",  "int32_t",
        "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "intptr_t", "uintptr_t"};
    return kTypes;
}

void
safeCCast(Analysis &a)
{
    const std::set<std::string> &types = builtinTypeWords();
    for (std::size_t i = 1; i + 2 < a.t.size(); ++i) {
        if (a.t[i].text != "(")
            continue;
        const Token &p = a.t[i - 1];
        // After an identifier or closing bracket this paren is a
        // call / declarator, not a cast — except after statement
        // keywords like `return`.
        if ((p.kind == TokKind::Ident && p.text != "return" &&
             p.text != "case") ||
            p.text == ")" || p.text == "]" || p.text == ">")
            continue;
        std::size_t j = i + 1;
        bool saw_type = false;
        while (j < a.t.size()) {
            const std::string &q = a.t[j].text;
            if (types.count(q)) {
                saw_type = true;
                ++j;
            } else if (q == "const" || q == "std" || q == "::") {
                ++j;
            } else {
                break;
            }
        }
        while (j < a.t.size() &&
               (a.t[j].text == "*" || a.t[j].text == "&"))
            ++j;
        if (!saw_type || j >= a.t.size() || a.t[j].text != ")")
            continue;
        if (j + 1 >= a.t.size())
            continue;
        const Token &next = a.t[j + 1];
        bool operand = next.kind == TokKind::Ident ||
                       next.kind == TokKind::Number ||
                       next.kind == TokKind::String ||
                       next.text == "(";
        if (!operand || types.count(next.text))
            continue;
        a.emit(a.t[i].line, "safe-c-cast",
               "C-style cast; use static_cast (or the T(x) "
               "functional form) so conversions stay searchable "
               "and checked");
    }
}

void
safeNodiscard(Analysis &a)
{
    if (!a.header)
        return;
    for (std::size_t i = 1; i < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident || a.text(i + 1) != "(")
            continue;
        Scope sc = a.ctx.scope[i];
        if (sc != Scope::Class && sc != Scope::Namespace &&
            sc != Scope::TU)
            continue;
        if (a.ctx.paren[i] != 0)
            continue;
        const std::string &name = a.t[i].text;
        bool matches = false;
        for (const std::string &prefix : a.cfg.nodiscard_prefixes) {
            if (name.size() >= prefix.size() &&
                name.compare(0, prefix.size(), prefix) == 0) {
                matches = true;
                break;
            }
        }
        if (!matches)
            continue;
        const std::string &prev = a.text(i - 1);
        if (prev == "." || prev == "->" || prev == "operator")
            continue;
        // Scan back over the declaration for [[nodiscard]] / void.
        bool has_nodiscard = false;
        bool returns_void = false;
        std::size_t decl_tokens = 0;
        for (std::size_t back = 1; back <= i && back <= 48; ++back) {
            const std::string &q = a.t[i - back].text;
            if (q == ";" || q == "{" || q == "}" || q == ":")
                break;
            ++decl_tokens;
            if (q == "nodiscard")
                has_nodiscard = true;
            if (q == "void" && a.text(i - back + 1) != "*")
                returns_void = true;
        }
        if (decl_tokens == 0 || returns_void || has_nodiscard)
            continue;
        a.emit(a.t[i].line, "safe-nodiscard",
               "'" + name + "' returns a status/result that call "
               "sites silently dropped before; mark it "
               "[[nodiscard]]");
    }
}

// --- concurrency rules -------------------------------------------------

/** Words whose presence makes a namespace-scope declaration safe. */
bool
globalStatementIsSafe(const std::vector<Token> &t, std::size_t begin,
                      std::size_t end)
{
    static const std::set<std::string> kSafe{
        "const",     "constexpr", "constinit",  "atomic",
        "mutex",     "shared_mutex", "once_flag", "thread_local",
        "extern",    "using",     "typedef",    "static_assert",
        "friend",    "operator",  "template",   "class",
        "struct",    "enum",      "union",      "namespace",
        "inline",    "noexcept",  "asm"};
    std::size_t first_eq = end;
    for (std::size_t i = begin; i < end; ++i) {
        if (t[i].text == "=") {
            first_eq = i;
            break;
        }
    }
    for (std::size_t i = begin; i < end; ++i) {
        if (kSafe.count(t[i].text))
            return true;
        // A paren before any '=' means a function declaration.
        if (t[i].text == "(" && i < first_eq)
            return true;
    }
    return false;
}

/** Does [begin, end) declare a lock (the adjacency convention)? */
bool
statementDeclaresLock(const std::vector<Token> &t, std::size_t begin,
                      std::size_t end)
{
    for (std::size_t i = begin; i < end; ++i) {
        const std::string &s = t[i].text;
        if (s == "mutex" || s == "shared_mutex" || s == "once_flag")
            return true;
    }
    return false;
}

void
concGlobalMutable(Analysis &a)
{
    std::size_t stmt_begin = 0;
    /** The immediately preceding namespace-scope statement declared
     *  a mutex: by project convention it guards what follows. */
    bool prev_was_lock = false;
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        Scope sc = a.ctx.scope[i];
        const std::string &s = a.t[i].text;
        if (s == "{") {
            // A brace that opens a scope resets the statement; a
            // braced initializer does not (the declaration
            // continues to the ';' after it).
            Scope opened = i + 1 < a.t.size() ? a.ctx.scope[i + 1]
                                              : Scope::Init;
            if (opened != Scope::Init)
                stmt_begin = i + 1;
            continue;
        }
        if (s == "}") {
            // Closing anything but a braced initializer (a function
            // body, class, enum, namespace) starts a new statement.
            if (sc != Scope::Init)
                stmt_begin = i + 1;
            continue;
        }
        bool at_ns = (sc == Scope::Namespace || sc == Scope::TU) &&
                     a.ctx.paren[i] == 0;
        if (!at_ns || s != ";")
            continue;

        std::size_t begin = stmt_begin;
        stmt_begin = i + 1;
        bool guarded = prev_was_lock;
        prev_was_lock = statementDeclaresLock(a.t, begin, i);
        if (i <= begin + 1)
            continue; // too short to declare anything mutable
        if (guarded || globalStatementIsSafe(a.t, begin, i))
            continue;
        // The declared name: the identifier before '=', '{', '['
        // or the terminating ';'.
        std::size_t name_at = a.t.size();
        for (std::size_t j = begin; j < i; ++j) {
            const std::string &q = a.t[j].text;
            if (q == "=" || q == "{" || q == "[")
                break;
            if (a.t[j].kind == TokKind::Ident)
                name_at = j;
        }
        if (name_at >= a.t.size())
            continue;
        a.emit(a.t[name_at].line, "conc-global-mutable",
               "mutable namespace-scope global '" +
               a.t[name_at].text + "'; make it std::atomic, guard "
               "it with a mutex, or make it constexpr");
    }
}

void
concStaticLocal(Analysis &a)
{
    if (!a.header)
        return;
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        if (a.t[i].text != "static")
            continue;
        Scope sc = a.ctx.scope[i];
        if (sc != Scope::Function && sc != Scope::Block)
            continue;
        const std::string &next = a.text(i + 1);
        if (next == "const" || next == "constexpr" ||
            next == "constinit")
            continue;
        a.emit(a.t[i].line, "conc-static-local",
               "mutable function-local static in a header: one "
               "shared instance across every TU and thread; hoist "
               "it into a .cc or make it constexpr");
    }
}

void
concThreadOutsideExec(Analysis &a)
{
    for (std::size_t i = 2; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if ((s != "thread" && s != "jthread") ||
            a.text(i - 1) != "::" || a.text(i - 2) != "std")
            continue;
        if (a.text(i + 1) == "::")
            continue; // std::thread::id / hardware_concurrency
        a.emit(a.t[i].line, "conc-thread-outside-exec",
               "raw std::" + s + " outside exec::; use "
               "exec::ThreadPool so join/detach discipline and "
               "worker detection stay centralized");
    }
}

} // namespace

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> kRules{
        "det-rand",
        "det-wallclock",
        "det-unordered-container",
        "det-unordered-iter",
        "det-float-reduce",
        "safe-naked-new",
        "safe-memcpy",
        "safe-float-eq",
        "safe-c-cast",
        "safe-nodiscard",
        "conc-global-mutable",
        "conc-static-local",
        "conc-thread-outside-exec"};
    return kRules;
}

FileReport
analyzeFile(const std::string &path, const std::vector<Token> &toks,
            const Suppressions &supp, const Config &cfg)
{
    Analysis a{path, toks, supp, cfg, buildContext(toks), false, {}};
    a.header = endsWith(path, ".hh") || endsWith(path, ".hpp") ||
               endsWith(path, ".h");

    detRand(a);
    detWallclock(a);
    detUnordered(a);
    detFloatReduce(a);
    safeNakedNew(a);
    safeMemcpy(a);
    safeFloatEq(a);
    safeCCast(a);
    safeNodiscard(a);
    concGlobalMutable(a);
    concStaticLocal(a);
    concThreadOutsideExec(a);
    return a.report;
}

} // namespace lint3d
