/**
 * @file
 * The lint3d pass-1 (per-file) rule passes and summary collectors.
 * Each rule is a focused scan over the token stream; a shared
 * pre-pass computes, per token, the innermost brace scope
 * (namespace / class / function / initializer) and the paren nesting
 * depth, which is all the "parsing" the rules need. Alongside the
 * findings, pass 1 collects the whole-program summary (include
 * edges, atomic names and call sites, wire-schema key sets, counter
 * registrations) that program.cc's cross-file rules consume.
 *
 * Heuristics are deliberately conservative about what they claim:
 * every rule documents its blind spots in DESIGN.md. When a rule and
 * reality disagree, the per-line `// lint3d: <rule>-ok` suppression
 * records the decision in the source.
 */

#include "lint3d.hh"

#include <algorithm>

namespace lint3d {

namespace {

/** Innermost brace-scope classification. */
enum class Scope { TU, Namespace, Class, Enum, Function, Block, Init };

/** Per-token scope / paren-depth context. */
struct Context
{
    std::vector<Scope> scope;
    std::vector<int> paren;
};

bool
isScopeOpenerKeyword(const std::string &s)
{
    return s == "namespace" || s == "class" || s == "struct" ||
           s == "union" || s == "enum";
}

/**
 * Classify every token's innermost scope with a brace stack. The
 * opener of a brace is inferred from the tokens before it: `)` /
 * `const` / `noexcept` / `override` open function bodies, a
 * backward scan to the statement start finds `namespace` / `class` /
 * `enum`, and everything else (after `=`, `,`, `return`, an
 * identifier) is a braced initializer.
 */
Context
buildContext(const std::vector<Token> &t)
{
    Context ctx;
    ctx.scope.resize(t.size(), Scope::TU);
    ctx.paren.resize(t.size(), 0);
    std::vector<Scope> stack{Scope::TU};
    int paren = 0;

    for (std::size_t i = 0; i < t.size(); ++i) {
        ctx.scope[i] = stack.back();
        ctx.paren[i] = paren;
        const std::string &s = t[i].text;

        if (s == "(" || s == "[") {
            ++paren;
            continue;
        }
        if (s == ")" || s == "]") {
            if (paren > 0)
                --paren;
            continue;
        }
        if (s == "}") {
            if (stack.size() > 1)
                stack.pop_back();
            continue;
        }
        if (s != "{")
            continue;

        if (paren > 0) {
            stack.push_back(Scope::Init);
            continue;
        }
        if (i == 0) {
            stack.push_back(Scope::Block);
            continue;
        }
        const std::string &p = t[i - 1].text;
        if (p == ")" || p == "const" || p == "noexcept" ||
            p == "override" || p == "final" || p == "else" ||
            p == "do" || p == "try") {
            bool inside_fn = stack.back() == Scope::Function ||
                             stack.back() == Scope::Block;
            stack.push_back(inside_fn ? Scope::Block
                                      : Scope::Function);
            continue;
        }
        // Backward scan to the statement start for a scope keyword.
        Scope opened = Scope::Init;
        bool classified = false;
        for (std::size_t back = 1;
             back <= i && back <= 64; ++back) {
            const std::string &q = t[i - back].text;
            if (q == ";" || q == "{" || q == "}" || q == ")" ||
                q == "(" || q == ",")
                break;
            if (q == "enum") {
                opened = Scope::Enum;
                classified = true;
                break;
            }
            if (isScopeOpenerKeyword(q)) {
                opened = q == "namespace" ? Scope::Namespace
                                          : Scope::Class;
                classified = true;
                break;
            }
        }
        if (!classified &&
            !(t[i - 1].kind == TokKind::Ident || p == "=" ||
              p == "," || p == "(" || p == "[" || p == "return")) {
            opened = Scope::Block;
        }
        stack.push_back(opened);
    }
    return ctx;
}

/** True when @p path (relative, '/') starts with any listed prefix. */
bool
underAny(const std::string &path,
         const std::vector<std::string> &prefixes)
{
    for (const std::string &p : prefixes) {
        if (p.empty())
            continue;
        if (path.compare(0, p.size(), p) == 0)
            return true;
    }
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** Everything one rule pass needs, plus the finding sink. */
struct Analysis
{
    const std::string &path;
    const std::vector<Token> &t;
    const Config &cfg;
    Context ctx;
    bool header = false;
    FileReport &report;

    const std::string &
    text(std::size_t i) const
    {
        static const std::string empty;
        return i < t.size() ? t[i].text : empty;
    }

    /**
     * Report a finding unless the rule is off / path-exempt /
     * suppressed. @return true when the finding was recorded (so
     * callers only attach --fix edits to live findings).
     */
    bool
    emit(int line, const std::string &rule, const std::string &msg)
    {
        const RuleConfig &rc = cfg.ruleConfig(rule);
        if (rc.severity == "off")
            return false;
        if (underAny(path, rc.allow))
            return false;
        if (!rc.paths.empty() && !underAny(path, rc.paths))
            return false;
        auto it = report.supp.find(line);
        if (it != report.supp.end() && it->second.count(rule)) {
            ++report.suppressed;
            report.supp_used.insert({line, rule});
            return false;
        }
        report.findings.push_back(
            {path, line, rule, rc.severity, msg});
        return true;
    }
};

bool
isFloatLiteral(const Token &tok)
{
    if (tok.kind != TokKind::Number)
        return false;
    const std::string &s = tok.text;
    if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        return false;
    for (char c : s) {
        if (c == '.' || c == 'e' || c == 'E')
            return true;
    }
    return false;
}

// --- determinism rules -------------------------------------------------

void
detRand(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (a.t[i].kind != TokKind::Ident ||
            (s != "rand" && s != "srand"))
            continue;
        if (a.text(i + 1) != "(")
            continue;
        const std::string &prev = i > 0 ? a.text(i - 1) : a.text(i);
        if (prev == "." || prev == "->")
            continue; // a member function of some project type
        if (i > 0 && a.t[i - 1].kind == TokKind::Ident &&
            prev != "return" && prev != "case")
            continue; // `int rand(` — declaring a member, not calling
        a.emit(a.t[i].line, "det-rand",
               "'" + s + "' draws from hidden global state; derive "
               "a stream from core::deriveCellSeed instead");
    }
}

void
detWallclock(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident)
            continue;
        const std::string &s = a.t[i].text;
        const std::string prev = i > 0 ? a.text(i - 1) : "";
        bool member = prev == "." || prev == "->";
        bool declared = i > 0 && a.t[i - 1].kind == TokKind::Ident &&
                        prev != "return" && prev != "case";
        if ((s == "time" || s == "clock") && a.text(i + 1) == "(" &&
            !member && !declared) {
            a.emit(a.t[i].line, "det-wallclock",
                   "wall-clock call '" + s + "(...)' makes runs "
                   "unreproducible; seeds must come from RunOptions");
            continue;
        }
        if (s == "system_clock" || s == "random_device") {
            a.emit(a.t[i].line, "det-wallclock",
                   "'" + s + "' is a nondeterministic source; use "
                   "steady_clock for intervals and RunOptions seeds "
                   "for randomness");
        }
    }
}

void
detUnordered(Analysis &a)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (s != "unordered_map" && s != "unordered_set" &&
            s != "unordered_multimap" && s != "unordered_multiset")
            continue;
        a.emit(a.t[i].line, "det-unordered-container",
               "std::" + s + " iterates in hash order, which varies "
               "across libraries and runs; use std::map/std::set or "
               "a sorted vector in result-affecting code");
        // Find the declared variable name: balance the template
        // argument list, then take the following identifier.
        std::size_t j = i + 1;
        if (a.text(j) != "<")
            continue;
        int depth = 0;
        for (; j < a.t.size(); ++j) {
            const std::string &q = a.t[j].text;
            if (q == "<")
                ++depth;
            else if (q == ">")
                --depth;
            else if (q == ">>")
                depth -= 2;
            if (depth <= 0)
                break;
        }
        ++j;
        while (a.text(j) == "*" || a.text(j) == "&")
            ++j;
        if (j < a.t.size() && a.t[j].kind == TokKind::Ident)
            names.insert(a.t[j].text);
    }
    if (names.empty())
        return;

    for (std::size_t i = 0; i < a.t.size(); ++i) {
        // Range-for whose range expression names an unordered
        // container declared in this file.
        if (a.t[i].text == "for" && a.text(i + 1) == "(") {
            int depth = 0;
            bool seen_colon = false;
            for (std::size_t j = i + 1; j < a.t.size(); ++j) {
                const std::string &q = a.t[j].text;
                if (q == "(") {
                    ++depth;
                } else if (q == ")") {
                    if (--depth == 0)
                        break;
                } else if (q == ":" && depth == 1) {
                    seen_colon = true;
                } else if (seen_colon &&
                           a.t[j].kind == TokKind::Ident &&
                           names.count(q)) {
                    a.emit(a.t[j].line, "det-unordered-iter",
                           "iterating unordered container '" + q +
                           "'; order is nondeterministic — sort "
                           "keys first or use an ordered container");
                    break;
                }
            }
        }
        // Explicit iterator loops: name.begin() / cbegin() / rbegin().
        if (a.t[i].kind == TokKind::Ident && names.count(a.t[i].text) &&
            a.text(i + 1) == "." &&
            (a.text(i + 2) == "begin" || a.text(i + 2) == "cbegin" ||
             a.text(i + 2) == "rbegin")) {
            a.emit(a.t[i].line, "det-unordered-iter",
                   "iterator over unordered container '" +
                   a.t[i].text + "'; order is nondeterministic — "
                   "sort keys first or use an ordered container");
        }
    }
}

void
detFloatReduce(Analysis &a)
{
    for (std::size_t i = 1; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if ((s == "reduce" || s == "transform_reduce") &&
            a.text(i - 1) == "::" && a.text(i + 1) == "(") {
            a.emit(a.t[i].line, "det-float-reduce",
                   "std::" + s + " sums in unspecified order; "
                   "float results vary — use "
                   "exec::parallelSlabReduce or an index-ordered "
                   "loop");
        }
    }
}

// --- safety rules ------------------------------------------------------

void
safeNakedNew(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (a.t[i].kind != TokKind::Ident ||
            (s != "new" && s != "delete"))
            continue;
        const std::string prev = i > 0 ? a.text(i - 1) : "";
        if (prev == "operator")
            continue;
        if (s == "delete" && prev == "=")
            continue; // deleted special member, not a deallocation
        a.emit(a.t[i].line, "safe-naked-new",
               std::string("naked '") + s + "'; prefer "
               "std::make_unique / containers, or suppress where "
               "manual lifetime is the design (lock-free chunks)");
    }
}

void
safeMemcpy(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (a.t[i].kind != TokKind::Ident ||
            (s != "memcpy" && s != "memmove"))
            continue;
        if (a.text(i + 1) != "(")
            continue;
        const std::string prev = i > 0 ? a.text(i - 1) : "";
        if (prev == "." || prev == "->")
            continue;
        if (i > 0 && a.t[i - 1].kind == TokKind::Ident &&
            prev != "return" && prev != "case")
            continue; // `void memcpy(` — a declaration, not a call
        a.emit(a.t[i].line, "safe-memcpy",
               "'" + s + "' bypasses constructors; prove the type "
               "is trivially copyable (static_assert) or use "
               "std::copy");
    }
}

void
safeFloatEq(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if (s != "==" && s != "!=")
            continue;
        bool floaty = (i > 0 && isFloatLiteral(a.t[i - 1])) ||
                      (i + 1 < a.t.size() &&
                       isFloatLiteral(a.t[i + 1]));
        if (!floaty)
            continue;
        a.emit(a.t[i].line, "safe-float-eq",
               "exact floating-point comparison; use a tolerance, "
               "or suppress where bitwise equality is the contract");
    }
}

const std::set<std::string> &
builtinTypeWords()
{
    static const std::set<std::string> kTypes{
        "bool",     "char",     "short",    "int",      "long",
        "unsigned", "signed",   "float",    "double",   "size_t",
        "ssize_t",  "ptrdiff_t", "int8_t",  "int16_t",  "int32_t",
        "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "intptr_t", "uintptr_t"};
    return kTypes;
}

void
safeCCast(Analysis &a)
{
    const std::set<std::string> &types = builtinTypeWords();
    for (std::size_t i = 1; i + 2 < a.t.size(); ++i) {
        if (a.t[i].text != "(")
            continue;
        const Token &p = a.t[i - 1];
        // After an identifier or closing bracket this paren is a
        // call / declarator, not a cast — except after statement
        // keywords like `return`.
        if ((p.kind == TokKind::Ident && p.text != "return" &&
             p.text != "case") ||
            p.text == ")" || p.text == "]" || p.text == ">")
            continue;
        std::size_t j = i + 1;
        bool saw_type = false;
        while (j < a.t.size()) {
            const std::string &q = a.t[j].text;
            if (types.count(q)) {
                saw_type = true;
                ++j;
            } else if (q == "const" || q == "std" || q == "::") {
                ++j;
            } else {
                break;
            }
        }
        while (j < a.t.size() &&
               (a.t[j].text == "*" || a.t[j].text == "&"))
            ++j;
        if (!saw_type || j >= a.t.size() || a.t[j].text != ")")
            continue;
        if (j + 1 >= a.t.size())
            continue;
        const Token &next = a.t[j + 1];
        bool operand = next.kind == TokKind::Ident ||
                       next.kind == TokKind::Number ||
                       next.kind == TokKind::String ||
                       next.text == "(";
        if (!operand || types.count(next.text))
            continue;
        if (!a.emit(a.t[i].line, "safe-c-cast",
                    "C-style cast; use static_cast (or the T(x) "
                    "functional form) so conversions stay searchable "
                    "and checked"))
            continue;

        // --fix: mechanical when the operand is a lone identifier /
        // number (wrap it) or already parenthesized (reuse the
        // parens). Anything longer is left for a human.
        std::string type_text;
        for (std::size_t k = i + 1; k < j; ++k) {
            const std::string &q = a.t[k].text;
            if (!type_text.empty() && q != "::" && q != "*" &&
                q != "&" &&
                type_text.compare(type_text.size() - 2, 2, "::") != 0)
                type_text += ' ';
            type_text += q;
        }
        std::size_t cast_begin = a.t[i].off;
        std::size_t cast_len = a.t[j].off + 1 - cast_begin;
        if (next.text == "(") {
            a.report.fixes.push_back(
                {a.path, cast_begin, cast_len,
                 "static_cast<" + type_text + ">", "safe-c-cast"});
        } else if ((next.kind == TokKind::Ident ||
                    next.kind == TokKind::Number) &&
                   j + 2 < a.t.size()) {
            const std::string &after = a.t[j + 2].text;
            bool lone = after != "(" && after != "[" &&
                        after != "." && after != "->" &&
                        after != "::";
            if (lone) {
                a.report.fixes.push_back(
                    {a.path, cast_begin, cast_len,
                     "static_cast<" + type_text + ">(",
                     "safe-c-cast"});
                a.report.fixes.push_back(
                    {a.path, next.off + next.text.size(), 0, ")",
                     "safe-c-cast"});
            }
        }
    }
}

void
safeNodiscard(Analysis &a)
{
    if (!a.header)
        return;
    for (std::size_t i = 1; i < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident || a.text(i + 1) != "(")
            continue;
        Scope sc = a.ctx.scope[i];
        if (sc != Scope::Class && sc != Scope::Namespace &&
            sc != Scope::TU)
            continue;
        if (a.ctx.paren[i] != 0)
            continue;
        const std::string &name = a.t[i].text;
        bool matches = false;
        for (const std::string &prefix : a.cfg.nodiscard_prefixes) {
            if (name.size() >= prefix.size() &&
                name.compare(0, prefix.size(), prefix) == 0) {
                matches = true;
                break;
            }
        }
        if (!matches)
            continue;
        const std::string &prev = a.text(i - 1);
        if (prev == "." || prev == "->" || prev == "operator")
            continue;
        // Scan back over the declaration for [[nodiscard]] / void.
        bool has_nodiscard = false;
        bool returns_void = false;
        std::size_t decl_tokens = 0;
        for (std::size_t back = 1; back <= i && back <= 48; ++back) {
            const std::string &q = a.t[i - back].text;
            if (q == ";" || q == "{" || q == "}" || q == ":")
                break;
            ++decl_tokens;
            if (q == "nodiscard")
                has_nodiscard = true;
            if (q == "void" && a.text(i - back + 1) != "*")
                returns_void = true;
        }
        if (decl_tokens == 0 || returns_void || has_nodiscard)
            continue;
        a.emit(a.t[i].line, "safe-nodiscard",
               "'" + name + "' returns a status/result that call "
               "sites silently dropped before; mark it "
               "[[nodiscard]]");
    }
}

// --- concurrency rules -------------------------------------------------

/** Words whose presence makes a namespace-scope declaration safe. */
bool
globalStatementIsSafe(const std::vector<Token> &t, std::size_t begin,
                      std::size_t end)
{
    static const std::set<std::string> kSafe{
        "const",     "constexpr", "constinit",  "atomic",
        "mutex",     "shared_mutex", "once_flag", "thread_local",
        "extern",    "using",     "typedef",    "static_assert",
        "friend",    "operator",  "template",   "class",
        "struct",    "enum",      "union",      "namespace",
        "inline",    "noexcept",  "asm"};
    std::size_t first_eq = end;
    for (std::size_t i = begin; i < end; ++i) {
        if (t[i].text == "=") {
            first_eq = i;
            break;
        }
    }
    for (std::size_t i = begin; i < end; ++i) {
        if (kSafe.count(t[i].text))
            return true;
        // A paren before any '=' means a function declaration.
        if (t[i].text == "(" && i < first_eq)
            return true;
    }
    return false;
}

/** Does [begin, end) declare a lock (the adjacency convention)? */
bool
statementDeclaresLock(const std::vector<Token> &t, std::size_t begin,
                      std::size_t end)
{
    for (std::size_t i = begin; i < end; ++i) {
        const std::string &s = t[i].text;
        if (s == "mutex" || s == "shared_mutex" || s == "once_flag")
            return true;
    }
    return false;
}

void
concGlobalMutable(Analysis &a)
{
    std::size_t stmt_begin = 0;
    /** The immediately preceding namespace-scope statement declared
     *  a mutex: by project convention it guards what follows. */
    bool prev_was_lock = false;
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        Scope sc = a.ctx.scope[i];
        const std::string &s = a.t[i].text;
        if (s == "{") {
            // A brace that opens a scope resets the statement; a
            // braced initializer does not (the declaration
            // continues to the ';' after it).
            Scope opened = i + 1 < a.t.size() ? a.ctx.scope[i + 1]
                                              : Scope::Init;
            if (opened != Scope::Init)
                stmt_begin = i + 1;
            continue;
        }
        if (s == "}") {
            // Closing anything but a braced initializer (a function
            // body, class, enum, namespace) starts a new statement.
            if (sc != Scope::Init)
                stmt_begin = i + 1;
            continue;
        }
        bool at_ns = (sc == Scope::Namespace || sc == Scope::TU) &&
                     a.ctx.paren[i] == 0;
        if (!at_ns || s != ";")
            continue;

        std::size_t begin = stmt_begin;
        stmt_begin = i + 1;
        bool guarded = prev_was_lock;
        prev_was_lock = statementDeclaresLock(a.t, begin, i);
        if (i <= begin + 1)
            continue; // too short to declare anything mutable
        if (guarded || globalStatementIsSafe(a.t, begin, i))
            continue;
        // The declared name: the identifier before '=', '{', '['
        // or the terminating ';'.
        std::size_t name_at = a.t.size();
        for (std::size_t j = begin; j < i; ++j) {
            const std::string &q = a.t[j].text;
            if (q == "=" || q == "{" || q == "[")
                break;
            if (a.t[j].kind == TokKind::Ident)
                name_at = j;
        }
        if (name_at >= a.t.size())
            continue;
        a.emit(a.t[name_at].line, "conc-global-mutable",
               "mutable namespace-scope global '" +
               a.t[name_at].text + "'; make it std::atomic, guard "
               "it with a mutex, or make it constexpr");
    }
}

void
concStaticLocal(Analysis &a)
{
    if (!a.header)
        return;
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        if (a.t[i].text != "static")
            continue;
        Scope sc = a.ctx.scope[i];
        if (sc != Scope::Function && sc != Scope::Block)
            continue;
        const std::string &next = a.text(i + 1);
        if (next == "const" || next == "constexpr" ||
            next == "constinit")
            continue;
        a.emit(a.t[i].line, "conc-static-local",
               "mutable function-local static in a header: one "
               "shared instance across every TU and thread; hoist "
               "it into a .cc or make it constexpr");
    }
}

void
concThreadOutsideExec(Analysis &a)
{
    for (std::size_t i = 2; i < a.t.size(); ++i) {
        const std::string &s = a.t[i].text;
        if ((s != "thread" && s != "jthread") ||
            a.text(i - 1) != "::" || a.text(i - 2) != "std")
            continue;
        if (a.text(i + 1) == "::")
            continue; // std::thread::id / hardware_concurrency
        a.emit(a.t[i].line, "conc-thread-outside-exec",
               "raw std::" + s + " outside exec::; use "
               "exec::ThreadPool so join/detach discipline and "
               "worker detection stay centralized");
    }
}

// --- observability rules (per-file half) -------------------------------

/** Counter-name charset: lowercase dotted metric namespace. */
bool
validCounterName(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '.' || c == '*';
        if (!ok)
            return false;
    }
    return true;
}

/**
 * obs-counter-name, per-file half: every string literal passed as
 * the name of a counter/histogram instrument must match
 * `[a-z0-9_.*]+` (the Prometheus-safe project namespace).
 * Registration sites are also summarized for pass 2's registered-
 * once check.
 */
void
obsCounterName(Analysis &a)
{
    static const std::set<std::string> kNameMethods{
        "set", "add", "setSeries", "registerHistogram", "tagGauge"};
    for (std::size_t i = 2; i + 2 < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident ||
            !kNameMethods.count(a.t[i].text))
            continue;
        const std::string &prev = a.text(i - 1);
        if (prev != "." && prev != "->")
            continue;
        if (a.text(i + 1) != "(" ||
            a.t[i + 2].kind != TokKind::String)
            continue;
        const std::string &name = a.t[i + 2].str;
        if (a.t[i].text == "registerHistogram")
            a.report.counter_regs.push_back({name, a.t[i + 2].line});
        if (!validCounterName(name)) {
            a.emit(a.t[i + 2].line, "obs-counter-name",
                   "metric name \"" + name + "\" does not match "
                   "[a-z0-9_.*]+; counter/histogram names are "
                   "lowercase dotted identifiers");
        }
    }
}

// --- hygiene rules -----------------------------------------------------

/** Expected include-guard macro for @p path (src/ prefix dropped). */
std::string
expectedGuard(const std::string &path)
{
    std::string tail = startsWith(path, "src/") ? path.substr(4)
                                                : path;
    std::string guard = "STACK3D_";
    for (char c : tail) {
        if (c >= 'a' && c <= 'z')
            guard += char(c - 'a' + 'A');
        else if ((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
            guard += c;
        else
            guard += '_';
    }
    return guard;
}

/**
 * hyg-header-guard: every header opens with
 * `#ifndef STACK3D_<PATH>` / `#define` of the same macro and closes
 * with `#endif`. One derived spelling per path keeps guards
 * collision-free and greppable.
 */
void
hygHeaderGuard(Analysis &a, const std::vector<PpDirective> &pp)
{
    if (!a.header)
        return;
    std::string expected = expectedGuard(a.path);
    if (pp.empty()) {
        a.emit(1, "hyg-header-guard",
               "header has no include guard; expected '#ifndef " +
               expected + "'");
        return;
    }
    const PpDirective &first = pp.front();
    if (startsWith(first.text, "pragma once")) {
        a.emit(first.line, "hyg-header-guard",
               "'#pragma once' breaks the one-guard-style rule; use "
               "'#ifndef " + expected + "'");
        return;
    }
    if (first.text != "ifndef " + expected) {
        a.emit(first.line, "hyg-header-guard",
               "include guard must be '#ifndef " + expected +
               "' (saw '#" + first.text + "')");
        return;
    }
    if (pp.size() < 2 || pp[1].text != "define " + expected) {
        a.emit(first.line, "hyg-header-guard",
               "'#ifndef " + expected + "' must be followed by "
               "'#define " + expected + "'");
        return;
    }
    if (!startsWith(pp.back().text, "endif")) {
        a.emit(pp.back().line, "hyg-header-guard",
               "header's last directive must be the guard's "
               "'#endif'");
    }
}

// --- whole-program summary collectors ----------------------------------

/** Include edges from the captured preprocessor directives. */
void
collectIncludes(Analysis &a, const std::vector<PpDirective> &pp)
{
    for (const PpDirective &d : pp) {
        if (!startsWith(d.text, "include"))
            continue;
        std::size_t q1 = d.text.find('"');
        if (q1 == std::string::npos)
            continue; // <system> include: outside the layer DAG
        std::size_t q2 = d.text.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        a.report.includes.push_back(
            {d.text.substr(q1 + 1, q2 - q1 - 1), d.line});
    }
}

/**
 * Names declared as std::atomic in this file, and every member call
 * that looks like an atomic access. Pass 2 joins the two across the
 * whole program (atomics declared in headers, used in .cc files).
 */
void
collectAtomics(Analysis &a)
{
    for (std::size_t i = 0; i < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident ||
            a.t[i].text != "atomic" || a.text(i + 1) != "<")
            continue;
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < a.t.size(); ++j) {
            const std::string &q = a.t[j].text;
            if (q == "<")
                ++depth;
            else if (q == ">")
                --depth;
            else if (q == ">>")
                depth -= 2;
            if (depth <= 0)
                break;
        }
        ++j;
        while (a.text(j) == "*" || a.text(j) == "&")
            ++j;
        if (j < a.t.size() && a.t[j].kind == TokKind::Ident)
            a.report.atomic_names.insert(a.t[j].text);
    }

    static const std::set<std::string> kOrderMethods{
        "load", "store", "exchange", "fetch_add", "fetch_sub",
        "fetch_and", "fetch_or", "fetch_xor",
        "compare_exchange_weak", "compare_exchange_strong"};
    for (std::size_t i = 1; i + 1 < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident ||
            !kOrderMethods.count(a.t[i].text))
            continue;
        const std::string &prev = a.text(i - 1);
        if (prev != "." && prev != "->")
            continue;
        if (a.text(i + 1) != "(")
            continue;
        AtomicSite site;
        site.method = a.t[i].text;
        site.line = a.t[i].line;
        if (i >= 2 && a.t[i - 2].kind == TokKind::Ident)
            site.object = a.t[i - 2].text;
        site.empty_args = a.text(i + 2) == ")";
        int depth = 0;
        for (std::size_t j = i + 1; j < a.t.size(); ++j) {
            const std::string &q = a.t[j].text;
            if (q == "(") {
                ++depth;
            } else if (q == ")") {
                if (--depth == 0) {
                    site.close_off = a.t[j].off;
                    break;
                }
            } else if (a.t[j].kind == TokKind::Ident &&
                       startsWith(q, "memory_order")) {
                site.has_order = true;
            }
        }
        if (site.close_off != 0)
            a.report.atomic_sites.push_back(site);
    }
}

/**
 * Wire-schema functions: namespace-scope definitions named
 * `write*Json`, `parse*`, or `*[Dd]igest*`, with the JSON keys they
 * emit (w.key("...")) or consume (read*("...")) and the identifiers
 * in their bodies (for digest-membership checks).
 */
void
collectSchemaFns(Analysis &a)
{
    for (std::size_t i = 0; i + 1 < a.t.size(); ++i) {
        if (a.t[i].kind != TokKind::Ident || a.text(i + 1) != "(")
            continue;
        Scope sc = a.ctx.scope[i];
        if (sc != Scope::TU && sc != Scope::Namespace)
            continue;
        if (a.ctx.paren[i] != 0)
            continue;
        const std::string &name = a.t[i].text;
        bool writer = startsWith(name, "write") &&
                      endsWith(name, "Json") && name.size() > 9;
        bool reader = startsWith(name, "parse") && name.size() > 5;
        bool digest = name.find("Digest") != std::string::npos ||
                      name.find("digest") != std::string::npos;
        if (!writer && !reader && !digest)
            continue;
        const std::string &prev = i > 0 ? a.text(i - 1) : "";
        if (prev == "." || prev == "->" || prev == "::")
            continue; // qualified call, not a definition
        // Find the parameter list's ')' ...
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < a.t.size(); ++j) {
            const std::string &q = a.t[j].text;
            if (q == "(")
                ++depth;
            else if (q == ")" && --depth == 0)
                break;
        }
        // ... then the body '{' (a ';' first means a declaration).
        std::size_t body = j + 1;
        while (body < a.t.size() && a.text(body) != "{" &&
               a.text(body) != ";" && a.text(body) != "=")
            ++body;
        if (body >= a.t.size() || a.text(body) != "{")
            continue;
        SchemaFn fn;
        fn.name = name;
        fn.line = a.t[i].line;
        int braces = 0;
        std::size_t k = body;
        for (; k < a.t.size(); ++k) {
            const std::string &q = a.t[k].text;
            if (q == "{")
                ++braces;
            else if (q == "}" && --braces == 0)
                break;
            if (a.t[k].kind == TokKind::Ident) {
                fn.idents.insert(q);
                bool key_call =
                    (q == "key" || startsWith(q, "read")) &&
                    a.text(k + 1) == "(" && k + 2 < a.t.size() &&
                    a.t[k + 2].kind == TokKind::String;
                if (key_call)
                    fn.keys.push_back(
                        {a.t[k + 2].str, a.t[k + 2].line});
            }
        }
        if (!fn.keys.empty() || digest)
            a.report.schema_fns.push_back(fn);
        i = k;
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> kCatalog{
        {"det-rand", "determinism", false, false,
         "`rand`/`srand`: hidden global RNG state; use "
         "`core::deriveCellSeed`"},
        {"det-wallclock", "determinism", false, false,
         "`time()`/`clock()`/`system_clock`/`random_device` as "
         "entropy or seeds"},
        {"det-unordered-container", "determinism", false, false,
         "`std::unordered_*` in result-affecting code (hash order "
         "leaks)"},
        {"det-unordered-iter", "determinism", false, false,
         "iterating an unordered container declared in the same "
         "file"},
        {"det-float-reduce", "determinism", false, false,
         "`std::reduce`/`transform_reduce`: unspecified summation "
         "order"},
        {"safe-naked-new", "safety", false, false,
         "naked `new`/`delete` outside designed manual-lifetime "
         "code"},
        {"safe-memcpy", "safety", false, false,
         "`memcpy`/`memmove` without a trivially-copyable proof"},
        {"safe-float-eq", "safety", false, false,
         "exact `==`/`!=` against a floating-point literal"},
        {"safe-c-cast", "safety", false, true,
         "C-style casts (config scopes this to `src/`)"},
        {"safe-nodiscard", "safety", false, false,
         "status-returning `parse*`/`try*`/`consume*`/`validate*` "
         "APIs without `[[nodiscard]]`"},
        {"conc-global-mutable", "concurrency", false, false,
         "mutable namespace-scope globals with no atomic/mutex "
         "adjacency"},
        {"conc-static-local", "concurrency", false, false,
         "mutable function-local statics in headers"},
        {"conc-thread-outside-exec", "concurrency", false, false,
         "raw `std::thread` outside `exec::` (and the standalone "
         "lint3d tool)"},
        {"conc-atomic-order", "concurrency", true, true,
         "atomic `load`/`store`/`fetch_*`/`compare_exchange_*` "
         "without an explicit `std::memory_order`"},
        {"arch-layering", "architecture", true, false,
         "`#include` edge that violates the declared layer DAG "
         "(`[layer.*]` in `.lint3d.toml`)"},
        {"wire-schema-parity", "wire", true, false,
         "JSON key emitted by `write*Json` but not parsed by the "
         "paired `parse*` (or vice versa)"},
        {"wire-digest-parity", "wire", true, false,
         "wire key absent from the request digest without a named "
         "`exclude_keys` entry"},
        {"obs-counter-name", "observability", true, false,
         "metric name outside `[a-z0-9_.*]+`, or a histogram "
         "registered under the same name twice"},
        {"hyg-header-guard", "hygiene", false, false,
         "header guard that is not the derived "
         "`STACK3D_<PATH>_HH` spelling"},
        {"lint-stale-suppression", "lint", true, false,
         "a `// lint3d: <rule>-ok` marker that suppresses nothing "
         "(or names an unknown rule)"},
    };
    return kCatalog;
}

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> kRules = [] {
        std::vector<std::string> rules;
        for (const RuleInfo &info : ruleCatalog())
            rules.push_back(info.name);
        return rules;
    }();
    return kRules;
}

FileReport
analyzeFile(const std::string &path, const LexOutput &lexed,
            const Config &cfg)
{
    FileReport report;
    report.path = path;
    report.supp = lexed.supp;
    report.supp_decls = lexed.supp_decls;

    Analysis a{path, lexed.toks, cfg, buildContext(lexed.toks), false,
               report};
    a.header = endsWith(path, ".hh") || endsWith(path, ".hpp") ||
               endsWith(path, ".h");

    detRand(a);
    detWallclock(a);
    detUnordered(a);
    detFloatReduce(a);
    safeNakedNew(a);
    safeMemcpy(a);
    safeFloatEq(a);
    safeCCast(a);
    safeNodiscard(a);
    concGlobalMutable(a);
    concStaticLocal(a);
    concThreadOutsideExec(a);
    obsCounterName(a);
    hygHeaderGuard(a, lexed.pp);

    collectIncludes(a, lexed.pp);
    collectAtomics(a);
    collectSchemaFns(a);

    std::sort(report.findings.begin(), report.findings.end());
    return report;
}

} // namespace lint3d
