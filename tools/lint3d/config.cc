/**
 * @file
 * Parser for the TOML subset `.lint3d.toml` uses:
 *
 *   # comment
 *   paths = ["src", "tests"]
 *   [rule.safe-naked-new]
 *   severity = "error"
 *   allow = ["src/obs/trace.hh"]
 *
 * Top-level keys configure the scan; `[rule.<name>]` sections
 * configure individual rules. Values are double-quoted strings or
 * single-line arrays of them. Anything fancier is a parse error —
 * the config format is deliberately small enough to need no
 * third-party TOML dependency.
 */

#include "lint3d.hh"

#include <sstream>

namespace lint3d {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Strip an unquoted # comment from a config line. */
std::string
stripComment(const std::string &s)
{
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '"' && (i == 0 || s[i - 1] != '\\'))
            in_string = !in_string;
        else if (s[i] == '#' && !in_string)
            return s.substr(0, i);
    }
    return s;
}

bool
parseString(const std::string &value, std::string &out)
{
    if (value.size() < 2 || value.front() != '"' ||
        value.back() != '"')
        return false;
    out = value.substr(1, value.size() - 2);
    return true;
}

bool
parseStringArray(const std::string &value,
                 std::vector<std::string> &out)
{
    std::string v = trim(value);
    if (v.size() < 2 || v.front() != '[' || v.back() != ']')
        return false;
    out.clear();
    std::string inner = trim(v.substr(1, v.size() - 2));
    if (inner.empty())
        return true;
    std::size_t pos = 0;
    while (pos < inner.size()) {
        std::size_t comma = std::string::npos;
        bool in_string = false;
        for (std::size_t i = pos; i < inner.size(); ++i) {
            if (inner[i] == '"' && (i == 0 || inner[i - 1] != '\\'))
                in_string = !in_string;
            else if (inner[i] == ',' && !in_string) {
                comma = i;
                break;
            }
        }
        std::string item = trim(
            inner.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos));
        std::string parsed;
        if (!parseString(item, parsed))
            return false;
        out.push_back(parsed);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

} // namespace

const RuleConfig &
Config::ruleConfig(const std::string &rule) const
{
    static const RuleConfig kDefault;
    auto it = rules.find(rule);
    return it == rules.end() ? kDefault : it->second;
}

bool
parseConfig(const std::string &text, Config &out, std::string &error)
{
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    /** Empty = top level; otherwise the current section name. */
    std::string section;
    /** Whether `section` names a [layer.*] (vs [rule.*]) section. */
    bool in_layer = false;

    auto fail = [&](const std::string &what) {
        std::ostringstream os;
        os << "line " << lineno << ": " << what;
        error = os.str();
        return false;
    };

    while (std::getline(in, raw)) {
        ++lineno;
        std::string lineText = trim(stripComment(raw));
        if (lineText.empty())
            continue;

        if (lineText.front() == '[') {
            if (lineText.back() != ']')
                return fail("unterminated section header");
            std::string name =
                trim(lineText.substr(1, lineText.size() - 2));
            const std::string rule_prefix = "rule.";
            const std::string layer_prefix = "layer.";
            if (name.compare(0, rule_prefix.size(), rule_prefix) ==
                0) {
                in_layer = false;
                section = name.substr(rule_prefix.size());
                if (section.empty())
                    return fail("empty rule name");
                out.rules[section]; // default-construct the entry
            } else if (name.compare(0, layer_prefix.size(),
                                    layer_prefix) == 0) {
                in_layer = true;
                section = name.substr(layer_prefix.size());
                if (section.empty())
                    return fail("empty layer name");
                out.layers[section]; // default-construct the entry
            } else {
                return fail("unknown section '" + name +
                            "' (expected [rule.<name>] or "
                            "[layer.<name>])");
            }
            continue;
        }

        std::size_t eq = lineText.find('=');
        if (eq == std::string::npos)
            return fail("expected key = value");
        std::string key = trim(lineText.substr(0, eq));
        std::string value = trim(lineText.substr(eq + 1));
        if (key.empty())
            return fail("empty key");

        if (section.empty()) {
            if (key == "paths") {
                if (!parseStringArray(value, out.paths))
                    return fail("'paths' must be a string array");
            } else if (key == "exclude") {
                if (!parseStringArray(value, out.exclude))
                    return fail("'exclude' must be a string array");
            } else if (key == "extensions") {
                if (!parseStringArray(value, out.extensions))
                    return fail("'extensions' must be a string array");
            } else if (key == "nodiscard_prefixes") {
                if (!parseStringArray(value, out.nodiscard_prefixes))
                    return fail("'nodiscard_prefixes' must be a "
                                "string array");
            } else {
                return fail("unknown top-level key '" + key + "'");
            }
            continue;
        }

        if (in_layer) {
            LayerConfig &layer = out.layers[section];
            if (key == "path") {
                if (!parseString(value, layer.path))
                    return fail("'path' must be a string");
            } else if (key == "deps") {
                if (!parseStringArray(value, layer.deps))
                    return fail("'deps' must be a string array");
            } else {
                return fail("unknown layer key '" + key + "'");
            }
            continue;
        }

        RuleConfig &rule = out.rules[section];
        if (key == "severity") {
            std::string sev;
            if (!parseString(value, sev) ||
                (sev != "error" && sev != "warn" && sev != "off")) {
                return fail("severity must be \"error\", \"warn\" or "
                            "\"off\"");
            }
            rule.severity = sev;
        } else if (key == "allow") {
            if (!parseStringArray(value, rule.allow))
                return fail("'allow' must be a string array");
        } else if (key == "paths") {
            if (!parseStringArray(value, rule.paths))
                return fail("'paths' must be a string array");
        } else if (key == "exclude_keys") {
            if (!parseStringArray(value, rule.exclude_keys))
                return fail("'exclude_keys' must be a string array");
        } else if (key == "pairs") {
            if (!parseStringArray(value, rule.pairs))
                return fail("'pairs' must be a string array");
        } else {
            return fail("unknown rule key '" + key + "'");
        }
    }
    // Every declared layer needs a path, and deps must name declared
    // layers (catching typos here beats silently-inert rules).
    for (const auto &entry : out.layers) {
        if (entry.second.path.empty()) {
            error = "layer '" + entry.first + "' is missing 'path'";
            return false;
        }
        for (const std::string &dep : entry.second.deps) {
            if (!out.layers.count(dep)) {
                error = "layer '" + entry.first +
                        "' depends on undeclared layer '" + dep + "'";
                return false;
            }
        }
    }
    return true;
}

} // namespace lint3d
