/**
 * @file
 * lint3d pass 2: whole-program rules over the merged per-file
 * summaries. Everything here is pure computation over pass-1 data —
 * no filesystem access — so the result is a function of the scanned
 * file set alone and stays byte-stable at any pass-1 thread count.
 *
 * Rules:
 *  - arch-layering: every resolved `#include "..."` edge must follow
 *    the layer DAG declared in `[layer.*]` config sections (own
 *    layer, or the transitive closure of declared deps).
 *  - conc-atomic-order: atomic member calls must name an explicit
 *    std::memory_order. Atomic object names are unioned across all
 *    files (declared in headers, used in .cc files); the
 *    atomic-specific methods (fetch_*, compare_exchange_*) are
 *    checked even when the object cannot be resolved.
 *  - wire-schema-parity: for each same-file write<Stem>Json /
 *    parse<Stem> pair, the emitted and parsed JSON key sets must
 *    match.
 *  - wire-digest-parity: for configured pair stems, every emitted
 *    wire key must feed the request digest (appear inside an
 *    identifier of a *Digest* function in the same file) or be named
 *    in `exclude_keys`.
 *  - obs-counter-name (cross-file half): a histogram name is
 *    registered at most once in the whole program.
 *  - lint-stale-suppression: resolved last, after every other rule
 *    has had the chance to consume suppressions.
 */

#include "lint3d.hh"

#include <algorithm>

namespace lint3d {

namespace {

bool
underAny(const std::string &path,
         const std::vector<std::string> &prefixes)
{
    for (const std::string &p : prefixes) {
        if (p.empty())
            continue;
        if (path.compare(0, p.size(), p) == 0)
            return true;
    }
    return false;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** Finding sink for pass 2 — same gating as pass 1's Analysis. */
struct ProgramEmitter
{
    std::vector<FileReport> &reports;
    const Config &cfg;
    std::map<std::string, std::size_t> index;

    explicit
    ProgramEmitter(std::vector<FileReport> &reports_,
                   const Config &cfg_)
        : reports(reports_), cfg(cfg_)
    {
        for (std::size_t i = 0; i < reports.size(); ++i)
            index[reports[i].path] = i;
    }

    FileReport &
    reportFor(const std::string &path)
    {
        return reports[index.at(path)];
    }

    bool
    emit(const std::string &path, int line, const std::string &rule,
         const std::string &msg)
    {
        const RuleConfig &rc = cfg.ruleConfig(rule);
        if (rc.severity == "off")
            return false;
        if (underAny(path, rc.allow))
            return false;
        if (!rc.paths.empty() && !underAny(path, rc.paths))
            return false;
        FileReport &report = reportFor(path);
        auto it = report.supp.find(line);
        if (it != report.supp.end() && it->second.count(rule)) {
            ++report.suppressed;
            report.supp_used.insert({line, rule});
            return false;
        }
        report.findings.push_back(
            {path, line, rule, rc.severity, msg});
        return true;
    }
};

// --- arch-layering -----------------------------------------------------

/** Layer owning @p path: longest declared path-prefix match. */
std::string
layerOf(const std::string &path, const Config &cfg)
{
    std::string best;
    std::size_t best_len = 0;
    for (const auto &entry : cfg.layers) {
        const std::string &prefix = entry.second.path;
        bool match = path == prefix ||
                     (path.size() > prefix.size() &&
                      startsWith(path, prefix + "/"));
        if (match && prefix.size() >= best_len) {
            best = entry.first;
            best_len = prefix.size();
        }
    }
    return best;
}

/** Transitive closure of the declared deps (fixpoint; cycle-safe). */
std::map<std::string, std::set<std::string>>
layerClosure(const Config &cfg)
{
    std::map<std::string, std::set<std::string>> closure;
    for (const auto &entry : cfg.layers) {
        closure[entry.first].insert(entry.second.deps.begin(),
                                    entry.second.deps.end());
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &entry : closure) {
            std::set<std::string> next = entry.second;
            for (const std::string &dep : entry.second) {
                const std::set<std::string> &sub = closure[dep];
                next.insert(sub.begin(), sub.end());
            }
            if (next.size() != entry.second.size()) {
                entry.second = std::move(next);
                changed = true;
            }
        }
    }
    return closure;
}

/**
 * Resolve an include string against the scanned file set: relative
 * to the including file's directory first (how the build's include
 * paths work for sibling headers), then the src/ root, then the repo
 * root. Unresolved includes (system headers) are outside the DAG.
 */
std::string
resolveInclude(const std::string &includer, const std::string &inc,
               const std::set<std::string> &files)
{
    std::size_t slash = includer.rfind('/');
    if (slash != std::string::npos) {
        std::string sibling = includer.substr(0, slash + 1) + inc;
        if (files.count(sibling))
            return sibling;
    }
    if (files.count("src/" + inc))
        return "src/" + inc;
    if (files.count(inc))
        return inc;
    return "";
}

void
checkLayering(ProgramEmitter &em)
{
    if (em.cfg.layers.empty())
        return;
    std::set<std::string> files;
    for (const FileReport &r : em.reports)
        files.insert(r.path);
    auto closure = layerClosure(em.cfg);

    for (std::size_t i = 0; i < em.reports.size(); ++i) {
        const FileReport &r = em.reports[i];
        std::string from = layerOf(r.path, em.cfg);
        if (from.empty())
            continue; // outside the DAG (tests, bench, examples)
        for (const IncludeEdge &edge : r.includes) {
            std::string target =
                resolveInclude(r.path, edge.target, files);
            if (target.empty())
                continue;
            std::string to = layerOf(target, em.cfg);
            if (to.empty() || to == from)
                continue;
            if (closure[from].count(to))
                continue;
            std::string deps;
            for (const std::string &d :
                 em.cfg.layers.at(from).deps) {
                deps += deps.empty() ? d : ", " + d;
            }
            em.emit(r.path, edge.line, "arch-layering",
                    "include of \"" + edge.target +
                    "\" crosses the layer DAG: layer '" + from +
                    "' may not depend on '" + to +
                    "' (declared deps: " +
                    (deps.empty() ? "none" : deps) + ")");
        }
    }
}

// --- conc-atomic-order -------------------------------------------------

bool
distinctiveAtomicMethod(const std::string &m)
{
    return startsWith(m, "fetch_") ||
           startsWith(m, "compare_exchange_");
}

void
checkAtomicOrder(ProgramEmitter &em)
{
    std::set<std::string> atomics;
    for (const FileReport &r : em.reports)
        atomics.insert(r.atomic_names.begin(), r.atomic_names.end());

    for (std::size_t i = 0; i < em.reports.size(); ++i) {
        // Collect first: emitting appends to this report's vectors.
        std::vector<AtomicSite> sites = em.reports[i].atomic_sites;
        std::string path = em.reports[i].path;
        for (const AtomicSite &site : sites) {
            if (site.has_order)
                continue;
            bool known = !site.object.empty() &&
                         atomics.count(site.object);
            if (!known && !distinctiveAtomicMethod(site.method))
                continue;
            if (!em.emit(path, site.line, "conc-atomic-order",
                         "atomic '" +
                         (site.object.empty() ? std::string("<expr>")
                                              : site.object) +
                         "." + site.method + "' relies on the "
                         "implicit seq_cst default; name the "
                         "memory_order (and why) explicitly"))
                continue;
            // --fix: make the default explicit. Never changes
            // behavior — seq_cst was already the semantics.
            em.reportFor(path).fixes.push_back(
                {path, site.close_off, 0,
                 site.empty_args
                     ? std::string("std::memory_order_seq_cst")
                     : std::string(", std::memory_order_seq_cst"),
                 "conc-atomic-order"});
        }
    }
}

// --- wire-schema-parity / wire-digest-parity ---------------------------

std::string
writerStem(const std::string &name)
{
    // write<Stem>Json
    if (startsWith(name, "write") && name.size() > 9 &&
        name.compare(name.size() - 4, 4, "Json") == 0)
        return name.substr(5, name.size() - 9);
    return "";
}

std::string
readerStem(const std::string &name)
{
    if (startsWith(name, "parse") && name.size() > 5)
        return name.substr(5);
    return "";
}

bool
isDigestFn(const std::string &name)
{
    return name.find("Digest") != std::string::npos ||
           name.find("digest") != std::string::npos;
}

std::set<std::string>
keyNames(const SchemaFn &fn)
{
    std::set<std::string> names;
    for (const auto &k : fn.keys)
        names.insert(k.first);
    return names;
}

void
checkWireSchema(ProgramEmitter &em)
{
    const RuleConfig &digest_rc =
        em.cfg.ruleConfig("wire-digest-parity");

    for (std::size_t i = 0; i < em.reports.size(); ++i) {
        // Copy: emitting appends to this report's finding vector.
        std::vector<SchemaFn> fns = em.reports[i].schema_fns;
        std::string path = em.reports[i].path;

        std::map<std::string, const SchemaFn *> writers, readers;
        std::vector<const SchemaFn *> digests;
        for (const SchemaFn &fn : fns) {
            std::string w = writerStem(fn.name);
            if (!w.empty())
                writers[w] = &fn;
            std::string r = readerStem(fn.name);
            if (!r.empty())
                readers[r] = &fn;
            if (isDigestFn(fn.name))
                digests.push_back(&fn);
        }

        for (const auto &entry : writers) {
            auto rit = readers.find(entry.first);
            if (rit == readers.end())
                continue; // write-only (result emission): no parity
            const SchemaFn &w = *entry.second;
            const SchemaFn &r = *rit->second;
            std::set<std::string> wkeys = keyNames(w);
            std::set<std::string> rkeys = keyNames(r);
            for (const auto &k : w.keys) {
                if (!rkeys.count(k.first)) {
                    em.emit(path, k.second, "wire-schema-parity",
                            "key \"" + k.first + "\" is emitted by " +
                            w.name + " but never parsed by " +
                            r.name + " — the field will not survive "
                            "a round trip");
                }
            }
            for (const auto &k : r.keys) {
                if (!wkeys.count(k.first)) {
                    em.emit(path, k.second, "wire-schema-parity",
                            "key \"" + k.first + "\" is parsed by " +
                            r.name + " but never emitted by " +
                            w.name + " — dead wire field or a "
                            "misspelled writer key");
                }
            }
        }

        // Digest parity for the configured pair stems.
        for (const std::string &stem : digest_rc.pairs) {
            auto wit = writers.find(stem);
            if (wit == writers.end() || digests.empty())
                continue;
            for (const auto &k : wit->second->keys) {
                bool excluded = std::find(
                    digest_rc.exclude_keys.begin(),
                    digest_rc.exclude_keys.end(),
                    k.first) != digest_rc.exclude_keys.end();
                if (excluded)
                    continue;
                bool in_digest = false;
                for (const SchemaFn *d : digests) {
                    for (const std::string &ident : d->idents) {
                        if (ident.find(k.first) !=
                            std::string::npos) {
                            in_digest = true;
                            break;
                        }
                    }
                    if (in_digest)
                        break;
                }
                if (!in_digest) {
                    em.emit(path, k.second, "wire-digest-parity",
                            "wire key \"" + k.first + "\" of " +
                            wit->second->name + " never reaches the "
                            "request digest — two requests differing "
                            "only in it would share a cache entry; "
                            "mix it into the digest or name it in "
                            "exclude_keys with a rationale");
                }
            }
        }
    }
}

// --- obs-counter-name (duplicate registration) -------------------------

void
checkCounterDup(ProgramEmitter &em)
{
    struct Site { std::string path; int line; };
    std::map<std::string, std::vector<Site>> regs;
    for (const FileReport &r : em.reports) {
        for (const CounterReg &reg : r.counter_regs)
            regs[reg.name].push_back({r.path, reg.line});
    }
    for (const auto &entry : regs) {
        if (entry.second.size() < 2)
            continue;
        const Site &first = entry.second.front();
        for (std::size_t i = 1; i < entry.second.size(); ++i) {
            const Site &s = entry.second[i];
            em.emit(s.path, s.line, "obs-counter-name",
                    "histogram \"" + entry.first + "\" is already "
                    "registered at " + first.path + ":" +
                    std::to_string(first.line) + "; instrument "
                    "names must be unique program-wide");
        }
    }
}

// --- lint-stale-suppression --------------------------------------------

void
checkStaleSuppressions(ProgramEmitter &em)
{
    const std::vector<std::string> &known = allRules();
    auto is_known = [&](const std::string &rule) {
        return std::find(known.begin(), known.end(), rule) !=
               known.end();
    };

    // Two sweeps: resolve markers for every other rule first, so a
    // marker that waives a stale-suppression finding registers as
    // used before its own staleness is judged.
    for (int sweep = 0; sweep < 2; ++sweep) {
        for (std::size_t i = 0; i < em.reports.size(); ++i) {
            std::vector<SuppressionDecl> decls =
                em.reports[i].supp_decls;
            std::string path = em.reports[i].path;
            for (const SuppressionDecl &decl : decls) {
                bool own_rule =
                    decl.rule == "lint-stale-suppression";
                if (own_rule != (sweep == 1))
                    continue;
                if (!is_known(decl.rule)) {
                    em.emit(path, decl.comment_line,
                            "lint-stale-suppression",
                            "suppression names unknown rule '" +
                            decl.rule + "' — typo, or the rule was "
                            "removed");
                    continue;
                }
                const FileReport &r = em.reports[i];
                bool used = false;
                for (int covered : decl.lines) {
                    if (r.supp_used.count({covered, decl.rule})) {
                        used = true;
                        break;
                    }
                }
                if (!used) {
                    em.emit(path, decl.comment_line,
                            "lint-stale-suppression",
                            "'" + decl.rule + "-ok' suppresses "
                            "nothing here — the finding moved or "
                            "was fixed; delete the marker");
                }
            }
        }
    }
}

} // namespace

void
analyzeProgram(std::vector<FileReport> &reports, const Config &cfg)
{
    ProgramEmitter em(reports, cfg);
    checkLayering(em);
    checkAtomicOrder(em);
    checkWireSchema(em);
    checkCounterDup(em);
    // Last: every other rule must have consumed its suppressions.
    checkStaleSuppressions(em);

    for (FileReport &r : reports)
        std::sort(r.findings.begin(), r.findings.end());
}

} // namespace lint3d
