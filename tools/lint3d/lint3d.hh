/**
 * @file
 * lint3d — the stack3d project linter.
 *
 * A self-contained, tokenizer-based static analyzer (no libclang)
 * that enforces the project-specific rules the simulator's
 * bit-reproducibility guarantees depend on. Since v2 it is a
 * whole-program analyzer with a two-pass architecture:
 *
 *  pass 1  per-file: lex, classify brace scopes, run the per-file
 *          rules, and build a FileSummary (include edges, atomic
 *          names and call sites, wire-schema functions, counter
 *          registrations, suppression declarations). Files are
 *          analyzed in parallel by worker threads; results are
 *          merged in path order so output is byte-stable at any
 *          thread count.
 *  pass 2  whole-program: cross-file rules over the merged model —
 *          arch-layering (the declared layer DAG), conc-atomic-order
 *          (atomics resolved across headers), wire-schema-parity /
 *          wire-digest-parity (toJson vs fromJson vs digest key
 *          sets), obs-counter-name duplicate registration, and
 *          lint-stale-suppression (suppressions that waived
 *          nothing).
 *
 * Rule families: determinism (det-*), safety (safe-*), concurrency
 * (conc-*), architecture (arch-*), wire schema (wire-*),
 * observability (obs-*), hygiene (hyg-*), and lint self-hygiene
 * (lint-*). `lint3d --list-rules --markdown` prints the generated
 * catalog that DESIGN.md embeds.
 *
 * Configuration lives in a repo-root `.lint3d.toml` (scan paths,
 * per-rule severity / allow lists, the `[layer.<name>]` DAG).
 * Individual findings are suppressed with `// lint3d: <rule>-ok` on
 * the offending line, or on a whole-line comment immediately above
 * it. Findings emit as human-readable text, JSON, and SARIF 2.1.0;
 * the exit status is non-zero when any unsuppressed error-severity
 * finding remains.
 *
 * The analyzer is heuristic by design: it sees tokens, not types.
 * The rules are tuned so that everything they flag in this codebase
 * is either a real hazard or worth an explicit, named suppression.
 */

#ifndef STACK3D_TOOLS_LINT3D_LINT3D_HH
#define STACK3D_TOOLS_LINT3D_LINT3D_HH

#include <cstddef>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace lint3d {

/** Lexical category of one token. */
enum class TokKind { Ident, Number, String, CharLit, Punct };

/** One source token (comments and preprocessor lines are skipped). */
struct Token
{
    TokKind kind = TokKind::Punct;

    /** Token spelling; String tokens lex as "\"\"" so literal
     *  contents can never match a rule trigger word or confuse the
     *  brace-scope classifier. */
    std::string text;

    /** String tokens only: the literal's contents, quotes stripped
     *  (the wire and counter rules inspect key spellings). */
    std::string str;

    int line = 1;

    /** Byte offset of the token's first character in the source —
     *  what --fix edits anchor to. */
    std::size_t off = 0;
};

/**
 * Per-line suppressions parsed from comments: line number -> the set
 * of rule names suppressed on that line. A whole-line comment
 * suppresses the following line as well (NOLINTNEXTLINE-style).
 */
using Suppressions = std::map<int, std::set<std::string>>;

/**
 * One `// lint3d: <rule>-ok` marker as written in the source: where
 * the comment sits and which lines it covers. Pass 2 compares these
 * against the suppressions that actually fired to find stale ones.
 */
struct SuppressionDecl
{
    std::string rule;
    int comment_line = 0;
    /** Lines the marker covers (the comment line, +1 if whole-line). */
    std::vector<int> lines;
};

/** One preprocessor directive (trimmed text, no leading '#'). */
struct PpDirective
{
    int line = 0;
    std::string text;
};

/** Everything the lexer extracts from one file. */
struct LexOutput
{
    std::vector<Token> toks;
    Suppressions supp;
    std::vector<SuppressionDecl> supp_decls;
    std::vector<PpDirective> pp;
};

/**
 * Tokenize C++ source. Comments, char literal contents, and
 * preprocessor directives never produce Ident/Punct tokens, so rule
 * trigger words inside them cannot match (string literal *contents*
 * are kept on the String token for the wire/counter rules, but never
 * lex as identifiers). Multi-character operators (::, ->, ==, !=,
 * <=, >=, &&, ||, <<, >>, [[, ]]) lex as single tokens.
 */
LexOutput lex(const std::string &source);

/** Per-rule configuration. */
struct RuleConfig
{
    /** "error" (gates), "warn" (reported only), or "off". */
    std::string severity = "error";

    /** Path prefixes (relative, '/'-separated) exempt from the rule. */
    std::vector<std::string> allow;

    /** When non-empty, the rule only applies under these prefixes. */
    std::vector<std::string> paths;

    /** wire-digest-parity: keys deliberately absent from the digest
     *  (execution knobs like "threads" that must not affect cache
     *  identity). */
    std::vector<std::string> exclude_keys;

    /** wire-digest-parity: schema pair stems whose keys must reach
     *  the digest (e.g. "RunOptions"; spec pairs are covered because
     *  the digest mixes their whole canonical JSON). */
    std::vector<std::string> pairs;
};

/** One declared architecture layer (a `[layer.<name>]` section). */
struct LayerConfig
{
    /** Path prefix owning the layer's files ("src/core"). */
    std::string path;

    /** Layers this one may include (transitive closure is taken). */
    std::vector<std::string> deps;
};

/** The parsed `.lint3d.toml`. */
struct Config
{
    /** Directories scanned, relative to the root. */
    std::vector<std::string> paths{"src", "tests", "bench",
                                   "examples", "tools"};

    /** Path prefixes never scanned (fixtures, build trees). */
    std::vector<std::string> exclude;

    /** File extensions considered C++ source. */
    std::vector<std::string> extensions{".cc", ".hh", ".cpp", ".hpp",
                                        ".h"};

    /** Function-name prefixes safe-nodiscard checks in headers. */
    std::vector<std::string> nodiscard_prefixes{"parse", "try",
                                                "consume", "validate"};

    std::map<std::string, RuleConfig> rules;

    /** The declared layer DAG (empty: arch-layering is inert). */
    std::map<std::string, LayerConfig> layers;

    /** Effective config for @p rule (defaults when unconfigured). */
    const RuleConfig &ruleConfig(const std::string &rule) const;
};

/**
 * Parse the TOML subset lint3d understands: `key = value` pairs at
 * top level, `[rule.<name>]` / `[layer.<name>]` sections, string /
 * single-line string array values, and # comments. @return false
 * (with @p error set) on malformed input.
 */
[[nodiscard]] bool parseConfig(const std::string &text, Config &out,
                               std::string &error);

/** One reported rule violation. */
struct Finding
{
    std::string file;   ///< path relative to the scan root
    int line = 0;
    std::string rule;
    std::string severity;
    std::string message;

    bool
    operator<(const Finding &other) const
    {
        if (file != other.file)
            return file < other.file;
        if (line != other.line)
            return line < other.line;
        if (rule != other.rule)
            return rule < other.rule;
        return message < other.message;
    }
};

/** One mechanical edit --fix can apply (replace [off, off+len)). */
struct FixEdit
{
    std::string file;
    std::size_t off = 0;
    std::size_t len = 0;
    std::string replacement;
    std::string rule;

    bool
    operator<(const FixEdit &other) const
    {
        if (file != other.file)
            return file < other.file;
        return off < other.off;
    }
};

/** One `#include "..."` edge out of a file. */
struct IncludeEdge
{
    std::string target;   ///< the include string, verbatim
    int line = 0;
};

/** One member call on a (possibly) atomic object. */
struct AtomicSite
{
    std::string object;   ///< identifier before '.'/'->' ("" unknown)
    std::string method;   ///< load/store/fetch_*/compare_exchange_*
    int line = 0;
    bool has_order = false;   ///< names a std::memory_order argument
    bool empty_args = false;
    std::size_t close_off = 0;   ///< offset of the call's ')'
};

/** Key sets of one wire-schema function (write*Json / parse*). */
struct SchemaFn
{
    std::string name;
    int line = 0;
    /** JSON keys emitted (w.key("...")) or consumed (read*("...")). */
    std::vector<std::pair<std::string, int>> keys;
    /** All identifiers in the body (digest membership checks). */
    std::set<std::string> idents;
};

/** One obs instrument registration (registerHistogram). */
struct CounterReg
{
    std::string name;
    int line = 0;
};

/** Result of analyzing one file: findings plus the pass-2 summary. */
struct FileReport
{
    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    std::vector<FixEdit> fixes;

    // --- whole-program summary ---------------------------------------
    std::string path;
    std::vector<IncludeEdge> includes;
    std::set<std::string> atomic_names;
    std::vector<AtomicSite> atomic_sites;
    std::vector<SchemaFn> schema_fns;
    std::vector<CounterReg> counter_regs;
    Suppressions supp;
    std::vector<SuppressionDecl> supp_decls;
    /** (line, rule) suppressions that fired during pass 1. */
    std::set<std::pair<int, std::string>> supp_used;
};

/**
 * Pass 1: run every per-file rule over one lexed file and collect
 * its whole-program summary. @p path must be the root-relative path
 * with '/' separators (used for allow-list and paths matching).
 */
FileReport analyzeFile(const std::string &path, const LexOutput &lexed,
                       const Config &cfg);

/**
 * Pass 2: cross-file rules over every pass-1 summary (which must be
 * in path order). Emits findings/fixes into the reports' owning
 * entries and finally resolves lint-stale-suppression.
 */
void analyzeProgram(std::vector<FileReport> &reports,
                    const Config &cfg);

/** One catalog entry: rule metadata for --list-rules and SARIF. */
struct RuleInfo
{
    const char *name;
    const char *family;
    /** True for whole-program (pass 2) rules. */
    bool cross_file;
    /** True when --fix can mechanically repair findings. */
    bool fixable;
    const char *summary;
};

/** The full rule catalog, in stable display order. */
const std::vector<RuleInfo> &ruleCatalog();

/** Names of all implemented rules (for --list-rules and tests). */
const std::vector<std::string> &allRules();

// --- report writers (report.cc) ---------------------------------------

/** The stable machine-readable JSON report (version 2). */
void writeJsonReport(std::ostream &os,
                     const std::vector<Finding> &findings,
                     std::size_t files_scanned, std::size_t suppressed);

/** SARIF 2.1.0 (GitHub code scanning ingestible). */
void writeSarifReport(std::ostream &os,
                      const std::vector<Finding> &findings);

/** The --list-rules --markdown catalog table. */
void writeRuleCatalogMarkdown(std::ostream &os, const Config &cfg);

// --- autofix (fix.cc) --------------------------------------------------

/**
 * Apply every fix edit attached to @p reports, rewriting files under
 * @p root in place. Edits apply in descending offset order per file;
 * overlapping edits are skipped with a warning. @return the number
 * of edits applied (@p files_changed counts rewritten files).
 */
std::size_t applyFixes(const std::string &root,
                       const std::vector<FileReport> &reports,
                       std::size_t &files_changed);

} // namespace lint3d

#endif // STACK3D_TOOLS_LINT3D_LINT3D_HH
