/**
 * @file
 * lint3d — the stack3d project linter.
 *
 * A self-contained, tokenizer-based static analyzer (no libclang)
 * that enforces the project-specific rules the simulator's
 * bit-reproducibility guarantees depend on. Three rule families:
 *
 *  determinism  det-rand, det-wallclock, det-unordered-container,
 *               det-unordered-iter, det-float-reduce
 *  safety       safe-naked-new, safe-memcpy, safe-float-eq,
 *               safe-c-cast, safe-nodiscard
 *  concurrency  conc-global-mutable, conc-static-local,
 *               conc-thread-outside-exec
 *
 * Configuration lives in a repo-root `.lint3d.toml` (scan paths,
 * per-rule severity / allow lists). Individual findings are
 * suppressed with `// lint3d: <rule>-ok` on the offending line, or
 * on a whole-line comment immediately above it. Findings emit as
 * human-readable text and as JSON for CI gating; the exit status is
 * non-zero when any unsuppressed error-severity finding remains.
 *
 * The analyzer is heuristic by design: it sees tokens, not types.
 * The rules are tuned so that everything they flag in this codebase
 * is either a real hazard or worth an explicit, named suppression.
 */

#ifndef STACK3D_TOOLS_LINT3D_HH
#define STACK3D_TOOLS_LINT3D_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lint3d {

/** Lexical category of one token. */
enum class TokKind { Ident, Number, String, CharLit, Punct };

/** One source token (comments and preprocessor lines are skipped). */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 1;
};

/**
 * Per-line suppressions parsed from comments: line number -> the set
 * of rule names suppressed on that line. A whole-line comment
 * suppresses the following line as well (NOLINTNEXTLINE-style).
 */
using Suppressions = std::map<int, std::set<std::string>>;

/**
 * Tokenize C++ source. Comments, string/char literal *contents*, and
 * preprocessor directives never produce Ident/Punct tokens, so rule
 * trigger words inside them cannot match. Multi-character operators
 * (::, ->, ==, !=, <=, >=, &&, ||, <<, >>) lex as single tokens.
 */
std::vector<Token> lex(const std::string &source, Suppressions &supp);

/** Per-rule configuration. */
struct RuleConfig
{
    /** "error" (gates), "warn" (reported only), or "off". */
    std::string severity = "error";

    /** Path prefixes (relative, '/'-separated) exempt from the rule. */
    std::vector<std::string> allow;

    /** When non-empty, the rule only applies under these prefixes. */
    std::vector<std::string> paths;
};

/** The parsed `.lint3d.toml`. */
struct Config
{
    /** Directories scanned, relative to the root. */
    std::vector<std::string> paths{"src", "tests", "bench",
                                   "examples", "tools"};

    /** Path prefixes never scanned (fixtures, build trees). */
    std::vector<std::string> exclude;

    /** File extensions considered C++ source. */
    std::vector<std::string> extensions{".cc", ".hh", ".cpp", ".hpp",
                                        ".h"};

    /** Function-name prefixes safe-nodiscard checks in headers. */
    std::vector<std::string> nodiscard_prefixes{"parse", "try",
                                                "consume", "validate"};

    std::map<std::string, RuleConfig> rules;

    /** Effective config for @p rule (defaults when unconfigured). */
    const RuleConfig &ruleConfig(const std::string &rule) const;
};

/**
 * Parse the TOML subset lint3d understands: `key = value` pairs at
 * top level, `[rule.<name>]` sections, string / single-line string
 * array values, and # comments. @return false (with @p error set)
 * on malformed input.
 */
[[nodiscard]] bool parseConfig(const std::string &text, Config &out,
                               std::string &error);

/** One reported rule violation. */
struct Finding
{
    std::string file;   ///< path relative to the scan root
    int line = 0;
    std::string rule;
    std::string severity;
    std::string message;

    bool
    operator<(const Finding &other) const
    {
        if (file != other.file)
            return file < other.file;
        if (line != other.line)
            return line < other.line;
        return rule < other.rule;
    }
};

/** Result of analyzing one file. */
struct FileReport
{
    std::vector<Finding> findings;
    std::size_t suppressed = 0;
};

/**
 * Run every enabled rule over one tokenized file. @p path must be
 * the root-relative path with '/' separators (used for allow-list
 * and paths matching).
 */
FileReport analyzeFile(const std::string &path,
                       const std::vector<Token> &toks,
                       const Suppressions &supp, const Config &cfg);

/** Names of all implemented rules (for --list-rules and tests). */
const std::vector<std::string> &allRules();

} // namespace lint3d

#endif // STACK3D_TOOLS_LINT3D_HH
