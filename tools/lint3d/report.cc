/**
 * @file
 * lint3d report writers. All three formats are emitted from the same
 * sorted finding list, with no timestamps or absolute paths, so a
 * given tree always produces byte-identical reports (the determinism
 * gate in tests/ diffs two runs at different thread counts).
 */

#include "lint3d.hh"

#include <ostream>

namespace lint3d {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
writeJsonReport(std::ostream &os, const std::vector<Finding> &findings,
                std::size_t files_scanned, std::size_t suppressed)
{
    os << "{\n";
    os << "  \"version\": 2,\n";
    os << "  \"files_scanned\": " << files_scanned << ",\n";
    os << "  \"suppressed\": " << suppressed << ",\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line
           << ", \"rule\": \"" << jsonEscape(f.rule)
           << "\", \"severity\": \"" << jsonEscape(f.severity)
           << "\", \"message\": \"" << jsonEscape(f.message)
           << "\"}";
    }
    os << (findings.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
}

void
writeSarifReport(std::ostream &os, const std::vector<Finding> &findings)
{
    os << "{\n";
    os << "  \"$schema\": \"https://raw.githubusercontent.com/"
          "oasis-tcs/sarif-spec/master/Schemata/"
          "sarif-schema-2.1.0.json\",\n";
    os << "  \"version\": \"2.1.0\",\n";
    os << "  \"runs\": [\n";
    os << "    {\n";
    os << "      \"tool\": {\n";
    os << "        \"driver\": {\n";
    os << "          \"name\": \"lint3d\",\n";
    os << "          \"version\": \"2.0.0\",\n";
    os << "          \"informationUri\": "
          "\"https://example.invalid/stack3d/lint3d\",\n";
    os << "          \"rules\": [";
    const std::vector<RuleInfo> &catalog = ruleCatalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const RuleInfo &info = catalog[i];
        os << (i ? ",\n            " : "\n            ");
        os << "{\"id\": \"" << info.name
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(info.summary) << "\"}, "
           << "\"properties\": {\"family\": \"" << info.family
           << "\"}}";
    }
    os << "\n          ]\n";
    os << "        }\n";
    os << "      },\n";
    os << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n        " : "\n        ");
        os << "{\"ruleId\": \"" << jsonEscape(f.rule)
           << "\", \"level\": \""
           << (f.severity == "error" ? "error" : "warning")
           << "\", \"message\": {\"text\": \""
           << jsonEscape(f.message) << "\"}, "
           << "\"locations\": [{\"physicalLocation\": "
           << "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.file)
           << "\", \"uriBaseId\": \"%SRCROOT%\"}, "
           << "\"region\": {\"startLine\": " << f.line << "}}}]}";
    }
    os << (findings.empty() ? "]\n" : "\n      ]\n");
    os << "    }\n";
    os << "  ]\n";
    os << "}\n";
}

void
writeRuleCatalogMarkdown(std::ostream &os, const Config &cfg)
{
    os << "| Rule | Family | Pass | `--fix` | Severity | "
          "What it flags |\n";
    os << "| --- | --- | --- | --- | --- | --- |\n";
    for (const RuleInfo &info : ruleCatalog()) {
        const RuleConfig &rc = cfg.ruleConfig(info.name);
        os << "| `" << info.name << "` | " << info.family << " | "
           << (info.cross_file ? "program" : "file") << " | "
           << (info.fixable ? "yes" : "—") << " | " << rc.severity
           << " | " << info.summary << " |\n";
    }
}

} // namespace lint3d
