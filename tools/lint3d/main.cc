/**
 * @file
 * lint3d entry point: load `.lint3d.toml`, walk the configured
 * directories, run pass 1 (per-file rules + summaries) on a worker
 * pool, merge in path order, run pass 2 (whole-program rules), and
 * report findings as text, JSON, and/or SARIF. Exit status 1 when
 * any unsuppressed error-severity finding remains — the CI gate.
 *
 *   lint3d --root . --config .lint3d.toml
 *   lint3d --root . --json                # machine-readable findings
 *   lint3d --root . --json-out out.json   # text + JSON file
 *   lint3d --root . --sarif out.sarif     # + SARIF 2.1.0 file
 *   lint3d --root . --threads 8           # pass-1 worker count
 *   lint3d --root . --diff HEAD~1         # changed-lines mode
 *   lint3d --root . --fix                 # apply mechanical fixes
 *   lint3d --list-rules [--markdown]
 *
 * Timing goes to stderr so stdout reports stay byte-identical run
 * to run (the determinism gate diffs them at several thread counts).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "lint3d.hh"

namespace {

namespace fs = std::filesystem;
using namespace lint3d;

void
usage(std::ostream &os)
{
    os << "usage: lint3d [options] [path-prefix...]\n"
          "  --root DIR      scan root (default: .)\n"
          "  --config FILE   config (default: <root>/.lint3d.toml)\n"
          "  --threads N     pass-1 worker threads (default: "
          "hardware)\n"
          "  --json          print findings as JSON to stdout\n"
          "  --json-out F    also write the JSON report to F\n"
          "  --sarif F       also write a SARIF 2.1.0 report to F\n"
          "  --diff REF      only report findings on lines changed "
          "since git REF\n"
          "  --fix           apply mechanical fixes in place\n"
          "  --list-rules    print every implemented rule and exit\n"
          "  --markdown      with --list-rules: the DESIGN.md "
          "catalog table\n"
          "Positional path prefixes replace the configured scan "
          "paths.\n";
}

[[nodiscard]] bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Root-relative path with '/' separators on every platform. */
std::string
relPath(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    return (ec ? file : rel).generic_string();
}

/**
 * Changed lines per file since @p ref, from `git diff -U0`. Only
 * used by --diff, which is a local-workflow accelerator: the CI
 * gate always scans everything.
 */
[[nodiscard]] bool
changedLines(const fs::path &root, const std::string &ref,
             std::map<std::string, std::set<int>> &out)
{
    for (char c : ref) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '.' || c == '/' || c == '~' ||
                  c == '^' || c == '-';
        if (!ok) {
            std::cerr << "lint3d: --diff: suspicious ref '" << ref
                      << "'\n";
            return false;
        }
    }
    std::string cmd = "git -C '" + root.string() +
                      "' diff -U0 --no-color " + ref + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        std::cerr << "lint3d: --diff: cannot run git\n";
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0)
        text.append(buf, got);
    int status = pclose(pipe);
    if (status != 0) {
        std::cerr << "lint3d: --diff: git diff against '" << ref
                  << "' failed\n";
        return false;
    }

    std::istringstream in(text);
    std::string lineText;
    std::string file;
    while (std::getline(in, lineText)) {
        if (lineText.rfind("+++ b/", 0) == 0) {
            file = lineText.substr(6);
            continue;
        }
        if (lineText.rfind("@@", 0) != 0 || file.empty())
            continue;
        // @@ -a[,b] +c[,d] @@ — the new-file range is +c,d.
        std::size_t plus = lineText.find('+');
        if (plus == std::string::npos)
            continue;
        int start = 0, count = 1;
        std::size_t p = plus + 1;
        while (p < lineText.size() &&
               std::isdigit(static_cast<unsigned char>(lineText[p])))
            start = start * 10 + (lineText[p++] - '0');
        if (p < lineText.size() && lineText[p] == ',') {
            ++p;
            count = 0;
            while (p < lineText.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(lineText[p])))
                count = count * 10 + (lineText[p++] - '0');
        }
        for (int l = start; l < start + count; ++l)
            out[file].insert(l);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    fs::path config_path;
    bool json_stdout = false;
    bool list_rules = false;
    bool markdown = false;
    bool fix = false;
    std::string json_out;
    std::string sarif_out;
    std::string diff_ref;
    unsigned threads = std::thread::hardware_concurrency();
    std::vector<std::string> override_paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "lint3d: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value("--root");
        } else if (arg == "--config") {
            config_path = value("--config");
        } else if (arg == "--json") {
            json_stdout = true;
        } else if (arg == "--json-out") {
            json_out = value("--json-out");
        } else if (arg == "--sarif") {
            sarif_out = value("--sarif");
        } else if (arg == "--diff") {
            diff_ref = value("--diff");
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(
                std::strtoul(value("--threads").c_str(), nullptr,
                             10));
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--markdown") {
            markdown = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "lint3d: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            override_paths.push_back(arg);
        }
    }
    if (threads == 0)
        threads = 1;

    Config cfg;
    if (config_path.empty()) {
        fs::path candidate = root / ".lint3d.toml";
        if (fs::exists(candidate))
            config_path = candidate;
    }
    if (!config_path.empty()) {
        std::string text;
        if (!readFile(config_path, text)) {
            std::cerr << "lint3d: cannot read config '"
                      << config_path.string() << "'\n";
            return 2;
        }
        std::string error;
        if (!parseConfig(text, cfg, error)) {
            std::cerr << "lint3d: " << config_path.string() << ": "
                      << error << "\n";
            return 2;
        }
    }
    if (!override_paths.empty())
        cfg.paths = override_paths;

    if (list_rules) {
        if (markdown) {
            writeRuleCatalogMarkdown(std::cout, cfg);
        } else {
            for (const std::string &r : allRules())
                std::cout << r << "\n";
        }
        return 0;
    }

    std::map<std::string, std::set<int>> diff_lines;
    if (!diff_ref.empty() &&
        !changedLines(root, diff_ref, diff_lines))
        return 2;

    // Collect the files to scan, sorted for deterministic output.
    std::vector<fs::path> files;
    for (const std::string &p : cfg.paths) {
        fs::path base = root / p;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(base);
            continue;
        }
        if (!fs::is_directory(base, ec)) {
            std::cerr << "lint3d: warning: scan path '" << p
                      << "' does not exist under '" << root.string()
                      << "'\n";
            continue;
        }
        for (fs::recursive_directory_iterator it(base, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            std::string ext = it->path().extension().string();
            bool matches = false;
            for (const std::string &e : cfg.extensions)
                matches = matches || ext == e;
            if (matches)
                files.push_back(it->path());
        }
    }

    std::vector<std::string> rels;
    rels.reserve(files.size());
    for (const fs::path &f : files) {
        std::string rel = relPath(f, root);
        bool excluded = false;
        for (const std::string &e : cfg.exclude)
            excluded = excluded || rel.compare(0, e.size(), e) == 0;
        if (!excluded)
            rels.push_back(rel);
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

    // --- pass 1: per-file analysis on a worker pool ------------------
    // Workers claim indices from an atomic counter and write into
    // their own slot, so the merged order is the sorted path order
    // regardless of scheduling — output is byte-stable at any
    // thread count.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<FileReport> reports(rels.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> io_error{false};
    unsigned workers = std::min<std::size_t>(
        threads, rels.empty() ? 1 : rels.size());

    auto worker = [&] {
        while (true) {
            // relaxed: the claimed index is the only shared state,
            // and the joins below publish the slots themselves.
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= rels.size())
                return;
            std::string source;
            if (!readFile(root / rels[i], source)) {
                io_error.store(true, std::memory_order_relaxed);
                continue;
            }
            reports[i] = analyzeFile(rels[i], lex(source), cfg);
        }
    };
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    if (io_error.load(std::memory_order_relaxed)) {
        std::cerr << "lint3d: failed to read one or more files\n";
        return 2;
    }
    auto t1 = std::chrono::steady_clock::now();

    // --- pass 2: whole-program rules ---------------------------------
    analyzeProgram(reports, cfg);
    auto t2 = std::chrono::steady_clock::now();

    if (fix) {
        std::size_t files_changed = 0;
        std::size_t applied =
            applyFixes(root.string(), reports, files_changed);
        std::cerr << "lint3d: --fix applied " << applied
                  << " edits in " << files_changed << " files\n";
    }

    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    for (const FileReport &rep : reports) {
        suppressed += rep.suppressed;
        findings.insert(findings.end(), rep.findings.begin(),
                        rep.findings.end());
    }
    std::sort(findings.begin(), findings.end());

    if (!diff_ref.empty()) {
        findings.erase(
            std::remove_if(findings.begin(), findings.end(),
                           [&](const Finding &f) {
                               auto it = diff_lines.find(f.file);
                               return it == diff_lines.end() ||
                                      !it->second.count(f.line);
                           }),
            findings.end());
    }

    std::size_t errors = 0, warnings = 0;
    for (const Finding &f : findings)
        (f.severity == "error" ? errors : warnings) += 1;

    if (json_stdout) {
        writeJsonReport(std::cout, findings, rels.size(), suppressed);
    } else {
        for (const Finding &f : findings) {
            std::cout << f.file << ":" << f.line << ": " << f.severity
                      << ": [" << f.rule << "] " << f.message << "\n";
        }
        std::cout << "lint3d: scanned " << rels.size() << " files: "
                  << errors << " errors, " << warnings
                  << " warnings, " << suppressed << " suppressed\n";
    }
    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::trunc);
        if (!out) {
            std::cerr << "lint3d: cannot write '" << json_out
                      << "'\n";
            return 2;
        }
        writeJsonReport(out, findings, rels.size(), suppressed);
    }
    if (!sarif_out.empty()) {
        std::ofstream out(sarif_out, std::ios::trunc);
        if (!out) {
            std::cerr << "lint3d: cannot write '" << sarif_out
                      << "'\n";
            return 2;
        }
        writeSarifReport(out, findings);
    }

    auto ms = [](auto a, auto b) {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   b - a)
            .count();
    };
    std::cerr << "lint3d: pass1 " << ms(t0, t1) << " ms ("
              << workers << " threads), pass2 " << ms(t1, t2)
              << " ms, " << rels.size() << " files\n";

    return errors > 0 ? 1 : 0;
}
