/**
 * @file
 * lint3d entry point: load `.lint3d.toml`, walk the configured
 * directories, run every rule over every C++ source file, and report
 * findings as text and/or JSON. Exit status 1 when any unsuppressed
 * error-severity finding remains — the CI gate.
 *
 *   lint3d --root . --config .lint3d.toml
 *   lint3d --root . --json                # machine-readable findings
 *   lint3d --root . --json-out out.json   # text + JSON file
 *   lint3d --list-rules
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint3d.hh"

namespace {

namespace fs = std::filesystem;
using namespace lint3d;

void
usage(std::ostream &os)
{
    os << "usage: lint3d [options] [path-prefix...]\n"
          "  --root DIR      scan root (default: .)\n"
          "  --config FILE   config (default: <root>/.lint3d.toml)\n"
          "  --json          print findings as JSON to stdout\n"
          "  --json-out F    also write the JSON report to F\n"
          "  --list-rules    print every implemented rule and exit\n"
          "Positional path prefixes replace the configured scan "
          "paths.\n";
}

[[nodiscard]] bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
writeJsonReport(std::ostream &os, const std::vector<Finding> &findings,
                std::size_t files_scanned, std::size_t suppressed)
{
    os << "{\n";
    os << "  \"version\": 1,\n";
    os << "  \"files_scanned\": " << files_scanned << ",\n";
    os << "  \"suppressed\": " << suppressed << ",\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << f.rule << "\", \"severity\": \""
           << f.severity << "\", \"message\": \""
           << jsonEscape(f.message) << "\"}";
    }
    os << (findings.empty() ? "" : "\n  ") << "]\n";
    os << "}\n";
}

/** Root-relative path with '/' separators on every platform. */
std::string
relPath(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    return (ec ? file : rel).generic_string();
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    fs::path config_path;
    bool json_stdout = false;
    std::string json_out;
    std::vector<std::string> override_paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "lint3d: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value("--root");
        } else if (arg == "--config") {
            config_path = value("--config");
        } else if (arg == "--json") {
            json_stdout = true;
        } else if (arg == "--json-out") {
            json_out = value("--json-out");
        } else if (arg == "--list-rules") {
            for (const std::string &r : allRules())
                std::cout << r << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "lint3d: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            override_paths.push_back(arg);
        }
    }

    Config cfg;
    if (config_path.empty()) {
        fs::path candidate = root / ".lint3d.toml";
        if (fs::exists(candidate))
            config_path = candidate;
    }
    if (!config_path.empty()) {
        std::string text;
        if (!readFile(config_path, text)) {
            std::cerr << "lint3d: cannot read config '"
                      << config_path.string() << "'\n";
            return 2;
        }
        std::string error;
        if (!parseConfig(text, cfg, error)) {
            std::cerr << "lint3d: " << config_path.string() << ": "
                      << error << "\n";
            return 2;
        }
    }
    if (!override_paths.empty())
        cfg.paths = override_paths;

    // Collect the files to scan, sorted for deterministic output.
    std::vector<fs::path> files;
    for (const std::string &p : cfg.paths) {
        fs::path base = root / p;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(base);
            continue;
        }
        if (!fs::is_directory(base, ec)) {
            std::cerr << "lint3d: warning: scan path '" << p
                      << "' does not exist under '" << root.string()
                      << "'\n";
            continue;
        }
        for (fs::recursive_directory_iterator it(base, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            std::string ext = it->path().extension().string();
            bool matches = false;
            for (const std::string &e : cfg.extensions)
                matches = matches || ext == e;
            if (matches)
                files.push_back(it->path());
        }
    }

    std::vector<std::string> rels;
    rels.reserve(files.size());
    for (const fs::path &f : files) {
        std::string rel = relPath(f, root);
        bool excluded = false;
        for (const std::string &e : cfg.exclude)
            excluded = excluded || rel.compare(0, e.size(), e) == 0;
        if (!excluded)
            rels.push_back(rel);
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    for (const std::string &rel : rels) {
        std::string source;
        if (!readFile(root / rel, source)) {
            std::cerr << "lint3d: cannot read '" << rel << "'\n";
            return 2;
        }
        Suppressions supp;
        std::vector<Token> toks = lex(source, supp);
        FileReport rep = analyzeFile(rel, toks, supp, cfg);
        suppressed += rep.suppressed;
        findings.insert(findings.end(), rep.findings.begin(),
                        rep.findings.end());
    }
    std::sort(findings.begin(), findings.end());

    std::size_t errors = 0, warnings = 0;
    for (const Finding &f : findings)
        (f.severity == "error" ? errors : warnings) += 1;

    if (json_stdout) {
        writeJsonReport(std::cout, findings, rels.size(), suppressed);
    } else {
        for (const Finding &f : findings) {
            std::cout << f.file << ":" << f.line << ": " << f.severity
                      << ": [" << f.rule << "] " << f.message << "\n";
        }
        std::cout << "lint3d: scanned " << rels.size() << " files: "
                  << errors << " errors, " << warnings
                  << " warnings, " << suppressed << " suppressed\n";
    }
    if (!json_out.empty()) {
        std::ofstream out(json_out, std::ios::trunc);
        if (!out) {
            std::cerr << "lint3d: cannot write '" << json_out
                      << "'\n";
            return 2;
        }
        writeJsonReport(out, findings, rels.size(), suppressed);
    }
    return errors > 0 ? 1 : 0;
}
