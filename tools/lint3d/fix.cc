/**
 * @file
 * lint3d --fix: apply the mechanical edits rules attach to findings.
 * Edits are byte-offset anchored into the file as it was lexed, so
 * they are applied per file in descending offset order (later edits
 * never shift earlier anchors) and the whole pass is idempotent: a
 * second run finds nothing left to fix and rewrites nothing.
 */

#include "lint3d.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace lint3d {

std::size_t
applyFixes(const std::string &root,
           const std::vector<FileReport> &reports,
           std::size_t &files_changed)
{
    std::map<std::string, std::vector<FixEdit>> by_file;
    for (const FileReport &r : reports) {
        for (const FixEdit &e : r.fixes)
            by_file[e.file].push_back(e);
    }

    std::size_t applied = 0;
    files_changed = 0;
    for (auto &entry : by_file) {
        std::string path = root + "/" + entry.first;
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "lint3d: --fix: cannot read '" << entry.first
                      << "'\n";
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string source = ss.str();
        in.close();

        // Descending offset; drop any edit that would overlap an
        // already-applied one (can only happen if two rules fight
        // over the same bytes — leave that for a human).
        std::vector<FixEdit> &edits = entry.second;
        std::sort(edits.begin(), edits.end(),
                  [](const FixEdit &a, const FixEdit &b) {
                      return a.off > b.off;
                  });
        std::size_t last_begin = source.size() + 1;
        bool changed = false;
        for (const FixEdit &e : edits) {
            if (e.off + e.len > source.size() ||
                e.off + e.len > last_begin) {
                std::cerr << "lint3d: --fix: skipping overlapping "
                          << "edit in '" << entry.first << "' at "
                          << "offset " << e.off << "\n";
                continue;
            }
            source.replace(e.off, e.len, e.replacement);
            last_begin = e.off;
            changed = true;
            ++applied;
        }
        if (!changed)
            continue;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::cerr << "lint3d: --fix: cannot write '"
                      << entry.first << "'\n";
            continue;
        }
        out << source;
        ++files_changed;
    }
    return applied;
}

} // namespace lint3d
