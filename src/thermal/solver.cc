#include "solver.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace thermal {

double
TemperatureField::peak() const
{
    return *std::max_element(_temps.begin(), _temps.end());
}

double
TemperatureField::minimum() const
{
    return *std::min_element(_temps.begin(), _temps.end());
}

double
TemperatureField::layerPeak(unsigned layer_index) const
{
    double best = -1e300;
    for (unsigned z = _mesh->layerZBegin(layer_index);
         z < _mesh->layerZEnd(layer_index); ++z) {
        for (unsigned j = 0; j < _mesh->ny(); ++j)
            for (unsigned i = 0; i < _mesh->nx(); ++i)
                best = std::max(best, at(i, j, z));
    }
    return best;
}

double
TemperatureField::layerMin(unsigned layer_index) const
{
    double best = 1e300;
    for (unsigned z = _mesh->layerZBegin(layer_index);
         z < _mesh->layerZEnd(layer_index); ++z) {
        for (unsigned j = 0; j < _mesh->ny(); ++j)
            for (unsigned i = 0; i < _mesh->nx(); ++i)
                best = std::min(best, at(i, j, z));
    }
    return best;
}

std::pair<unsigned, unsigned>
TemperatureField::layerPeakCell(unsigned layer_index) const
{
    double best = -1e300;
    std::pair<unsigned, unsigned> where{0, 0};
    unsigned z = _mesh->layerZBegin(layer_index);
    for (unsigned j = 0; j < _mesh->ny(); ++j) {
        for (unsigned i = 0; i < _mesh->nx(); ++i) {
            if (at(i, j, z) > best) {
                best = at(i, j, z);
                where = {i, j};
            }
        }
    }
    return where;
}

TemperatureField
solveSteadyState(const Mesh &mesh, double tolerance, unsigned max_iters,
                 SolveInfo *info)
{
    obs::Span span("thermal.solve", "thermal");

    std::size_t n = mesh.numCells();
    const std::vector<double> &b = mesh.rhs();
    const std::vector<double> &diag = mesh.diagonal();

    // Jacobi-preconditioned CG, warm-started at ambient.
    std::vector<double> x(n, mesh.geometry().ambient);
    std::vector<double> r(n), z(n), p(n), ap(n);

    mesh.applyOperator(x, ap);
    double b_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - ap[i];
        b_norm += b[i] * b[i];
    }
    b_norm = std::sqrt(b_norm);
    if (b_norm == 0.0)
        b_norm = 1.0;

    auto precond = [&](const std::vector<double> &in,
                       std::vector<double> &out) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = in[i] / diag[i];
    };

    precond(r, z);
    p = z;
    double rz = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        rz += r[i] * z[i];

    SolveInfo local;
    if (info)
        local.residual_curve.reserve(std::min(max_iters, 4096u));
    for (unsigned iter = 0; iter < max_iters; ++iter) {
        mesh.applyOperator(p, ap);
        double p_ap = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            p_ap += p[i] * ap[i];
        stack3d_assert(p_ap > 0.0,
                       "thermal operator lost positive definiteness");

        double alpha = rz / p_ap;
        double r_norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            r_norm += r[i] * r[i];
        }
        r_norm = std::sqrt(r_norm);
        local.iterations = iter + 1;
        local.residual = r_norm / b_norm;
        if (info)
            local.residual_curve.push_back(local.residual);
        if (local.residual < tolerance) {
            local.converged = true;
            break;
        }

        precond(r, z);
        double rz_new = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            rz_new += r[i] * z[i];
        double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = z[i] + beta * p[i];
    }

    if (!local.converged) {
        warn("thermal solve did not converge: residual ",
             local.residual, " after ", local.iterations, " iterations");
    }
    if (info)
        *info = local;
    return TemperatureField(mesh, std::move(x));
}

void
appendSolveCounters(obs::CounterSet &out, const std::string &prefix,
                    const SolveInfo &info)
{
    out.set(prefix + "iterations", double(info.iterations));
    out.set(prefix + "residual", info.residual);
    out.set(prefix + "converged", info.converged ? 1.0 : 0.0);
    if (!info.residual_curve.empty())
        out.setSeries(prefix + "residual_curve",
                      info.residual_curve);
}

} // namespace thermal
} // namespace stack3d
