#include "solver.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "exec/pool.hh"
#include "exec/reduce.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace thermal {

double
TemperatureField::peak() const
{
    return *std::max_element(_temps.begin(), _temps.end());
}

double
TemperatureField::minimum() const
{
    return *std::min_element(_temps.begin(), _temps.end());
}

double
TemperatureField::layerPeak(unsigned layer_index) const
{
    const std::size_t plane = std::size_t(_mesh->nx()) * _mesh->ny();
    const std::size_t begin =
        std::size_t(_mesh->layerZBegin(layer_index)) * plane;
    const std::size_t end =
        std::size_t(_mesh->layerZEnd(layer_index)) * plane;
    double best = -1e300;
    for (std::size_t c = begin; c < end; ++c)
        best = std::max(best, _temps[c]);
    return best;
}

double
TemperatureField::layerMin(unsigned layer_index) const
{
    const std::size_t plane = std::size_t(_mesh->nx()) * _mesh->ny();
    const std::size_t begin =
        std::size_t(_mesh->layerZBegin(layer_index)) * plane;
    const std::size_t end =
        std::size_t(_mesh->layerZEnd(layer_index)) * plane;
    double best = 1e300;
    for (std::size_t c = begin; c < end; ++c)
        best = std::min(best, _temps[c]);
    return best;
}

std::pair<unsigned, unsigned>
TemperatureField::layerPeakCell(unsigned layer_index) const
{
    const unsigned nx = _mesh->nx(), ny = _mesh->ny();
    double best = -1e300;
    std::pair<unsigned, unsigned> where{0, 0};
    for (unsigned z = _mesh->layerZBegin(layer_index);
         z < _mesh->layerZEnd(layer_index); ++z) {
        for (unsigned j = 0; j < ny; ++j) {
            for (unsigned i = 0; i < nx; ++i) {
                const double t = at(i, j, z);
                if (t > best) {
                    best = t;
                    where = {i, j};
                }
            }
        }
    }
    return where;
}

TemperatureField
solveSteadyState(const Mesh &mesh, const SolverOptions &options,
                 SolveInfo *info)
{
    obs::Span span("thermal.solve", "thermal");

    const std::size_t n = mesh.numCells();
    const unsigned nz = mesh.nzTotal();
    const std::size_t plane = std::size_t(mesh.nx()) * mesh.ny();
    const std::vector<double> &b = mesh.rhs();
    const std::vector<double> &diag = mesh.diagonal();
    exec::ThreadPool *pool = options.pool;

    SolveInfo local;

    std::vector<double> x;
    if (options.warm_start && options.warm_start->size() == n) {
        x = *options.warm_start;
        local.warm_start_used = true;
    } else {
        x.assign(n, mesh.geometry().ambient);
    }
    std::vector<double> r(n), z(n), p(n), ap(n);

    // Initial residual r = b - A x with b and r norms, one fused
    // pass. Per-slab partials summed in slab order keep the result
    // independent of the thread count.
    std::vector<double> part_bb(nz, 0.0), part_rr(nz, 0.0);
    exec::parallelSlabs(pool, nz, [&](std::size_t s) {
        const unsigned zb = unsigned(s), ze = unsigned(s) + 1;
        mesh.applyOperatorSlab(zb, ze, x.data(), ap.data());
        const std::size_t cb = s * plane, ce = cb + plane;
        double bb = 0.0, rr = 0.0;
        for (std::size_t c = cb; c < ce; ++c) {
            r[c] = b[c] - ap[c];
            bb += b[c] * b[c];
            rr += r[c] * r[c];
        }
        part_bb[s] = bb;
        part_rr[s] = rr;
    });
    double b_norm = 0.0, r_norm2 = 0.0;
    for (unsigned s = 0; s < nz; ++s) {
        b_norm += part_bb[s];
        r_norm2 += part_rr[s];
    }
    b_norm = std::sqrt(b_norm);
    // Exact zero means a literally empty RHS (no power anywhere) —
    // the one case where scaling by it would divide by zero.
    if (b_norm == 0.0) // lint3d: safe-float-eq-ok
        b_norm = 1.0;

    std::unique_ptr<MultigridPreconditioner> mg;
    if (options.precond == Precond::Multigrid)
        mg = std::make_unique<MultigridPreconditioner>(
            mesh, options.multigrid, pool);

    // z = M^-1 r fused (Jacobi) or followed (multigrid) by the
    // slab-reduced dot r.z.
    auto precondDot = [&]() -> double {
        if (mg) {
            mg->apply(r, z);
            return exec::parallelSlabReduce(
                pool, nz, [&](std::size_t s) {
                    const std::size_t cb = s * plane, ce = cb + plane;
                    double dot = 0.0;
                    for (std::size_t c = cb; c < ce; ++c)
                        dot += r[c] * z[c];
                    return dot;
                });
        }
        return exec::parallelSlabReduce(pool, nz, [&](std::size_t s) {
            const std::size_t cb = s * plane, ce = cb + plane;
            double dot = 0.0;
            for (std::size_t c = cb; c < ce; ++c) {
                z[c] = r[c] / diag[c];
                dot += r[c] * z[c];
            }
            return dot;
        });
    };

    local.residual = std::sqrt(r_norm2) / b_norm;
    if (info)
        local.residual_curve.reserve(
            std::min(options.max_iters, 4096u));

    if (local.residual < options.tolerance) {
        // Warm start already within tolerance: nothing to iterate.
        local.converged = true;
    } else {
        double rz = precondDot();
        stack3d_assert(rz > 0.0,
                       "thermal preconditioner lost positive "
                       "definiteness");
        p = z;
        for (unsigned iter = 0; iter < options.max_iters; ++iter) {
            if (options.cancel && options.cancel->shouldStop())
                throw CancelledError(
                    "thermal solve cancelled at iteration " +
                    std::to_string(iter));
            // Fused ap = A p and p.Ap.
            double p_ap =
                exec::parallelSlabReduce(pool, nz, [&](std::size_t s) {
                    return mesh.applyOperatorAndDotSlab(
                        unsigned(s), unsigned(s) + 1, p.data(),
                        ap.data());
                });
            stack3d_assert(
                p_ap > 0.0,
                "thermal operator lost positive definiteness");

            // Fused x += alpha p, r -= alpha ap, and r.r.
            const double alpha = rz / p_ap;
            r_norm2 =
                exec::parallelSlabReduce(pool, nz, [&](std::size_t s) {
                    const std::size_t cb = s * plane, ce = cb + plane;
                    double rr = 0.0;
                    for (std::size_t c = cb; c < ce; ++c) {
                        x[c] += alpha * p[c];
                        r[c] -= alpha * ap[c];
                        rr += r[c] * r[c];
                    }
                    return rr;
                });
            local.iterations = iter + 1;
            local.residual = std::sqrt(r_norm2) / b_norm;
            if (info)
                local.residual_curve.push_back(local.residual);
            if (local.residual < options.tolerance) {
                local.converged = true;
                break;
            }

            const double rz_new = precondDot();
            stack3d_assert(rz_new > 0.0,
                           "thermal preconditioner lost positive "
                           "definiteness");
            const double beta = rz_new / rz;
            rz = rz_new;
            exec::parallelSlabs(pool, nz, [&](std::size_t s) {
                const std::size_t cb = s * plane, ce = cb + plane;
                for (std::size_t c = cb; c < ce; ++c)
                    p[c] = z[c] + beta * p[c];
            });
        }
    }

    if (mg) {
        local.v_cycles = mg->vCycles();
        local.smoother_sweeps = mg->smootherSweeps();
    }
    if (!local.converged) {
        warn("thermal solve did not converge: residual ",
             local.residual, " after ", local.iterations,
             " iterations");
    }
    if (info)
        *info = local;
    return TemperatureField(mesh, std::move(x));
}

TemperatureField
solveSteadyState(const Mesh &mesh, double tolerance, unsigned max_iters,
                 SolveInfo *info)
{
    SolverOptions options;
    options.tolerance = tolerance;
    options.max_iters = max_iters;
    return solveSteadyState(mesh, options, info);
}

void
appendSolveCounters(obs::CounterSet &out, const std::string &prefix,
                    const SolveInfo &info)
{
    out.set(prefix + "iterations", double(info.iterations));
    out.set(prefix + "residual", info.residual);
    out.set(prefix + "converged", info.converged ? 1.0 : 0.0);
    out.set(prefix + "v_cycles", double(info.v_cycles));
    out.set(prefix + "smoother_sweeps",
            double(info.smoother_sweeps));
    out.set(prefix + "warm_start_used",
            info.warm_start_used ? 1.0 : 0.0);
    if (!info.residual_curve.empty())
        out.setSeries(prefix + "residual_curve",
                      info.residual_curve);
}

} // namespace thermal
} // namespace stack3d
