#include "stacks.hh"

namespace stack3d {
namespace thermal {

namespace {

/** Thin pseudo-thickness for the active (heat-generating) plane. */
constexpr double kActiveThickness = 3e-6;

void
appendPackageBottom(StackGeometry &geom, const PackageModel &pkg)
{
    // Package, socket, and board extend across the whole domain.
    geom.layers.push_back(
        {"package", pkg.package_thickness, pkg.package_conductivity, 2,
         false, 0.0});
    geom.layers.push_back(
        {"socket", pkg.socket_thickness, pkg.socket_conductivity, 2,
         false, 0.0});
    geom.layers.push_back(
        {"board", pkg.board_thickness, pkg.board_conductivity, 2,
         false, 0.0});
}

void
appendCoolingTop(StackGeometry &geom, const PackageModel &pkg)
{
    geom.layers.push_back({"heat_sink", pkg.heat_sink_thickness,
                           table2::heat_sink_conductivity, 3, false,
                           0.0});
    geom.layers.push_back({"ihs", pkg.ihs_thickness,
                           pkg.ihs_conductivity, 2, false, 0.0});
    // Solder TIM exists only over the die; gap filler elsewhere.
    geom.layers.push_back({"tim", pkg.tim_thickness,
                           pkg.tim_conductivity, 1, false,
                           pkg.gap_conductivity});
}

} // anonymous namespace

StackGeometry
makePlanarStack(double die_width, double die_height,
                const PackageModel &pkg, const StackOverrides &ovr)
{
    StackGeometry geom;
    geom.width = die_width;
    geom.height = die_height;
    geom.h_top = pkg.h_top;
    geom.margin = pkg.margin;
    geom.h_bottom = pkg.h_bottom;
    geom.ambient = pkg.ambient;

    appendCoolingTop(geom, pkg);
    geom.layers.push_back({"bulk_si1", table2::si1_thickness,
                           table2::si_conductivity, 2, false,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"active1", kActiveThickness,
                           table2::si_conductivity, 1, true,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"metal1", table2::cu_metal_thickness,
                           ovr.cu_metal_conductivity, 1, false,
                           pkg.underfill_conductivity});
    appendPackageBottom(geom, pkg);
    return geom;
}

StackGeometry
makeTwoDieStack(double die_width, double die_height,
                StackedDieType second_die, const PackageModel &pkg,
                const StackOverrides &ovr)
{
    if (second_die == StackedDieType::None)
        return makePlanarStack(die_width, die_height, pkg, ovr);

    StackGeometry geom;
    geom.width = die_width;
    geom.height = die_height;
    geom.h_top = pkg.h_top;
    geom.margin = pkg.margin;
    geom.h_bottom = pkg.h_bottom;
    geom.ambient = pkg.ambient;

    appendCoolingTop(geom, pkg);

    // Die #1: processor, bulk Si toward the heat sink, face down.
    geom.layers.push_back({"bulk_si1", table2::si1_thickness,
                           table2::si_conductivity, 2, false,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"active1", kActiveThickness,
                           table2::si_conductivity, 1, true,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"metal1", table2::cu_metal_thickness,
                           ovr.cu_metal_conductivity, 1, false,
                           pkg.underfill_conductivity});

    // Face-to-face bond: the d2d via interface.
    geom.layers.push_back({"bond", table2::bond_thickness,
                           ovr.bond_conductivity, 1, false,
                           pkg.underfill_conductivity});

    // Die #2: face up (metal meets the bond), thinned bulk toward
    // the C4 bumps. DRAM dies carry the thinner Al metal stack.
    if (second_die == StackedDieType::Dram) {
        geom.layers.push_back({"metal2", table2::al_metal_thickness,
                               table2::al_metal_conductivity, 1, false,
                               pkg.underfill_conductivity});
    } else {
        geom.layers.push_back({"metal2", table2::cu_metal_thickness,
                               ovr.cu_metal_conductivity, 1, false,
                               pkg.underfill_conductivity});
    }
    geom.layers.push_back({"active2", kActiveThickness,
                           table2::si_conductivity, 1, true,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"bulk_si2", table2::si2_thickness,
                           table2::si_conductivity, 1, false,
                           pkg.underfill_conductivity});

    appendPackageBottom(geom, pkg);
    return geom;
}

StackGeometry
makeMultiDieStack(double die_width, double die_height,
                  const std::vector<StackedDieType> &upper_dies,
                  const PackageModel &pkg, const StackOverrides &ovr)
{
    if (upper_dies.empty())
        return makePlanarStack(die_width, die_height, pkg, ovr);

    StackGeometry geom;
    geom.width = die_width;
    geom.height = die_height;
    geom.h_top = pkg.h_top;
    geom.margin = pkg.margin;
    geom.h_bottom = pkg.h_bottom;
    geom.ambient = pkg.ambient;

    appendCoolingTop(geom, pkg);

    // Die #1 (the processor) keeps its full bulk toward the sink.
    geom.layers.push_back({"bulk_si1", table2::si1_thickness,
                           table2::si_conductivity, 2, false,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"active1", kActiveThickness,
                           table2::si_conductivity, 1, true,
                           pkg.underfill_conductivity});
    geom.layers.push_back({"metal1", table2::cu_metal_thickness,
                           ovr.cu_metal_conductivity, 1, false,
                           pkg.underfill_conductivity});

    for (std::size_t d = 0; d < upper_dies.size(); ++d) {
        if (upper_dies[d] == StackedDieType::None)
            stack3d_fatal("multi-die stack cannot contain None dies");
        std::string n = std::to_string(d + 2);
        geom.layers.push_back({"bond" + std::to_string(d + 1),
                               table2::bond_thickness,
                               ovr.bond_conductivity, 1, false,
                               pkg.underfill_conductivity});
        if (upper_dies[d] == StackedDieType::Dram) {
            geom.layers.push_back({"metal" + n,
                                   table2::al_metal_thickness,
                                   table2::al_metal_conductivity, 1,
                                   false, pkg.underfill_conductivity});
        } else {
            geom.layers.push_back({"metal" + n,
                                   table2::cu_metal_thickness,
                                   ovr.cu_metal_conductivity, 1, false,
                                   pkg.underfill_conductivity});
        }
        geom.layers.push_back({"active" + n, kActiveThickness,
                               table2::si_conductivity, 1, true,
                               pkg.underfill_conductivity});
        geom.layers.push_back({"bulk_si" + n, table2::si2_thickness,
                               table2::si_conductivity, 1, false,
                               pkg.underfill_conductivity});
    }

    appendPackageBottom(geom, pkg);
    return geom;
}

} // namespace thermal
} // namespace stack3d
