/**
 * @file
 * Table 2 material constants and builders for the paper's stack
 * geometries: the planar (single-die) package and the two-die
 * face-to-face stack of Figure 1, both embedded in the full heat
 * sink / IHS / package / socket / motherboard system of Figure 2.
 */

#ifndef STACK3D_THERMAL_STACKS_HH
#define STACK3D_THERMAL_STACKS_HH

#include <vector>

#include "thermal/mesh.hh"

namespace stack3d {
namespace thermal {

/** Thermal constants from Table 2 (SI units). */
namespace table2 {

constexpr double si1_thickness = 750e-6;  ///< bulk Si next to heat sink
constexpr double si2_thickness = 20e-6;   ///< bulk Si next to bumps
constexpr double si_conductivity = 120.0;

constexpr double cu_metal_thickness = 12e-6;  ///< logic metal stack
constexpr double cu_metal_conductivity = 12.0;

constexpr double al_metal_thickness = 2e-6;   ///< DRAM metal stack
constexpr double al_metal_conductivity = 9.0;

constexpr double bond_thickness = 15e-6;  ///< die-to-die bond layer
constexpr double bond_conductivity = 60.0;

constexpr double heat_sink_conductivity = 400.0;

constexpr double ambient = 40.0;          ///< degrees C

} // namespace table2

/** Technology of the second (stacked) die. */
enum class StackedDieType
{
    None,       ///< planar, single die
    LogicSram,  ///< Cu metal stack (SRAM cache or logic die)
    Dram,       ///< Al metal stack (stacked DRAM die)
};

/**
 * Package environment around the die stack. The defaults are
 * calibrated (see DESIGN.md) so the planar Core 2 Duo power map at
 * 92 W peaks at ~88.4 C with 40 C ambient — Figure 6's reference
 * point; all other experiments are then predictions.
 */
struct PackageModel
{
    /** Forced convection at the heat-sink top, W/(m^2 K), applied
     *  over the whole (die + margin) domain with the fin-area
     *  magnification folded in; calibrated against Figure 6 (92 W
     *  planar Core 2 Duo -> 88.4 C peak / 59 C coolest, 40 C
     *  ambient). */
    double h_top = 6000.0;

    /** Package / heat-sink material extending beyond the die on
     *  every side, metres. */
    double margin = 8e-3;

    /** Margin material around the die layers (underfill/molding). */
    double underfill_conductivity = 0.8;
    /** Margin material at the TIM plane (gap filler). */
    double gap_conductivity = 0.25;

    /** Natural convection at the motherboard, W/(m^2 K). */
    double h_bottom = 10.0;

    double heat_sink_thickness = 6e-3;
    double ihs_thickness = 2e-3;
    double ihs_conductivity = 390.0;   // copper
    /** Solder TIM (the Core 2 generation used indium solder). */
    double tim_thickness = 50e-6;
    double tim_conductivity = 60.0;
    double package_thickness = 1.2e-3;
    double package_conductivity = 2.0;
    double socket_thickness = 2.5e-3;
    double socket_conductivity = 0.3;
    double board_thickness = 1.6e-3;
    double board_conductivity = 3.0;

    double ambient = table2::ambient;
};

/**
 * Package for the Pentium 4-class part of the study (Figures 9-11,
 * Table 5): a hotter product shipping with a beefier cooler.
 * Calibrated so the 147 W planar design peaks at ~98.6 C (Figure 11
 * first bar); the 3D bars are then predictions.
 */
inline PackageModel
makeP4Package()
{
    PackageModel pkg;
    pkg.h_top = 9500.0;
    return pkg;
}

/**
 * Options overriding Table 2 constants, used by the Figure 3
 * conductivity-sensitivity sweep.
 */
struct StackOverrides
{
    double cu_metal_conductivity = table2::cu_metal_conductivity;
    double bond_conductivity = table2::bond_conductivity;
};

/**
 * Build the planar single-die stack: heat sink / IHS / TIM / bulk Si
 * / active plane / Cu metal / package / socket / board. The layer
 * named "active1" accepts the die power map.
 */
StackGeometry makePlanarStack(double die_width, double die_height,
                              const PackageModel &pkg = {},
                              const StackOverrides &ovr = {});

/**
 * Build the two-die face-to-face stack of Figure 1. Die #1 (the
 * processor) keeps its full 750 um bulk Si facing the heat sink; die
 * #2 is thinned to 20 um with its bulk toward the package bumps.
 * Power layers: "active1" (die #1) and "active2" (die #2).
 *
 * @param second_die metal system of die #2 (Cu for SRAM/logic,
 *                   Al for DRAM)
 */
StackGeometry makeTwoDieStack(double die_width, double die_height,
                              StackedDieType second_die,
                              const PackageModel &pkg = {},
                              const StackOverrides &ovr = {});

/**
 * Extension beyond the paper's two-die limit ("it is possible to
 * stack many die"): die #1 face-down against the heat-sink side as
 * in Figure 1, then each further die bonded below the previous one
 * (bond / metal / active / thinned bulk), ending at the C4 bumps.
 * Power layers are named "active1" .. "activeN".
 *
 * @param upper_dies technology of dies #2..#N, top to bottom
 */
StackGeometry makeMultiDieStack(double die_width, double die_height,
                                const std::vector<StackedDieType>
                                    &upper_dies,
                                const PackageModel &pkg = {},
                                const StackOverrides &ovr = {});

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_STACKS_HH
