#include "render.hh"

#include <algorithm>
#include <iomanip>
#include <vector>

namespace stack3d {
namespace thermal {

namespace {

const char kShades[] = " .:-=+*#%@";
constexpr unsigned kNumShades = sizeof(kShades) - 1;

void
renderGrid(std::ostream &os, const std::vector<double> &values,
           unsigned nx, unsigned ny, unsigned max_cols,
           const char *unit)
{
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    double span = hi - lo;
    if (span <= 0.0)
        span = 1.0;

    unsigned step = std::max(1u, (nx + max_cols - 1) / max_cols);

    for (unsigned j = 0; j < ny; j += step) {
        os << "    ";
        for (unsigned i = 0; i < nx; i += step) {
            // Average the downsampled block.
            double acc = 0.0;
            unsigned count = 0;
            for (unsigned jj = j; jj < std::min(j + step, ny); ++jj) {
                for (unsigned ii = i; ii < std::min(i + step, nx);
                     ++ii) {
                    acc += values[jj * nx + ii];
                    ++count;
                }
            }
            double v = acc / count;
            auto shade =
                unsigned((v - lo) / span * (kNumShades - 1) + 0.5);
            os << kShades[std::min(shade, kNumShades - 1)];
        }
        os << "\n";
    }
    os << "    scale: '" << kShades[0] << "' = " << std::fixed
       << std::setprecision(2) << lo << " " << unit << ", '"
       << kShades[kNumShades - 1] << "' = " << hi << " " << unit
       << "\n";
}

} // anonymous namespace

void
renderLayerMap(std::ostream &os, const TemperatureField &field,
               unsigned layer_index, unsigned max_cols)
{
    const Mesh &mesh = field.mesh();
    unsigned z = mesh.layerZBegin(layer_index);
    std::vector<double> values(std::size_t(mesh.nx()) * mesh.ny());
    for (unsigned j = 0; j < mesh.ny(); ++j)
        for (unsigned i = 0; i < mesh.nx(); ++i)
            values[j * mesh.nx() + i] = field.at(i, j, z);
    renderGrid(os, values, mesh.nx(), mesh.ny(), max_cols, "C");
}

void
renderPowerMap(std::ostream &os, const PowerMap &map, unsigned max_cols)
{
    std::vector<double> values(std::size_t(map.nx()) * map.ny());
    for (unsigned j = 0; j < map.ny(); ++j)
        for (unsigned i = 0; i < map.nx(); ++i)
            values[j * map.nx() + i] = map.cell(i, j);
    renderGrid(os, values, map.nx(), map.ny(), max_cols, "W/cell");
}

} // namespace thermal
} // namespace stack3d
