/**
 * @file
 * ASCII rendering of lateral temperature / power maps, used by the
 * benches to print Figure 6 / Figure 8(b) style thermal maps.
 */

#ifndef STACK3D_THERMAL_RENDER_HH
#define STACK3D_THERMAL_RENDER_HH

#include <ostream>
#include <string>

#include "thermal/solver.hh"

namespace stack3d {
namespace thermal {

/**
 * Render one layer of the temperature field as an ASCII heat map
 * (characters " .:-=+*#%@" from coolest to hottest) with a scale
 * legend. Downsamples to at most @p max_cols columns.
 */
void renderLayerMap(std::ostream &os, const TemperatureField &field,
                    unsigned layer_index, unsigned max_cols = 48);

/** Render a power map the same way (W per cell). */
void renderPowerMap(std::ostream &os, const PowerMap &map,
                    unsigned max_cols = 48);

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_RENDER_HH
