#include "power_map.hh"

#include <algorithm>

namespace stack3d {
namespace thermal {

PowerMap::PowerMap(unsigned nx, unsigned ny, double width, double height)
    : _nx(nx), _ny(ny), _width(width), _height(height),
      _watts(std::size_t(nx) * ny, 0.0)
{
    stack3d_assert(nx > 0 && ny > 0, "power map needs non-empty grid");
    stack3d_assert(width > 0.0 && height > 0.0,
                   "power map needs positive extent");
}

void
PowerMap::addRect(double x0, double y0, double x1, double y1,
                  double watts)
{
    if (x1 <= x0 || y1 <= y0)
        stack3d_fatal("degenerate power rectangle");
    double area = (x1 - x0) * (y1 - y0);
    double dx = _width / _nx;
    double dy = _height / _ny;

    for (unsigned j = 0; j < _ny; ++j) {
        double cy0 = j * dy;
        double cy1 = cy0 + dy;
        double oy = std::min(cy1, y1) - std::max(cy0, y0);
        if (oy <= 0.0)
            continue;
        for (unsigned i = 0; i < _nx; ++i) {
            double cx0 = i * dx;
            double cx1 = cx0 + dx;
            double ox = std::min(cx1, x1) - std::max(cx0, x0);
            if (ox <= 0.0)
                continue;
            _watts[j * _nx + i] += watts * (ox * oy) / area;
        }
    }
}

void
PowerMap::addUniform(double watts)
{
    double per_cell = watts / double(_watts.size());
    for (double &w : _watts)
        w += per_cell;
}

double
PowerMap::totalWatts() const
{
    double total = 0.0;
    for (double w : _watts)
        total += w;
    return total;
}

double
PowerMap::peakDensity() const
{
    double cell_area = (_width / _nx) * (_height / _ny);
    double peak = 0.0;
    for (double w : _watts)
        peak = std::max(peak, w);
    return peak / cell_area;
}

void
PowerMap::scale(double factor)
{
    for (double &w : _watts)
        w *= factor;
}

} // namespace thermal
} // namespace stack3d
