/**
 * @file
 * Transient thermal solution — the time-dependent form of the
 * paper's Equation (1), rho c dT/dt = div(k grad T) + Q, integrated
 * with implicit (backward) Euler so large time steps stay stable.
 * Used to answer questions the steady-state solver cannot: how fast
 * does a die stack heat up after a power step, and what is its
 * thermal time constant? (An extension beyond the paper's
 * steady-state analysis.)
 */

#ifndef STACK3D_THERMAL_TRANSIENT_HH
#define STACK3D_THERMAL_TRANSIENT_HH

#include <vector>

#include "thermal/solver.hh"

namespace stack3d {
namespace thermal {

/** One sample of the transient trace. */
struct TransientSample
{
    double time_s = 0.0;
    double peak_c = 0.0;
};

/** Result of a transient integration. */
struct TransientResult
{
    /** Peak temperature over time (one sample per step). */
    std::vector<TransientSample> samples;

    /** Field at the final time. */
    TemperatureField final_field;

    /**
     * Time to close 63.2% of the gap between the initial peak and
     * the steady-state peak (the dominant thermal time constant),
     * linearly interpolated; 0 if never reached within the horizon.
     */
    double time_constant_s = 0.0;
};

/**
 * Integrate the mesh's transient response from a uniform initial
 * temperature with its attached power maps applied as a step at
 * t = 0.
 *
 * @param mesh       assembled mesh with power attached
 * @param duration   simulated seconds
 * @param dt         implicit-Euler step (stable for any dt)
 * @param initial_c  uniform initial temperature (defaults to ambient)
 */
TransientResult solveTransient(const Mesh &mesh, double duration,
                               double dt, double initial_c = -1.0);

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_TRANSIENT_HH
