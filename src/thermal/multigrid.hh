/**
 * @file
 * Geometric multigrid V-cycle preconditioner for the steady-state
 * thermal solve.
 *
 * The hierarchy full-coarsens laterally (2x2 cell aggregation in x/y,
 * Galerkin coarse operators via piecewise-constant transfer) while
 * keeping every z-plane at every level. The stack is extremely
 * anisotropic in z — micrometre metal and bond layers against
 * millimetre heat-sink planes give vertical face conductances orders
 * of magnitude above the lateral ones — so errors that are strongly
 * coupled in z must be removed by the smoother, not the coarse grid:
 * the default smoother solves each (i, j) column's tridiagonal z-line
 * system exactly (damped block Jacobi), which is what makes lateral
 * semicoarsening converge on these stacks. Pointwise damped Jacobi
 * and Chebyshev smoothers are selectable for comparison.
 *
 * Used as M in PCG: apply() runs one V-cycle from a zero initial
 * guess, a fixed symmetric positive definite linear operation (equal
 * pre-/post-smoothing with a symmetric smoother), so the outer CG
 * iteration stays valid. All loops run in deterministic slab order;
 * with a thread pool the slabs run concurrently but compute
 * bit-identical results (see exec/reduce.hh).
 */

#ifndef STACK3D_THERMAL_MULTIGRID_HH
#define STACK3D_THERMAL_MULTIGRID_HH

#include <vector>

#include "thermal/mesh.hh"

namespace stack3d {

namespace exec {
class ThreadPool;
} // namespace exec

namespace thermal {

/** Tuning knobs for the V-cycle (defaults work for paper stacks). */
struct MultigridOptions
{
    enum class Smoother
    {
        ZLine,      ///< damped block Jacobi over z-columns (default)
        Jacobi,     ///< damped pointwise Jacobi
        Chebyshev,  ///< fixed-degree Chebyshev over D^-1 A
    };

    Smoother smoother = Smoother::ZLine;
    unsigned pre_sweeps = 1;
    unsigned post_sweeps = 1;
    /** Smoother sweeps standing in for a coarsest-level solve. */
    unsigned coarse_sweeps = 24;
    /** Stop coarsening when min(nx, ny) drops to this. */
    unsigned min_coarse_dim = 8;
    /** Damping for the ZLine / Jacobi smoothers. */
    double damping = 0.8;
};

/** One V-cycle per apply(); reusable across CG iterations. */
class MultigridPreconditioner
{
  public:
    /**
     * Build the level hierarchy from the assembled mesh. The mesh
     * must outlive the preconditioner and must not be reassembled
     * (e.g. by updateLayerConductivity) while it is in use — the
     * finest level aliases the mesh's conductance arrays.
     *
     * @param pool optional slab-parallel executor (not owned)
     */
    MultigridPreconditioner(const Mesh &mesh,
                            const MultigridOptions &options = {},
                            exec::ThreadPool *pool = nullptr);

    /** z = M^-1 r: one V-cycle from a zero initial guess. */
    void apply(const std::vector<double> &r, std::vector<double> &z);

    unsigned numLevels() const { return unsigned(_levels.size()); }
    unsigned vCycles() const { return _v_cycles; }
    /** Total smoother sweeps across all levels and applies. */
    unsigned smootherSweeps() const { return _smoother_sweeps; }

  private:
    /** One grid level; level 0 aliases the mesh's arrays. */
    struct Level
    {
        unsigned nx = 0, ny = 0, nz = 0;
        const double *gx = nullptr, *gy = nullptr, *gz = nullptr;
        const double *diag = nullptr;
        std::vector<double> own_gx, own_gy, own_gz, own_diag;
        /** V-cycle workspace: correction, restricted rhs, residual,
         *  Chebyshev direction vector. */
        std::vector<double> x, rhs, res, p;

        /**
         * Precomputed z-line Thomas factors (ZLine smoother only):
         * zl_inv is the inverted pivot of the column tridiagonal's LU,
         * zl_cp the upper factor, zl_dp the solve workspace. The
         * factorization is constant — the columns' matrices never
         * change — so sweeps run division-free.
         */
        std::vector<double> zl_inv, zl_cp, zl_dp;

        std::size_t plane() const { return std::size_t(nx) * ny; }
        std::size_t
        cells() const
        {
            return plane() * nz;
        }
    };

    void coarsen(const Level &fine);
    void vcycle(unsigned level, const double *rhs, double *x);
    void smooth(Level &level, const double *rhs, double *x,
                unsigned sweeps, bool x_is_zero);
    void residual(const Level &level, const double *rhs,
                  const double *x, double *out) const;
    exec::ThreadPool *poolFor(const Level &level) const;

    std::vector<Level> _levels;
    MultigridOptions _options;
    exec::ThreadPool *_pool;
    unsigned _v_cycles = 0;
    unsigned _smoother_sweeps = 0;
};

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_MULTIGRID_HH
