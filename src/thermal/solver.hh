/**
 * @file
 * Steady-state solution of the finite-volume heat equation with a
 * preconditioned conjugate-gradient solver (the operator is symmetric
 * positive definite thanks to the convection terms).
 *
 * Two preconditioners are available: pointwise Jacobi (the original
 * solver) and a geometric multigrid V-cycle (thermal/multigrid.hh),
 * the default — it cuts iteration counts by an order of magnitude on
 * paper-sized stacks. The CG kernels are fused (operator apply + dot,
 * axpy + norm, precondition + dot) and partitioned over z-plane slabs
 * that may run on an exec::ThreadPool; partial sums are combined in
 * slab order, so an N-thread solve is bit-identical to a serial one
 * (see exec/reduce.hh for the contract).
 */

#ifndef STACK3D_THERMAL_SOLVER_HH
#define STACK3D_THERMAL_SOLVER_HH

#include <string>
#include <vector>

#include "common/cancel.hh"
#include "thermal/mesh.hh"
#include "thermal/multigrid.hh"

namespace stack3d {

namespace obs {
class CounterSet;
} // namespace obs

namespace exec {
class ThreadPool;
} // namespace exec

namespace thermal {

/** A solved temperature field with convenience queries. */
class TemperatureField
{
  public:
    TemperatureField(const Mesh &mesh, std::vector<double> temps)
        : _mesh(&mesh), _temps(std::move(temps))
    {
    }

    /** Temperature of cell (i, j, z) in degrees C. */
    double
    at(unsigned i, unsigned j, unsigned z) const
    {
        return _temps[_mesh->cellIndex(i, j, z)];
    }

    /** Peak temperature over the whole mesh. */
    double peak() const;

    /** Minimum temperature over the whole mesh. */
    double minimum() const;

    /** Peak temperature within one layer. */
    double layerPeak(unsigned layer_index) const;

    /** Minimum temperature within one layer. */
    double layerMin(unsigned layer_index) const;

    /**
     * Location (i, j) of the layer's hottest cell, scanning every
     * z-plane of the layer.
     */
    std::pair<unsigned, unsigned> layerPeakCell(
        unsigned layer_index) const;

    const Mesh &mesh() const { return *_mesh; }
    const std::vector<double> &raw() const { return _temps; }

  private:
    const Mesh *_mesh;
    std::vector<double> _temps;
};

/** Which preconditioner the CG iteration uses. */
enum class Precond
{
    Jacobi,
    Multigrid,
};

/** Knobs for solveSteadyState; the defaults are the fast path. */
struct SolverOptions
{
    Precond precond = Precond::Multigrid;
    /** Relative residual target. */
    double tolerance = 1e-8;
    /** Iteration cap. */
    unsigned max_iters = 20000;
    /** V-cycle tuning (only read when precond == Multigrid). */
    MultigridOptions multigrid;
    /**
     * Optional initial guess (not owned; must stay alive through the
     * call). Used only when its size matches mesh.numCells() —
     * sweep runners hand in the previous sweep point's field so a
     * small conductivity change starts near the solution.
     */
    const std::vector<double> *warm_start = nullptr;
    /**
     * Optional slab-parallel executor (not owned). Results are
     * bit-identical with or without it, at any thread count.
     */
    exec::ThreadPool *pool = nullptr;

    /**
     * Optional cooperative stop request (not owned). Polled once per
     * CG outer iteration; a stop throws CancelledError, bounding how
     * long a deadline-expired solve can keep burning a worker to one
     * iteration's worth of work.
     */
    const CancelToken *cancel = nullptr;
};

/** Convergence report of a solve. */
struct SolveInfo
{
    unsigned iterations = 0;
    double residual = 0.0;
    bool converged = false;
    /** Multigrid V-cycles run (0 under the Jacobi preconditioner). */
    unsigned v_cycles = 0;
    /** Smoother sweeps across all V-cycles and levels. */
    unsigned smoother_sweeps = 0;
    /** True when a usable warm start replaced the ambient guess. */
    bool warm_start_used = false;
    /**
     * Relative residual after each iteration. Recorded only when a
     * SolveInfo is passed to solveSteadyState, so info-less callers
     * (and the microbenchmarks) pay nothing for it.
     */
    std::vector<double> residual_curve;
};

/**
 * Solve the mesh's steady-state system.
 * @param mesh     assembled mesh with power attached
 * @param options  preconditioner, tolerance, warm start, pool
 * @param info     optional convergence report
 */
TemperatureField solveSteadyState(const Mesh &mesh,
                                  const SolverOptions &options,
                                  SolveInfo *info = nullptr);

/** Back-compatible entry point: default options (multigrid). */
TemperatureField solveSteadyState(const Mesh &mesh,
                                  double tolerance = 1e-8,
                                  unsigned max_iters = 20000,
                                  SolveInfo *info = nullptr);

/**
 * Fold a solve's convergence report into @p out under @p prefix:
 * iterations, final residual, converged flag, preconditioner work
 * (v_cycles, smoother_sweeps), warm-start use, and the residual
 * curve as a series.
 */
void appendSolveCounters(obs::CounterSet &out,
                         const std::string &prefix,
                         const SolveInfo &info);

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_SOLVER_HH
