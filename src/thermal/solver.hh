/**
 * @file
 * Steady-state solution of the finite-volume heat equation with a
 * Jacobi-preconditioned conjugate-gradient solver (the operator is
 * symmetric positive definite thanks to the convection terms).
 */

#ifndef STACK3D_THERMAL_SOLVER_HH
#define STACK3D_THERMAL_SOLVER_HH

#include <string>
#include <vector>

#include "thermal/mesh.hh"

namespace stack3d {

namespace obs {
class CounterSet;
} // namespace obs

namespace thermal {

/** A solved temperature field with convenience queries. */
class TemperatureField
{
  public:
    TemperatureField(const Mesh &mesh, std::vector<double> temps)
        : _mesh(&mesh), _temps(std::move(temps))
    {
    }

    /** Temperature of cell (i, j, z) in degrees C. */
    double
    at(unsigned i, unsigned j, unsigned z) const
    {
        return _temps[_mesh->cellIndex(i, j, z)];
    }

    /** Peak temperature over the whole mesh. */
    double peak() const;

    /** Minimum temperature over the whole mesh. */
    double minimum() const;

    /** Peak temperature within one layer. */
    double layerPeak(unsigned layer_index) const;

    /** Minimum temperature within one layer. */
    double layerMin(unsigned layer_index) const;

    /** Location (i, j) of the layer's hottest cell. */
    std::pair<unsigned, unsigned> layerPeakCell(
        unsigned layer_index) const;

    const Mesh &mesh() const { return *_mesh; }
    const std::vector<double> &raw() const { return _temps; }

  private:
    const Mesh *_mesh;
    std::vector<double> _temps;
};

/** Convergence report of a solve. */
struct SolveInfo
{
    unsigned iterations = 0;
    double residual = 0.0;
    bool converged = false;
    /**
     * Relative residual after each iteration. Recorded only when a
     * SolveInfo is passed to solveSteadyState, so info-less callers
     * (and the microbenchmarks) pay nothing for it.
     */
    std::vector<double> residual_curve;
};

/**
 * Solve the mesh's steady-state system.
 * @param mesh       assembled mesh with power attached
 * @param tolerance  relative residual target
 * @param max_iters  iteration cap
 * @param info       optional convergence report
 */
TemperatureField solveSteadyState(const Mesh &mesh,
                                  double tolerance = 1e-8,
                                  unsigned max_iters = 20000,
                                  SolveInfo *info = nullptr);

/**
 * Fold a solve's convergence report into @p out under @p prefix:
 * iterations, final residual, converged flag, and the residual
 * curve as a series.
 */
void appendSolveCounters(obs::CounterSet &out,
                         const std::string &prefix,
                         const SolveInfo &info);

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_SOLVER_HH
