#include "mesh.hh"

#include <algorithm>
#include <cmath>

namespace stack3d {
namespace thermal {

namespace stencil {

void
apply(const double *gx, const double *gy, const double *gz,
      const double *diag, const double *x, double *y, unsigned nx,
      unsigned ny, unsigned nz, unsigned z_begin, unsigned z_end)
{
    std::size_t plane = std::size_t(nx) * ny;
    for (unsigned z = z_begin; z < z_end; ++z) {
        for (unsigned j = 0; j < ny; ++j) {
            std::size_t row = (std::size_t(z) * ny + j) * nx;
            for (unsigned i = 0; i < nx; ++i) {
                std::size_t c = row + i;
                double acc = diag[c] * x[c];
                if (z > 0)
                    acc -= gz[c - plane] * x[c - plane];
                if (z + 1 < nz)
                    acc -= gz[c] * x[c + plane];
                if (i > 0)
                    acc -= gx[c - 1] * x[c - 1];
                if (i + 1 < nx)
                    acc -= gx[c] * x[c + 1];
                if (j > 0)
                    acc -= gy[c - nx] * x[c - nx];
                if (j + 1 < ny)
                    acc -= gy[c] * x[c + nx];
                y[c] = acc;
            }
        }
    }
}

double
applyDot(const double *gx, const double *gy, const double *gz,
         const double *diag, const double *x, double *y, unsigned nx,
         unsigned ny, unsigned nz, unsigned z_begin, unsigned z_end)
{
    std::size_t plane = std::size_t(nx) * ny;
    double dot = 0.0;
    for (unsigned z = z_begin; z < z_end; ++z) {
        for (unsigned j = 0; j < ny; ++j) {
            std::size_t row = (std::size_t(z) * ny + j) * nx;
            for (unsigned i = 0; i < nx; ++i) {
                std::size_t c = row + i;
                double acc = diag[c] * x[c];
                if (z > 0)
                    acc -= gz[c - plane] * x[c - plane];
                if (z + 1 < nz)
                    acc -= gz[c] * x[c + plane];
                if (i > 0)
                    acc -= gx[c - 1] * x[c - 1];
                if (i + 1 < nx)
                    acc -= gx[c] * x[c + 1];
                if (j > 0)
                    acc -= gy[c - nx] * x[c - nx];
                if (j + 1 < ny)
                    acc -= gy[c] * x[c + nx];
                y[c] = acc;
                dot += x[c] * acc;
            }
        }
    }
    return dot;
}

} // namespace stencil

unsigned
StackGeometry::layerIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].name == name)
            return unsigned(i);
    }
    stack3d_fatal("no layer named '", name, "' in stack");
}

double
StackGeometry::totalThickness() const
{
    double total = 0.0;
    for (const Layer &layer : layers)
        total += layer.thickness;
    return total;
}

Mesh::Mesh(const StackGeometry &geom, unsigned die_nx, unsigned die_ny)
    : _geom(geom), _die_nx(die_nx), _die_ny(die_ny)
{
    if (die_nx == 0 || die_ny == 0)
        stack3d_fatal("mesh needs a non-empty lateral grid");
    if (geom.layers.empty())
        stack3d_fatal("stack has no layers");
    if (geom.width <= 0.0 || geom.height <= 0.0)
        stack3d_fatal("stack has non-positive die extent");
    if (geom.margin < 0.0)
        stack3d_fatal("stack margin must be non-negative");
    for (const Layer &layer : geom.layers) {
        if (layer.thickness <= 0.0 || layer.conductivity <= 0.0 ||
            layer.nz == 0) {
            stack3d_fatal("layer '", layer.name,
                          "' has non-positive thickness, conductivity, "
                          "or cell count");
        }
    }

    _dx = geom.width / die_nx;
    _dy = geom.height / die_ny;
    _margin_cells_x = unsigned(std::lround(geom.margin / _dx));
    _margin_cells_y = unsigned(std::lround(geom.margin / _dy));
    _nx = die_nx + 2 * _margin_cells_x;
    _ny = die_ny + 2 * _margin_cells_y;

    for (std::size_t l = 0; l < geom.layers.size(); ++l) {
        const Layer &layer = geom.layers[l];
        _layer_z_begin.push_back(_nz_total);
        for (unsigned z = 0; z < layer.nz; ++z) {
            _dz.push_back(layer.thickness / layer.nz);
            _layer_of_z.push_back(unsigned(l));
        }
        _nz_total += layer.nz;
    }

    assemble();
}

unsigned
Mesh::layerZBegin(unsigned layer_index) const
{
    stack3d_assert(layer_index < _geom.layers.size(), "layer index");
    return _layer_z_begin[layer_index];
}

unsigned
Mesh::layerZEnd(unsigned layer_index) const
{
    stack3d_assert(layer_index < _geom.layers.size(), "layer index");
    return _layer_z_begin[layer_index] + _geom.layers[layer_index].nz;
}

void
Mesh::fillCellK(unsigned z_begin, unsigned z_end)
{
    std::size_t plane = std::size_t(_nx) * _ny;
    for (unsigned z = z_begin; z < z_end; ++z) {
        const Layer &layer = _geom.layers[_layer_of_z[z]];
        double *k = _cell_k.data() + std::size_t(z) * plane;
        bool has_margin = layer.margin_conductivity > 0.0 &&
                          (_margin_cells_x > 0 || _margin_cells_y > 0);
        if (!has_margin) {
            std::fill(k, k + plane, layer.conductivity);
            continue;
        }
        // Margin layers fill by row segment: rows outside the die
        // window are all margin material; rows inside split into
        // margin / die / margin runs.
        unsigned j0 = _margin_cells_y, j1 = _margin_cells_y + _die_ny;
        unsigned i0 = _margin_cells_x, i1 = _margin_cells_x + _die_nx;
        for (unsigned j = 0; j < _ny; ++j) {
            double *row = k + std::size_t(j) * _nx;
            if (j < j0 || j >= j1) {
                std::fill(row, row + _nx, layer.margin_conductivity);
                continue;
            }
            std::fill(row, row + i0, layer.margin_conductivity);
            std::fill(row + i0, row + i1, layer.conductivity);
            std::fill(row + i1, row + _nx, layer.margin_conductivity);
        }
    }
}

std::size_t
Mesh::assembleFaces(unsigned z_begin, unsigned z_end)
{
    double cell_area = _dx * _dy;
    std::size_t plane = std::size_t(_nx) * _ny;
    std::size_t faces = 0;

    // Face conductances from harmonic means of the two cell halves.
    for (unsigned z = z_begin; z < z_end; ++z) {
        double dz = _dz[z];
        for (unsigned j = 0; j < _ny; ++j) {
            std::size_t row = cellIndex(0, j, z);
            for (unsigned i = 0; i < _nx; ++i) {
                std::size_t c = row + i;
                double k0 = _cell_k[c];
                if (i + 1 < _nx) {
                    double r = _dx / (2.0 * k0) +
                               _dx / (2.0 * _cell_k[c + 1]);
                    _gx[c] = (_dy * dz) / r;
                    ++faces;
                }
                if (j + 1 < _ny) {
                    double r = _dy / (2.0 * k0) +
                               _dy / (2.0 * _cell_k[c + _nx]);
                    _gy[c] = (_dx * dz) / r;
                    ++faces;
                }
                if (z + 1 < _nz_total) {
                    double r = dz / (2.0 * k0) +
                               _dz[z + 1] /
                                   (2.0 * _cell_k[c + plane]);
                    _gz[c] = cell_area / r;
                    ++faces;
                }
            }
        }
    }
    return faces;
}

void
Mesh::assembleDiagonal()
{
    double cell_area = _dx * _dy;
    double g_top = _geom.h_top * cell_area;
    double g_bottom = _geom.h_bottom * cell_area;
    std::size_t plane = std::size_t(_nx) * _ny;

    for (unsigned z = 0; z < _nz_total; ++z) {
        for (unsigned j = 0; j < _ny; ++j) {
            std::size_t row = cellIndex(0, j, z);
            for (unsigned i = 0; i < _nx; ++i) {
                std::size_t c = row + i;
                double d = 0.0;
                d += z == 0 ? g_top : _gz[c - plane];
                d += z + 1 < _nz_total ? _gz[c] : g_bottom;
                if (i > 0)
                    d += _gx[c - 1];
                if (i + 1 < _nx)
                    d += _gx[c];
                if (j > 0)
                    d += _gy[c - _nx];
                if (j + 1 < _ny)
                    d += _gy[c];
                _diag[c] = d;
            }
        }
    }
}

void
Mesh::assemble()
{
    std::size_t n = numCells();
    _cell_k.assign(n, 0.0);
    _gx.assign(n, 0.0);
    _gy.assign(n, 0.0);
    _gz.assign(n, 0.0);
    _rhs.assign(n, 0.0);
    _diag.assign(n, 0.0);

    fillCellK(0, _nz_total);
    assembleFaces(0, _nz_total);
    assembleDiagonal();

    // Convection ambient terms; setLayerPower adds sources on top.
    double cell_area = _dx * _dy;
    double g_top = _geom.h_top * cell_area;
    double g_bottom = _geom.h_bottom * cell_area;
    std::size_t plane = std::size_t(_nx) * _ny;
    for (std::size_t c = 0; c < plane; ++c)
        _rhs[c] += g_top * _geom.ambient;
    for (std::size_t c = n - plane; c < n; ++c)
        _rhs[c] += g_bottom * _geom.ambient;
}

std::size_t
Mesh::updateLayerConductivity(unsigned layer_index, double conductivity)
{
    stack3d_assert(layer_index < _geom.layers.size(),
                   "layer index out of range");
    if (conductivity <= 0.0)
        stack3d_fatal("layer conductivity must be positive");
    Layer &layer = _geom.layers[layer_index];
    if (layer.conductivity == conductivity)
        return 0;
    layer.conductivity = conductivity;

    unsigned z0 = layerZBegin(layer_index);
    unsigned z1 = layerZEnd(layer_index);
    fillCellK(z0, z1);
    // gz faces at plane z-1 reach into this layer, so reassemble one
    // plane above as well; its gx/gy recompute to identical values.
    std::size_t faces = assembleFaces(z0 > 0 ? z0 - 1 : 0, z1);
    assembleDiagonal();
    return faces;
}

double
Mesh::cellHeatCapacity(unsigned i, unsigned j, unsigned z) const
{
    (void)i;
    (void)j;
    const Layer &layer =
        _geom.layers[_layer_of_z[S3D_BOUNDS(z, _layer_of_z.size())]];
    return layer.volumetric_heat_capacity * _dx * _dy * _dz[z];
}

void
Mesh::setLayerPower(unsigned layer_index, const PowerMap &map)
{
    stack3d_assert(layer_index < _geom.layers.size(),
                   "layer index out of range");
    if (!_geom.layers[layer_index].is_active) {
        stack3d_fatal("layer '", _geom.layers[layer_index].name,
                      "' is not an active (power) layer");
    }
    if (map.nx() != _die_nx || map.ny() != _die_ny) {
        stack3d_fatal("power map resolution ", map.nx(), "x", map.ny(),
                      " does not match the die window ", _die_nx, "x",
                      _die_ny);
    }
    unsigned z = layerZBegin(layer_index);
    for (unsigned j = 0; j < _die_ny; ++j) {
        for (unsigned i = 0; i < _die_nx; ++i) {
            std::size_t c = cellIndex(i + _margin_cells_x,
                                      j + _margin_cells_y, z);
            _rhs[c] += map.cell(i, j);
        }
    }
}

void
Mesh::applyOperator(const std::vector<double> &x,
                    std::vector<double> &y) const
{
    stack3d_assert(x.size() == numCells(), "operator input size");
    y.resize(numCells());
    applyOperatorSlab(0, _nz_total, x.data(), y.data());
}

void
Mesh::applyOperatorSlab(unsigned z_begin, unsigned z_end,
                        const double *x, double *y) const
{
    stencil::apply(_gx.data(), _gy.data(), _gz.data(), _diag.data(),
                   x, y, _nx, _ny, _nz_total, z_begin, z_end);
}

double
Mesh::applyOperatorAndDotSlab(unsigned z_begin, unsigned z_end,
                              const double *x, double *y) const
{
    return stencil::applyDot(_gx.data(), _gy.data(), _gz.data(),
                             _diag.data(), x, y, _nx, _ny, _nz_total,
                             z_begin, z_end);
}

} // namespace thermal
} // namespace stack3d
