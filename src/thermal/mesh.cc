#include "mesh.hh"

#include <algorithm>
#include <cmath>

namespace stack3d {
namespace thermal {

unsigned
StackGeometry::layerIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].name == name)
            return unsigned(i);
    }
    stack3d_fatal("no layer named '", name, "' in stack");
}

double
StackGeometry::totalThickness() const
{
    double total = 0.0;
    for (const Layer &layer : layers)
        total += layer.thickness;
    return total;
}

Mesh::Mesh(const StackGeometry &geom, unsigned die_nx, unsigned die_ny)
    : _geom(geom), _die_nx(die_nx), _die_ny(die_ny)
{
    if (die_nx == 0 || die_ny == 0)
        stack3d_fatal("mesh needs a non-empty lateral grid");
    if (geom.layers.empty())
        stack3d_fatal("stack has no layers");
    if (geom.width <= 0.0 || geom.height <= 0.0)
        stack3d_fatal("stack has non-positive die extent");
    if (geom.margin < 0.0)
        stack3d_fatal("stack margin must be non-negative");
    for (const Layer &layer : geom.layers) {
        if (layer.thickness <= 0.0 || layer.conductivity <= 0.0 ||
            layer.nz == 0) {
            stack3d_fatal("layer '", layer.name,
                          "' has non-positive thickness, conductivity, "
                          "or cell count");
        }
    }

    _dx = geom.width / die_nx;
    _dy = geom.height / die_ny;
    _margin_cells_x = unsigned(std::lround(geom.margin / _dx));
    _margin_cells_y = unsigned(std::lround(geom.margin / _dy));
    _nx = die_nx + 2 * _margin_cells_x;
    _ny = die_ny + 2 * _margin_cells_y;

    for (std::size_t l = 0; l < geom.layers.size(); ++l) {
        const Layer &layer = geom.layers[l];
        _layer_z_begin.push_back(_nz_total);
        for (unsigned z = 0; z < layer.nz; ++z) {
            _dz.push_back(layer.thickness / layer.nz);
            _layer_of_z.push_back(unsigned(l));
        }
        _nz_total += layer.nz;
    }

    assemble();
}

unsigned
Mesh::layerZBegin(unsigned layer_index) const
{
    stack3d_assert(layer_index < _geom.layers.size(), "layer index");
    return _layer_z_begin[layer_index];
}

unsigned
Mesh::layerZEnd(unsigned layer_index) const
{
    stack3d_assert(layer_index < _geom.layers.size(), "layer index");
    return _layer_z_begin[layer_index] + _geom.layers[layer_index].nz;
}

double
Mesh::cellK(unsigned i, unsigned j, unsigned z) const
{
    const Layer &layer = _geom.layers[_layer_of_z[z]];
    if (layer.margin_conductivity > 0.0 && !inDieWindow(i, j))
        return layer.margin_conductivity;
    return layer.conductivity;
}

void
Mesh::assemble()
{
    double cell_area = _dx * _dy;
    std::size_t n = numCells();
    _gx.assign(n, 0.0);
    _gy.assign(n, 0.0);
    _gz.assign(n, 0.0);
    _rhs.assign(n, 0.0);
    _diag.assign(n, 0.0);

    // Face conductances from harmonic means of the two cell halves.
    for (unsigned z = 0; z < _nz_total; ++z) {
        double dz = _dz[z];
        for (unsigned j = 0; j < _ny; ++j) {
            for (unsigned i = 0; i < _nx; ++i) {
                std::size_t c = cellIndex(i, j, z);
                double k0 = cellK(i, j, z);
                if (i + 1 < _nx) {
                    double k1 = cellK(i + 1, j, z);
                    double r = _dx / (2.0 * k0) + _dx / (2.0 * k1);
                    _gx[c] = (_dy * dz) / r;
                }
                if (j + 1 < _ny) {
                    double k1 = cellK(i, j + 1, z);
                    double r = _dy / (2.0 * k0) + _dy / (2.0 * k1);
                    _gy[c] = (_dx * dz) / r;
                }
                if (z + 1 < _nz_total) {
                    double k1 = cellK(i, j, z + 1);
                    double r = dz / (2.0 * k0) +
                               _dz[z + 1] / (2.0 * k1);
                    _gz[c] = cell_area / r;
                }
            }
        }
    }

    double g_top = _geom.h_top * cell_area;
    double g_bottom = _geom.h_bottom * cell_area;
    std::size_t plane = std::size_t(_nx) * _ny;

    for (unsigned z = 0; z < _nz_total; ++z) {
        for (unsigned j = 0; j < _ny; ++j) {
            for (unsigned i = 0; i < _nx; ++i) {
                std::size_t c = cellIndex(i, j, z);
                double d = 0.0;
                if (z == 0) {
                    d += g_top;
                    _rhs[c] += g_top * _geom.ambient;
                } else {
                    d += _gz[c - plane];
                }
                if (z + 1 < _nz_total) {
                    d += _gz[c];
                } else {
                    d += g_bottom;
                    _rhs[c] += g_bottom * _geom.ambient;
                }
                if (i > 0)
                    d += _gx[c - 1];
                if (i + 1 < _nx)
                    d += _gx[c];
                if (j > 0)
                    d += _gy[c - _nx];
                if (j + 1 < _ny)
                    d += _gy[c];
                _diag[c] = d;
            }
        }
    }
}

double
Mesh::cellHeatCapacity(unsigned i, unsigned j, unsigned z) const
{
    (void)i;
    (void)j;
    const Layer &layer = _geom.layers[_layer_of_z[z]];
    return layer.volumetric_heat_capacity * _dx * _dy * _dz[z];
}

void
Mesh::setLayerPower(unsigned layer_index, const PowerMap &map)
{
    stack3d_assert(layer_index < _geom.layers.size(),
                   "layer index out of range");
    if (!_geom.layers[layer_index].is_active) {
        stack3d_fatal("layer '", _geom.layers[layer_index].name,
                      "' is not an active (power) layer");
    }
    if (map.nx() != _die_nx || map.ny() != _die_ny) {
        stack3d_fatal("power map resolution ", map.nx(), "x", map.ny(),
                      " does not match the die window ", _die_nx, "x",
                      _die_ny);
    }
    unsigned z = layerZBegin(layer_index);
    for (unsigned j = 0; j < _die_ny; ++j) {
        for (unsigned i = 0; i < _die_nx; ++i) {
            std::size_t c = cellIndex(i + _margin_cells_x,
                                      j + _margin_cells_y, z);
            _rhs[c] += map.cell(i, j);
        }
    }
}

void
Mesh::applyOperator(const std::vector<double> &x,
                    std::vector<double> &y) const
{
    stack3d_assert(x.size() == numCells(), "operator input size");
    y.resize(numCells());

    std::size_t plane = std::size_t(_nx) * _ny;
    for (unsigned z = 0; z < _nz_total; ++z) {
        for (unsigned j = 0; j < _ny; ++j) {
            std::size_t row = cellIndex(0, j, z);
            for (unsigned i = 0; i < _nx; ++i) {
                std::size_t c = row + i;
                double acc = _diag[c] * x[c];
                if (z > 0)
                    acc -= _gz[c - plane] * x[c - plane];
                if (z + 1 < _nz_total)
                    acc -= _gz[c] * x[c + plane];
                if (i > 0)
                    acc -= _gx[c - 1] * x[c - 1];
                if (i + 1 < _nx)
                    acc -= _gx[c] * x[c + 1];
                if (j > 0)
                    acc -= _gy[c - _nx] * x[c - _nx];
                if (j + 1 < _ny)
                    acc -= _gy[c] * x[c + _nx];
                y[c] = acc;
            }
        }
    }
}

} // namespace thermal
} // namespace stack3d
