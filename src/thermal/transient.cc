#include "transient.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stack3d {
namespace thermal {

namespace {

/**
 * Jacobi-preconditioned CG on (A + C/dt) x = b, where A is the
 * mesh's conduction operator and C the diagonal heat-capacity matrix.
 */
void
solveStep(const Mesh &mesh, const std::vector<double> &cap_over_dt,
          const std::vector<double> &b, std::vector<double> &x,
          double tolerance, unsigned max_iters)
{
    std::size_t n = mesh.numCells();
    std::vector<double> r(n), z(n), p(n), ap(n);

    auto apply = [&](const std::vector<double> &in,
                     std::vector<double> &out) {
        mesh.applyOperator(in, out);
        for (std::size_t i = 0; i < n; ++i)
            out[i] += cap_over_dt[i] * in[i];
    };

    apply(x, ap);
    double b_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - ap[i];
        b_norm += b[i] * b[i];
    }
    b_norm = std::sqrt(std::max(b_norm, 1e-300));

    const std::vector<double> &diag = mesh.diagonal();
    auto precond = [&](const std::vector<double> &in,
                       std::vector<double> &out) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = in[i] / (diag[i] + cap_over_dt[i]);
    };

    precond(r, z);
    p = z;
    double rz = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        rz += r[i] * z[i];

    for (unsigned iter = 0; iter < max_iters; ++iter) {
        apply(p, ap);
        double p_ap = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            p_ap += p[i] * ap[i];
        double alpha = rz / p_ap;
        double r_norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            r_norm += r[i] * r[i];
        }
        if (std::sqrt(r_norm) / b_norm < tolerance)
            return;
        precond(r, z);
        double rz_new = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            rz_new += r[i] * z[i];
        double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = z[i] + beta * p[i];
    }
    warn("transient step CG hit the iteration cap");
}

} // anonymous namespace

TransientResult
solveTransient(const Mesh &mesh, double duration, double dt,
               double initial_c)
{
    stack3d_assert(duration > 0.0 && dt > 0.0,
                   "transient needs positive duration and step");
    std::size_t n = mesh.numCells();

    if (initial_c < 0.0)
        initial_c = mesh.geometry().ambient;

    // Per-cell capacity / dt.
    std::vector<double> cap_over_dt(n);
    for (unsigned z = 0; z < mesh.nzTotal(); ++z)
        for (unsigned j = 0; j < mesh.ny(); ++j)
            for (unsigned i = 0; i < mesh.nx(); ++i)
                cap_over_dt[mesh.cellIndex(i, j, z)] =
                    mesh.cellHeatCapacity(i, j, z) / dt;

    std::vector<double> temps(n, initial_c);
    std::vector<double> b(n);

    // Steady-state target for the time-constant estimate.
    double steady_peak = solveSteadyState(mesh, 1e-8).peak();
    double initial_peak = initial_c;
    double target =
        initial_peak + (steady_peak - initial_peak) * 0.632;

    TransientResult result{
        {}, TemperatureField(mesh, temps), 0.0};
    double prev_peak = initial_peak;
    double prev_time = 0.0;

    unsigned steps = unsigned(std::ceil(duration / dt));
    for (unsigned step = 1; step <= steps; ++step) {
        // b = Q + ambient terms + (C/dt) T_old.
        const std::vector<double> &rhs = mesh.rhs();
        for (std::size_t i = 0; i < n; ++i)
            b[i] = rhs[i] + cap_over_dt[i] * temps[i];
        solveStep(mesh, cap_over_dt, b, temps, 1e-9, 5000);

        double t = step * dt;
        double peak = *std::max_element(temps.begin(), temps.end());
        result.samples.push_back({t, peak});

        // 0.0 is the assigned-once "not yet crossed" sentinel, never
        // a computed value. lint3d: safe-float-eq-ok
        if (result.time_constant_s == 0.0 && peak >= target &&
            steady_peak > initial_peak) {
            // Linear interpolation across the crossing step.
            double frac = (target - prev_peak) /
                          std::max(peak - prev_peak, 1e-12);
            result.time_constant_s = prev_time + frac * dt;
        }
        prev_peak = peak;
        prev_time = t;
    }

    result.final_field = TemperatureField(mesh, std::move(temps));
    return result;
}

} // namespace thermal
} // namespace stack3d
