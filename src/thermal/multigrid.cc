#include "thermal/multigrid.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "exec/pool.hh"
#include "exec/reduce.hh"

namespace stack3d {
namespace thermal {

namespace {

/**
 * Levels below this cell count run their slab loops serially — the
 * task-submission overhead exceeds the loop body. The cutoff does not
 * affect results (see exec/reduce.hh), only scheduling.
 */
constexpr std::size_t kParallelCellCutoff = 32768;

inline std::size_t
idx(unsigned nx, unsigned ny, unsigned i, unsigned j, unsigned z)
{
    return (std::size_t(z) * ny + j) * nx + i;
}

} // anonymous namespace

MultigridPreconditioner::MultigridPreconditioner(
    const Mesh &mesh, const MultigridOptions &options,
    exec::ThreadPool *pool)
    : _options(options), _pool(pool)
{
    Level fine;
    fine.nx = mesh.nx();
    fine.ny = mesh.ny();
    fine.nz = mesh.nzTotal();
    fine.gx = mesh.faceGx().data();
    fine.gy = mesh.faceGy().data();
    fine.gz = mesh.faceGz().data();
    fine.diag = mesh.diagonal().data();
    _levels.push_back(std::move(fine));

    while (std::min(_levels.back().nx, _levels.back().ny) >
               _options.min_coarse_dim &&
           _levels.size() < 16)
        coarsen(_levels.back());

    const bool chebyshev =
        _options.smoother == MultigridOptions::Smoother::Chebyshev;
    const bool zline =
        _options.smoother == MultigridOptions::Smoother::ZLine;
    for (std::size_t l = 0; l < _levels.size(); ++l) {
        Level &level = _levels[l];
        level.res.assign(level.cells(), 0.0);
        if (l > 0) {
            level.x.assign(level.cells(), 0.0);
            level.rhs.assign(level.cells(), 0.0);
        }
        if (chebyshev)
            level.p.assign(level.cells(), 0.0);
        if (zline) {
            // Factor every column's tridiagonal (diagonal = operator
            // diagonal, off-diagonals = -gz) once; the LU recurrence
            // runs plane-by-plane so it vectorizes across (i, j).
            const std::size_t plane = level.plane();
            level.zl_inv.resize(level.cells());
            level.zl_cp.resize(level.cells());
            level.zl_dp.assign(level.cells(), 0.0);
            for (std::size_t c = 0; c < plane; ++c) {
                level.zl_inv[c] = 1.0 / level.diag[c];
                level.zl_cp[c] = -level.gz[c] * level.zl_inv[c];
            }
            for (unsigned z = 1; z < level.nz; ++z) {
                const std::size_t b = std::size_t(z) * plane;
                for (std::size_t c = b; c < b + plane; ++c) {
                    const double gzp = level.gz[c - plane];
                    level.zl_inv[c] =
                        1.0 / (level.diag[c] -
                               gzp * gzp * level.zl_inv[c - plane]);
                    level.zl_cp[c] =
                        -level.gz[c] * level.zl_inv[c];
                }
            }
        }
    }
}

void
MultigridPreconditioner::coarsen(const Level &fine)
{
    Level c;
    c.nx = (fine.nx + 1) / 2;
    c.ny = (fine.ny + 1) / 2;
    c.nz = fine.nz;
    const std::size_t n = c.cells();
    c.own_gx.assign(n, 0.0);
    c.own_gy.assign(n, 0.0);
    c.own_gz.assign(n, 0.0);
    c.own_diag.assign(n, 0.0);

    const unsigned fnx = fine.nx, fny = fine.ny;
    for (unsigned z = 0; z < c.nz; ++z) {
        for (unsigned J = 0; J < c.ny; ++J) {
            const unsigned j0 = 2 * J;
            const unsigned j1 = std::min(j0 + 2, fny);
            for (unsigned I = 0; I < c.nx; ++I) {
                const unsigned i0 = 2 * I;
                const unsigned i1 = std::min(i0 + 2, fnx);
                const std::size_t cc = idx(c.nx, c.ny, I, J, z);

                // Galerkin P^T A P with piecewise-constant P: the
                // coarse diagonal is the aggregate's row sums, i.e.
                // the fine diagonals minus both halves of every face
                // interior to the aggregate.
                double d = 0.0, gzs = 0.0;
                for (unsigned j = j0; j < j1; ++j)
                    for (unsigned i = i0; i < i1; ++i) {
                        const std::size_t f = idx(fnx, fny, i, j, z);
                        d += fine.diag[f];
                        gzs += fine.gz[f];
                    }
                if (i1 - i0 == 2)
                    for (unsigned j = j0; j < j1; ++j)
                        d -= 2.0 * fine.gx[idx(fnx, fny, i0, j, z)];
                if (j1 - j0 == 2)
                    for (unsigned i = i0; i < i1; ++i)
                        d -= 2.0 * fine.gy[idx(fnx, fny, i, j0, z)];
                c.own_diag[cc] = d;
                c.own_gz[cc] = gzs;

                // Coarse lateral faces: the fine faces crossing the
                // aggregate boundary.
                if (I + 1 < c.nx)
                    for (unsigned j = j0; j < j1; ++j)
                        c.own_gx[cc] +=
                            fine.gx[idx(fnx, fny, i0 + 1, j, z)];
                if (J + 1 < c.ny)
                    for (unsigned i = i0; i < i1; ++i)
                        c.own_gy[cc] +=
                            fine.gy[idx(fnx, fny, i, j0 + 1, z)];
            }
        }
    }
    c.gx = c.own_gx.data();
    c.gy = c.own_gy.data();
    c.gz = c.own_gz.data();
    c.diag = c.own_diag.data();
    _levels.push_back(std::move(c));
}

exec::ThreadPool *
MultigridPreconditioner::poolFor(const Level &level) const
{
    return level.cells() >= kParallelCellCutoff ? _pool : nullptr;
}

void
MultigridPreconditioner::residual(const Level &level, const double *rhs,
                                  const double *x, double *out) const
{
    const std::size_t plane = level.plane();
    exec::parallelSlabs(
        poolFor(level), level.nz,
        [&level, rhs, x, out, plane](std::size_t z) {
            stencil::apply(level.gx, level.gy, level.gz, level.diag, x,
                           out, level.nx, level.ny, level.nz,
                           unsigned(z), unsigned(z) + 1);
            const std::size_t b = z * plane, e = b + plane;
            for (std::size_t c = b; c < e; ++c)
                out[c] = rhs[c] - out[c];
        });
}

void
MultigridPreconditioner::smooth(Level &level, const double *rhs,
                                double *x, unsigned sweeps,
                                bool x_is_zero)
{
    const std::size_t cells = level.cells();
    if (sweeps == 0) {
        if (x_is_zero)
            std::fill(x, x + cells, 0.0);
        return;
    }
    _smoother_sweeps += sweeps;

    const std::size_t plane = level.plane();
    const double omega = _options.damping;
    exec::ThreadPool *pool = poolFor(level);

    switch (_options.smoother) {
      case MultigridOptions::Smoother::ZLine: {
        // Damped block Jacobi: each (i, j) column's tridiagonal
        // z-system (full diagonal, -gz off-diagonals) is solved
        // exactly against the current residual using the factors
        // precomputed at setup. The forward/backward recurrences run
        // plane-by-plane so the inner loops are contiguous in i and
        // vectorize; columns write disjoint cells, so row-parallel
        // execution is deterministic by construction.
        const unsigned nx = level.nx, nz = level.nz;
        const double *inv = level.zl_inv.data();
        const double *cp = level.zl_cp.data();
        double *dp = level.zl_dp.data();
        for (unsigned s = 0; s < sweeps; ++s) {
            const bool first = x_is_zero && s == 0;
            const double *r = rhs;
            if (!first) {
                residual(level, rhs, x, level.res.data());
                r = level.res.data();
            }
            exec::parallelSlabs(
                pool, level.ny,
                [&level, r, x, omega, first, inv, cp, dp, nx, nz,
                 plane](std::size_t j) {
                    const std::size_t row = j * nx;
                    for (std::size_t c = row; c < row + nx; ++c)
                        dp[c] = r[c] * inv[c];
                    for (unsigned z = 1; z < nz; ++z) {
                        const std::size_t b = row + z * plane;
                        for (std::size_t c = b; c < b + nx; ++c)
                            dp[c] = (r[c] +
                                     level.gz[c - plane] *
                                         dp[c - plane]) *
                                    inv[c];
                    }
                    for (unsigned z = nz - 1; z-- > 0;) {
                        const std::size_t b = row + z * plane;
                        for (std::size_t c = b; c < b + nx; ++c)
                            dp[c] -= cp[c] * dp[c + plane];
                    }
                    for (unsigned z = 0; z < nz; ++z) {
                        const std::size_t b = row + z * plane;
                        if (first) {
                            for (std::size_t c = b; c < b + nx; ++c)
                                x[c] = omega * dp[c];
                        } else {
                            for (std::size_t c = b; c < b + nx; ++c)
                                x[c] += omega * dp[c];
                        }
                    }
                });
        }
        break;
      }
      case MultigridOptions::Smoother::Jacobi: {
        for (unsigned s = 0; s < sweeps; ++s) {
            const bool first = x_is_zero && s == 0;
            const double *r = rhs;
            if (!first) {
                residual(level, rhs, x, level.res.data());
                r = level.res.data();
            }
            exec::parallelSlabs(
                pool, level.nz,
                [&level, r, x, omega, first, plane](std::size_t z) {
                    const std::size_t b = z * plane, e = b + plane;
                    for (std::size_t c = b; c < e; ++c) {
                        const double d = omega * r[c] / level.diag[c];
                        if (first)
                            x[c] = d;
                        else
                            x[c] += d;
                    }
                });
        }
        break;
      }
      case MultigridOptions::Smoother::Chebyshev: {
        // Degree-`sweeps` Chebyshev polynomial in D^-1 A targeting
        // [lmax/4, lmax]. Gershgorin bounds the spectrum of D^-1 A by
        // 2 (the diagonal dominates the off-diagonal row sum thanks
        // to the convection terms), so no eigenvalue estimation pass
        // is needed.
        const double lmax = 2.0;
        const double lmin = lmax / 4.0;
        const double theta = 0.5 * (lmax + lmin);
        const double delta = 0.5 * (lmax - lmin);
        const double sigma = theta / delta;
        double rho = 1.0 / sigma;

        double *p = level.p.data();
        const double *r = rhs;
        if (x_is_zero) {
            std::fill(x, x + cells, 0.0);
        } else {
            residual(level, rhs, x, level.res.data());
            r = level.res.data();
        }
        exec::parallelSlabs(
            pool, level.nz,
            [&level, r, x, p, theta, plane](std::size_t z) {
                const std::size_t b = z * plane, e = b + plane;
                for (std::size_t c = b; c < e; ++c) {
                    p[c] = r[c] / (level.diag[c] * theta);
                    x[c] += p[c];
                }
            });
        for (unsigned k = 1; k < sweeps; ++k) {
            residual(level, rhs, x, level.res.data());
            const double *rk = level.res.data();
            const double rho_new = 1.0 / (2.0 * sigma - rho);
            const double a = rho_new * rho;
            const double b2 = 2.0 * rho_new / delta;
            exec::parallelSlabs(
                pool, level.nz,
                [&level, rk, x, p, a, b2, plane](std::size_t z) {
                    const std::size_t b = z * plane, e = b + plane;
                    for (std::size_t c = b; c < e; ++c) {
                        p[c] = a * p[c] + b2 * rk[c] / level.diag[c];
                        x[c] += p[c];
                    }
                });
            rho = rho_new;
        }
        break;
      }
    }
}

void
MultigridPreconditioner::vcycle(unsigned li, const double *rhs,
                                double *x)
{
    Level &level = _levels[li];
    if (li + 1 == _levels.size()) {
        smooth(level, rhs, x, _options.coarse_sweeps, true);
        return;
    }

    smooth(level, rhs, x, _options.pre_sweeps, true);
    residual(level, rhs, x, level.res.data());

    Level &coarse = _levels[li + 1];
    const double *res = level.res.data();
    double *crhs = coarse.rhs.data();
    const unsigned fnx = level.nx, fny = level.ny;
    const unsigned cnx = coarse.nx, cny = coarse.ny;

    // Restriction P^T: aggregate sums of the fine residual. Slabs are
    // z-planes (unchanged by lateral coarsening), so the partition is
    // fixed by the problem and the loop order within a plane is the
    // serial order.
    exec::parallelSlabs(
        poolFor(level), level.nz,
        [res, crhs, fnx, fny, cnx, cny](std::size_t z) {
            const unsigned pairs_i = fnx / 2;
            for (unsigned J = 0; J < cny; ++J) {
                const unsigned j0 = 2 * J;
                const unsigned j1 = std::min(j0 + 2, fny);
                double *crow = crhs + idx(cnx, cny, 0, J, unsigned(z));
                const double *frow0 =
                    res + idx(fnx, fny, 0, j0, unsigned(z));
                for (unsigned I = 0; I < pairs_i; ++I)
                    crow[I] = frow0[2 * I] + frow0[2 * I + 1];
                if (pairs_i < cnx)
                    crow[pairs_i] = frow0[fnx - 1];
                if (j1 - j0 == 2) {
                    const double *frow1 = frow0 + fnx;
                    for (unsigned I = 0; I < pairs_i; ++I)
                        crow[I] += frow1[2 * I] + frow1[2 * I + 1];
                    if (pairs_i < cnx)
                        crow[pairs_i] += frow1[fnx - 1];
                }
            }
        });

    vcycle(li + 1, coarse.rhs.data(), coarse.x.data());

    // Prolongation P: piecewise-constant injection, added to the
    // fine-level correction.
    const double *cx = coarse.x.data();
    exec::parallelSlabs(
        poolFor(level), level.nz,
        [cx, x, fnx, fny, cnx, cny](std::size_t z) {
            const unsigned pairs_i = fnx / 2;
            for (unsigned j = 0; j < fny; ++j) {
                const double *crow =
                    cx + idx(cnx, cny, 0, j / 2, unsigned(z));
                double *frow = x + idx(fnx, fny, 0, j, unsigned(z));
                for (unsigned I = 0; I < pairs_i; ++I) {
                    frow[2 * I] += crow[I];
                    frow[2 * I + 1] += crow[I];
                }
                if (pairs_i < cnx)
                    frow[fnx - 1] += crow[pairs_i];
            }
        });

    smooth(level, rhs, x, _options.post_sweeps, false);
}

void
MultigridPreconditioner::apply(const std::vector<double> &r,
                               std::vector<double> &z)
{
    Level &finest = _levels.front();
    stack3d_assert(r.size() == finest.cells(),
                   "multigrid rhs size mismatch");
    z.resize(finest.cells());
    vcycle(0, r.data(), z.data());
    ++_v_cycles;
}

} // namespace thermal
} // namespace stack3d
