/**
 * @file
 * Lateral power-density maps. A PowerMap discretizes the power
 * dissipated in one active layer onto the thermal solver's x-y grid;
 * it is built from floorplan block rectangles (Figure 6a's power map)
 * or filled uniformly (cache-only dies).
 */

#ifndef STACK3D_THERMAL_POWER_MAP_HH
#define STACK3D_THERMAL_POWER_MAP_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace stack3d {
namespace thermal {

/** Power (watts) per cell over an nx-by-ny lateral grid. */
class PowerMap
{
  public:
    /**
     * @param nx,ny   grid resolution
     * @param width   physical x extent in metres
     * @param height  physical y extent in metres
     */
    PowerMap(unsigned nx, unsigned ny, double width, double height);

    unsigned nx() const { return _nx; }
    unsigned ny() const { return _ny; }
    double width() const { return _width; }
    double height() const { return _height; }

    /** Watts in cell (i, j). */
    double
    cell(unsigned i, unsigned j) const
    {
        stack3d_assert(i < _nx && j < _ny, "power map index range");
        return _watts[j * _nx + i];
    }

    /**
     * Deposit @p watts uniformly over the rectangle [x0,x1)x[y0,y1)
     * (metres). Partial cell overlap is handled by area weighting.
     */
    void addRect(double x0, double y0, double x1, double y1,
                 double watts);

    /** Deposit @p watts uniformly over the whole map. */
    void addUniform(double watts);

    /** Sum of all cells. */
    double totalWatts() const;

    /** Peak cell power density in W/m^2. */
    double peakDensity() const;

    /** Scale every cell by @p factor (voltage/frequency scaling). */
    void scale(double factor);

  private:
    unsigned _nx, _ny;
    double _width, _height;
    std::vector<double> _watts;
};

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_POWER_MAP_HH
