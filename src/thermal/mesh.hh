/**
 * @file
 * Layered 3-D thermal mesh of the stacked-die / package / board
 * system (Figures 1 and 2). The geometry is a vertical stack of
 * homogeneous layers; the lateral domain extends a configurable
 * margin beyond the die outline so that heat spreading in the heat
 * sink, IHS, package and board — which are all much larger than the
 * die — is captured. Layers confined to the die (silicon, metal,
 * bond) specify a distinct conductivity for the surrounding margin
 * material (underfill / air / molding compound).
 *
 * The conservation-of-energy equation (1) with convection boundary
 * conditions (2) is discretized with the finite-volume method —
 * equivalent to lowest-order FEM on this hexahedral mesh — giving a
 * 7-point conductance stencil solved by thermal::solveSteadyState.
 */

#ifndef STACK3D_THERMAL_MESH_HH
#define STACK3D_THERMAL_MESH_HH

#include <string>
#include <vector>

#include "common/check.hh"
#include "thermal/power_map.hh"

namespace stack3d {
namespace thermal {

/**
 * Raw 7-point conductance-stencil kernels shared by the Mesh operator
 * and the multigrid levels (whose coarse operators have the same
 * shape but own their arrays). All kernels work on a z-plane range
 * [z_begin, z_end) so callers can partition them into deterministic
 * slabs (see exec/reduce.hh).
 */
namespace stencil {

/** y = A x over the slab (gx/gy/gz/diag as in Mesh). */
void apply(const double *gx, const double *gy, const double *gz,
           const double *diag, const double *x, double *y,
           unsigned nx, unsigned ny, unsigned nz, unsigned z_begin,
           unsigned z_end);

/** Fused y = A x plus the slab's partial dot Σ x[c]·y[c]. */
double applyDot(const double *gx, const double *gy, const double *gz,
                const double *diag, const double *x, double *y,
                unsigned nx, unsigned ny, unsigned nz,
                unsigned z_begin, unsigned z_end);

} // namespace stencil

/** One homogeneous layer of the vertical stack. */
struct Layer
{
    std::string name;
    /** Thickness in metres. */
    double thickness = 0.0;
    /** Conductivity within the die window, W/(m K). */
    double conductivity = 0.0;
    /** Vertical cells this layer is divided into. */
    unsigned nz = 1;
    /** True if a power map may be attached (an active Si plane). */
    bool is_active = false;
    /**
     * Conductivity in the margin region outside the die window;
     * 0 means the layer material extends across the whole domain
     * (heat sink, IHS, package, board).
     */
    double margin_conductivity = 0.0;

    /**
     * Volumetric heat capacity (rho * c), J/(m^3 K). Only used by
     * the transient solver; the default is silicon-class. Table 2
     * gives conductivities only, so transient results use standard
     * material capacities.
     */
    double volumetric_heat_capacity = 1.65e6;
};

/** The full stack description with boundary conditions. */
struct StackGeometry
{
    /** Die outline in metres. */
    double width = 0.0;
    double height = 0.0;

    /**
     * Lateral margin of package/heat-sink material surrounding the
     * die on every side, metres.
     */
    double margin = 0.0;

    /** Layers ordered from the heat-sink side (top) downwards. */
    std::vector<Layer> layers;

    /**
     * Heat-transfer coefficient at the heat-sink surface (forced
     * convection with fin-area folding), W/(m^2 K), applied over the
     * whole domain.
     */
    double h_top = 0.0;

    /** Natural convection at the motherboard face, W/(m^2 K). */
    double h_bottom = 0.0;

    /** Ambient temperature, degrees C (Table 2: 40 C). */
    double ambient = 40.0;

    /** Index of the layer named @p name; fatal if absent. */
    unsigned layerIndex(const std::string &name) const;

    /** Total stack thickness in metres. */
    double totalThickness() const;
};

/**
 * The assembled finite-volume mesh: cell-centred temperatures over
 * the domain (die + margins) with per-face conductances and a power
 * (source) vector.
 */
class Mesh
{
  public:
    /**
     * Build the mesh. @p die_nx x @p die_ny cells span the die
     * window; the margin is discretized with cells of the same size.
     */
    Mesh(const StackGeometry &geom, unsigned die_nx, unsigned die_ny);

    /**
     * Attach a power map to active layer @p layer_index. The map
     * spans the die window, so its resolution must be
     * dieNx() x dieNy(). Power enters that layer's top plane.
     */
    void setLayerPower(unsigned layer_index, const PowerMap &map);

    unsigned nx() const { return _nx; }
    unsigned ny() const { return _ny; }
    unsigned dieNx() const { return _die_nx; }
    unsigned dieNy() const { return _die_ny; }
    unsigned dieI0() const { return _margin_cells_x; }
    unsigned dieJ0() const { return _margin_cells_y; }
    unsigned nzTotal() const { return _nz_total; }

    std::size_t numCells() const
    {
        return std::size_t(_nx) * _ny * _nz_total;
    }

    const StackGeometry &geometry() const { return _geom; }

    /** First global z-index of layer @p layer_index. */
    unsigned layerZBegin(unsigned layer_index) const;
    /** One past the last z-index of layer @p layer_index. */
    unsigned layerZEnd(unsigned layer_index) const;

    /** Flattened cell index. Bounds-checked under the `checked` preset. */
    std::size_t
    cellIndex(unsigned i, unsigned j, unsigned z) const
    {
        S3D_DCHECK(i < _nx && j < _ny && z < _nz_total)
            << "i=" << i << " j=" << j << " z=" << z << " nx=" << _nx
            << " ny=" << _ny << " nz=" << _nz_total;
        return (std::size_t(z) * _ny + j) * _nx + i;
    }

    /** True if lateral cell (i, j) lies within the die window. */
    bool
    inDieWindow(unsigned i, unsigned j) const
    {
        return i >= _margin_cells_x && i < _margin_cells_x + _die_nx &&
               j >= _margin_cells_y && j < _margin_cells_y + _die_ny;
    }

    /**
     * y = A x where A is the finite-volume conduction operator
     * (including convection diagonal terms). Used by the CG solver.
     */
    void applyOperator(const std::vector<double> &x,
                       std::vector<double> &y) const;

    /** y = A x restricted to the z-plane slab [z_begin, z_end). */
    void applyOperatorSlab(unsigned z_begin, unsigned z_end,
                           const double *x, double *y) const;

    /** Fused slab apply returning the partial dot Σ x[c]·(A x)[c]. */
    double applyOperatorAndDotSlab(unsigned z_begin, unsigned z_end,
                                   const double *x, double *y) const;

    /** Right-hand side: power sources + convection ambient terms. */
    const std::vector<double> &rhs() const { return _rhs; }

    /** Diagonal of the operator (Jacobi preconditioner). */
    const std::vector<double> &diagonal() const { return _diag; }

    /** Face conductances (see the member docs for indexing). */
    const std::vector<double> &faceGx() const { return _gx; }
    const std::vector<double> &faceGy() const { return _gy; }
    const std::vector<double> &faceGz() const { return _gz; }

    /**
     * Change one layer's die-window conductivity in place,
     * reassembling only the face conductances that touch the layer's
     * z-planes (the sweep-reuse fast path: a 1-cell-thick layer in a
     * 20-plane stack reassembles ~10% of the faces instead of all of
     * them). The margin conductivity, the right-hand side — including
     * any attached power maps — and all untouched faces are preserved
     * bit-for-bit; touched faces get exactly the values a fresh
     * assembly would produce.
     *
     * @return number of face conductances recomputed.
     */
    std::size_t updateLayerConductivity(unsigned layer_index,
                                        double conductivity);

    /** Per-cell heat capacity (rho c V), J/K, for transient solves. */
    double cellHeatCapacity(unsigned i, unsigned j, unsigned z) const;

  private:
    void assemble();
    void fillCellK(unsigned z_begin, unsigned z_end);
    std::size_t assembleFaces(unsigned z_begin, unsigned z_end);
    void assembleDiagonal();

    StackGeometry _geom;
    unsigned _die_nx, _die_ny;
    unsigned _margin_cells_x = 0, _margin_cells_y = 0;
    unsigned _nx, _ny;
    unsigned _nz_total = 0;
    double _dx, _dy;

    /** Per-global-z layer id, z size. */
    std::vector<unsigned> _layer_of_z;
    std::vector<double> _dz;
    std::vector<unsigned> _layer_z_begin;

    /**
     * Per-cell conductivity, cached once per assembly so face loops
     * never re-derive the layer struct or re-test the die window
     * (margin layers fill by row segment; uniform layers by plane).
     */
    std::vector<double> _cell_k;

    /** Face conductances: _gx[c] couples c and c+1 in x (0 on the
     *  last column); _gy similarly in y; _gz[c] couples c to the
     *  plane below (0 on the last plane). */
    std::vector<double> _gx, _gy, _gz;

    std::vector<double> _rhs;
    std::vector<double> _diag;
};

} // namespace thermal
} // namespace stack3d

#endif // STACK3D_THERMAL_MESH_HH
