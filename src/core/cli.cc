#include "cli.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace core {

namespace {

/** Fetch the value of a `--flag VALUE` pair, fatal()ing when absent. */
const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc)
        stack3d_fatal(flag, " requires a value");
    return argv[++i];
}

double
parseDoubleArg(const char *text, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0')
        stack3d_fatal(flag, " expects a number, got '", text, "'");
    return v;
}

std::uint64_t
parseSeedArg(const char *text, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || text[0] == '-')
        stack3d_fatal(flag, " expects a non-negative integer, got '",
                      text, "'");
    return std::uint64_t(v);
}

const char *
verbosityName(Verbosity v)
{
    switch (v) {
      case Verbosity::Silent:
        return "silent";
      case Verbosity::Verbose:
        return "verbose";
      case Verbosity::Normal:
        break;
    }
    return "normal";
}

} // anonymous namespace

BenchCli::BenchCli(std::string tool) : _tool(std::move(tool)) {}

bool
BenchCli::consume(int argc, char **argv, int &i)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
        options.threads = parseThreadArg(
            flagValue(argc, argv, i, "--threads"), "--threads");
        return true;
    }
    if (std::strcmp(arg, "--seed") == 0) {
        options.seed =
            parseSeedArg(flagValue(argc, argv, i, "--seed"), "--seed");
        return true;
    }
    if (std::strcmp(arg, "--depth") == 0) {
        options.depth = parseDoubleArg(
            flagValue(argc, argv, i, "--depth"), "--depth");
        if (options.depth <= 0.0)
            stack3d_fatal("--depth must be positive");
        return true;
    }
    if (std::strcmp(arg, "--precond") == 0) {
        const char *value = flagValue(argc, argv, i, "--precond");
        if (std::strcmp(value, "jacobi") == 0)
            options.thermal_precond = thermal::Precond::Jacobi;
        else if (std::strcmp(value, "multigrid") == 0)
            options.thermal_precond = thermal::Precond::Multigrid;
        else
            stack3d_fatal("--precond expects 'jacobi' or 'multigrid',"
                          " got '",
                          value, "'");
        return true;
    }
    if (std::strcmp(arg, "--quiet") == 0) {
        options.verbosity = Verbosity::Silent;
        return true;
    }
    if (std::strcmp(arg, "--verbose") == 0) {
        options.verbosity = Verbosity::Verbose;
        return true;
    }
    if (std::strcmp(arg, "--trace-out") == 0) {
        _trace_out = flagValue(argc, argv, i, "--trace-out");
        return true;
    }
    if (std::strcmp(arg, "--stats-json") == 0) {
        _stats_json = flagValue(argc, argv, i, "--stats-json");
        return true;
    }
    return false;
}

void
BenchCli::printUsage(std::ostream &os)
{
    os << "  --threads N        worker threads (0 = all cores)\n"
       << "  --seed N           master RNG seed\n"
       << "  --depth F          workload-length multiplier\n"
       << "  --precond P        thermal preconditioner: multigrid "
          "(default) or jacobi\n"
       << "  --quiet            suppress progress and warnings\n"
       << "  --verbose          per-cell progress lines\n"
       << "  --trace-out FILE   write a Chrome trace-event JSON file\n"
       << "  --stats-json FILE  write manifest + counters + study "
          "metadata\n";
}

void
BenchCli::begin()
{
    if (_began)
        return;
    _began = true;
    if (quiet())
        detail::setQuiet(true);
    if (!_trace_out.empty())
        _collector.install();
}

ProgressSink *
BenchCli::progress()
{
    return verbose() ? &_console : nullptr;
}

void
BenchCli::recordMeta(const StudyMeta &meta)
{
    // Study counters carry distinct dotted prefixes, so an empty
    // merge prefix folds them into the run-wide set verbatim.
    _counters.mergePrefixed(meta.counters, "");
    _metas.push_back(meta);
}

void
BenchCli::addConfig(const std::string &key, const std::string &value)
{
    _config.emplace_back(key, value);
}

void
BenchCli::addConfig(const std::string &key, double value)
{
    obs::RunManifest tmp;
    tmp.addConfig(key, value);
    _config.emplace_back(tmp.config.back());
}

obs::RunManifest
BenchCli::manifest() const
{
    obs::RunManifest m = obs::makeManifest(_tool);
    m.seed = options.seed;
    m.threads = options.resolvedThreads();
    m.depth = options.depth;
    m.scale = options.scale;
    m.verbosity = verbosityName(options.verbosity);
    m.addConfig("thermal_precond",
                options.thermal_precond == thermal::Precond::Jacobi
                    ? "jacobi"
                    : "multigrid");
    for (const auto &kv : _config)
        m.addConfig(kv.first, kv.second);
    return m;
}

void
BenchCli::writeJsonHeader(JsonWriter &w) const
{
    w.key("manifest");
    obs::writeManifestJson(w, manifest());
    w.key("counters");
    obs::writeCountersJson(w, _counters);
}

int
BenchCli::finish()
{
    if (_finished)
        return 0;
    _finished = true;

    if (_collector.installed())
        _collector.uninstall();

    int status = 0;
    if (!_trace_out.empty()) {
        std::ofstream os(_trace_out);
        if (!os) {
            warn("cannot open trace output '", _trace_out, "'");
            status = 1;
        } else {
            _collector.writeChromeJson(os);
            if (!quiet()) {
                inform("wrote ", _collector.eventCount(),
                       " trace events to ", _trace_out);
            }
        }
    }

    if (!_stats_json.empty()) {
        std::ofstream os(_stats_json);
        if (!os) {
            warn("cannot open stats output '", _stats_json, "'");
            status = 1;
        } else {
            JsonWriter w(os);
            w.beginObject();
            writeJsonHeader(w);
            w.key("studies").beginArray();
            for (const StudyMeta &meta : _metas) {
                w.beginObject();
                writeMetaJson(w, meta);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            os << "\n";
        }
    }
    return status;
}

} // namespace core
} // namespace stack3d
