#include "logic_study.hh"

#include <cmath>

#include "common/logging.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"
#include "floorplan/reference.hh"

namespace stack3d {
namespace core {

using floorplan::Floorplan;
using thermal::StackedDieType;

StudyReport<LogicStudyResult>
runLogicStudy(const RunOptions &options, const LogicStudySpec &spec)
{
    // Cells 0-3: Table 4 suite + the three Figure 11 bars.
    // Cells 4-7: the four non-baseline Table 5 operating points
    // (computeTable5Points returns five fixed rows; "Baseline"
    // reuses the planar solve).
    constexpr std::size_t kTable5Rows = 5;
    StudyTracker tracker("logic", 4 + (kTable5Rows - 1), options);

    StudyReport<LogicStudyResult> report;
    LogicStudyResult &result = report.payload;

    // ---- power: the 3D roll-up (analytic, needed by two cells) ----
    result.power_saving_3d =
        1.0 - spec.power_breakdown.stackedRelativePower();

    thermal::PackageModel pkg = thermal::makeP4Package();
    thermal::SolverOptions sopt;
    sopt.precond = options.thermal_precond;
    sopt.cancel = options.cancel;
    Floorplan planar = floorplan::makePentium4Planar();
    double planar_density = planar.peakBlockDensity(0);

    cpu::SuiteOptions suite = spec.suite;
    suite.seed = deriveCellSeed(options.seed, cellKey("cpu-suite"));
    suite.uops_per_trace = std::uint64_t(
        double(suite.uops_per_trace) * options.depth);
    if (suite.uops_per_trace < 1000)
        suite.uops_per_trace = 1000;

    unsigned workers = options.resolvedThreads();
    exec::ThreadPool pool(workers > 1 ? workers : 0);

    // ---- stage 1: Table 4 + the Figure 11 bars --------------------
    exec::parallelFor(pool, 4, [&](std::size_t cell) {
        switch (cell) {
          case 0:
            tracker.runCell(0, "table4", [&] {
                result.table4 = cpu::computeTable4(suite);
            });
            break;
          case 1:
            tracker.runCell(1, "fig11/planar", [&] {
                result.fig11.planar = solveFloorplanThermals(
                    planar, StackedDieType::None, pkg, {}, nullptr,
                    spec.die_nx, spec.die_ny, sopt);
            });
            break;
          case 2:
            tracker.runCell(2, "fig11/stacked", [&] {
                Floorplan stacked = floorplan::makePentium43D(
                    1.0 - result.power_saving_3d);
                result.fig11.stacked = solveFloorplanThermals(
                    stacked, StackedDieType::LogicSram, pkg, {},
                    nullptr, spec.die_nx, spec.die_ny, sopt);
                result.fig11.stacked_density_ratio =
                    stacked.peakStackedDensity() / planar_density;
            });
            break;
          case 3:
            tracker.runCell(3, "fig11/worst", [&] {
                Floorplan worst =
                    floorplan::makePentium43DWorstCase();
                result.fig11.worst_case = solveFloorplanThermals(
                    worst, StackedDieType::LogicSram, pkg, {}, nullptr,
                    spec.die_nx, spec.die_ny, sopt);
                result.fig11.worst_density_ratio =
                    worst.peakStackedDensity() / planar_density;
            });
            break;
        }
    });

    // ---- Table 5: V/f scaling with simulated temperatures ---------
    // The operating points need the measured Table 4 gain and the
    // planar solve, hence the barrier above.
    double gain = spec.use_measured_gain
                      ? result.table4.total_perf_gain_pct / 100.0
                      : 0.15;
    double baseline_w = planar.totalPower();
    auto points = power::computeTable5Points(
        baseline_w, gain, result.power_saving_3d, spec.vf_model);
    stack3d_assert(points.size() == kTable5Rows,
                   "unexpected Table 5 row count");

    result.table5.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        result.table5[i].point = points[i];

    exec::parallelFor(pool, points.size(), [&](std::size_t i) {
        Table5Row &row = result.table5[i];
        if (std::string(row.point.label) == "Baseline") {
            // No solve of its own; reuses the planar cell's result.
            row.temp_c = result.fig11.planar.peak_c;
            return;
        }
        // Non-baseline rows occupy cells 4..7 in canonical order
        // (the baseline row, always first, holds no cell slot).
        stack3d_assert(i > 0, "non-baseline Table 5 row at index 0");
        std::size_t cell = 4 + (i - 1);
        std::string label = std::string("table5/") + row.point.label;
        tracker.runCell(cell, label, [&] {
            // Scale the 3D floorplan's power to the row's wattage
            // and re-solve.
            Floorplan scaled = floorplan::makePentium43D(
                row.point.power_w / baseline_w);
            row.temp_c = solveFloorplanThermals(
                             scaled, StackedDieType::LogicSram, pkg,
                             {}, nullptr, spec.die_nx, spec.die_ny,
                             sopt)
                             .peak_c;
        });
    });

    report.meta = tracker.finish();
    cpu::appendSuiteCounters(result.table4.planar,
                             report.meta.counters, "cpu.planar.");
    cpu::appendSuiteCounters(result.table4.stacked,
                             report.meta.counters, "cpu.stacked.");
    thermal::appendSolveCounters(report.meta.counters,
                                 "thermal.fig11_planar.",
                                 result.fig11.planar.solve);
    thermal::appendSolveCounters(report.meta.counters,
                                 "thermal.fig11_stacked.",
                                 result.fig11.stacked.solve);
    thermal::appendSolveCounters(report.meta.counters,
                                 "thermal.fig11_worst.",
                                 result.fig11.worst_case.solve);
    pool.appendCounters(report.meta.counters);
    return report;
}

} // namespace core
} // namespace stack3d
