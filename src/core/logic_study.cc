#include "logic_study.hh"

#include "common/logging.hh"
#include "floorplan/reference.hh"

namespace stack3d {
namespace core {

using floorplan::Floorplan;
using thermal::StackedDieType;

LogicStudyResult
runLogicStudy(const LogicStudyConfig &config)
{
    LogicStudyResult result;

    // ---- performance: Table 4 ----
    result.table4 = cpu::computeTable4(config.suite);

    // ---- power: the 3D roll-up ----
    result.power_saving_3d =
        1.0 - config.power_breakdown.stackedRelativePower();

    // ---- thermals: Figure 11 ----
    thermal::PackageModel pkg = thermal::makeP4Package();
    Floorplan planar = floorplan::makePentium4Planar();
    double planar_density = planar.peakBlockDensity(0);

    result.fig11.planar = solveFloorplanThermals(
        planar, StackedDieType::None, pkg, {}, nullptr, config.die_nx,
        config.die_ny);

    Floorplan stacked = floorplan::makePentium43D(
        1.0 - result.power_saving_3d);
    result.fig11.stacked = solveFloorplanThermals(
        stacked, StackedDieType::LogicSram, pkg, {}, nullptr,
        config.die_nx, config.die_ny);
    result.fig11.stacked_density_ratio =
        stacked.peakStackedDensity() / planar_density;

    Floorplan worst = floorplan::makePentium43DWorstCase();
    result.fig11.worst_case = solveFloorplanThermals(
        worst, StackedDieType::LogicSram, pkg, {}, nullptr,
        config.die_nx, config.die_ny);
    result.fig11.worst_density_ratio =
        worst.peakStackedDensity() / planar_density;

    // ---- Table 5: V/f scaling with simulated temperatures ----
    double gain = config.use_measured_gain
                      ? result.table4.total_perf_gain_pct / 100.0
                      : 0.15;
    double baseline_w = planar.totalPower();
    auto points = power::computeTable5Points(
        baseline_w, gain, result.power_saving_3d, config.vf_model);

    for (const power::OperatingPoint &pt : points) {
        Table5Row row;
        row.point = pt;
        if (std::string(pt.label) == "Baseline") {
            row.temp_c = result.fig11.planar.peak_c;
        } else {
            // Scale the 3D floorplan's power to the row's wattage
            // and re-solve.
            Floorplan scaled = floorplan::makePentium43D(
                pt.power_w / baseline_w);
            row.temp_c = solveFloorplanThermals(
                             scaled, StackedDieType::LogicSram, pkg, {},
                             nullptr, config.die_nx, config.die_ny)
                             .peak_c;
        }
        result.table5.push_back(row);
    }
    return result;
}

} // namespace core
} // namespace stack3d
