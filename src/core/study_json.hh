/**
 * @file
 * The versioned JSON wire form of the Run/Report API: every study
 * Spec (and RunOptions) is a first-class request object that
 * serializes with toJson-style writers, parses back with strict
 * readers, and carries a stable content digest.
 *
 * Contracts, all pinned by tests/test_serve.cc:
 *
 *  - Round-trip exact: parse*(write*(x)) reconstructs every field
 *    bit-exactly (doubles are emitted with valueExact, 64-bit
 *    integers re-parse from the raw token).
 *  - Digest-stable: the spec digest is computed from the canonical
 *    JSON text, so a spec and its round-trip always share a digest,
 *    and the digest is the stack3d-serve result-cache key.
 *  - Strict: parsers reject unknown keys and type mismatches with a
 *    contextual error instead of guessing — the wire schema is
 *    versioned (obs::kSchemaVersion), not duck-typed.
 *
 * Missing keys keep the spec's default value, so a minimal request
 * like {"benchmarks": ["gauss"]} stays valid as specs grow fields.
 */

#ifndef STACK3D_CORE_STUDY_JSON_HH
#define STACK3D_CORE_STUDY_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_parse.hh"
#include "core/logic_study.hh"
#include "core/memory_study.hh"
#include "core/run_options.hh"
#include "core/thermal_study.hh"

namespace stack3d {

class JsonWriter;

namespace core {

/**
 * Strict field-by-field reader over one parsed JSON object. Each
 * read*() call consumes a key: absent keys return false and leave
 * the output untouched (spec default applies); present keys of the
 * wrong type record an error. finish() fails on any recorded error
 * or any key that was never consumed, so typos and unknown fields
 * are rejected instead of silently ignored.
 */
class JsonObjectReader
{
  public:
    /**
     * @param value   the JSON value expected to be an object
     * @param context name used in error messages ("options", ...)
     */
    JsonObjectReader(const JsonValue &value, std::string context);

    bool readDouble(const char *key, double &out);
    bool readUnsigned(const char *key, unsigned &out);
    bool readUint64(const char *key, std::uint64_t &out);
    bool readBool(const char *key, bool &out);
    bool readString(const char *key, std::string &out);
    bool readDoubleArray(const char *key, std::vector<double> &out);
    bool readStringArray(const char *key,
                         std::vector<std::string> &out);

    /** Consume @p key and return its value (nullptr when absent). */
    const JsonValue *readMember(const char *key);

    /**
     * Seal the read: true when no error was recorded and every key
     * of the object was consumed.
     */
    [[nodiscard]] bool finish();

    const std::string &error() const { return _error; }

  private:
    void fail(const std::string &message);

    const JsonValue *_object = nullptr;
    std::string _context;
    std::vector<std::string> _consumed;
    std::string _error;
};

// ---------------------------------------------------------------------
// RunOptions
// ---------------------------------------------------------------------

/**
 * Emit the JSON-roundtrippable subset of RunOptions as one object
 * value: threads, seed, depth, scale, verbosity, precond. The
 * progress sink is a process-local pointer and never travels.
 */
void writeRunOptionsJson(JsonWriter &w, const RunOptions &options);

/**
 * Parse RunOptions fields from @p value into @p out (fields absent
 * from the JSON keep their current values).
 * @return false with @p error set on any schema violation.
 */
[[nodiscard]] bool parseRunOptions(const JsonValue &value,
                                   RunOptions &out,
                                   std::string &error);

// ---------------------------------------------------------------------
// Study specs
// ---------------------------------------------------------------------

void writeMemoryStudySpecJson(JsonWriter &w,
                              const MemoryStudySpec &spec);
[[nodiscard]] bool parseMemoryStudySpec(const JsonValue &value,
                                        MemoryStudySpec &out,
                                        std::string &error);

void writeLogicStudySpecJson(JsonWriter &w, const LogicStudySpec &spec);
[[nodiscard]] bool parseLogicStudySpec(const JsonValue &value,
                                       LogicStudySpec &out,
                                       std::string &error);

void writeStackThermalSpecJson(JsonWriter &w,
                               const StackThermalSpec &spec);
[[nodiscard]] bool parseStackThermalSpec(const JsonValue &value,
                                         StackThermalSpec &out,
                                         std::string &error);

void writeSensitivitySpecJson(JsonWriter &w,
                              const SensitivitySpec &spec);
[[nodiscard]] bool parseSensitivitySpec(const JsonValue &value,
                                        SensitivitySpec &out,
                                        std::string &error);

/** Canonical JSON text of a spec (the digest input). */
std::string canonicalSpecJson(const MemoryStudySpec &spec);
std::string canonicalSpecJson(const LogicStudySpec &spec);
std::string canonicalSpecJson(const StackThermalSpec &spec);
std::string canonicalSpecJson(const SensitivitySpec &spec);

/**
 * Content digest of one (options, spec) pair — the stack3d-serve
 * cache key. Mixes the schema version, the study name, the
 * result-affecting RunOptions fields (seed, depth, scale, precond —
 * NOT threads or verbosity: the determinism guarantee makes results
 * independent of those), and the spec's canonical JSON.
 */
std::uint64_t specDigest(const std::string &study,
                         const RunOptions &options,
                         const std::string &canonical_spec_json);

// ---------------------------------------------------------------------
// Study results (response payloads)
// ---------------------------------------------------------------------

void writeMemoryStudyResultJson(JsonWriter &w,
                                const MemoryStudyResult &result);
void writeLogicStudyResultJson(JsonWriter &w,
                               const LogicStudyResult &result);
void writeStackThermalResultJson(JsonWriter &w,
                                 const StackThermalResult &result);
void writeSensitivityResultJson(
    JsonWriter &w, const std::vector<SensitivityPoint> &points);

} // namespace core
} // namespace stack3d

#endif // STACK3D_CORE_STUDY_JSON_HH
