/**
 * @file
 * The unified Run/Report API shared by all three paper studies.
 *
 * Every study entry point takes a core::RunOptions (threads, seed,
 * depth/scale, verbosity, progress sink) and returns its payload
 * wrapped in a core::StudyReport envelope (per-cell wall-clock
 * timings, captured warnings, thread count).
 *
 * Threading model: a study is decomposed into independent *cells*
 * (e.g. benchmark × stack option, or one steady-state thermal solve),
 * identified by a canonical index. Cells never share mutable state;
 * each cell that needs randomness derives its own RNG stream from
 * (seed, cell key) via deriveCellSeed(). Results are merged by cell
 * index, so an N-thread run is bit-identical to a 1-thread run with
 * the same seed. See DESIGN.md "Threading model".
 */

#ifndef STACK3D_CORE_RUN_OPTIONS_HH
#define STACK3D_CORE_RUN_OPTIONS_HH

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/cancel.hh"
#include "common/fault.hh"
#include "common/timing.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "thermal/solver.hh"

namespace stack3d {

class JsonWriter;

namespace core {

/** How chatty a study run is. */
enum class Verbosity { Silent, Normal, Verbose };

/** Identity of one study cell, as seen by a ProgressSink. */
struct CellInfo
{
    std::size_t index = 0;   ///< canonical cell index
    std::size_t total = 0;   ///< number of cells in the study
    std::string label;       ///< e.g. "gauss/dram32m"
};

/**
 * Progress callback interface. Studies invoke the sink from worker
 * threads, but calls are serialized by the runner — implementations
 * need no internal locking. The sink must outlive the study call.
 */
class ProgressSink
{
  public:
    virtual ~ProgressSink() = default;

    virtual void
    studyStarted(const std::string &study, std::size_t num_cells)
    {
        (void)study;
        (void)num_cells;
    }

    virtual void cellStarted(const CellInfo &cell) { (void)cell; }

    /** @param fraction_done completed cells / total, after this one */
    virtual void
    cellFinished(const CellInfo &cell, double seconds,
                 double fraction_done)
    {
        (void)cell;
        (void)seconds;
        (void)fraction_done;
    }

    virtual void
    studyFinished(const std::string &study, double wall_seconds)
    {
        (void)study;
        (void)wall_seconds;
    }
};

/**
 * A ProgressSink printing one line per finished cell:
 *
 *   [memory 13/60] gauss/dram32m    0.41s  (21%)
 */
class ConsoleProgressSink : public ProgressSink
{
  public:
    explicit ConsoleProgressSink(std::ostream &os) : _os(os) {}

    void studyStarted(const std::string &study,
                      std::size_t num_cells) override;
    void cellFinished(const CellInfo &cell, double seconds,
                      double fraction_done) override;
    void studyFinished(const std::string &study,
                       double wall_seconds) override;

  private:
    std::ostream &_os;
    std::string _study;
};

/** Options common to every study run. */
struct RunOptions
{
    /**
     * Worker threads: 1 = serial (no threads spawned), 0 = one per
     * hardware core, N = exactly N. Results are independent of this
     * value.
     */
    unsigned threads = 1;

    /** Master seed; per-cell streams derive from it. */
    std::uint64_t seed = 1;

    /** Workload-length multiplier (1.0 = calibrated budgets). */
    double depth = 1.0;

    /** Working-set scale (memory study; tests use < 1). */
    double scale = 1.0;

    Verbosity verbosity = Verbosity::Normal;

    /**
     * Preconditioner for every steady-state thermal solve a study
     * runs (BenchCli's --precond flag). Multigrid is the fast
     * default; Jacobi is the original solver, kept for comparison
     * and as a cross-check.
     */
    thermal::Precond thermal_precond = thermal::Precond::Multigrid;

    /** Optional progress observer (not owned; may be null). */
    ProgressSink *progress = nullptr;

    /**
     * Optional cooperative stop request (not owned; may be null).
     * Studies poll it per cell, thermal solves per CG outer
     * iteration; observing a stop throws CancelledError, so a
     * cancelled run produces no partial report. Excluded from the
     * request digest like progress/threads — it cannot change
     * results, only whether they arrive.
     */
    const CancelToken *cancel = nullptr;

    /** The thread count after resolving 0 -> hardware cores. */
    [[nodiscard]] unsigned resolvedThreads() const;
};

/** Wall-clock timing of one finished cell. */
struct CellTiming
{
    std::size_t index = 0;
    std::string label;
    double seconds = 0.0;
};

/** Study-independent part of a report. */
struct StudyMeta
{
    std::string study;
    unsigned threads_used = 1;
    double wall_seconds = 0.0;

    /** Sum of per-cell times: the serial-equivalent cost. */
    double serial_seconds = 0.0;

    /** Per-cell timings in canonical cell order. */
    std::vector<CellTiming> cells;

    /** warn() messages captured during the run. */
    std::vector<std::string> warnings;

    /**
     * Per-run counter snapshots folded in by the study runner
     * (cache levels, solver convergence, pipeline stalls, pool
     * activity), each under a dotted prefix such as "mem.dram32m."
     * or "pool.". Empty for studies that predate instrumentation.
     */
    obs::CounterSet counters;

    /**
     * Estimated speedup over a serial run (serial / wall). A
     * degenerate run — no cells, or a wall/serial time of zero (the
     * clock can legitimately read 0 for trivially small studies) —
     * reports 1.0 rather than 0, inf, or nan.
     */
    [[nodiscard]] double
    speedup() const
    {
        if (cells.empty() || wall_seconds <= 0.0 ||
            serial_seconds <= 0.0) {
            return 1.0;
        }
        double s = serial_seconds / wall_seconds;
        return std::isfinite(s) ? s : 1.0;
    }
};

/** The envelope every unified study entry point returns. */
template <typename PayloadT>
struct StudyReport
{
    PayloadT payload;
    StudyMeta meta;
};

/**
 * Derive a cell's RNG seed from the master seed and a cell key
 * (splitmix64 mixing). Equal inputs give equal streams on every
 * thread count; distinct keys give statistically independent streams.
 */
[[nodiscard]] std::uint64_t deriveCellSeed(std::uint64_t seed,
                                           std::uint64_t cell_key);

/** FNV-1a hash for stable string-derived cell keys. */
[[nodiscard]] std::uint64_t cellKey(const std::string &name);

/**
 * Parse a `--threads` style CLI argument into RunOptions::threads.
 * fatal()s (with the flag name) on anything but a plain non-negative
 * integer, instead of letting std::stoul terminate the process.
 */
[[nodiscard]] unsigned parseThreadArg(const char *text,
                                      const char *flag);

/**
 * Write `meta` as JSON fields into the writer's currently-open
 * object: study, threads, wall_seconds, serial_seconds, speedup,
 * cells[], warnings[].
 */
void writeMetaJson(JsonWriter &w, const StudyMeta &meta);

/**
 * Internal helper the study runners share: tracks per-cell timings,
 * serializes ProgressSink calls, and captures warn() messages for the
 * report. Construct one per study run; call runCell() for every cell
 * (from any thread); then finish() exactly once.
 */
class StudyTracker
{
  public:
    StudyTracker(std::string study, std::size_t num_cells,
                 const RunOptions &options);
    ~StudyTracker();

    StudyTracker(const StudyTracker &) = delete;
    StudyTracker &operator=(const StudyTracker &) = delete;

    /**
     * Time @p fn as cell @p index, reporting to the progress sink.
     * Thread-safe; each index must be used at most once.
     */
    template <typename F>
    void
    runCell(std::size_t index, const std::string &label, F &&fn)
    {
        // Checkpoints before the (expensive) cell body: cooperative
        // cancellation, then the chaos-test mid-study failure.
        if (_options.cancel && _options.cancel->shouldStop())
            throw CancelledError(_study + " cancelled before cell " +
                                 label);
        if (S3D_FAULT_POINT("study.cell.fail"))
            throw std::runtime_error("fault injected: " + _study +
                                     " cell " + label + " failed");
        cellStarted(index, label);
        obs::Span span(_study + "/" + label, "study");
        WallTimer timer;
        fn();
        cellFinished(index, label, timer.seconds());
    }

    /** Seal the report metadata (stops the study wall clock). */
    [[nodiscard]] StudyMeta finish();

  private:
    void cellStarted(std::size_t index, const std::string &label);
    void cellFinished(std::size_t index, const std::string &label,
                      double seconds);

    std::string _study;
    RunOptions _options;
    std::mutex _mutex;          ///< guards sink calls + cell table
    std::vector<CellTiming> _cells;
    std::vector<std::string> _warnings;
    std::atomic<std::size_t> _finished{0};
    WallTimer _wall;
    std::function<void(const std::string &)> _previous_hook;
    bool _finish_called = false;
};

} // namespace core
} // namespace stack3d

#endif // STACK3D_CORE_RUN_OPTIONS_HH
