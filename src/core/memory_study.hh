/**
 * @file
 * The Memory+Logic stacking study (Section 3): runs the two-threaded
 * RMS workloads against the four Figure 7 cache organizations and
 * reports CPMA, off-die bandwidth and bus power — the data behind
 * Figure 5 and the paper's headline memory-stacking results.
 */

#ifndef STACK3D_CORE_MEMORY_STUDY_HH
#define STACK3D_CORE_MEMORY_STUDY_HH

#include <array>
#include <string>
#include <vector>

#include "core/run_options.hh"
#include "mem/engine.hh"
#include "workloads/registry.hh"

namespace stack3d {
namespace core {

/** The four Figure 7 configurations, in Figure 5 order. */
constexpr std::array<mem::StackOption, 4> kStackOptions = {
    mem::StackOption::Baseline4MB,
    mem::StackOption::Sram12MB,
    mem::StackOption::Dram32MB,
    mem::StackOption::Dram64MB,
};

/** Per-benchmark results across the four options. */
struct MemoryStudyRow
{
    std::string benchmark;
    std::uint64_t records = 0;
    double footprint_mb = 0.0;
    std::array<double, 4> cpma{};
    std::array<double, 4> bw_gbps{};
    std::array<double, 4> bus_power_w{};
    std::array<double, 4> llc_miss{};
};

/** Aggregates matching the paper's Section 3 headlines. */
struct MemoryStudySummary
{
    /** Average CPMA reduction of the 32 MB option vs baseline. */
    double avg_cpma_reduction_32m = 0.0;
    /** Best single-benchmark CPMA reduction at 32 MB. */
    double max_cpma_reduction_32m = 0.0;
    /** Average off-die bandwidth reduction factor at 32 MB. */
    double avg_bw_reduction_factor_32m = 0.0;
    /** Average bus-power reduction at 32 MB (fraction). */
    double avg_bus_power_reduction_32m = 0.0;
    /** Average absolute bus-power saving at 32 MB (watts). */
    double avg_bus_power_saving_w = 0.0;
};

/** Full study result. */
struct MemoryStudyResult
{
    std::vector<MemoryStudyRow> rows;
    MemoryStudySummary summary;
};

/**
 * Per-benchmark calibrated records-per-thread budget (the number of
 * working-set sweeps each benchmark needs to expose its reuse).
 */
std::uint64_t recommendedRecordsPerThread(const std::string &benchmark);

/** Study-specific inputs of the unified entry point. */
struct MemoryStudySpec
{
    /** Benchmarks to run (default: all 12 of Table 1). */
    std::vector<std::string> benchmarks;

    /** Issue-engine knobs (window, issue width, warm-up). */
    mem::EngineParams engine;
};

/**
 * Run the memory study under the unified Run/Report API.
 *
 * Cell decomposition: per benchmark, one trace-generation cell
 * ("<bench>/trace") followed by four engine cells ("<bench>/<option>"),
 * 5 cells per benchmark in canonical order. Generation cells fan out
 * first (traces are immutable and shared read-only by the option
 * cells); engine cells fan out after the generation barrier. Each
 * benchmark's trace seed derives from (options.seed, benchmark name),
 * so results are bit-identical for every thread count.
 */
StudyReport<MemoryStudyResult> runMemoryStudy(
    const RunOptions &options, const MemoryStudySpec &spec = {});

} // namespace core
} // namespace stack3d

#endif // STACK3D_CORE_MEMORY_STUDY_HH
