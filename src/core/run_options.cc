#include "run_options.hh"

#include <cstdio>
#include <cstdlib>

#include "common/digest.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "exec/pool.hh"

namespace stack3d {
namespace core {

// ---------------------------------------------------------------------
// RunOptions
// ---------------------------------------------------------------------

unsigned
RunOptions::resolvedThreads() const
{
    return threads == 0 ? exec::ThreadPool::hardwareThreads() : threads;
}

// ---------------------------------------------------------------------
// seeds
// ---------------------------------------------------------------------

std::uint64_t
deriveCellSeed(std::uint64_t seed, std::uint64_t cell_key)
{
    // splitmix64 over the combined state: equal (seed, key) pairs give
    // equal streams regardless of evaluation order or thread count.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (cell_key + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
cellKey(const std::string &name)
{
    return fnv1a(name);
}

unsigned
parseThreadArg(const char *text, const char *flag)
{
    char *end = nullptr;
    unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || value > 4096)
        stack3d_fatal(flag,
                      " expects a thread count (0 = one per core), "
                      "got '", text, "'");
    return unsigned(value);
}

// ---------------------------------------------------------------------
// ConsoleProgressSink
// ---------------------------------------------------------------------

void
ConsoleProgressSink::studyStarted(const std::string &study,
                                  std::size_t num_cells)
{
    _study = study;
    _os << "[" << study << "] " << num_cells << " cells\n";
}

void
ConsoleProgressSink::cellFinished(const CellInfo &cell, double seconds,
                                  double fraction_done)
{
    char line[160];
    std::snprintf(line, sizeof(line),
                  "[%s %zu/%zu] %-24s %6.2fs  (%3.0f%%)\n",
                  _study.c_str(), cell.index + 1, cell.total,
                  cell.label.c_str(), seconds, fraction_done * 100.0);
    _os << line;
}

void
ConsoleProgressSink::studyFinished(const std::string &study,
                                   double wall_seconds)
{
    char line[120];
    std::snprintf(line, sizeof(line), "[%s] done in %.2fs\n",
                  study.c_str(), wall_seconds);
    _os << line;
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

void
writeMetaJson(JsonWriter &w, const StudyMeta &meta)
{
    // Degenerate timings (a zero-length run, a clock hiccup) must
    // never surface as inf/nan: JsonWriter would emit null, which
    // downstream tooling then has to special-case. Clamp instead.
    auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };

    w.key("study").value(meta.study);
    w.key("threads").value(meta.threads_used);
    w.key("wall_seconds").value(finite(meta.wall_seconds));
    w.key("serial_seconds").value(finite(meta.serial_seconds));
    w.key("speedup").value(meta.speedup());
    w.key("cells").beginArray();
    for (const CellTiming &cell : meta.cells) {
        w.beginObject();
        w.key("index").value(std::uint64_t(cell.index));
        w.key("label").value(cell.label);
        w.key("seconds").value(finite(cell.seconds));
        w.endObject();
    }
    w.endArray();
    w.key("warnings").beginArray();
    for (const std::string &warning : meta.warnings)
        w.value(warning);
    w.endArray();
}

// ---------------------------------------------------------------------
// StudyTracker
// ---------------------------------------------------------------------

StudyTracker::StudyTracker(std::string study, std::size_t num_cells,
                           const RunOptions &options)
    : _study(std::move(study)), _options(options), _cells(num_cells)
{
    _previous_hook = detail::setWarnHook([this](const std::string &m) {
        // setWarnHook serializes hook invocations; _warnings needs no
        // extra lock as long as the tracker itself doesn't touch it
        // until finish() (after the hook is uninstalled).
        _warnings.push_back(m);
    });
    if (_options.progress)
        _options.progress->studyStarted(_study, num_cells);
}

StudyTracker::~StudyTracker()
{
    if (!_finish_called)
        detail::setWarnHook(std::move(_previous_hook));
}

void
StudyTracker::cellStarted(std::size_t index, const std::string &label)
{
    if (!_options.progress &&
        _options.verbosity != Verbosity::Verbose) {
        return;
    }
    std::lock_guard<std::mutex> lock(_mutex);
    if (_options.verbosity == Verbosity::Verbose)
        inform(_study, ": cell ", label, " started");
    if (_options.progress) {
        CellInfo info{index, _cells.size(), label};
        _options.progress->cellStarted(info);
    }
}

void
StudyTracker::cellFinished(std::size_t index, const std::string &label,
                           double seconds)
{
    std::lock_guard<std::mutex> lock(_mutex);
    // Counted under the lock so sinks observe monotonic fractions.
    std::size_t done =
        _finished.fetch_add(1, std::memory_order_relaxed) + 1;
    stack3d_assert(index < _cells.size(),
                   "cell index out of range in ", _study);
    _cells[index] = CellTiming{index, label, seconds};
    if (_options.progress) {
        CellInfo info{index, _cells.size(), label};
        _options.progress->cellFinished(
            info, seconds, double(done) / double(_cells.size()));
    }
}

StudyMeta
StudyTracker::finish()
{
    stack3d_assert(!_finish_called, "StudyTracker::finish called twice");
    _finish_called = true;
    detail::setWarnHook(std::move(_previous_hook));

    StudyMeta meta;
    meta.study = _study;
    meta.threads_used = _options.resolvedThreads();
    meta.wall_seconds = _wall.seconds();
    meta.cells = std::move(_cells);
    meta.warnings = std::move(_warnings);
    for (const CellTiming &cell : meta.cells)
        meta.serial_seconds += cell.seconds;
    if (_options.progress)
        _options.progress->studyFinished(_study, meta.wall_seconds);
    return meta;
}

} // namespace core
} // namespace stack3d
