#include "memory_study.hh"

#include <algorithm>

#include "common/logging.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"

namespace stack3d {
namespace core {

std::uint64_t
recommendedRecordsPerThread(const std::string &benchmark)
{
    // Budgets sized so each benchmark completes several full
    // working-set sweeps (capacity effects need reuse, and the
    // larger-footprint kernels produce more records per sweep).
    struct Budget
    {
        const char *name;
        std::uint64_t records;
    };
    static const Budget budgets[] = {
        {"conj", 2000000},  {"dSym", 2000000}, {"gauss", 4000000},
        {"pcg", 4000000},   {"sMVM", 4500000}, {"sSym", 2000000},
        {"sTrans", 6000000},{"sAVDF", 2000000},{"sAVIF", 2000000},
        {"sUS", 7000000},   {"svd", 2000000},  {"svm", 6000000},
    };
    for (const Budget &b : budgets) {
        if (benchmark == b.name)
            return b.records;
    }
    return 2000000;
}

namespace {

/** Cells per benchmark: one trace generation + the four options. */
constexpr std::size_t kCellsPerBenchmark = 1 + kStackOptions.size();

std::string
optionCellLabel(const std::string &benchmark, std::size_t option)
{
    return benchmark + "/" +
           mem::stackOptionName(kStackOptions[option]);
}

/**
 * Recompute the ratio-style keys of a cross-benchmark counter
 * aggregate. accumulate() sums everything, which is right for raw
 * counts but turns miss rates / occupancies into sums of ratios;
 * rebuild those from the summed counts.
 */
void
fixupAggregateRatios(obs::CounterSet &c, mem::StackOption option)
{
    double accesses = c.value("accesses");
    auto rate = [&](const std::string &level) {
        if (!c.has(level + ".hits"))
            return;
        double hits = c.value(level + ".hits");
        double misses = c.value(level + ".misses");
        double total = hits + misses;
        c.set(level + ".miss_rate",
              total > 0.0 ? misses / total : 0.0);
        c.set(level + ".mpkr", accesses > 0.0
                                   ? misses * 1000.0 / accesses
                                   : 0.0);
    };
    rate("l1d");
    rate("l1i");
    rate("l2");
    if (c.has("dram_cache.miss_rate")) {
        double sh = c.value("dram_cache.sector_hits");
        double sm = c.value("dram_cache.sector_misses");
        double pm = c.value("dram_cache.page_misses");
        double total = sh + sm + pm;
        c.set("dram_cache.miss_rate",
              total > 0.0 ? (sm + pm) / total : 0.0);
    }
    if (c.has("bus.achieved_gbps")) {
        mem::BusParams bus = mem::makeHierarchyParams(option).bus;
        double cycles = c.value("engine.total_cycles");
        double seconds = cycles / (bus.core_freq_ghz * 1e9);
        double gbps = seconds > 0.0
                          ? c.value("bus.bytes") / 1e9 / seconds
                          : 0.0;
        c.set("bus.achieved_gbps", gbps);
        c.set("bus.occupancy", bus.bandwidth_gbps > 0.0
                                   ? gbps / bus.bandwidth_gbps
                                   : 0.0);
    }
}

} // anonymous namespace

StudyReport<MemoryStudyResult>
runMemoryStudy(const RunOptions &options, const MemoryStudySpec &spec)
{
    std::vector<std::string> benchmarks = spec.benchmarks;
    if (benchmarks.empty())
        benchmarks = workloads::rmsKernelNames();

    // Validate names up front so an unknown benchmark fails fast and
    // deterministically, before any cell is launched.
    {
        std::vector<std::string> known = workloads::rmsKernelNames();
        for (const std::string &name : benchmarks) {
            if (std::find(known.begin(), known.end(), name) ==
                known.end()) {
                stack3d_fatal("unknown RMS benchmark '", name, "'");
            }
        }
    }

    const std::size_t num_benchmarks = benchmarks.size();
    StudyTracker tracker("memory",
                         num_benchmarks * kCellsPerBenchmark, options);

    StudyReport<MemoryStudyResult> report;
    MemoryStudyResult &result = report.payload;
    result.rows.resize(num_benchmarks);
    std::vector<trace::TraceBuffer> traces(num_benchmarks);

    // Serial when threads == 1 (inline pool: tasks run at submit()).
    unsigned workers = options.resolvedThreads();
    exec::ThreadPool pool(workers > 1 ? workers : 0);

    // ---- stage 1: trace generation, one cell per benchmark --------
    exec::parallelFor(pool, num_benchmarks, [&](std::size_t b) {
        const std::string &name = benchmarks[b];
        tracker.runCell(b * kCellsPerBenchmark, name + "/trace", [&] {
            auto kernel = workloads::makeRmsKernel(name);

            workloads::WorkloadConfig wcfg;
            wcfg.scale = options.scale;
            wcfg.seed = deriveCellSeed(options.seed, cellKey(name));
            wcfg.records_per_thread = std::uint64_t(
                double(recommendedRecordsPerThread(name)) *
                options.depth);
            if (wcfg.records_per_thread < 1000)
                wcfg.records_per_thread = 1000;

            traces[b] = kernel->generate(wcfg);

            MemoryStudyRow &row = result.rows[b];
            row.benchmark = name;
            row.records = traces[b].size();
            row.footprint_mb =
                double(kernel->nominalFootprintBytes(wcfg)) / (1 << 20);
        });
    });

    // ---- stage 2: benchmark x option engine cells ------------------
    const std::size_t num_options = kStackOptions.size();
    std::vector<obs::CounterSet> cell_counters(num_benchmarks *
                                               num_options);
    exec::parallelFor(
        pool, num_benchmarks * num_options, [&](std::size_t i) {
            std::size_t b = i / num_options;
            std::size_t o = i % num_options;
            std::size_t cell = b * kCellsPerBenchmark + 1 + o;
            tracker.runCell(cell, optionCellLabel(benchmarks[b], o),
                            [&] {
                mem::HierarchyParams hp =
                    mem::makeHierarchyParams(kStackOptions[o]);
                mem::MemoryHierarchy hier(hp);
                mem::TraceEngine engine(spec.engine);
                mem::EngineResult er = engine.run(traces[b], hier);
                MemoryStudyRow &row = result.rows[b];
                row.cpma[o] = er.cpma;
                row.bw_gbps[o] = er.offdie_gbps;
                row.bus_power_w[o] = er.bus_power_w;
                row.llc_miss[o] = er.llc_miss_rate;
                cell_counters[i] = std::move(er.counters);
            });
        });

    // ---- merge: headline aggregates in canonical row order --------
    // (32 MB option, index 2, vs baseline 0.)
    MemoryStudySummary &sum = result.summary;
    double n = double(result.rows.size());
    double bw_base_total = 0.0;
    double bw_32_total = 0.0;
    for (const MemoryStudyRow &row : result.rows) {
        double reduction =
            row.cpma[0] > 0.0 ? 1.0 - row.cpma[2] / row.cpma[0] : 0.0;
        sum.avg_cpma_reduction_32m += reduction / n;
        sum.max_cpma_reduction_32m =
            std::max(sum.max_cpma_reduction_32m, reduction);
        bw_base_total += row.bw_gbps[0];
        bw_32_total += row.bw_gbps[2];
        if (row.bus_power_w[0] > 0.0) {
            sum.avg_bus_power_reduction_32m +=
                (1.0 - row.bus_power_w[2] / row.bus_power_w[0]) / n;
        }
        sum.avg_bus_power_saving_w +=
            (row.bus_power_w[0] - row.bus_power_w[2]) / n;
    }
    // Ratio of totals: a per-benchmark mean explodes when a warm
    // benchmark's off-die traffic goes to ~zero.
    if (bw_32_total > 0.0)
        sum.avg_bw_reduction_factor_32m = bw_base_total / bw_32_total;

    report.meta = tracker.finish();

    // Per-option counter aggregates across benchmarks, merged in
    // canonical option order (serial, so the fold is deterministic
    // for every thread count).
    for (std::size_t o = 0; o < num_options; ++o) {
        obs::CounterSet agg;
        for (std::size_t b = 0; b < num_benchmarks; ++b)
            agg.accumulate(cell_counters[b * num_options + o]);
        fixupAggregateRatios(agg, kStackOptions[o]);
        report.meta.counters.mergePrefixed(
            agg, "mem." +
                     std::string(mem::stackOptionName(
                         kStackOptions[o])) +
                     ".");
    }
    pool.appendCounters(report.meta.counters);
    return report;
}

} // namespace core
} // namespace stack3d
