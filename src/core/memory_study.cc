#include "memory_study.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stack3d {
namespace core {

std::uint64_t
recommendedRecordsPerThread(const std::string &benchmark)
{
    // Budgets sized so each benchmark completes several full
    // working-set sweeps (capacity effects need reuse, and the
    // larger-footprint kernels produce more records per sweep).
    struct Budget
    {
        const char *name;
        std::uint64_t records;
    };
    static const Budget budgets[] = {
        {"conj", 2000000},  {"dSym", 2000000}, {"gauss", 4000000},
        {"pcg", 4000000},   {"sMVM", 4500000}, {"sSym", 2000000},
        {"sTrans", 6000000},{"sAVDF", 2000000},{"sAVIF", 2000000},
        {"sUS", 7000000},   {"svd", 2000000},  {"svm", 6000000},
    };
    for (const Budget &b : budgets) {
        if (benchmark == b.name)
            return b.records;
    }
    return 2000000;
}

MemoryStudyResult
runMemoryStudy(const MemoryStudyConfig &config)
{
    std::vector<std::string> benchmarks = config.benchmarks;
    if (benchmarks.empty())
        benchmarks = workloads::rmsKernelNames();

    MemoryStudyResult result;

    for (const std::string &name : benchmarks) {
        auto kernel = workloads::makeRmsKernel(name);

        workloads::WorkloadConfig wcfg;
        wcfg.scale = config.scale;
        wcfg.seed = config.seed;
        wcfg.records_per_thread = std::uint64_t(
            double(recommendedRecordsPerThread(name)) * config.depth);
        if (wcfg.records_per_thread < 1000)
            wcfg.records_per_thread = 1000;

        trace::TraceBuffer buf = kernel->generate(wcfg);

        MemoryStudyRow row;
        row.benchmark = name;
        row.records = buf.size();
        row.footprint_mb =
            double(kernel->nominalFootprintBytes(wcfg)) / (1 << 20);

        for (std::size_t o = 0; o < kStackOptions.size(); ++o) {
            mem::HierarchyParams hp =
                mem::makeHierarchyParams(kStackOptions[o]);
            mem::MemoryHierarchy hier(hp);
            mem::TraceEngine engine(config.engine);
            mem::EngineResult er = engine.run(buf, hier);
            row.cpma[o] = er.cpma;
            row.bw_gbps[o] = er.offdie_gbps;
            row.bus_power_w[o] = er.bus_power_w;
            row.llc_miss[o] = er.llc_miss_rate;
        }
        result.rows.push_back(std::move(row));
    }

    // Headline aggregates (32 MB option, index 2, vs baseline 0).
    MemoryStudySummary &sum = result.summary;
    double n = double(result.rows.size());
    double bw_base_total = 0.0;
    double bw_32_total = 0.0;
    for (const MemoryStudyRow &row : result.rows) {
        double reduction =
            row.cpma[0] > 0.0 ? 1.0 - row.cpma[2] / row.cpma[0] : 0.0;
        sum.avg_cpma_reduction_32m += reduction / n;
        sum.max_cpma_reduction_32m =
            std::max(sum.max_cpma_reduction_32m, reduction);
        bw_base_total += row.bw_gbps[0];
        bw_32_total += row.bw_gbps[2];
        if (row.bus_power_w[0] > 0.0) {
            sum.avg_bus_power_reduction_32m +=
                (1.0 - row.bus_power_w[2] / row.bus_power_w[0]) / n;
        }
        sum.avg_bus_power_saving_w +=
            (row.bus_power_w[0] - row.bus_power_w[2]) / n;
    }
    // Ratio of totals: a per-benchmark mean explodes when a warm
    // benchmark's off-die traffic goes to ~zero.
    if (bw_32_total > 0.0)
        sum.avg_bw_reduction_factor_32m = bw_base_total / bw_32_total;
    return result;
}

} // namespace core
} // namespace stack3d
