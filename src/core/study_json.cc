#include "core/study_json.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/digest.hh"
#include "common/json.hh"
#include "obs/provenance.hh"

namespace stack3d {
namespace core {

// ---------------------------------------------------------------------
// JsonObjectReader
// ---------------------------------------------------------------------

JsonObjectReader::JsonObjectReader(const JsonValue &value,
                                   std::string context)
    : _context(std::move(context))
{
    if (value.isObject())
        _object = &value;
    else
        fail("expected an object");
}

void
JsonObjectReader::fail(const std::string &message)
{
    if (_error.empty())
        _error = _context + ": " + message;
}

const JsonValue *
JsonObjectReader::readMember(const char *key)
{
    if (!_object)
        return nullptr;
    _consumed.push_back(key);
    return _object->find(key);
}

bool
JsonObjectReader::readDouble(const char *key, double &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    if (!v->isNumber()) {
        fail(std::string("'") + key + "' must be a number");
        return false;
    }
    out = v->number;
    return true;
}

bool
JsonObjectReader::readUnsigned(const char *key, unsigned &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    double whole = v->isNumber() ? std::floor(v->number) : -1.0;
    if (!v->isNumber() || v->number < 0.0 || v->number != whole ||
        v->number > 4294967295.0) {
        fail(std::string("'") + key +
             "' must be a non-negative integer");
        return false;
    }
    out = unsigned(v->number);
    return true;
}

bool
JsonObjectReader::readUint64(const char *key, std::uint64_t &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    // Re-parse the raw token: a double only represents integers up
    // to 2^53, and seeds are full 64-bit values.
    if (!v->isNumber() || v->string.empty() ||
        v->string.find_first_not_of("0123456789") !=
            std::string::npos) {
        fail(std::string("'") + key +
             "' must be a non-negative integer");
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v->string.c_str(), &end,
                                              10);
    if (errno != 0 || !end || *end != '\0') {
        fail(std::string("'") + key + "' is out of 64-bit range");
        return false;
    }
    out = std::uint64_t(parsed);
    return true;
}

bool
JsonObjectReader::readBool(const char *key, bool &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    if (!v->isBool()) {
        fail(std::string("'") + key + "' must be a boolean");
        return false;
    }
    out = v->boolean;
    return true;
}

bool
JsonObjectReader::readString(const char *key, std::string &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    if (!v->isString()) {
        fail(std::string("'") + key + "' must be a string");
        return false;
    }
    out = v->string;
    return true;
}

bool
JsonObjectReader::readDoubleArray(const char *key,
                                  std::vector<double> &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    if (!v->isArray()) {
        fail(std::string("'") + key + "' must be an array");
        return false;
    }
    std::vector<double> values;
    for (const JsonValue &item : v->array) {
        if (!item.isNumber()) {
            fail(std::string("'") + key +
                 "' must contain only numbers");
            return false;
        }
        values.push_back(item.number);
    }
    out = std::move(values);
    return true;
}

bool
JsonObjectReader::readStringArray(const char *key,
                                  std::vector<std::string> &out)
{
    const JsonValue *v = readMember(key);
    if (!v)
        return false;
    if (!v->isArray()) {
        fail(std::string("'") + key + "' must be an array");
        return false;
    }
    std::vector<std::string> values;
    for (const JsonValue &item : v->array) {
        if (!item.isString()) {
            fail(std::string("'") + key +
                 "' must contain only strings");
            return false;
        }
        values.push_back(item.string);
    }
    out = std::move(values);
    return true;
}

bool
JsonObjectReader::finish()
{
    if (!_error.empty())
        return false;
    for (const auto &member : _object->object) {
        if (std::find(_consumed.begin(), _consumed.end(),
                      member.first) == _consumed.end()) {
            fail("unknown key '" + member.first + "'");
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// RunOptions
// ---------------------------------------------------------------------

namespace {

const char *
verbosityName(Verbosity v)
{
    switch (v) {
      case Verbosity::Silent:
        return "silent";
      case Verbosity::Verbose:
        return "verbose";
      case Verbosity::Normal:
        break;
    }
    return "normal";
}

const char *
precondName(thermal::Precond p)
{
    return p == thermal::Precond::Jacobi ? "jacobi" : "multigrid";
}

} // anonymous namespace

void
writeRunOptionsJson(JsonWriter &w, const RunOptions &options)
{
    w.beginObject();
    w.key("threads").value(options.threads);
    w.key("seed").value(std::uint64_t(options.seed));
    w.key("depth").valueExact(options.depth);
    w.key("scale").valueExact(options.scale);
    w.key("verbosity").value(verbosityName(options.verbosity));
    w.key("precond").value(precondName(options.thermal_precond));
    w.endObject();
}

bool
parseRunOptions(const JsonValue &value, RunOptions &out,
                std::string &error)
{
    JsonObjectReader r(value, "options");
    r.readUnsigned("threads", out.threads);
    r.readUint64("seed", out.seed);
    r.readDouble("depth", out.depth);
    r.readDouble("scale", out.scale);

    std::string verbosity;
    if (r.readString("verbosity", verbosity)) {
        if (verbosity == "silent")
            out.verbosity = Verbosity::Silent;
        else if (verbosity == "normal")
            out.verbosity = Verbosity::Normal;
        else if (verbosity == "verbose")
            out.verbosity = Verbosity::Verbose;
        else {
            error = "options: unknown verbosity '" + verbosity + "'";
            return false;
        }
    }
    std::string precond;
    if (r.readString("precond", precond)) {
        if (precond == "jacobi")
            out.thermal_precond = thermal::Precond::Jacobi;
        else if (precond == "multigrid")
            out.thermal_precond = thermal::Precond::Multigrid;
        else {
            error = "options: unknown precond '" + precond + "'";
            return false;
        }
    }
    if (!r.finish()) {
        error = r.error();
        return false;
    }
    if (out.depth <= 0.0 || out.scale <= 0.0) {
        error = "options: depth and scale must be positive";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Memory study spec
// ---------------------------------------------------------------------

void
writeMemoryStudySpecJson(JsonWriter &w, const MemoryStudySpec &spec)
{
    w.beginObject();
    w.key("benchmarks").beginArray();
    for (const std::string &name : spec.benchmarks)
        w.value(name);
    w.endArray();
    w.key("engine");
    w.beginObject();
    w.key("window").value(spec.engine.window);
    w.key("issue_width").value(spec.engine.issue_width);
    w.key("honor_dependencies").value(spec.engine.honor_dependencies);
    w.key("warmup_fraction").valueExact(spec.engine.warmup_fraction);
    w.endObject();
    w.endObject();
}

bool
parseMemoryStudySpec(const JsonValue &value, MemoryStudySpec &out,
                     std::string &error)
{
    JsonObjectReader r(value, "memory spec");
    r.readStringArray("benchmarks", out.benchmarks);
    if (const JsonValue *engine = r.readMember("engine")) {
        JsonObjectReader er(*engine, "memory spec engine");
        er.readUnsigned("window", out.engine.window);
        er.readUnsigned("issue_width", out.engine.issue_width);
        er.readBool("honor_dependencies",
                    out.engine.honor_dependencies);
        er.readDouble("warmup_fraction", out.engine.warmup_fraction);
        if (!er.finish()) {
            error = er.error();
            return false;
        }
    }
    if (!r.finish()) {
        error = r.error();
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Logic study spec
// ---------------------------------------------------------------------

void
writeLogicStudySpecJson(JsonWriter &w, const LogicStudySpec &spec)
{
    w.beginObject();
    w.key("suite");
    w.beginObject();
    w.key("full_suite").value(spec.suite.full_suite);
    w.key("uops_per_trace")
        .value(std::uint64_t(spec.suite.uops_per_trace));
    w.endObject();
    w.key("power_breakdown");
    w.beginObject();
    const power::LogicPowerBreakdown &pb = spec.power_breakdown;
    w.key("repeater_fraction").valueExact(pb.repeater_fraction);
    w.key("repeating_latch_fraction")
        .valueExact(pb.repeating_latch_fraction);
    w.key("clock_fraction").valueExact(pb.clock_fraction);
    w.key("pipeline_latch_fraction")
        .valueExact(pb.pipeline_latch_fraction);
    w.key("repeater_reduction").valueExact(pb.repeater_reduction);
    w.key("repeating_latch_reduction")
        .valueExact(pb.repeating_latch_reduction);
    w.key("clock_reduction").valueExact(pb.clock_reduction);
    w.key("pipeline_latch_reduction")
        .valueExact(pb.pipeline_latch_reduction);
    w.endObject();
    w.key("vf_model");
    w.beginObject();
    w.key("perf_per_freq").valueExact(spec.vf_model.perf_per_freq);
    w.key("freq_per_vcc").valueExact(spec.vf_model.freq_per_vcc);
    w.endObject();
    w.key("die_nx").value(spec.die_nx);
    w.key("die_ny").value(spec.die_ny);
    w.key("use_measured_gain").value(spec.use_measured_gain);
    w.endObject();
}

bool
parseLogicStudySpec(const JsonValue &value, LogicStudySpec &out,
                    std::string &error)
{
    JsonObjectReader r(value, "logic spec");
    if (const JsonValue *suite = r.readMember("suite")) {
        JsonObjectReader sr(*suite, "logic spec suite");
        sr.readBool("full_suite", out.suite.full_suite);
        sr.readUint64("uops_per_trace", out.suite.uops_per_trace);
        if (!sr.finish()) {
            error = sr.error();
            return false;
        }
    }
    if (const JsonValue *pb = r.readMember("power_breakdown")) {
        JsonObjectReader pr(*pb, "logic spec power_breakdown");
        power::LogicPowerBreakdown &b = out.power_breakdown;
        pr.readDouble("repeater_fraction", b.repeater_fraction);
        pr.readDouble("repeating_latch_fraction",
                      b.repeating_latch_fraction);
        pr.readDouble("clock_fraction", b.clock_fraction);
        pr.readDouble("pipeline_latch_fraction",
                      b.pipeline_latch_fraction);
        pr.readDouble("repeater_reduction", b.repeater_reduction);
        pr.readDouble("repeating_latch_reduction",
                      b.repeating_latch_reduction);
        pr.readDouble("clock_reduction", b.clock_reduction);
        pr.readDouble("pipeline_latch_reduction",
                      b.pipeline_latch_reduction);
        if (!pr.finish()) {
            error = pr.error();
            return false;
        }
    }
    if (const JsonValue *vf = r.readMember("vf_model")) {
        JsonObjectReader vr(*vf, "logic spec vf_model");
        vr.readDouble("perf_per_freq", out.vf_model.perf_per_freq);
        vr.readDouble("freq_per_vcc", out.vf_model.freq_per_vcc);
        if (!vr.finish()) {
            error = vr.error();
            return false;
        }
    }
    r.readUnsigned("die_nx", out.die_nx);
    r.readUnsigned("die_ny", out.die_ny);
    r.readBool("use_measured_gain", out.use_measured_gain);
    if (!r.finish()) {
        error = r.error();
        return false;
    }
    if (out.die_nx < 2 || out.die_ny < 2) {
        error = "logic spec: die_nx and die_ny must be >= 2";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Thermal specs
// ---------------------------------------------------------------------

void
writeStackThermalSpecJson(JsonWriter &w, const StackThermalSpec &spec)
{
    w.beginObject();
    w.key("die_nx").value(spec.die_nx);
    w.key("die_ny").value(spec.die_ny);
    w.endObject();
}

bool
parseStackThermalSpec(const JsonValue &value, StackThermalSpec &out,
                      std::string &error)
{
    JsonObjectReader r(value, "stack-thermal spec");
    r.readUnsigned("die_nx", out.die_nx);
    r.readUnsigned("die_ny", out.die_ny);
    if (!r.finish()) {
        error = r.error();
        return false;
    }
    if (out.die_nx < 2 || out.die_ny < 2) {
        error = "stack-thermal spec: die_nx and die_ny must be >= 2";
        return false;
    }
    return true;
}

void
writeSensitivitySpecJson(JsonWriter &w, const SensitivitySpec &spec)
{
    w.beginObject();
    w.key("conductivities").beginArray();
    for (double k : spec.conductivities)
        w.valueExact(k);
    w.endArray();
    w.key("die_nx").value(spec.die_nx);
    w.key("die_ny").value(spec.die_ny);
    w.endObject();
}

bool
parseSensitivitySpec(const JsonValue &value, SensitivitySpec &out,
                     std::string &error)
{
    JsonObjectReader r(value, "sensitivity spec");
    r.readDoubleArray("conductivities", out.conductivities);
    r.readUnsigned("die_nx", out.die_nx);
    r.readUnsigned("die_ny", out.die_ny);
    if (!r.finish()) {
        error = r.error();
        return false;
    }
    if (out.conductivities.empty()) {
        error = "sensitivity spec: conductivities must not be empty";
        return false;
    }
    for (double k : out.conductivities) {
        if (!(k > 0.0)) {
            error = "sensitivity spec: conductivities must be "
                    "positive";
            return false;
        }
    }
    if (out.die_nx < 2 || out.die_ny < 2) {
        error = "sensitivity spec: die_nx and die_ny must be >= 2";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Canonical form + digest
// ---------------------------------------------------------------------

namespace {

template <typename SpecT, typename WriterFn>
std::string
canonicalJson(const SpecT &spec, WriterFn write)
{
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    write(w, spec);
    return os.str();
}

} // anonymous namespace

std::string
canonicalSpecJson(const MemoryStudySpec &spec)
{
    return canonicalJson(spec, writeMemoryStudySpecJson);
}

std::string
canonicalSpecJson(const LogicStudySpec &spec)
{
    return canonicalJson(spec, writeLogicStudySpecJson);
}

std::string
canonicalSpecJson(const StackThermalSpec &spec)
{
    return canonicalJson(spec, writeStackThermalSpecJson);
}

std::string
canonicalSpecJson(const SensitivitySpec &spec)
{
    return canonicalJson(spec, writeSensitivitySpecJson);
}

std::uint64_t
specDigest(const std::string &study, const RunOptions &options,
           const std::string &canonical_spec_json)
{
    Fnv1aDigest d;
    d.mix(std::string("stack3d-request"));
    d.mix(std::uint64_t(obs::kSchemaVersion));
    d.mix(study);
    d.mix(options.seed);
    d.mixDouble(options.depth);
    d.mixDouble(options.scale);
    d.mix(std::string(precondName(options.thermal_precond)));
    d.mix(canonical_spec_json);
    return d.value();
}

// ---------------------------------------------------------------------
// Result payloads
// ---------------------------------------------------------------------

namespace {

void
writeThermalPointJson(JsonWriter &w, const ThermalPoint &point)
{
    w.beginObject();
    w.key("peak_c").valueExact(point.peak_c);
    w.key("die1_peak_c").valueExact(point.die1_peak_c);
    w.key("die2_peak_c").valueExact(point.die2_peak_c);
    w.key("min_c").valueExact(point.min_c);
    w.key("total_power_w").valueExact(point.total_power_w);
    w.key("iterations").value(std::uint64_t(point.solve.iterations));
    w.endObject();
}

} // anonymous namespace

void
writeMemoryStudyResultJson(JsonWriter &w,
                           const MemoryStudyResult &result)
{
    w.beginObject();
    w.key("rows").beginArray();
    for (const MemoryStudyRow &row : result.rows) {
        w.beginObject();
        w.key("benchmark").value(row.benchmark);
        w.key("records").value(std::uint64_t(row.records));
        w.key("footprint_mb").valueExact(row.footprint_mb);
        w.key("cpma").beginArray();
        for (double v : row.cpma)
            w.valueExact(v);
        w.endArray();
        w.key("bw_gbps").beginArray();
        for (double v : row.bw_gbps)
            w.valueExact(v);
        w.endArray();
        w.key("bus_power_w").beginArray();
        for (double v : row.bus_power_w)
            w.valueExact(v);
        w.endArray();
        w.key("llc_miss").beginArray();
        for (double v : row.llc_miss)
            w.valueExact(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    const MemoryStudySummary &s = result.summary;
    w.key("summary").beginObject();
    w.key("avg_cpma_reduction_32m")
        .valueExact(s.avg_cpma_reduction_32m);
    w.key("max_cpma_reduction_32m")
        .valueExact(s.max_cpma_reduction_32m);
    w.key("avg_bw_reduction_factor_32m")
        .valueExact(s.avg_bw_reduction_factor_32m);
    w.key("avg_bus_power_reduction_32m")
        .valueExact(s.avg_bus_power_reduction_32m);
    w.key("avg_bus_power_saving_w")
        .valueExact(s.avg_bus_power_saving_w);
    w.endObject();
    w.endObject();
}

void
writeLogicStudyResultJson(JsonWriter &w, const LogicStudyResult &result)
{
    w.beginObject();
    w.key("table4").beginObject();
    w.key("rows").beginArray();
    for (const cpu::Table4Row &row : result.table4.rows) {
        w.beginObject();
        w.key("path").value(cpu::pathName(row.path));
        w.key("stages_eliminated_pct")
            .valueExact(row.stages_eliminated_pct);
        w.key("perf_gain_pct").valueExact(row.perf_gain_pct);
        w.endObject();
    }
    w.endArray();
    w.key("total_perf_gain_pct")
        .valueExact(result.table4.total_perf_gain_pct);
    w.endObject();
    w.key("power_saving_3d").valueExact(result.power_saving_3d);
    w.key("fig11").beginObject();
    w.key("planar");
    writeThermalPointJson(w, result.fig11.planar);
    w.key("stacked");
    writeThermalPointJson(w, result.fig11.stacked);
    w.key("worst_case");
    writeThermalPointJson(w, result.fig11.worst_case);
    w.key("stacked_density_ratio")
        .valueExact(result.fig11.stacked_density_ratio);
    w.key("worst_density_ratio")
        .valueExact(result.fig11.worst_density_ratio);
    w.endObject();
    w.key("table5").beginArray();
    for (const Table5Row &row : result.table5) {
        w.beginObject();
        w.key("label").value(row.point.label);
        w.key("power_w").valueExact(row.point.power_w);
        w.key("power_rel").valueExact(row.point.power_rel);
        w.key("perf_rel").valueExact(row.point.perf_rel);
        w.key("vcc").valueExact(row.point.vcc);
        w.key("freq").valueExact(row.point.freq);
        w.key("temp_c").valueExact(row.temp_c);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeStackThermalResultJson(JsonWriter &w,
                            const StackThermalResult &result)
{
    static const char *kLabels[4] = {"baseline4m", "sram12m",
                                     "dram32m", "dram64m"};
    w.beginObject();
    w.key("options").beginArray();
    for (std::size_t o = 0; o < result.options.size(); ++o) {
        w.beginObject();
        w.key("label").value(kLabels[o]);
        w.key("point");
        writeThermalPointJson(w, result.options[o]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeSensitivityResultJson(JsonWriter &w,
                           const std::vector<SensitivityPoint> &points)
{
    w.beginObject();
    w.key("points").beginArray();
    for (const SensitivityPoint &p : points) {
        w.beginObject();
        w.key("conductivity").valueExact(p.conductivity);
        w.key("peak_cu_swept").valueExact(p.peak_cu_swept);
        w.key("peak_bond_swept").valueExact(p.peak_bond_swept);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace core
} // namespace stack3d
