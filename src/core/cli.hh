/**
 * @file
 * Shared CLI plumbing for the benches, examples, and tools: one
 * helper that parses the observability flags every binary supports
 * (--threads/--seed/--depth, --quiet/--verbose, --trace-out,
 * --stats-json), installs the trace collector, assembles the run
 * provenance manifest, and writes the trace / stats files at exit.
 *
 * Usage:
 *   core::BenchCli cli("fig5_cpma_bandwidth");
 *   for (int i = 1; i < argc; ++i) {
 *       if (cli.consume(argc, argv, i))
 *           continue;
 *       // bench-specific flags...
 *   }
 *   cli.begin();
 *   auto report = core::runMemoryStudy(cli.options, spec);
 *   cli.recordMeta(report.meta);
 *   // in a --json block: w.beginObject(); cli.writeJsonHeader(w); ...
 *   return cli.finish();
 */

#ifndef STACK3D_CORE_CLI_HH
#define STACK3D_CORE_CLI_HH

#include <iostream>
#include <string>
#include <vector>

#include "core/run_options.hh"
#include "obs/provenance.hh"

namespace stack3d {
namespace core {

/** Shared flag handling + observability wiring for one binary. */
class BenchCli
{
  public:
    explicit BenchCli(std::string tool);

    /**
     * Handle argv[i] when it is one of the shared flags (advancing
     * @p i past any flag value). @return true when consumed.
     */
    [[nodiscard]] bool consume(int argc, char **argv, int &i);

    /** Print the shared-flag help lines (for usage() messages). */
    static void printUsage(std::ostream &os);

    /**
     * Apply the parsed flags: silence logging for --quiet and
     * install the trace collector when --trace-out was given. Call
     * once, after the argv loop.
     */
    void begin();

    /** Run options assembled from the shared flags. */
    RunOptions options;

    bool quiet() const { return options.verbosity == Verbosity::Silent; }
    bool verbose() const
    {
        return options.verbosity == Verbosity::Verbose;
    }

    /**
     * Progress sink matching the verbosity: a console sink for
     * --verbose, null otherwise (Silent maps to no sink at all).
     */
    ProgressSink *progress();

    /**
     * Record a finished study's metadata: folds its counters into
     * the run-wide set and keeps the meta for --stats-json.
     */
    void recordMeta(const StudyMeta &meta);

    /** Run-wide counters (benches may add their own entries). */
    obs::CounterSet &counters() { return _counters; }

    /** Add a config knob to the provenance manifest. */
    void addConfig(const std::string &key, const std::string &value);
    void addConfig(const std::string &key, double value);

    /** The manifest describing this run. */
    obs::RunManifest manifest() const;

    /**
     * Write the provenance header — "manifest" and "counters"
     * members — into the currently-open JSON object. Every --json
     * bench output starts with this.
     */
    void writeJsonHeader(JsonWriter &w) const;

    /**
     * Flush --trace-out and --stats-json (if requested).
     * @return 0 on success, 1 when a file could not be written —
     *         meant to be the bench's exit status.
     */
    [[nodiscard]] int finish();

  private:
    std::string _tool;
    std::string _trace_out;
    std::string _stats_json;
    std::vector<std::pair<std::string, std::string>> _config;
    std::vector<StudyMeta> _metas;
    obs::CounterSet _counters;
    obs::TraceCollector _collector;
    ConsoleProgressSink _console{std::cout};
    bool _began = false;
    bool _finished = false;
};

} // namespace core
} // namespace stack3d

#endif // STACK3D_CORE_CLI_HH
