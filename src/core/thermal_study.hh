/**
 * @file
 * Thermal studies shared by both halves of the paper:
 *
 *  - the Figure 8 comparison of the four Memory+Logic stack options;
 *  - the Figure 6 planar baseline maps;
 *  - the Figure 3 metal/bond conductivity sensitivity sweep;
 *  - a generic evaluator that turns any two-die floorplan into peak
 *    temperature (used by the Figure 11 / Table 5 logic study).
 */

#ifndef STACK3D_CORE_THERMAL_STUDY_HH
#define STACK3D_CORE_THERMAL_STUDY_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/run_options.hh"
#include "floorplan/reference.hh"
#include "mem/params.hh"
#include "thermal/render.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"

namespace stack3d {
namespace core {

/** Default lateral resolution of the die window. */
constexpr unsigned kDefaultDieNx = 54;
constexpr unsigned kDefaultDieNy = 42;

/** Result of solving one (possibly stacked) floorplan. */
struct ThermalPoint
{
    double peak_c = 0.0;        ///< hottest active-layer cell
    double die1_peak_c = 0.0;   ///< die #1 (processor) peak
    double die2_peak_c = 0.0;   ///< die #2 peak (0 if planar)
    double min_c = 0.0;         ///< coolest active-layer cell
    double total_power_w = 0.0;

    /** CG convergence report, including the residual curve. */
    thermal::SolveInfo solve;
};

/**
 * A solved temperature field together with the mesh it references
 * (the field holds a pointer into the mesh, so both travel as one).
 */
struct ThermalSolution
{
    std::shared_ptr<thermal::Mesh> mesh;
    std::optional<thermal::TemperatureField> field;
};

/**
 * Solve a floorplan's thermals.
 * @param combined  one- or two-die floorplan (blocks tagged by die)
 * @param die2_type metal system of die #2 (None for planar)
 * @param pkg       package model (Core 2 default or makeP4Package())
 * @param solution_out optionally receives the full field + mesh
 * @param solver    preconditioner / tolerance / warm-start knobs
 */
ThermalPoint solveFloorplanThermals(
    const floorplan::Floorplan &combined,
    thermal::StackedDieType die2_type,
    const thermal::PackageModel &pkg = {},
    const thermal::StackOverrides &ovr = {},
    ThermalSolution *solution_out = nullptr,
    unsigned die_nx = kDefaultDieNx, unsigned die_ny = kDefaultDieNy,
    const thermal::SolverOptions &solver = {});

/** Figure 8(a): peak temperature per stacking option. */
struct StackThermalResult
{
    std::array<ThermalPoint, 4> options;   ///< Figure 5/8 order
};

/** Study-specific inputs for the Figure 8 stack-thermal study. */
struct StackThermalSpec
{
    unsigned die_nx = kDefaultDieNx;
    unsigned die_ny = kDefaultDieNy;
};

/**
 * Run the Figure 8 study under the unified Run/Report API: the four
 * stack options solve as four independent cells (no RNG involved, so
 * determinism across thread counts is immediate).
 */
StudyReport<StackThermalResult> runStackThermalStudy(
    const RunOptions &options, const StackThermalSpec &spec = {});

/** One point of the Figure 3 sensitivity sweep. */
struct SensitivityPoint
{
    double conductivity = 0.0;   ///< the swept layer's k, W/(m K)
    double peak_cu_swept = 0.0;  ///< peak with Cu metal k = conductivity
    double peak_bond_swept = 0.0;///< peak with bond k = conductivity
};

/** Study-specific inputs for the Figure 3 sensitivity sweep. */
struct SensitivitySpec
{
    std::vector<double> conductivities = {60, 40, 20, 12, 6, 3};
    unsigned die_nx = 40;
    unsigned die_ny = 36;
};

/**
 * Run the Figure 3 sweep under the unified Run/Report API: each
 * (conductivity, swept-layer) pair is one cell, two cells per point.
 */
StudyReport<std::vector<SensitivityPoint>> runConductivitySensitivity(
    const RunOptions &options, const SensitivitySpec &spec = {});

} // namespace core
} // namespace stack3d

#endif // STACK3D_CORE_THERMAL_STUDY_HH
