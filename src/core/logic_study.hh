/**
 * @file
 * The Logic+Logic stacking study (Section 4): folds the Pentium
 * 4-class design onto two dies and evaluates performance (Table 4),
 * power, thermals (Figure 11), and voltage/frequency scaling
 * (Table 5) end to end.
 */

#ifndef STACK3D_CORE_LOGIC_STUDY_HH
#define STACK3D_CORE_LOGIC_STUDY_HH

#include "core/run_options.hh"
#include "core/thermal_study.hh"
#include "cpu/suite.hh"
#include "power/scaling.hh"

namespace stack3d {
namespace core {

/** Figure 11's three bars. */
struct Fig11Result
{
    ThermalPoint planar;      ///< 2D baseline (147 W)
    ThermalPoint stacked;     ///< 3D, 15% power saving, ~1.3x density
    ThermalPoint worst_case;  ///< 3D, no savings, ~2x density
    double stacked_density_ratio = 0.0;
    double worst_density_ratio = 0.0;
};

/** A Table 5 row with its simulated temperature. */
struct Table5Row
{
    power::OperatingPoint point;
    double temp_c = 0.0;
};

/** Full logic-study result. */
struct LogicStudyResult
{
    cpu::Table4Result table4;
    double power_saving_3d = 0.0;    ///< from the breakdown (~0.15)
    Fig11Result fig11;
    std::vector<Table5Row> table5;
};

/** Study-specific inputs of the unified entry point. */
struct LogicStudySpec
{
    /**
     * Trace-suite options. The suite's uops_per_trace is multiplied
     * by RunOptions::depth, and its seed is derived from
     * RunOptions::seed (the spec's own seed field is ignored).
     */
    cpu::SuiteOptions suite;
    power::LogicPowerBreakdown power_breakdown;
    power::VfScalingModel vf_model;
    /** Lateral thermal resolution. */
    unsigned die_nx = 50;
    unsigned die_ny = 46;
    /**
     * Use the measured Table 4 total gain in Table 5 (true) or the
     * paper's nominal 15% (false).
     */
    bool use_measured_gain = true;
};

/**
 * Run the complete Logic+Logic study under the unified Run/Report
 * API. Cell decomposition: the Table 4 pipeline suite and the three
 * Figure 11 steady-state solves fan out first (cells 0-3); after a
 * barrier, the four non-baseline Table 5 operating points solve
 * concurrently (cells 4-7, each a scaled 3D floorplan).
 */
StudyReport<LogicStudyResult> runLogicStudy(
    const RunOptions &options, const LogicStudySpec &spec = {});

} // namespace core
} // namespace stack3d

#endif // STACK3D_CORE_LOGIC_STUDY_HH
