#include "thermal_study.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stack3d {
namespace core {

using floorplan::Floorplan;
using thermal::Mesh;
using thermal::PackageModel;
using thermal::StackedDieType;
using thermal::StackGeometry;
using thermal::StackOverrides;
using thermal::TemperatureField;

ThermalPoint
solveFloorplanThermals(const Floorplan &combined,
                       StackedDieType die2_type, const PackageModel &pkg,
                       const StackOverrides &ovr,
                       ThermalSolution *solution_out,
                       unsigned die_nx, unsigned die_ny)
{
    bool two_die = die2_type != StackedDieType::None;
    StackGeometry geom =
        two_die ? thermal::makeTwoDieStack(combined.width(),
                                           combined.height(), die2_type,
                                           pkg, ovr)
                : thermal::makePlanarStack(combined.width(),
                                           combined.height(), pkg, ovr);

    // Heap-allocate so the field (which points into the mesh) can be
    // handed to the caller without dangling.
    auto mesh_ptr = std::make_shared<Mesh>(geom, die_nx, die_ny);
    Mesh &mesh = *mesh_ptr;
    mesh.setLayerPower(geom.layerIndex("active1"),
                       combined.powerMap(die_nx, die_ny, 0));
    if (two_die) {
        mesh.setLayerPower(geom.layerIndex("active2"),
                           combined.powerMap(die_nx, die_ny, 1));
    }

    TemperatureField field = thermal::solveSteadyState(mesh);

    ThermalPoint point;
    unsigned a1 = geom.layerIndex("active1");
    point.die1_peak_c = field.layerPeak(a1);
    point.min_c = field.layerMin(a1);
    point.peak_c = point.die1_peak_c;
    if (two_die) {
        unsigned a2 = geom.layerIndex("active2");
        point.die2_peak_c = field.layerPeak(a2);
        point.peak_c = std::max(point.peak_c, point.die2_peak_c);
        point.min_c = std::min(point.min_c, field.layerMin(a2));
    }
    point.total_power_w = combined.totalPower();

    if (solution_out) {
        solution_out->mesh = mesh_ptr;
        solution_out->field = std::move(field);
    }
    return point;
}

StackThermalResult
runStackThermalStudy(unsigned die_nx, unsigned die_ny)
{
    using namespace floorplan;
    StackThermalResult result;

    Floorplan base = makeCore2Duo();

    // (a) planar baseline.
    result.options[0] = solveFloorplanThermals(
        base, StackedDieType::None, {}, {}, nullptr, die_nx, die_ny);

    // (b) +8 MB stacked SRAM.
    {
        Floorplan sram =
            makeCacheDie(base, "sram8m", budgets::stacked_sram_8mb);
        Floorplan combined = stackFloorplans(base, sram, "core2_12m");
        result.options[1] = solveFloorplanThermals(
            combined, StackedDieType::LogicSram, {}, {}, nullptr,
            die_nx, die_ny);
    }

    // (c) 32 MB stacked DRAM, SRAM removed (conservative full-size
    // outline: the vacated cache area stays as spreading silicon).
    {
        Floorplan base32 = makeCore2BaseDie32MKeepOutline();
        Floorplan dram =
            makeCacheDie(base32, "dram32m", budgets::stacked_dram_32mb);
        Floorplan combined = stackFloorplans(base32, dram, "core2_32m");
        result.options[2] = solveFloorplanThermals(
            combined, StackedDieType::Dram, {}, {}, nullptr, die_nx,
            die_ny);
    }

    // (d) 64 MB stacked DRAM over the unchanged baseline die.
    {
        Floorplan dram =
            makeCacheDie(base, "dram64m", budgets::stacked_dram_64mb);
        Floorplan combined = stackFloorplans(base, dram, "core2_64m");
        result.options[3] = solveFloorplanThermals(
            combined, StackedDieType::Dram, {}, {}, nullptr, die_nx,
            die_ny);
    }
    return result;
}

std::vector<SensitivityPoint>
runConductivitySensitivity(const std::vector<double> &conductivities,
                           unsigned die_nx, unsigned die_ny)
{
    using namespace floorplan;

    // A stacked two-die microprocessor: the Figure 10 fold of the
    // Pentium 4-class design, using its calibrated package.
    Floorplan stacked = makePentium43D();
    PackageModel pkg = thermal::makeP4Package();

    std::vector<SensitivityPoint> points;
    for (double k : conductivities) {
        stack3d_assert(k > 0.0, "conductivity must be positive");
        SensitivityPoint point;
        point.conductivity = k;

        StackOverrides cu_ovr;
        cu_ovr.cu_metal_conductivity = k;
        point.peak_cu_swept =
            solveFloorplanThermals(stacked, StackedDieType::LogicSram,
                                   pkg, cu_ovr, nullptr, die_nx, die_ny)
                .peak_c;

        StackOverrides bond_ovr;
        bond_ovr.bond_conductivity = k;
        point.peak_bond_swept =
            solveFloorplanThermals(stacked, StackedDieType::LogicSram,
                                   pkg, bond_ovr, nullptr, die_nx,
                                   die_ny)
                .peak_c;

        points.push_back(point);
    }
    return points;
}

} // namespace core
} // namespace stack3d
