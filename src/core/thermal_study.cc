#include "thermal_study.hh"

#include <algorithm>

#include "common/logging.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"

namespace stack3d {
namespace core {

using floorplan::Floorplan;
using thermal::Mesh;
using thermal::PackageModel;
using thermal::StackedDieType;
using thermal::StackGeometry;
using thermal::StackOverrides;
using thermal::TemperatureField;

ThermalPoint
solveFloorplanThermals(const Floorplan &combined,
                       StackedDieType die2_type, const PackageModel &pkg,
                       const StackOverrides &ovr,
                       ThermalSolution *solution_out,
                       unsigned die_nx, unsigned die_ny,
                       const thermal::SolverOptions &solver)
{
    bool two_die = die2_type != StackedDieType::None;
    StackGeometry geom =
        two_die ? thermal::makeTwoDieStack(combined.width(),
                                           combined.height(), die2_type,
                                           pkg, ovr)
                : thermal::makePlanarStack(combined.width(),
                                           combined.height(), pkg, ovr);

    // Heap-allocate so the field (which points into the mesh) can be
    // handed to the caller without dangling.
    auto mesh_ptr = std::make_shared<Mesh>(geom, die_nx, die_ny);
    Mesh &mesh = *mesh_ptr;
    mesh.setLayerPower(geom.layerIndex("active1"),
                       combined.powerMap(die_nx, die_ny, 0));
    if (two_die) {
        mesh.setLayerPower(geom.layerIndex("active2"),
                           combined.powerMap(die_nx, die_ny, 1));
    }

    ThermalPoint point;
    TemperatureField field =
        thermal::solveSteadyState(mesh, solver, &point.solve);
    unsigned a1 = geom.layerIndex("active1");
    point.die1_peak_c = field.layerPeak(a1);
    point.min_c = field.layerMin(a1);
    point.peak_c = point.die1_peak_c;
    if (two_die) {
        unsigned a2 = geom.layerIndex("active2");
        point.die2_peak_c = field.layerPeak(a2);
        point.peak_c = std::max(point.peak_c, point.die2_peak_c);
        point.min_c = std::min(point.min_c, field.layerMin(a2));
    }
    point.total_power_w = combined.totalPower();

    if (solution_out) {
        solution_out->mesh = mesh_ptr;
        solution_out->field = std::move(field);
    }
    return point;
}

StudyReport<StackThermalResult>
runStackThermalStudy(const RunOptions &options,
                     const StackThermalSpec &spec)
{
    using namespace floorplan;

    StudyTracker tracker("stack-thermal", 4, options);
    StudyReport<StackThermalResult> report;
    StackThermalResult &result = report.payload;

    const unsigned die_nx = spec.die_nx;
    const unsigned die_ny = spec.die_ny;
    Floorplan base = makeCore2Duo();

    unsigned workers = options.resolvedThreads();
    exec::ThreadPool pool(workers > 1 ? workers : 0);

    thermal::SolverOptions sopt;
    sopt.precond = options.thermal_precond;
    sopt.cancel = options.cancel;

    // Three tasks over four cells: the two DRAM options share the
    // same die outline, so dram64m warm-starts from dram32m's field.
    // The chain is a fixed data dependency inside one task, making
    // the result independent of the thread count by construction.
    exec::parallelFor(pool, 3, [&](std::size_t task) {
        switch (task) {
          case 0:
            // (a) planar baseline.
            tracker.runCell(0, "baseline4m", [&] {
                result.options[0] = solveFloorplanThermals(
                    base, StackedDieType::None, {}, {}, nullptr,
                    die_nx, die_ny, sopt);
            });
            break;
          case 1:
            // (b) +8 MB stacked SRAM.
            tracker.runCell(1, "sram12m", [&] {
                Floorplan sram = makeCacheDie(
                    base, "sram8m", budgets::stacked_sram_8mb);
                Floorplan combined =
                    stackFloorplans(base, sram, "core2_12m");
                result.options[1] = solveFloorplanThermals(
                    combined, StackedDieType::LogicSram, {}, {},
                    nullptr, die_nx, die_ny, sopt);
            });
            break;
          case 2: {
            // (c) 32 MB stacked DRAM, SRAM removed (conservative
            // full-size outline: the vacated cache area stays as
            // spreading silicon).
            ThermalSolution sol32;
            tracker.runCell(2, "dram32m", [&] {
                Floorplan base32 = makeCore2BaseDie32MKeepOutline();
                Floorplan dram = makeCacheDie(
                    base32, "dram32m", budgets::stacked_dram_32mb);
                Floorplan combined =
                    stackFloorplans(base32, dram, "core2_32m");
                result.options[2] = solveFloorplanThermals(
                    combined, StackedDieType::Dram, {}, {}, &sol32,
                    die_nx, die_ny, sopt);
            });
            // (d) 64 MB stacked DRAM over the unchanged baseline die.
            tracker.runCell(3, "dram64m", [&] {
                Floorplan dram = makeCacheDie(
                    base, "dram64m", budgets::stacked_dram_64mb);
                Floorplan combined =
                    stackFloorplans(base, dram, "core2_64m");
                thermal::SolverOptions warm = sopt;
                if (sol32.field)
                    warm.warm_start = &sol32.field->raw();
                result.options[3] = solveFloorplanThermals(
                    combined, StackedDieType::Dram, {}, {}, nullptr,
                    die_nx, die_ny, warm);
            });
            break;
          }
        }
    });

    report.meta = tracker.finish();
    static const char *kOptionLabels[4] = {"baseline4m", "sram12m",
                                           "dram32m", "dram64m"};
    unsigned warm_hits = 0, warm_misses = 0;
    for (std::size_t o = 0; o < 4; ++o) {
        thermal::appendSolveCounters(
            report.meta.counters,
            "thermal." + std::string(kOptionLabels[o]) + ".",
            result.options[o].solve);
        (result.options[o].solve.warm_start_used ? warm_hits
                                                 : warm_misses)++;
    }
    report.meta.counters.set("thermal.warm_start.hits",
                             double(warm_hits));
    report.meta.counters.set("thermal.warm_start.misses",
                             double(warm_misses));
    pool.appendCounters(report.meta.counters);
    return report;
}

StudyReport<std::vector<SensitivityPoint>>
runConductivitySensitivity(const RunOptions &options,
                           const SensitivitySpec &spec)
{
    using namespace floorplan;

    for (double k : spec.conductivities)
        stack3d_assert(k > 0.0, "conductivity must be positive");

    // A stacked two-die microprocessor: the Figure 10 fold of the
    // Pentium 4-class design, using its calibrated package.
    Floorplan stacked = makePentium43D();
    PackageModel pkg = thermal::makeP4Package();

    const std::size_t num_points = spec.conductivities.size();
    StudyTracker tracker("sensitivity", num_points * 2, options);

    StudyReport<std::vector<SensitivityPoint>> report;
    std::vector<SensitivityPoint> &points = report.payload;
    points.resize(num_points);
    for (std::size_t i = 0; i < num_points; ++i)
        points[i].conductivity = spec.conductivities[i];

    unsigned workers = options.resolvedThreads();
    exec::ThreadPool pool(workers > 1 ? workers : 0);

    thermal::SolverOptions sopt;
    sopt.precond = options.thermal_precond;
    sopt.cancel = options.cancel;

    // Two cells per swept point: Cu-metal and bonding-layer. Each
    // swept layer forms one sequential chain so consecutive points
    // reuse work twice over: the mesh is assembled once per chain and
    // only the swept layer's conductances are recomputed, and each
    // solve warm-starts from the previous point's field (the solution
    // moves only slightly when one thin layer's k changes). The two
    // chains run as independent tasks; within a chain the order is
    // fixed, so results do not depend on the thread count.
    std::vector<std::string> cell_labels(num_points * 2);
    std::vector<thermal::SolveInfo> cell_solves(num_points * 2);
    std::vector<std::size_t> faces_updated(2, 0);
    exec::parallelFor(pool, 2, [&](std::size_t chain) {
        const bool sweep_bond = chain == 1;
        std::shared_ptr<Mesh> mesh;
        std::vector<double> prev_field;
        for (std::size_t i = 0; i < num_points; ++i) {
            const std::size_t cell = i * 2 + (sweep_bond ? 1 : 0);
            const double k = spec.conductivities[i];
            std::string label = "k=" + std::to_string(int(k)) +
                                (sweep_bond ? "/bond" : "/cu");
            cell_labels[cell] = label;
            tracker.runCell(cell, label, [&] {
                if (!mesh) {
                    StackOverrides ovr;
                    if (sweep_bond)
                        ovr.bond_conductivity = k;
                    else
                        ovr.cu_metal_conductivity = k;
                    StackGeometry geom = thermal::makeTwoDieStack(
                        stacked.width(), stacked.height(),
                        StackedDieType::LogicSram, pkg, ovr);
                    mesh = std::make_shared<Mesh>(geom, spec.die_nx,
                                                  spec.die_ny);
                    mesh->setLayerPower(
                        geom.layerIndex("active1"),
                        stacked.powerMap(spec.die_nx, spec.die_ny, 0));
                    mesh->setLayerPower(
                        geom.layerIndex("active2"),
                        stacked.powerMap(spec.die_nx, spec.die_ny, 1));
                } else {
                    const StackGeometry &geom = mesh->geometry();
                    if (sweep_bond) {
                        faces_updated[chain] +=
                            mesh->updateLayerConductivity(
                                geom.layerIndex("bond"), k);
                    } else {
                        faces_updated[chain] +=
                            mesh->updateLayerConductivity(
                                geom.layerIndex("metal1"), k);
                        faces_updated[chain] +=
                            mesh->updateLayerConductivity(
                                geom.layerIndex("metal2"), k);
                    }
                }
                thermal::SolverOptions cell_opt = sopt;
                if (!prev_field.empty())
                    cell_opt.warm_start = &prev_field;
                thermal::SolveInfo info;
                TemperatureField field = thermal::solveSteadyState(
                    *mesh, cell_opt, &info);
                const StackGeometry &geom = mesh->geometry();
                const double peak = std::max(
                    field.layerPeak(geom.layerIndex("active1")),
                    field.layerPeak(geom.layerIndex("active2")));
                cell_solves[cell] = std::move(info);
                if (sweep_bond)
                    points[i].peak_bond_swept = peak;
                else
                    points[i].peak_cu_swept = peak;
                prev_field = field.raw();
            });
        }
    });

    report.meta = tracker.finish();
    unsigned warm_hits = 0, warm_misses = 0;
    for (std::size_t cell = 0; cell < cell_solves.size(); ++cell) {
        thermal::appendSolveCounters(report.meta.counters,
                                     "thermal." + cell_labels[cell] +
                                         ".",
                                     cell_solves[cell]);
        (cell_solves[cell].warm_start_used ? warm_hits
                                           : warm_misses)++;
    }
    report.meta.counters.set("thermal.warm_start.hits",
                             double(warm_hits));
    report.meta.counters.set("thermal.warm_start.misses",
                             double(warm_misses));
    report.meta.counters.set(
        "thermal.conductances_updated",
        double(faces_updated[0] + faces_updated[1]));
    pool.appendCounters(report.meta.counters);
    return report;
}

} // namespace core
} // namespace stack3d
