/**
 * @file
 * The full memory hierarchy of the Memory+Logic study: per-core L1I
 * and L1D, a shared last-level cache that is either SRAM (options a,
 * b of Figure 7) or a 3D-stacked sectored DRAM cache (options c, d),
 * an off-die bus, and banked DDR main memory.
 *
 * The hierarchy is a timing composer over the functional tag models:
 * access() walks the levels, reserving bus and DRAM-bank time as it
 * goes, and returns the completion cycle of the reference.
 *
 * Modelling notes (documented simplifications):
 *  - Tag state updates at lookup time even though data "arrives"
 *    later, so a second access to an in-flight line scores a hit at
 *    full hit latency rather than merging into an MSHR.
 *  - Inclusion between LLC and the L1s is enforced with direct
 *    back-invalidation probes; a two-cpu directory is exact this way.
 *  - Store coherence: a store probes the other core's L1 and
 *    invalidates a shared copy (counted; no extra latency is charged
 *    on the store itself).
 */

#ifndef STACK3D_MEM_HIERARCHY_HH
#define STACK3D_MEM_HIERARCHY_HH

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/params.hh"
#include "trace/record.hh"

namespace stack3d {

namespace obs {
class CounterSet;
} // namespace obs

namespace mem {

/** Banked DDR main memory behind the off-die bus. */
class MainMemory
{
  public:
    explicit MainMemory(const MainMemoryParams &params)
        : _params(params),
          _banks(params.num_banks, params.page_bytes, params.timing,
                 "main_memory")
    {
    }

    /** Read: fixed interface overhead plus bank timing. */
    Cycles
    read(Addr addr, Cycles start, bool speculative = false)
    {
        ++_reads;
        return _banks.access(addr, start + _params.fixed_overhead,
                             speculative);
    }

    /**
     * Write (fire-and-forget). Writes land in the controller's write
     * buffer and drain opportunistically (row-hit-first scheduling),
     * so they do not serialize against the in-order read stream the
     * way a naive bank reservation would; only the byte count is
     * tracked (the off-die bus occupancy is charged by the caller).
     */
    void
    write(Addr addr, Cycles start)
    {
        (void)addr;
        (void)start;
        ++_writes;
    }

    const DramBankEngine &banks() const { return _banks; }
    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }

  private:
    MainMemoryParams _params;
    DramBankEngine _banks;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
};

/** Aggregate counters of one simulation. */
struct HierarchyCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t coherence_invalidations = 0;
    std::uint64_t offdie_fill_bytes = 0;
    std::uint64_t offdie_writeback_bytes = 0;
    std::uint64_t prefetches = 0;
    /** Demand (non-prefetch) L1D misses. */
    std::uint64_t demand_l1d_misses = 0;
};

/** One tracked stream of the per-core stride prefetcher. */
struct StreamEntry
{
    Addr next_line = 0;
    std::int64_t stride = 0;   ///< in lines, +1 or -1
    unsigned confidence = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
};

/** The composed two-core memory hierarchy. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /**
     * Perform one memory reference.
     * @param cpu   issuing core
     * @param addr  byte address
     * @param op    load / store / ifetch
     * @param start cycle the reference begins its L1 access
     * @return completion cycle
     */
    Cycles access(unsigned cpu, Addr addr, trace::MemOp op, Cycles start);

    const HierarchyParams &params() const { return _params; }
    const HierarchyCounters &counters() const { return _ctr; }
    const Cache &l1d(unsigned cpu) const { return *_l1d[cpu]; }
    const Cache &l1i(unsigned cpu) const { return *_l1i[cpu]; }

    /** SRAM L2 (options a, b); null for DRAM-cache options. */
    const Cache *l2() const { return _l2.get(); }

    /** Stacked DRAM cache (options c, d); null otherwise. */
    const DramCacheArray *dramCache() const { return _dram_cache.get(); }
    const DramBankEngine *dramBanks() const { return _dram_banks.get(); }

    const Bus &bus() const { return _bus; }
    const MainMemory &mainMemory() const { return _main_memory; }

    /** Total off-die traffic (fills + writebacks) in bytes. */
    std::uint64_t
    offDieBytes() const
    {
        return _ctr.offdie_fill_bytes + _ctr.offdie_writeback_bytes;
    }

    /**
     * Dump every counter in gem5-style "name value # desc" lines
     * (per-cache hits/misses, DRAM bank behaviour, bus traffic,
     * prefetcher and coherence activity).
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Append a machine-readable snapshot of every level's counters
     * to @p out under @p prefix: per-cache hits/misses/miss_rate/
     * mpkr (misses per kilo references), DRAM cache and bank
     * behaviour, bus bytes/occupancy, and main-memory traffic.
     * @param total_cycles run length, used for bus occupancy; pass 0
     *        to skip the rate-style counters.
     */
    void appendCounters(obs::CounterSet &out,
                        const std::string &prefix = "",
                        Cycles total_cycles = 0) const;

  private:
    Addr lineAddr(Addr addr) const;
    void handleL1Victim(unsigned cpu, const CacheAccessResult &res,
                        Cycles when);
    void backInvalidateL1s(Addr line_addr);
    void coherenceOnStore(unsigned cpu, Addr addr);
    Cycles missToMemory(Addr addr, std::uint64_t bytes, Cycles when,
                        bool speculative);

    /** LLC lookup for a line miss in L1. @return completion cycle. */
    Cycles llcAccess(unsigned cpu, Addr addr, bool is_store, Cycles when,
                     bool speculative);

    /** Train the stream prefetcher on an L1D demand access and launch
     *  prefetch fills for confirmed streams. */
    void trainPrefetcher(unsigned cpu, Addr line, Cycles when,
                         bool was_hit);

    /** Fill @p line into cpu's L1D + the LLC, off the critical path. */
    void prefetchLine(unsigned cpu, Addr line, Cycles when);

    HierarchyParams _params;
    std::vector<std::unique_ptr<Cache>> _l1d;
    std::vector<std::unique_ptr<Cache>> _l1i;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<DramCacheArray> _dram_cache;
    std::unique_ptr<DramBankEngine> _dram_banks;
    Bus _bus;
    MainMemory _main_memory;
    HierarchyCounters _ctr;
    std::vector<std::vector<StreamEntry>> _streams;   // per cpu
    // Stream-match acceleration: the per-cpu next_line column plus
    // its 16-bit signature array and validity mask, searched with the
    // same tag-search primitives the caches use. Kept in sync with
    // _streams by trainPrefetcher (the only writer).
    std::vector<std::vector<Addr>> _stream_next;      // per cpu
    std::vector<std::vector<TagSig>> _stream_sigs;    // per cpu
    std::vector<std::uint32_t> _stream_valid;         // per cpu
    TagSearchMode _tag_mode = TagSearchMode::Scalar;
    std::uint64_t _stream_clock = 0;
};

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_HIERARCHY_HH
