/**
 * @file
 * The dependency-honoring trace-issue engine (Section 2.1 of the
 * paper): memory references are issued to the hierarchy in per-cpu
 * program order, at a bounded issue rate and with a bounded
 * outstanding window, and a reference whose trace dependency has not
 * completed stalls until it has — exactly the "Ld2 is issued only
 * after Ld1 is completed" rule the paper describes.
 *
 * The headline metric is CPMA (cycles per memory access): total
 * simulated cycles divided by the number of references, the figure
 * plotted on Figure 5's primary axis.
 */

#ifndef STACK3D_MEM_ENGINE_HH
#define STACK3D_MEM_ENGINE_HH

#include <cstdint>

#include "mem/hierarchy.hh"
#include "obs/metrics.hh"
#include "trace/buffer.hh"

namespace stack3d {
namespace mem {

/** Issue-engine knobs. */
struct EngineParams
{
    /** Maximum references in flight per cpu (ROB/MSHR window). */
    unsigned window = 128;

    /** References issued per cpu per cycle (the L1D accepts about
     *  one memory instruction per cycle in this generation). */
    unsigned issue_width = 1;

    /**
     * When false, trace dependencies are ignored (infinite-MLP
     * ablation; see DESIGN.md).
     */
    bool honor_dependencies = true;

    /**
     * Leading fraction of the trace treated as warm-up: it runs
     * through the hierarchy (filling caches) but is excluded from
     * CPMA / bandwidth / latency statistics, the way the paper
     * skips each benchmark's initialization phase.
     */
    double warmup_fraction = 0.2;
};

/** Results of one engine run. */
struct EngineResult
{
    std::uint64_t num_records = 0;
    Cycles total_cycles = 0;

    /** Figure 5 primary axis: total cycles / references. */
    double cpma = 0.0;

    /** Mean start-to-completion latency of a reference. */
    double avg_latency = 0.0;

    /** Figure 5 secondary axis: achieved off-die GB/s. */
    double offdie_gbps = 0.0;

    /** Bus power at 20 mW/Gb/s. */
    double bus_power_w = 0.0;

    double l1d_miss_rate = 0.0;
    double llc_miss_rate = 0.0;

    /**
     * Latency histogram: fraction of references completing within
     * 8 cycles (L1-class), 9-32 (LLC SRAM-class), 33-128 (stacked
     * DRAM-class), and beyond 128 (off-die-class).
     */
    double latency_frac[4] = {0.0, 0.0, 0.0, 0.0};

    HierarchyCounters hier;

    /**
     * Full per-level counter snapshot (hits/misses/miss_rate/mpkr
     * per cache, DRAM cache/bank behaviour, bus occupancy, DDR
     * traffic) taken from the hierarchy at end of run.
     */
    obs::CounterSet counters;
};

/** Runs a trace through a hierarchy with dependency-honoring issue. */
class TraceEngine
{
  public:
    explicit TraceEngine(const EngineParams &params = {})
        : _params(params)
    {
    }

    const EngineParams &params() const { return _params; }

    /**
     * Simulate @p buf against @p hier (which accumulates state and
     * counters; use a fresh hierarchy per run).
     */
    EngineResult run(const trace::TraceBuffer &buf,
                     MemoryHierarchy &hier) const;

  private:
    EngineParams _params;
};

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_ENGINE_HH
