/**
 * @file
 * The dependency-honoring trace-issue engine (Section 2.1 of the
 * paper): memory references are issued to the hierarchy in per-cpu
 * program order, at a bounded issue rate and with a bounded
 * outstanding window, and a reference whose trace dependency has not
 * completed stalls until it has — exactly the "Ld2 is issued only
 * after Ld1 is completed" rule the paper describes.
 *
 * The headline metric is CPMA (cycles per memory access): total
 * simulated cycles divided by the number of references, the figure
 * plotted on Figure 5's primary axis.
 */

#ifndef STACK3D_MEM_ENGINE_HH
#define STACK3D_MEM_ENGINE_HH

#include <cstdint>
#include <vector>

#include "mem/hierarchy.hh"
#include "obs/metrics.hh"
#include "trace/buffer.hh"

namespace stack3d {

namespace exec {
class ThreadPool;
} // namespace exec

namespace mem {

/** Issue-engine knobs. */
struct EngineParams
{
    /** Maximum references in flight per cpu (ROB/MSHR window). */
    unsigned window = 128;

    /** References issued per cpu per cycle (the L1D accepts about
     *  one memory instruction per cycle in this generation). */
    unsigned issue_width = 1;

    /**
     * When false, trace dependencies are ignored (infinite-MLP
     * ablation; see DESIGN.md).
     */
    bool honor_dependencies = true;

    /**
     * Leading fraction of the trace treated as warm-up: it runs
     * through the hierarchy (filling caches) but is excluded from
     * CPMA / bandwidth / latency statistics, the way the paper
     * skips each benchmark's initialization phase.
     */
    double warmup_fraction = 0.2;
};

/** Results of one engine run. */
struct EngineResult
{
    std::uint64_t num_records = 0;
    Cycles total_cycles = 0;

    /** Figure 5 primary axis: total cycles / references. */
    double cpma = 0.0;

    /** Mean start-to-completion latency of a reference. */
    double avg_latency = 0.0;

    /** Figure 5 secondary axis: achieved off-die GB/s. */
    double offdie_gbps = 0.0;

    /** Bus power at 20 mW/Gb/s. */
    double bus_power_w = 0.0;

    double l1d_miss_rate = 0.0;
    double llc_miss_rate = 0.0;

    /**
     * Latency histogram: fraction of references completing within
     * 8 cycles (L1-class), 9-32 (LLC SRAM-class), 33-128 (stacked
     * DRAM-class), and beyond 128 (off-die-class).
     */
    double latency_frac[4] = {0.0, 0.0, 0.0, 0.0};

    HierarchyCounters hier;

    /**
     * Full per-level counter snapshot (hits/misses/miss_rate/mpkr
     * per cache, DRAM cache/bank behaviour, bus occupancy, DDR
     * traffic) taken from the hierarchy at end of run.
     */
    obs::CounterSet counters;
};

/**
 * Result of a sharded replay: the per-shard results (in shard-index
 * order) plus the deterministic merge. See DESIGN.md "Replay data
 * path" for the decomposition and merge semantics.
 */
struct ShardedReplayResult
{
    EngineResult merged;
    std::vector<EngineResult> shards;
    /** Trace dependencies that crossed a shard boundary and were
     *  dropped from the sharded decomposition. */
    std::uint64_t cross_shard_deps = 0;
};

/** Runs a trace through a hierarchy with dependency-honoring issue. */
class TraceEngine
{
  public:
    explicit TraceEngine(const EngineParams &params = {})
        : _params(params)
    {
    }

    const EngineParams &params() const { return _params; }

    /**
     * Simulate @p buf against @p hier (which accumulates state and
     * counters; use a fresh hierarchy per run).
     *
     * This is the fast path: SoA column decode of the trace, arena-
     * backed issue state, and linked-list issue windows that skip
     * the per-cycle window copy. It issues the exact same reference
     * sequence as runReference() and produces bit-identical results
     * (pinned by tests/test_mem_replay_determinism.cc).
     */
    EngineResult run(const trace::TraceBuffer &buf,
                     MemoryHierarchy &hier) const;

    /**
     * The original straight-line implementation, kept as the oracle
     * for the fast path and as the "before" leg of bench/mem_replay.
     */
    EngineResult runReference(const trace::TraceBuffer &buf,
                              MemoryHierarchy &hier) const;

    /**
     * Sharded replay: stripe the trace by line address over
     * @p num_shards independent hierarchy clones, replay every shard
     * (in parallel when @p pool fans out), and merge the per-shard
     * results in shard-index order. The merge is deterministic and
     * thread-count independent: N-thread output is bit-identical to
     * running the same decomposition serially. Dependencies that
     * cross shards are dropped and counted (documented
     * approximation; shard counts > 1 change absolute numbers vs the
     * unsharded run).
     */
    ShardedReplayResult runSharded(const trace::TraceBuffer &buf,
                                   const HierarchyParams &hparams,
                                   unsigned num_shards,
                                   exec::ThreadPool *pool = nullptr) const;

  private:
    EngineParams _params;
};

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_ENGINE_HH
