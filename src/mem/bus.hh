/**
 * @file
 * Off-die front-side bus model: a single shared channel with finite
 * bandwidth (Table 3: 16 GB/s). Transactions serialize on the
 * channel; the model tracks total bytes moved so off-die bandwidth
 * and bus power (20 mW/Gb/s) can be reported per Figure 5.
 */

#ifndef STACK3D_MEM_BUS_HH
#define STACK3D_MEM_BUS_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/units.hh"
#include "mem/params.hh"

namespace stack3d {
namespace mem {

/** A bandwidth-limited, in-order off-die bus. */
class Bus
{
  public:
    explicit Bus(const BusParams &params) : _params(params)
    {
        stack3d_assert(params.bandwidth_gbps > 0.0 &&
                           params.core_freq_ghz > 0.0,
                       "bus bandwidth/frequency must be positive");
        _bytes_per_cycle = params.bytesPerCycle();
    }

    /**
     * Transfer @p bytes no earlier than @p start. The channel is a
     * single serialized resource — unlike the DRAM banks there is no
     * demand-priority lane, because every byte genuinely occupies
     * the same wires (bandwidth conservation); the speculative flag
     * is accepted for interface symmetry and recorded in the stats.
     *
     * @return cycle at which the transfer completes.
     */
    Cycles
    transfer(std::uint64_t bytes, Cycles start, bool speculative = false)
    {
        // Memoize the fp division: transfers come in a handful of
        // fixed sizes (line, sector, page), so the last size almost
        // always repeats.
        Cycles occupancy;
        if (bytes == _last_bytes) {
            occupancy = _last_occupancy;
        } else {
            occupancy = Cycles(double(bytes) / _bytes_per_cycle + 0.5);
            if (occupancy == 0)
                occupancy = 1;
            _last_bytes = bytes;
            _last_occupancy = occupancy;
        }
        Cycles begin = std::max(start, _next_free);
        _next_free = begin + occupancy;
        _total_bytes += bytes;
        if (speculative)
            _speculative_bytes += bytes;
        ++_transactions;
        return _next_free;
    }

    /** Earliest cycle a new transfer could begin (queue backlog). */
    Cycles nextFree() const { return _next_free; }

    /** Bytes moved by speculative traffic (prefetch, writeback). */
    std::uint64_t speculativeBytes() const { return _speculative_bytes; }

    std::uint64_t totalBytes() const { return _total_bytes; }
    std::uint64_t transactions() const { return _transactions; }

    /** Achieved bandwidth in GB/s over @p total_cycles. */
    double
    achievedGBps(Cycles total_cycles) const
    {
        if (total_cycles == 0)
            return 0.0;
        double seconds =
            double(total_cycles) / (_params.core_freq_ghz * 1e9);
        return units::toGBps(double(_total_bytes), seconds);
    }

    /** Bus power in watts at the achieved bandwidth (20 mW/Gb/s). */
    double
    powerWatts(Cycles total_cycles) const
    {
        double gbit_per_s = achievedGBps(total_cycles) * 8.0;
        return gbit_per_s * _params.mw_per_gbit * 1e-3;
    }

    const BusParams &params() const { return _params; }

  private:
    BusParams _params;
    double _bytes_per_cycle;
    std::uint64_t _last_bytes = ~std::uint64_t(0);
    Cycles _last_occupancy = 1;
    Cycles _next_free = 0;
    std::uint64_t _total_bytes = 0;
    std::uint64_t _speculative_bytes = 0;
    std::uint64_t _transactions = 0;
};

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_BUS_HH
