#include "cache.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace stack3d {
namespace mem {

Cache::Cache(const CacheParams &params, std::string name)
    : _params(params), _name(std::move(name))
{
    if (params.size_bytes == 0 || params.assoc == 0)
        stack3d_fatal("cache '", _name, "' has zero size or assoc");
    if (params.assoc > 32)
        stack3d_fatal("cache '", _name, "' assoc ", params.assoc,
                      " exceeds the 32-way metadata bitmasks");
    if (!units::isPowerOfTwo(params.line_bytes))
        stack3d_fatal("cache '", _name, "' line size not a power of two");
    _num_sets =
        params.size_bytes / (std::uint64_t(params.line_bytes) *
                             params.assoc);
    if (_num_sets == 0 || !units::isPowerOfTwo(_num_sets)) {
        stack3d_fatal("cache '", _name, "': ", _num_sets,
                      " sets (must be a non-zero power of two; adjust "
                      "associativity)");
    }
    _line_shift = units::floorLog2(params.line_bytes);
    _sig_stride = sigStride(params.assoc);
    _mode = tagSearchMode();
    _vector_hit_inc = _mode != TagSearchMode::Scalar ? 1 : 0;
    _tags.resize(_num_sets * params.assoc);
    _sigs.resize(_num_sets * _sig_stride);
    _valid.resize(_num_sets);
    _dirty.resize(_num_sets);
    _presence.resize(_num_sets * params.assoc);
    _lru.resize(_num_sets * params.assoc);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> _line_shift) & (_num_sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> _line_shift;
}

int
Cache::findWayIn(std::uint64_t set, Addr tag) const
{
    const std::uint64_t *tags = &_tags[set * _params.assoc];
    switch (_mode) {
      case TagSearchMode::Scalar:
        return findWayScalar(tags, _valid[set], _params.assoc, tag);
      case TagSearchMode::Swar:
        return findWaySwar(&_sigs[set * _sig_stride], tags,
                           _valid[set], _params.assoc, tag);
      case TagSearchMode::Simd:
        break;
    }
    return findWaySimd(&_sigs[set * _sig_stride], tags, _valid[set],
                       _params.assoc, tag);
}

std::int64_t
Cache::findLine(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    int way = findWayIn(set, tagOf(addr));
    if (way < 0)
        return -1;
    return std::int64_t(set * _params.assoc + unsigned(way));
}

CacheAccessResult
Cache::access(Addr addr, bool is_store)
{
    CacheAccessResult res;
    ++_tick;
    ++_ctr.tag_probes;

    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    int way = findWayIn(set, tag);
    if (way >= 0) {
        ++_ctr.hits;
        _ctr.swar_hits += _vector_hit_inc;
        res.hit = true;
        std::uint64_t flat = set * _params.assoc + unsigned(way);
        _lru[flat] = _tick;
        if (is_store)
            _dirty[set] |= std::uint32_t(1u) << unsigned(way);
        return res;
    }

    ++_ctr.misses;

    // Choose a victim: first invalid way if any, else the first way
    // holding the strict-minimum LRU stamp (identical order to the
    // old struct scan).
    const std::uint32_t all_ways =
        _params.assoc == 32 ? ~std::uint32_t(0)
                            : (std::uint32_t(1u) << _params.assoc) - 1u;
    std::uint32_t invalid = ~_valid[set] & all_ways;
    unsigned victim;
    if (invalid) {
        victim = unsigned(std::countr_zero(invalid));
    } else {
        const std::uint64_t *lru = &_lru[set * _params.assoc];
        victim = 0;
        for (unsigned w = 1; w < _params.assoc; ++w) {
            if (lru[w] < lru[victim])
                victim = w;
        }
    }

    std::uint64_t flat = set * _params.assoc + victim;
    std::uint32_t bit = std::uint32_t(1u) << victim;
    if (_valid[set] & bit) {
        ++_ctr.evictions;
        res.evicted = true;
        res.victim_addr = _tags[flat] << _line_shift;
        res.victim_presence = _presence[flat];
        if (_dirty[set] & bit) {
            ++_ctr.writebacks;
            res.writeback = true;
        }
    }

    _tags[flat] = tag;
    _sigs[set * _sig_stride + victim] = sigOf(tag);
    _valid[set] |= bit;
    if (is_store)
        _dirty[set] |= bit;
    else
        _dirty[set] &= ~bit;
    _presence[flat] = 0;
    _lru[flat] = _tick;
    return res;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) >= 0;
}

bool
Cache::invalidate(Addr addr)
{
    std::int64_t flat = findLine(addr);
    if (flat < 0)
        return false;
    ++_ctr.invalidations;
    std::uint64_t set = std::uint64_t(flat) / _params.assoc;
    std::uint32_t bit =
        std::uint32_t(1u) << unsigned(std::uint64_t(flat) %
                                      _params.assoc);
    bool was_dirty = (_dirty[set] & bit) != 0;
    _valid[set] &= ~bit;
    _dirty[set] &= ~bit;
    _presence[std::uint64_t(flat)] = 0;
    return was_dirty;
}

void
Cache::setPresence(Addr addr, unsigned cpu)
{
    stack3d_assert(cpu < 8, "presence bitmap supports 8 cpus");
    std::int64_t flat = findLine(addr);
    if (flat >= 0)
        _presence[std::uint64_t(flat)] |= std::uint8_t(1u << cpu);
}

void
Cache::clearPresence(Addr addr, unsigned cpu)
{
    stack3d_assert(cpu < 8, "presence bitmap supports 8 cpus");
    std::int64_t flat = findLine(addr);
    if (flat >= 0)
        _presence[std::uint64_t(flat)] &= std::uint8_t(~(1u << cpu));
}

std::uint8_t
Cache::presence(Addr addr) const
{
    std::int64_t flat = findLine(addr);
    return flat >= 0 ? _presence[std::uint64_t(flat)] : 0;
}

bool
Cache::markDirty(Addr addr)
{
    std::int64_t flat = findLine(addr);
    if (flat < 0)
        return false;
    std::uint64_t set = std::uint64_t(flat) / _params.assoc;
    _dirty[set] |= std::uint32_t(1u)
                   << unsigned(std::uint64_t(flat) % _params.assoc);
    return true;
}

void
Cache::flush()
{
    std::fill(_tags.begin(), _tags.end(), Addr(0));
    std::fill(_sigs.begin(), _sigs.end(), TagSig(0));
    std::fill(_valid.begin(), _valid.end(), 0u);
    std::fill(_dirty.begin(), _dirty.end(), 0u);
    std::fill(_presence.begin(), _presence.end(), std::uint8_t(0));
    std::fill(_lru.begin(), _lru.end(), std::uint64_t(0));
    _tick = 0;
}

} // namespace mem
} // namespace stack3d
