#include "cache.hh"

#include "common/logging.hh"

namespace stack3d {
namespace mem {

Cache::Cache(const CacheParams &params, std::string name)
    : _params(params), _name(std::move(name))
{
    if (params.size_bytes == 0 || params.assoc == 0)
        stack3d_fatal("cache '", _name, "' has zero size or assoc");
    if (!units::isPowerOfTwo(params.line_bytes))
        stack3d_fatal("cache '", _name, "' line size not a power of two");
    _num_sets =
        params.size_bytes / (std::uint64_t(params.line_bytes) *
                             params.assoc);
    if (_num_sets == 0 || !units::isPowerOfTwo(_num_sets)) {
        stack3d_fatal("cache '", _name, "': ", _num_sets,
                      " sets (must be a non-zero power of two; adjust "
                      "associativity)");
    }
    _line_shift = units::floorLog2(params.line_bytes);
    _lines.resize(_num_sets * params.assoc);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> _line_shift) & (_num_sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> _line_shift;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &_lines[set * _params.assoc];
    for (unsigned w = 0; w < _params.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheAccessResult
Cache::access(Addr addr, bool is_store)
{
    CacheAccessResult res;
    ++_tick;

    if (Line *line = findLine(addr)) {
        ++_ctr.hits;
        res.hit = true;
        line->lru = _tick;
        if (is_store)
            line->dirty = true;
        return res;
    }

    ++_ctr.misses;

    // Choose a victim: invalid way if any, else LRU.
    std::uint64_t set = setIndex(addr);
    Line *base = &_lines[set * _params.assoc];
    Line *victim = &base[0];
    for (unsigned w = 0; w < _params.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }

    if (victim->valid) {
        ++_ctr.evictions;
        res.evicted = true;
        res.victim_addr = victim->tag << _line_shift;
        res.victim_presence = victim->presence;
        if (victim->dirty) {
            ++_ctr.writebacks;
            res.writeback = true;
        }
    }

    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = is_store;
    victim->presence = 0;
    victim->lru = _tick;
    return res;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        ++_ctr.invalidations;
        bool was_dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        line->presence = 0;
        return was_dirty;
    }
    return false;
}

void
Cache::setPresence(Addr addr, unsigned cpu)
{
    stack3d_assert(cpu < 8, "presence bitmap supports 8 cpus");
    if (Line *line = findLine(addr))
        line->presence |= std::uint8_t(1u << cpu);
}

void
Cache::clearPresence(Addr addr, unsigned cpu)
{
    stack3d_assert(cpu < 8, "presence bitmap supports 8 cpus");
    if (Line *line = findLine(addr))
        line->presence &= std::uint8_t(~(1u << cpu));
}

std::uint8_t
Cache::presence(Addr addr) const
{
    const Line *line = findLine(addr);
    return line ? line->presence : 0;
}

bool
Cache::markDirty(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->dirty = true;
        return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : _lines)
        line = Line{};
    _tick = 0;
}

} // namespace mem
} // namespace stack3d
