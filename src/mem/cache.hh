/**
 * @file
 * Set-associative SRAM cache state model (tags only — the simulator
 * tracks presence, dirtiness and recency, not data). Write-back,
 * write-allocate, true-LRU replacement. The line state carries a
 * per-cpu presence bitmap so a shared L2 instance can double as the
 * coherence directory for the private L1s above it.
 *
 * Line metadata is stored structure-of-arrays: contiguous per-set
 * tag and 16-bit signature arrays plus per-set valid/dirty bitmasks,
 * so a lookup is a vector signature probe (mem/tagsearch.hh) instead
 * of a pointer-striding scan over fat line structs. Replacement,
 * counter and coherence semantics are bit-identical to the previous
 * AoS implementation (first invalid way, else first strict-minimum
 * LRU).
 *
 * The model is purely functional: timing is composed by
 * MemoryHierarchy from the latencies in the params structs.
 */

#ifndef STACK3D_MEM_CACHE_HH
#define STACK3D_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "mem/params.hh"
#include "mem/tagsearch.hh"

namespace stack3d {
namespace mem {

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool evicted = false;
    /** The evicted line was dirty (needs writeback). */
    bool writeback = false;
    /** Line-aligned address of the evicted line (if evicted). */
    Addr victim_addr = 0;
    /** Presence bitmap of the evicted line (for L1 back-invalidate). */
    std::uint8_t victim_presence = 0;
};

/** Running counters for a cache instance. */
struct CacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidations = 0;
    /** Demand lookups issued by access(). */
    std::uint64_t tag_probes = 0;
    /** Demand lookups that hit via the SWAR/SIMD signature path. */
    std::uint64_t swar_hits = 0;

    double
    missRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? double(misses) / double(total) : 0.0;
    }
};

/** A set-associative, write-back, true-LRU cache tag array. */
class Cache
{
  public:
    Cache(const CacheParams &params, std::string name);

    const std::string &name() const { return _name; }
    const CacheParams &params() const { return _params; }
    const CacheCounters &counters() const { return _ctr; }

    /**
     * Look up @p addr, allocating the line on a miss (write-allocate
     * for both loads and stores). Stores mark the line dirty.
     */
    CacheAccessResult access(Addr addr, bool is_store);

    /** Look up without any state change. */
    bool probe(Addr addr) const;

    /**
     * Invalidate the line holding @p addr if present.
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr addr);

    /** Presence bitmap accessors (used when this cache is a shared
     *  L2 acting as the L1 directory). No-ops / 0 if line absent. */
    void setPresence(Addr addr, unsigned cpu);
    void clearPresence(Addr addr, unsigned cpu);
    std::uint8_t presence(Addr addr) const;

    /** Mark the line holding @p addr dirty if present (L1 victim
     *  written back into this cache). @return true if present. */
    bool markDirty(Addr addr);

    /** Drop all lines and reset recency (counters are kept). */
    void flush();

    std::uint64_t numSets() const { return _num_sets; }

  private:
    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /** Way holding @p tag in @p set, or -1. */
    int findWayIn(std::uint64_t set, Addr tag) const;

    /** Flat way index of @p addr's line, or -1 if absent. */
    std::int64_t findLine(Addr addr) const;

    CacheParams _params;
    std::string _name;
    std::uint64_t _num_sets;
    unsigned _line_shift;
    unsigned _sig_stride;
    /** Probe implementation, resolved once at construction (the
     *  env-var lookup and dispatch switch stay off the hit path). */
    TagSearchMode _mode;
    /** 1 when _mode is a vector mode: makes the swar_hits counter
     *  update branch-free in access(). */
    std::uint64_t _vector_hit_inc;

    // SoA line metadata, set-major. _valid/_dirty are per-set way
    // bitmasks (assoc <= 32); _sigs is padded to _sig_stride lanes
    // per set for the vector probes.
    std::vector<Addr> _tags;             // num_sets * assoc
    std::vector<TagSig> _sigs;           // num_sets * _sig_stride
    std::vector<std::uint32_t> _valid;   // num_sets
    std::vector<std::uint32_t> _dirty;   // num_sets
    std::vector<std::uint8_t> _presence; // num_sets * assoc
    std::vector<std::uint64_t> _lru;     // num_sets * assoc

    std::uint64_t _tick = 0;    // LRU clock
    CacheCounters _ctr;
};

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_CACHE_HH
