/**
 * @file
 * Configuration structures for the memory-hierarchy simulator,
 * mirroring Table 3 of the paper and the four stacking options of
 * Figure 7.
 */

#ifndef STACK3D_MEM_PARAMS_HH
#define STACK3D_MEM_PARAMS_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace stack3d {
namespace mem {

/** Parameters of a conventional SRAM cache. */
struct CacheParams
{
    std::uint64_t size_bytes = 0;
    std::uint32_t line_bytes = 64;
    std::uint32_t assoc = 8;
    Cycles latency = 4;

    std::uint64_t
    numSets() const
    {
        return size_bytes / (std::uint64_t(line_bytes) * assoc);
    }
};

/** DRAM bank timing (Table 3, in CPU cycles). */
struct DramTiming
{
    Cycles page_open = 50;   ///< RAS: activate a page
    Cycles precharge = 54;   ///< close the open page
    Cycles read = 50;        ///< CAS: column access latency
    /**
     * Bank data-burst occupancy per column access. CAS is a
     * *latency*; back-to-back column reads to an open page pipeline
     * at the burst rate, so a 64 B transfer holds the bank far
     * shorter than the CAS latency.
     */
    Cycles burst = 8;

    /**
     * Idle auto-precharge: a bank idle longer than this has closed
     * its page in the background, so the next access to a different
     * page pays activate+CAS instead of precharge+activate+CAS.
     * Standard DRAM-controller policy; 0 disables.
     */
    Cycles idle_close = 24;

    /**
     * When true, activate/precharge add latency but do not hold the
     * bank (only the data burst does): each address-interleaved
     * "bank" is a cluster of small independent subarrays, so
     * back-to-back activations of different pages pipeline. This is
     * the stacked DRAM cache's organization (512 B pages = small,
     * fast subarrays designed for cache use); commodity DDR main
     * memory keeps the conventional tRC-style full occupancy.
     */
    bool pipelined_activate = false;
};

/** Parameters of the 3D-stacked DRAM cache (options c and d). */
struct DramCacheParams
{
    std::uint64_t size_bytes = 0;
    std::uint32_t page_bytes = 512;
    std::uint32_t sector_bytes = 64;
    std::uint32_t assoc = 8;          ///< page-granularity associativity
    std::uint32_t num_banks = 16;     ///< address-interleaved banks
    DramTiming timing;
    /** On-die tag array lookup latency (tags live on the CPU die). */
    Cycles tag_latency = 12;
    /** Die-to-die via crossing, each direction. */
    Cycles d2d_latency = 1;
};

/** Parameters of the off-die DDR main memory. */
struct MainMemoryParams
{
    std::uint32_t num_banks = 16;
    std::uint32_t page_bytes = 4096;
    DramTiming timing;
    /**
     * Fixed off-die overhead (controller, DDR interface, board
     * flight) added to each access so a page-hit read totals the
     * paper's 192-cycle main-memory latency.
     */
    Cycles fixed_overhead = 132;
};

/** Parameters of the off-die front-side bus. */
struct BusParams
{
    /** Peak bandwidth (Table 3: 16 GB/s). */
    double bandwidth_gbps = 16.0;
    /** Core clock used to convert GB/s to bytes/cycle (Core 2 era). */
    double core_freq_ghz = 2.4;
    /** Bus energy cost, used for the paper's 20 mW/Gb/s figure. */
    double mw_per_gbit = 20.0;

    double
    bytesPerCycle() const
    {
        return bandwidth_gbps / core_freq_ghz;
    }
};

/**
 * Hardware stream-prefetcher parameters (the baseline Core 2 class
 * processor prefetches detected streams into its caches; without
 * this, streaming workloads would expose the full LLC latency on
 * every line, which the product does not).
 */
struct PrefetcherParams
{
    bool enable = true;
    /** Tracked streams per core. */
    unsigned num_streams = 16;
    /** Lines fetched ahead once a stream is confirmed. */
    unsigned degree = 2;
    /** Consecutive next-line misses needed to confirm a stream. */
    unsigned train_threshold = 2;

    /**
     * Flow control: a prefetch is dropped when its target resource
     * (bus or DRAM bank) is already booked more than this many
     * cycles into the future. Must sit above the main-memory round
     * trip (~240 cycles), because a demand miss books the bus at its
     * data-return time; the margin beyond that is the allowed
     * speculative queueing. Prevents prefetch traffic from starving
     * demand misses.
     */
    Cycles max_backlog = 700;
};

/** Which last-level-cache organization is simulated (Figure 7). */
enum class StackOption
{
    Baseline4MB,   ///< (a) planar, 4 MB shared SRAM L2
    Sram12MB,      ///< (b) +8 MB stacked SRAM, 12 MB total L2
    Dram32MB,      ///< (c) 32 MB stacked DRAM L2, SRAM removed
    Dram64MB,      ///< (d) 64 MB stacked DRAM, tags in the 4 MB SRAM
};

/** Display name matching Figure 8's x-axis. */
const char *stackOptionName(StackOption opt);

/** LLC capacity in MB for Figure 5's x-axis groups. */
unsigned stackOptionCapacityMB(StackOption opt);

/** Full hierarchy configuration. */
struct HierarchyParams
{
    unsigned num_cpus = 2;

    CacheParams l1d{units::fromKiB(32), 64, 8, 4};
    CacheParams l1i{units::fromKiB(32), 64, 8, 4};

    StackOption stack = StackOption::Baseline4MB;

    /** SRAM L2 (options a and b). */
    CacheParams l2{units::fromMiB(4), 64, 16, 16};

    /** Stacked DRAM cache (options c and d). */
    DramCacheParams dram_cache;

    MainMemoryParams main_memory;
    BusParams bus;
    PrefetcherParams prefetcher;

    bool usesDramCache() const
    {
        return stack == StackOption::Dram32MB ||
               stack == StackOption::Dram64MB;
    }
};

/**
 * Build the Table 3 configuration for one of the Figure 7 stacking
 * options: (a) 4 MB SRAM 16 cyc; (b) 12 MB SRAM 24 cyc; (c) 32 MB
 * stacked DRAM with on-die tags; (d) 64 MB stacked DRAM with tags in
 * the former 4 MB SRAM.
 */
HierarchyParams makeHierarchyParams(StackOption opt);

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_PARAMS_HH
