#include "engine.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <vector>

#include "common/arena.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "exec/reduce.hh"
#include "obs/trace.hh"
#include "trace/columns.hh"

namespace stack3d {
namespace mem {

namespace {

constexpr Cycles kPending = std::numeric_limits<Cycles>::max();
constexpr std::uint32_t kNil = ~std::uint32_t(0);

struct Completion
{
    Cycles when;
    unsigned cpu;
    std::uint32_t rec = 0;

    bool
    operator>(const Completion &other) const
    {
        return when > other.when;
    }
};

using CompletionHeap =
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>>;

/** Field-wise sum of hierarchy counters (sharded merge). */
void
addHierCounters(HierarchyCounters &into, const HierarchyCounters &from)
{
    into.accesses += from.accesses;
    into.loads += from.loads;
    into.stores += from.stores;
    into.ifetches += from.ifetches;
    into.coherence_invalidations += from.coherence_invalidations;
    into.offdie_fill_bytes += from.offdie_fill_bytes;
    into.offdie_writeback_bytes += from.offdie_writeback_bytes;
    into.prefetches += from.prefetches;
    into.demand_l1d_misses += from.demand_l1d_misses;
}

} // anonymous namespace

EngineResult
TraceEngine::run(const trace::TraceBuffer &buf,
                 MemoryHierarchy &hier) const
{
    obs::Span span("mem.replay", "mem");

    EngineResult result;
    result.num_records = buf.size();
    if (buf.empty())
        return result;

    const unsigned num_cpus = hier.params().num_cpus;
    stack3d_assert(_params.window > 0 && _params.issue_width > 0,
                   "engine window/issue width must be positive");
    stack3d_assert(_params.warmup_fraction >= 0.0 &&
                       _params.warmup_fraction < 1.0,
                   "warmup fraction must be in [0, 1)");

    // Batched SoA decode, cached on the buffer: studies replay the
    // same trace once per stack option (and benchmarks once per
    // rep), so the decode and the per-cpu order index are built on
    // first replay and reused by every later one. The issue loop
    // below reads the narrow column arrays, not the 32-byte records.
    const trace::TraceColumns &cols = buf.columns();
    const std::uint64_t *addr_col = cols.addr();
    const std::uint64_t *dep_col = cols.dep();
    const std::uint8_t *cpu_col = cols.cpu();
    const trace::MemOp *op_col = cols.op();

    if (cols.numCpus() > num_cpus) {
        stack3d_fatal("trace references cpu ", cols.numCpus() - 1,
                      " but the hierarchy has ", num_cpus);
    }

    const std::size_t n = buf.size();
    const std::uint32_t window = _params.window;
    const bool honor_deps = _params.honor_dependencies;

    // All transient issue state lives in one arena: the completion
    // table and the linked-list issue windows. One backing
    // allocation, zero per-access churn.
    Arena arena;

    // Per-cpu program-order lists, prefix-bucketed into one array
    // (cached alongside the columns). Cpus past the trace's highest
    // id have zero records and an empty bucket.
    const std::uint32_t *order = cols.order();
    std::vector<std::uint64_t> cpu_count(num_cpus, 0);
    std::vector<std::uint64_t> order_base(num_cpus, 0);
    for (unsigned c = 0; c < num_cpus; ++c) {
        cpu_count[c] = cols.cpuCount(c);
        order_base[c] = cols.orderBase(c);
    }

    Cycles *completion = arena.allocate<Cycles>(n);
    std::fill(completion, completion + n, kPending);

    // Event-driven issue state. The reference engine re-scans its
    // whole window every cycle to re-evaluate each record's
    // readiness; here readiness is decided exactly once. A record
    // whose dependency has not completed is chained onto that
    // dependency's waiter list (an intrusive list over a fixed node
    // pool), and the chain is walked when the dependency retires.
    // Ready records sit in a per-cpu binary min-heap keyed by record
    // index, so popping the minimum is exactly "issue the first
    // ready record in program order" — the same record the reference
    // scan would pick. No per-cycle window walks remain.
    std::uint32_t *waiter_head = arena.allocate<std::uint32_t>(n);
    std::fill(waiter_head, waiter_head + n, kNil);
    std::uint32_t *node_rec =
        arena.allocate<std::uint32_t>(std::size_t(num_cpus) * window);
    std::uint32_t *node_next =
        arena.allocate<std::uint32_t>(std::size_t(num_cpus) * window);
    std::uint32_t *free_stack =
        arena.allocate<std::uint32_t>(std::size_t(num_cpus) * window);

    // The ready set per cpu is split by how records arrive in it.
    // Refills enter in strictly increasing record order, so a plain
    // ring FIFO keeps them sorted for free; only records woken from
    // a waiter chain (arbitrary order) need a real min-heap. Popping
    // the smaller of the two fronts is still exactly pop-min.
    std::uint32_t *ready_fifo =
        arena.allocate<std::uint32_t>(std::size_t(num_cpus) * window);
    std::uint32_t *ready_heap =
        arena.allocate<std::uint32_t>(std::size_t(num_cpus) * window);
    std::vector<std::uint32_t> fifo_head(num_cpus, 0);
    std::vector<std::uint32_t> fifo_tail(num_cpus, 0);
    std::vector<std::uint32_t> fifo_size(num_cpus, 0);
    std::vector<std::uint32_t> heap_size(num_cpus, 0);
    std::vector<std::uint32_t> free_top(num_cpus, window);
    std::vector<std::uint32_t> live(num_cpus, 0);
    std::vector<std::uint64_t> pos(num_cpus, 0);
    std::vector<unsigned> inflight(num_cpus, 0);
    for (unsigned c = 0; c < num_cpus; ++c) {
        // Free stacks hold pool-global node ids; a node is owned by
        // the cpu of the record chained through it.
        std::uint32_t *stack = free_stack + std::size_t(c) * window;
        for (std::uint32_t s = 0; s < window; ++s)
            stack[s] = std::uint32_t(c) * window + (window - 1 - s);
    }

    auto fifoPush = [&](unsigned c, std::uint32_t idx) {
        S3D_DCHECK(fifo_size[c] < window) << "ready fifo overflow";
        ready_fifo[std::size_t(c) * window + fifo_tail[c]] = idx;
        fifo_tail[c] = fifo_tail[c] + 1 == window ? 0 : fifo_tail[c] + 1;
        ++fifo_size[c];
    };
    auto heapPush = [&](unsigned c, std::uint32_t idx) {
        std::uint32_t *h = ready_heap + std::size_t(c) * window;
        std::uint32_t hole = heap_size[c]++;
        S3D_DCHECK(heap_size[c] <= window) << "ready heap overflow";
        while (hole > 0) {
            std::uint32_t parent = (hole - 1) >> 1;
            if (h[parent] <= idx)
                break;
            h[hole] = h[parent];
            hole = parent;
        }
        h[hole] = idx;
    };
    auto heapPop = [&](unsigned c) {
        std::uint32_t *h = ready_heap + std::size_t(c) * window;
        std::uint32_t top = h[0];
        std::uint32_t last = h[--heap_size[c]];
        std::uint32_t size = heap_size[c];
        std::uint32_t hole = 0;
        for (;;) {
            std::uint32_t l = 2 * hole + 1;
            if (l >= size)
                break;
            std::uint32_t r = l + 1;
            std::uint32_t m = (r < size && h[r] < h[l]) ? r : l;
            if (h[m] >= last)
                break;
            h[hole] = h[m];
            hole = m;
        }
        h[hole] = last;
        return top;
    };
    // Pop the smallest ready record index across both structures.
    auto readyPop = [&](unsigned c) {
        if (fifo_size[c] > 0) {
            std::uint32_t front =
                ready_fifo[std::size_t(c) * window + fifo_head[c]];
            if (heap_size[c] == 0 ||
                front < ready_heap[std::size_t(c) * window]) {
                fifo_head[c] =
                    fifo_head[c] + 1 == window ? 0 : fifo_head[c] + 1;
                --fifo_size[c];
                return front;
            }
        }
        return heapPop(c);
    };
    // Move every record waiting on @p rec to its cpu's ready heap
    // and recycle the chain nodes. Called when rec's completion time
    // has been reached, i.e. the waiters' readiness condition
    // (dep completed at-or-before now) just became true.
    auto wakeWaiters = [&](std::uint32_t rec) {
        std::uint32_t g = waiter_head[rec];
        waiter_head[rec] = kNil;
        while (g != kNil) {
            std::uint32_t nxt = node_next[g];
            std::uint32_t widx = node_rec[g];
            unsigned wc = cpu_col[widx];
            S3D_DCHECK(g / window == wc) << "node owner mismatch";
            heapPush(wc, widx);
            free_stack[std::size_t(wc) * window + free_top[wc]++] = g;
            g = nxt;
        }
    };

    // In-flight completions: a calendar ring of one-cycle buckets,
    // each an intrusive list threaded through cal_next[] by record
    // index, plus an occupancy bitmap so empty buckets cost one bit
    // scan instead of a probe each. Push and retire are O(1); a heap
    // here costs O(log inflight) per record and profiles as the
    // single hottest part of the loop. Completions farther out than
    // the ring (rare: deep DRAM/bus queueing) overflow into a side
    // list that is folded back in as the window advances. Retire
    // drains every entry <= now before any issue, so drain order
    // within a cycle is not observable.
    constexpr std::uint32_t kCalBuckets = 1024; // power of two
    constexpr std::uint32_t kCalMask = kCalBuckets - 1;
    constexpr std::uint32_t kCalWords = kCalBuckets / 64;
    std::uint32_t *cal_bucket = arena.allocate<std::uint32_t>(kCalBuckets);
    std::fill(cal_bucket, cal_bucket + kCalBuckets, kNil);
    std::uint32_t *cal_next = arena.allocate<std::uint32_t>(n);
    std::uint64_t *cal_occ = arena.allocate<std::uint64_t>(kCalWords);
    std::fill(cal_occ, cal_occ + kCalWords, 0);
    std::vector<Cycles> far_when; // beyond-the-ring overflow
    std::vector<std::uint32_t> far_rec;
    Cycles far_min = kPending;
    std::uint32_t pending_completions = 0;
    Cycles drained_to = 0; // buckets drained through drained_to - 1

    auto completionPush = [&](Cycles when, std::uint32_t rec) {
        // A zero-latency completion (when == now) has already had its
        // waiters woken at issue; clamping it to drained_to retires
        // it for window accounting on the next cycle, exactly when a
        // time-ordered queue would pop it.
        Cycles t = when < drained_to ? drained_to : when;
        ++pending_completions;
        if (t - drained_to < kCalBuckets) {
            std::uint32_t b = std::uint32_t(t) & kCalMask;
            cal_next[rec] = cal_bucket[b];
            cal_bucket[b] = rec;
            cal_occ[b >> 6] |= std::uint64_t(1) << (b & 63);
        } else {
            far_when.push_back(t);
            far_rec.push_back(rec);
            far_min = std::min(far_min, t);
        }
    };
    auto drainBucket = [&](std::uint32_t b) {
        std::uint32_t rec = cal_bucket[b];
        cal_bucket[b] = kNil;
        while (rec != kNil) {
            std::uint32_t nxt = cal_next[rec];
            --inflight[cpu_col[rec]];
            --pending_completions;
            wakeWaiters(rec);
            rec = nxt;
        }
    };
    // Fold overflow entries that now fit the ring back in. Called
    // whenever drained_to advances past a ring boundary.
    auto refillFromFar = [&] {
        if (far_min - drained_to >= kCalBuckets)
            return;
        Cycles new_min = kPending;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < far_when.size(); ++i) {
            if (far_when[i] - drained_to < kCalBuckets) {
                std::uint32_t b = std::uint32_t(far_when[i]) & kCalMask;
                cal_next[far_rec[i]] = cal_bucket[b];
                cal_bucket[b] = far_rec[i];
                cal_occ[b >> 6] |= std::uint64_t(1) << (b & 63);
            } else {
                new_min = std::min(new_min, far_when[i]);
                far_when[kept] = far_when[i];
                far_rec[kept] = far_rec[i];
                ++kept;
            }
        }
        far_when.resize(kept);
        far_rec.resize(kept);
        far_min = new_min;
    };
    // Retire every completion due at or before @p upto, walking the
    // occupancy bitmap word-wise so runs of empty buckets cost one
    // shift+test each.
    auto drainCal = [&](Cycles upto) {
        while (drained_to <= upto) {
            // One chunk never spans more than a full ring lap, so
            // each bucket in it is visited at most once.
            Cycles chunk_end =
                std::min(upto, drained_to + (kCalBuckets - 1));
            Cycles t = drained_to;
            while (t <= chunk_end) {
                std::uint32_t b = std::uint32_t(t) & kCalMask;
                std::uint32_t w = b >> 6;
                std::uint64_t bits = cal_occ[w] >> (b & 63);
                Cycles span = std::min<Cycles>(64 - (b & 63),
                                               chunk_end - t + 1);
                if (span < 64)
                    bits &= (std::uint64_t(1) << span) - 1;
                while (bits != 0) {
                    std::uint32_t bb =
                        b + std::uint32_t(std::countr_zero(bits));
                    cal_occ[w] &= ~(std::uint64_t(1) << (bb & 63));
                    drainBucket(bb);
                    bits &= bits - 1;
                }
                t += span;
            }
            drained_to = chunk_end + 1;
            refillFromFar();
        }
    };
    // First pending completion time after the current drain horizon,
    // for the fully-stalled time jump.
    auto nextEventTime = [&] {
        Cycles t = drained_to;
        const Cycles end = drained_to + kCalBuckets;
        while (t < end) {
            std::uint32_t b = std::uint32_t(t) & kCalMask;
            std::uint32_t w = b >> 6;
            std::uint64_t bits = cal_occ[w] >> (b & 63);
            Cycles span = std::min<Cycles>(64 - (b & 63), end - t);
            if (span < 64)
                bits &= (std::uint64_t(1) << span) - 1;
            if (bits != 0)
                return t + Cycles(std::countr_zero(bits));
            t += span;
        }
        return far_min;
    };

    Cycles now = 0;
    double latency_sum = 0.0;
    std::uint64_t lat_buckets[4] = {0, 0, 0, 0};

    const std::uint64_t warmup_records =
        std::uint64_t(double(n) * _params.warmup_fraction);
    std::uint64_t issued_total = 0;
    Cycles warmup_cycles = 0;
    std::uint64_t warmup_bus_bytes = 0;
    std::uint64_t measured_records = 0;

    // all-done == every record issued and every completion retired
    // (calendar entries and inflight counts are the same population).
    while (issued_total < n || pending_completions > 0) {
        // Retire completions due at or before the current cycle. A
        // retire frees window space and readies its waiters: this is
        // the first cycle with now >= their dependency's completion,
        // exactly when the reference scan would first issue them.
        drainCal(now);

        bool issued_any = false;
        for (unsigned c = 0; c < num_cpus; ++c) {
            // Refill the window in program order. Readiness is
            // decided here once: a record whose dependency has not
            // completed by now chains onto the dependency's waiter
            // list; everything else goes straight to the ready heap.
            std::uint32_t *stack = free_stack + std::size_t(c) * window;
            const std::uint64_t base = order_base[c];
            while (pos[c] < cpu_count[c] &&
                   live[c] + inflight[c] < window) {
                std::uint32_t idx = order[base + pos[c]++];
                ++live[c];
                std::uint64_t d =
                    honor_deps ? dep_col[idx] : trace::kNoDep;
                if (d != trace::kNoDep && completion[d] > now) {
                    // Covers both an unissued dependency (kPending)
                    // and one completing in the future; either way
                    // the chain is walked at the dependency's retire.
                    std::uint32_t g = stack[--free_top[c]];
                    node_rec[g] = idx;
                    node_next[g] = waiter_head[d];
                    waiter_head[d] = g;
                } else {
                    fifoPush(c, idx);
                }
            }
            S3D_DCHECK(pos[c] <= cpu_count[c])
                << "cpu=" << c << " pos=" << pos[c];
            S3D_DCHECK(live[c] + inflight[c] <= window)
                << "cpu=" << c << " window=" << live[c] << "+"
                << inflight[c];

            // Issue up to issue_width ready records, oldest first.
            unsigned issued = 0;
            while (issued < _params.issue_width &&
                   fifo_size[c] + heap_size[c] > 0) {
                const std::uint32_t idx = readyPop(c);
                // Each record issues exactly once, and a dependency
                // always points at an older record.
                S3D_DCHECK(completion[idx] == kPending)
                    << "record " << idx << " issued twice";
                S3D_DCHECK(dep_col[idx] == trace::kNoDep ||
                           dep_col[idx] < idx)
                    << "record " << idx << " depends on "
                    << dep_col[idx];
                Cycles done =
                    hier.access(c, addr_col[idx], op_col[idx], now);
                stack3d_assert(done >= now,
                               "hierarchy returned completion in past");
                completion[idx] = done;
                ++issued_total;
                if (issued_total == warmup_records) {
                    warmup_cycles = now;
                    warmup_bus_bytes = hier.bus().totalBytes();
                }
                if (issued_total > warmup_records) {
                    ++measured_records;
                    Cycles lat = done - now;
                    latency_sum += double(lat);
                    ++lat_buckets[lat <= 8 ? 0 : lat <= 32 ? 1
                                  : lat <= 128 ? 2 : 3];
                }
                completionPush(done, idx);
                ++inflight[c];
                --live[c];
                ++issued;
                issued_any = true;
                // Zero-latency corner: a completion at `now` is
                // already at-or-before the current cycle, and the
                // reference scan issues its dependents this same
                // cycle, so wake them immediately (the heap entry
                // still retires normally for window accounting).
                if (done == now)
                    wakeWaiters(idx);
            }
        }

        if (issued_total >= n && pending_completions == 0)
            break;

        // Advance time: by one cycle while issuing, or jump to the
        // next completion when fully stalled.
        if (issued_any || pending_completions == 0) {
            ++now;
        } else {
            now = std::max(now + 1, nextEventTime());
        }
    }

    result.total_cycles = now;
    if (measured_records == 0) {
        // Degenerate (all warm-up): fall back to whole-trace stats.
        warmup_cycles = 0;
        warmup_bus_bytes = 0;
        measured_records = n;
    }
    Cycles measured_cycles = now - warmup_cycles;
    result.cpma = double(measured_cycles) / double(measured_records);
    result.avg_latency = latency_sum / double(measured_records);
    {
        // Bandwidth and bus power over the measured region only.
        double seconds = double(measured_cycles) /
                         (hier.bus().params().core_freq_ghz * 1e9);
        std::uint64_t bytes =
            hier.bus().totalBytes() - warmup_bus_bytes;
        result.offdie_gbps =
            seconds > 0.0 ? double(bytes) / 1e9 / seconds : 0.0;
        result.bus_power_w = result.offdie_gbps * 8.0 *
                             hier.bus().params().mw_per_gbit * 1e-3;
    }
    result.hier = hier.counters();
    hier.appendCounters(result.counters, "", now);
    result.counters.set("engine.total_cycles", double(now));
    result.counters.set("engine.measured_records",
                        double(measured_records));
    result.counters.set("engine.warmup_cycles",
                        double(warmup_cycles));
    result.counters.set("replay.batches",
                        double(cols.decodeBatches()));
    result.counters.set("replay.shards", 1.0);
    for (unsigned b = 0; b < 4; ++b)
        result.latency_frac[b] =
            double(lat_buckets[b]) / double(measured_records);

    // Aggregate L1D and LLC miss rates for reporting.
    std::uint64_t l1_hits = 0, l1_misses = 0;
    for (unsigned c = 0; c < num_cpus; ++c) {
        l1_hits += hier.l1d(c).counters().hits;
        l1_misses += hier.l1d(c).counters().misses;
    }
    if (l1_hits + l1_misses > 0) {
        result.l1d_miss_rate =
            double(l1_misses) / double(l1_hits + l1_misses);
    }
    if (hier.l2()) {
        result.llc_miss_rate = hier.l2()->counters().missRate();
    } else if (hier.dramCache()) {
        result.llc_miss_rate = hier.dramCache()->counters().missRate();
    }
    return result;
}

EngineResult
TraceEngine::runReference(const trace::TraceBuffer &buf,
                          MemoryHierarchy &hier) const
{
    obs::Span span("mem.replay.ref", "mem");

    EngineResult result;
    result.num_records = buf.size();
    if (buf.empty())
        return result;

    unsigned num_cpus = hier.params().num_cpus;
    stack3d_assert(_params.window > 0 && _params.issue_width > 0,
                   "engine window/issue width must be positive");

    // Partition the trace into per-cpu program-order index lists.
    std::vector<std::vector<std::uint32_t>> order(num_cpus);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        unsigned cpu = buf[i].cpu;
        if (cpu >= num_cpus) {
            stack3d_fatal("trace references cpu ", cpu,
                          " but the hierarchy has ", num_cpus);
        }
        order[cpu].push_back(std::uint32_t(i));
    }

    std::vector<Cycles> completion(buf.size(), kPending);
    std::vector<std::size_t> pos(num_cpus, 0);
    std::vector<unsigned> inflight(num_cpus, 0);
    // The issue window: records fetched but not yet issued, kept in
    // program order. A dependency-stalled record does NOT block
    // younger independent records (the paper's engine issues any
    // access whose dependency has completed).
    std::vector<std::vector<std::uint32_t>> pending(num_cpus);
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> heap;

    Cycles now = 0;
    double latency_sum = 0.0;
    std::uint64_t lat_buckets[4] = {0, 0, 0, 0};

    // Warm-up bookkeeping: records with index below the cutoff are
    // simulated but excluded from the reported statistics.
    stack3d_assert(_params.warmup_fraction >= 0.0 &&
                       _params.warmup_fraction < 1.0,
                   "warmup fraction must be in [0, 1)");
    const std::uint64_t warmup_records =
        std::uint64_t(double(buf.size()) * _params.warmup_fraction);
    std::uint64_t issued_total = 0;
    Cycles warmup_cycles = 0;
    std::uint64_t warmup_bus_bytes = 0;
    std::uint64_t measured_records = 0;

    auto all_done = [&]() {
        for (unsigned c = 0; c < num_cpus; ++c) {
            if (pos[c] < order[c].size() || !pending[c].empty() ||
                inflight[c] > 0)
                return false;
        }
        return true;
    };

    while (!all_done()) {
        // Retire completions due at or before the current cycle.
        while (!heap.empty() && heap.top().when <= now) {
            --inflight[heap.top().cpu];
            heap.pop();
        }

        bool issued_any = false;
        for (unsigned c = 0; c < num_cpus; ++c) {
            // Refill the window in program order. The cursor is
            // monotone: it only ever advances, and never past the
            // end of the cpu's program-order list.
            while (pos[c] < order[c].size() &&
                   pending[c].size() + inflight[c] < _params.window) {
                pending[c].push_back(order[c][pos[c]++]);
            }
            S3D_DCHECK(pos[c] <= order[c].size())
                << "cpu=" << c << " pos=" << pos[c];
            S3D_DCHECK(pending[c].size() + inflight[c] <=
                       _params.window)
                << "cpu=" << c << " window=" << pending[c].size()
                << "+" << inflight[c];

            // Issue up to issue_width ready records, oldest first,
            // skipping dependency-stalled ones.
            unsigned issued = 0;
            auto &window = pending[c];
            std::size_t kept = 0;
            for (std::size_t k = 0; k < window.size(); ++k) {
                std::uint32_t idx = window[k];
                bool ready = issued < _params.issue_width;
                if (ready && _params.honor_dependencies &&
                    buf[idx].hasDep()) {
                    Cycles dep_done = completion[buf[idx].dep];
                    ready = dep_done != kPending && dep_done <= now;
                }
                if (!ready) {
                    window[kept++] = idx;
                    continue;
                }
                const trace::TraceRecord &rec = buf[idx];
                // Each record issues exactly once, and a dependency
                // always points at an older record.
                S3D_DCHECK(completion[idx] == kPending)
                    << "record " << idx << " issued twice";
                S3D_DCHECK(!rec.hasDep() || rec.dep < idx)
                    << "record " << idx << " depends on " << rec.dep;
                Cycles done = hier.access(c, rec.addr, rec.op, now);
                stack3d_assert(done >= now,
                               "hierarchy returned completion in past");
                completion[idx] = done;
                ++issued_total;
                if (issued_total == warmup_records) {
                    warmup_cycles = now;
                    warmup_bus_bytes = hier.bus().totalBytes();
                }
                if (issued_total > warmup_records) {
                    ++measured_records;
                    Cycles lat = done - now;
                    latency_sum += double(lat);
                    ++lat_buckets[lat <= 8 ? 0 : lat <= 32 ? 1
                                  : lat <= 128 ? 2 : 3];
                }
                heap.push({done, c});
                ++inflight[c];
                ++issued;
                issued_any = true;
            }
            S3D_DCHECK(kept <= window.size());
            window.resize(kept);
        }

        if (all_done())
            break;

        // Advance time: by one cycle while issuing, or jump to the
        // next completion when fully stalled.
        if (issued_any || heap.empty()) {
            ++now;
        } else {
            now = std::max(now + 1, heap.top().when);
        }
    }

    result.total_cycles = now;
    if (measured_records == 0) {
        // Degenerate (all warm-up): fall back to whole-trace stats.
        warmup_cycles = 0;
        warmup_bus_bytes = 0;
        measured_records = buf.size();
    }
    Cycles measured_cycles = now - warmup_cycles;
    result.cpma = double(measured_cycles) / double(measured_records);
    result.avg_latency = latency_sum / double(measured_records);
    {
        // Bandwidth and bus power over the measured region only.
        double seconds = double(measured_cycles) /
                         (hier.bus().params().core_freq_ghz * 1e9);
        std::uint64_t bytes =
            hier.bus().totalBytes() - warmup_bus_bytes;
        result.offdie_gbps =
            seconds > 0.0 ? double(bytes) / 1e9 / seconds : 0.0;
        result.bus_power_w = result.offdie_gbps * 8.0 *
                             hier.bus().params().mw_per_gbit * 1e-3;
    }
    result.hier = hier.counters();
    hier.appendCounters(result.counters, "", now);
    result.counters.set("engine.total_cycles", double(now));
    result.counters.set("engine.measured_records",
                        double(measured_records));
    result.counters.set("engine.warmup_cycles",
                        double(warmup_cycles));
    for (unsigned b = 0; b < 4; ++b)
        result.latency_frac[b] =
            double(lat_buckets[b]) / double(measured_records);

    // Aggregate L1D and LLC miss rates for reporting.
    std::uint64_t l1_hits = 0, l1_misses = 0;
    for (unsigned c = 0; c < num_cpus; ++c) {
        l1_hits += hier.l1d(c).counters().hits;
        l1_misses += hier.l1d(c).counters().misses;
    }
    if (l1_hits + l1_misses > 0) {
        result.l1d_miss_rate =
            double(l1_misses) / double(l1_hits + l1_misses);
    }
    if (hier.l2()) {
        result.llc_miss_rate = hier.l2()->counters().missRate();
    } else if (hier.dramCache()) {
        result.llc_miss_rate = hier.dramCache()->counters().missRate();
    }
    return result;
}

ShardedReplayResult
TraceEngine::runSharded(const trace::TraceBuffer &buf,
                        const HierarchyParams &hparams,
                        unsigned num_shards,
                        exec::ThreadPool *pool) const
{
    obs::Span span("mem.replay.sharded", "mem");
    stack3d_assert(num_shards >= 1, "need at least one shard");

    ShardedReplayResult out;

    // Stripe records over shards by line address, so each shard owns
    // a disjoint slice of every cache's sets and of the DRAM banks.
    // Dependencies are remapped to shard-local indices; a dependency
    // whose producer landed in another shard is dropped and counted.
    const unsigned line_shift =
        units::floorLog2(hparams.l1d.line_bytes);
    const std::size_t n = buf.size();
    std::vector<std::vector<trace::TraceRecord>> shard_recs(num_shards);
    std::vector<std::uint64_t> local_index(n, 0);
    std::vector<std::uint8_t> shard_of(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        trace::TraceRecord rec = buf[i];
        unsigned s =
            unsigned((rec.addr >> line_shift) % num_shards);
        shard_of[i] = std::uint8_t(s);
        if (rec.hasDep()) {
            if (shard_of[rec.dep] == s) {
                rec.dep = local_index[rec.dep];
            } else {
                rec.dep = trace::kNoDep;
                ++out.cross_shard_deps;
            }
        }
        local_index[i] = shard_recs[s].size();
        shard_recs[s].push_back(rec);
    }

    // Replay every shard against its own hierarchy clone. Shards
    // share no state, so the fan-out is embarrassingly parallel; the
    // harvest below is in shard-index order regardless of the
    // execution schedule, which is what makes N-thread output
    // bit-identical to the serial run of the same decomposition.
    out.shards.resize(num_shards);
    exec::parallelSlabs(pool, num_shards, [&](std::size_t s) {
        trace::TraceBuffer shard_buf(std::move(shard_recs[s]));
        MemoryHierarchy shard_hier(hparams);
        out.shards[s] = run(shard_buf, shard_hier);
    });

    // Deterministic merge, shard-index order. Extensive counters
    // (records, cycles-weighted rates, traffic) sum; intensive ones
    // (cpma, latency) are measured-record-weighted means; the run
    // length is the slowest shard (shards model parallel banks).
    EngineResult &m = out.merged;
    double weight_sum = 0.0;
    double cpma_sum = 0.0, lat_sum = 0.0;
    double l1_sum = 0.0, llc_sum = 0.0;
    double frac_sum[4] = {0.0, 0.0, 0.0, 0.0};
    double batches = 0.0;
    for (unsigned s = 0; s < num_shards; ++s) {
        const EngineResult &r = out.shards[s];
        m.num_records += r.num_records;
        m.total_cycles = std::max(m.total_cycles, r.total_cycles);
        m.offdie_gbps += r.offdie_gbps;
        m.bus_power_w += r.bus_power_w;
        addHierCounters(m.hier, r.hier);
        double w = r.counters.value("engine.measured_records");
        weight_sum += w;
        cpma_sum += w * r.cpma;
        lat_sum += w * r.avg_latency;
        l1_sum += w * r.l1d_miss_rate;
        llc_sum += w * r.llc_miss_rate;
        for (unsigned b = 0; b < 4; ++b)
            frac_sum[b] += w * r.latency_frac[b];
        batches += r.counters.value("replay.batches");
        m.counters.accumulate(r.counters);
    }
    if (weight_sum > 0.0) {
        m.cpma = cpma_sum / weight_sum;
        m.avg_latency = lat_sum / weight_sum;
        m.l1d_miss_rate = l1_sum / weight_sum;
        m.llc_miss_rate = llc_sum / weight_sum;
        for (unsigned b = 0; b < 4; ++b)
            m.latency_frac[b] = frac_sum[b] / weight_sum;
    }
    m.counters.set("engine.total_cycles", double(m.total_cycles));
    m.counters.set("replay.batches", batches);
    m.counters.set("replay.shards", double(num_shards));
    m.counters.set("replay.cross_shard_deps",
                   double(out.cross_shard_deps));
    return out;
}

} // namespace mem
} // namespace stack3d
