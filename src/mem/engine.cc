#include "engine.hh"

#include <limits>
#include <queue>
#include <vector>

#include "common/check.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace mem {

namespace {

constexpr Cycles kPending = std::numeric_limits<Cycles>::max();

struct Completion
{
    Cycles when;
    unsigned cpu;

    bool
    operator>(const Completion &other) const
    {
        return when > other.when;
    }
};

} // anonymous namespace

EngineResult
TraceEngine::run(const trace::TraceBuffer &buf, MemoryHierarchy &hier) const
{
    obs::Span span("mem.replay", "mem");

    EngineResult result;
    result.num_records = buf.size();
    if (buf.empty())
        return result;

    unsigned num_cpus = hier.params().num_cpus;
    stack3d_assert(_params.window > 0 && _params.issue_width > 0,
                   "engine window/issue width must be positive");

    // Partition the trace into per-cpu program-order index lists.
    std::vector<std::vector<std::uint32_t>> order(num_cpus);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        unsigned cpu = buf[i].cpu;
        if (cpu >= num_cpus) {
            stack3d_fatal("trace references cpu ", cpu,
                          " but the hierarchy has ", num_cpus);
        }
        order[cpu].push_back(std::uint32_t(i));
    }

    std::vector<Cycles> completion(buf.size(), kPending);
    std::vector<std::size_t> pos(num_cpus, 0);
    std::vector<unsigned> inflight(num_cpus, 0);
    // The issue window: records fetched but not yet issued, kept in
    // program order. A dependency-stalled record does NOT block
    // younger independent records (the paper's engine issues any
    // access whose dependency has completed).
    std::vector<std::vector<std::uint32_t>> pending(num_cpus);
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> heap;

    Cycles now = 0;
    double latency_sum = 0.0;
    std::uint64_t lat_buckets[4] = {0, 0, 0, 0};

    // Warm-up bookkeeping: records with index below the cutoff are
    // simulated but excluded from the reported statistics.
    stack3d_assert(_params.warmup_fraction >= 0.0 &&
                       _params.warmup_fraction < 1.0,
                   "warmup fraction must be in [0, 1)");
    const std::uint64_t warmup_records =
        std::uint64_t(double(buf.size()) * _params.warmup_fraction);
    std::uint64_t issued_total = 0;
    Cycles warmup_cycles = 0;
    std::uint64_t warmup_bus_bytes = 0;
    std::uint64_t measured_records = 0;

    auto all_done = [&]() {
        for (unsigned c = 0; c < num_cpus; ++c) {
            if (pos[c] < order[c].size() || !pending[c].empty() ||
                inflight[c] > 0)
                return false;
        }
        return true;
    };

    while (!all_done()) {
        // Retire completions due at or before the current cycle.
        while (!heap.empty() && heap.top().when <= now) {
            --inflight[heap.top().cpu];
            heap.pop();
        }

        bool issued_any = false;
        for (unsigned c = 0; c < num_cpus; ++c) {
            // Refill the window in program order. The cursor is
            // monotone: it only ever advances, and never past the
            // end of the cpu's program-order list.
            while (pos[c] < order[c].size() &&
                   pending[c].size() + inflight[c] < _params.window) {
                pending[c].push_back(order[c][pos[c]++]);
            }
            S3D_DCHECK(pos[c] <= order[c].size())
                << "cpu=" << c << " pos=" << pos[c];
            S3D_DCHECK(pending[c].size() + inflight[c] <=
                       _params.window)
                << "cpu=" << c << " window=" << pending[c].size()
                << "+" << inflight[c];

            // Issue up to issue_width ready records, oldest first,
            // skipping dependency-stalled ones.
            unsigned issued = 0;
            auto &window = pending[c];
            std::size_t kept = 0;
            for (std::size_t k = 0; k < window.size(); ++k) {
                std::uint32_t idx = window[k];
                bool ready = issued < _params.issue_width;
                if (ready && _params.honor_dependencies &&
                    buf[idx].hasDep()) {
                    Cycles dep_done = completion[buf[idx].dep];
                    ready = dep_done != kPending && dep_done <= now;
                }
                if (!ready) {
                    window[kept++] = idx;
                    continue;
                }
                const trace::TraceRecord &rec = buf[idx];
                // Each record issues exactly once, and a dependency
                // always points at an older record.
                S3D_DCHECK(completion[idx] == kPending)
                    << "record " << idx << " issued twice";
                S3D_DCHECK(!rec.hasDep() || rec.dep < idx)
                    << "record " << idx << " depends on " << rec.dep;
                Cycles done = hier.access(c, rec.addr, rec.op, now);
                stack3d_assert(done >= now,
                               "hierarchy returned completion in past");
                completion[idx] = done;
                ++issued_total;
                if (issued_total == warmup_records) {
                    warmup_cycles = now;
                    warmup_bus_bytes = hier.bus().totalBytes();
                }
                if (issued_total > warmup_records) {
                    ++measured_records;
                    Cycles lat = done - now;
                    latency_sum += double(lat);
                    ++lat_buckets[lat <= 8 ? 0 : lat <= 32 ? 1
                                  : lat <= 128 ? 2 : 3];
                }
                heap.push({done, c});
                ++inflight[c];
                ++issued;
                issued_any = true;
            }
            S3D_DCHECK(kept <= window.size());
            window.resize(kept);
        }

        if (all_done())
            break;

        // Advance time: by one cycle while issuing, or jump to the
        // next completion when fully stalled.
        if (issued_any || heap.empty()) {
            ++now;
        } else {
            now = std::max(now + 1, heap.top().when);
        }
    }

    result.total_cycles = now;
    if (measured_records == 0) {
        // Degenerate (all warm-up): fall back to whole-trace stats.
        warmup_cycles = 0;
        warmup_bus_bytes = 0;
        measured_records = buf.size();
    }
    Cycles measured_cycles = now - warmup_cycles;
    result.cpma = double(measured_cycles) / double(measured_records);
    result.avg_latency = latency_sum / double(measured_records);
    {
        // Bandwidth and bus power over the measured region only.
        double seconds = double(measured_cycles) /
                         (hier.bus().params().core_freq_ghz * 1e9);
        std::uint64_t bytes =
            hier.bus().totalBytes() - warmup_bus_bytes;
        result.offdie_gbps =
            seconds > 0.0 ? double(bytes) / 1e9 / seconds : 0.0;
        result.bus_power_w = result.offdie_gbps * 8.0 *
                             hier.bus().params().mw_per_gbit * 1e-3;
    }
    result.hier = hier.counters();
    hier.appendCounters(result.counters, "", now);
    result.counters.set("engine.total_cycles", double(now));
    result.counters.set("engine.measured_records",
                        double(measured_records));
    result.counters.set("engine.warmup_cycles",
                        double(warmup_cycles));
    for (unsigned b = 0; b < 4; ++b)
        result.latency_frac[b] =
            double(lat_buckets[b]) / double(measured_records);

    // Aggregate L1D and LLC miss rates for reporting.
    std::uint64_t l1_hits = 0, l1_misses = 0;
    for (unsigned c = 0; c < num_cpus; ++c) {
        l1_hits += hier.l1d(c).counters().hits;
        l1_misses += hier.l1d(c).counters().misses;
    }
    if (l1_hits + l1_misses > 0) {
        result.l1d_miss_rate =
            double(l1_misses) / double(l1_hits + l1_misses);
    }
    if (hier.l2()) {
        result.llc_miss_rate = hier.l2()->counters().missRate();
    } else if (hier.dramCache()) {
        result.llc_miss_rate = hier.dramCache()->counters().missRate();
    }
    return result;
}

} // namespace mem
} // namespace stack3d
