#include "hierarchy.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"

namespace stack3d {
namespace mem {

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : _params(params), _bus(params.bus), _main_memory(params.main_memory)
{
    if (params.num_cpus == 0 || params.num_cpus > 8)
        stack3d_fatal("hierarchy supports 1-8 cpus, got ",
                      params.num_cpus);

    for (unsigned c = 0; c < params.num_cpus; ++c) {
        _l1d.push_back(std::make_unique<Cache>(
            params.l1d, "l1d" + std::to_string(c)));
        _l1i.push_back(std::make_unique<Cache>(
            params.l1i, "l1i" + std::to_string(c)));
    }

    if (params.prefetcher.num_streams > 32)
        stack3d_fatal("prefetcher num_streams ",
                      params.prefetcher.num_streams,
                      " exceeds the 32-stream validity bitmask");
    _tag_mode = tagSearchMode();
    _streams.resize(params.num_cpus);
    for (auto &table : _streams)
        table.resize(params.prefetcher.num_streams);
    _stream_next.resize(params.num_cpus);
    _stream_sigs.resize(params.num_cpus);
    _stream_valid.assign(params.num_cpus, 0);
    for (unsigned c = 0; c < params.num_cpus; ++c) {
        _stream_next[c].assign(params.prefetcher.num_streams, 0);
        _stream_sigs[c].assign(sigStride(params.prefetcher.num_streams),
                               0);
    }

    if (_params.usesDramCache()) {
        _dram_cache = std::make_unique<DramCacheArray>(
            params.dram_cache, "dram_cache");
        _dram_banks = std::make_unique<DramBankEngine>(
            params.dram_cache.num_banks, params.dram_cache.page_bytes,
            params.dram_cache.timing, "dram_cache_banks");
    } else {
        _l2 = std::make_unique<Cache>(params.l2, "l2");
    }
}

Addr
MemoryHierarchy::lineAddr(Addr addr) const
{
    return addr & ~Addr(_params.l1d.line_bytes - 1);
}

Cycles
MemoryHierarchy::access(unsigned cpu, Addr addr, trace::MemOp op,
                        Cycles start)
{
    stack3d_assert(cpu < _params.num_cpus, "cpu index out of range");
    ++_ctr.accesses;
    bool is_store = false;
    Cache *l1 = nullptr;
    switch (op) {
      case trace::MemOp::Load:
        ++_ctr.loads;
        l1 = _l1d[cpu].get();
        break;
      case trace::MemOp::Store:
        ++_ctr.stores;
        is_store = true;
        l1 = _l1d[cpu].get();
        break;
      case trace::MemOp::Ifetch:
        ++_ctr.ifetches;
        l1 = _l1i[cpu].get();
        break;
    }

    Addr line = lineAddr(addr);
    Cycles t_l1 = start + l1->params().latency;
    CacheAccessResult res = l1->access(line, is_store);

    if (is_store)
        coherenceOnStore(cpu, line);
    if (res.evicted)
        handleL1Victim(cpu, res, t_l1);
    if (_params.prefetcher.enable && op != trace::MemOp::Ifetch)
        trainPrefetcher(cpu, line, t_l1, res.hit);
    if (res.hit)
        return t_l1;

    if (op != trace::MemOp::Ifetch)
        ++_ctr.demand_l1d_misses;
    return llcAccess(cpu, line, is_store, t_l1,
                     /*speculative=*/false);
}

void
MemoryHierarchy::trainPrefetcher(unsigned cpu, Addr line, Cycles when,
                                 bool was_hit)
{
    const PrefetcherParams &pp = _params.prefetcher;
    auto &table = _streams[cpu];
    Addr *next_lines = _stream_next[cpu].data();
    TagSig *sigs = _stream_sigs[cpu].data();
    ++_stream_clock;
    auto line_bytes = std::int64_t(_params.l1d.line_bytes);

    // Streams advance on any demand access that reaches their
    // expected next line (hits on previously prefetched lines keep
    // the stream alive and pull the window forward). The match — the
    // first valid stream expecting exactly this line — is the same
    // first-match search the cache tag arrays do, over the mirrored
    // next_line column, so it vectorizes with the same primitives;
    // the common no-match case rejects on signatures alone.
    int w;
    switch (_tag_mode) {
      case TagSearchMode::Scalar:
        w = findWayScalar(next_lines, _stream_valid[cpu],
                          pp.num_streams, line);
        break;
      case TagSearchMode::Swar:
        w = findWaySwar(sigs, next_lines, _stream_valid[cpu],
                        pp.num_streams, line);
        break;
      default:
        w = findWaySimd(sigs, next_lines, _stream_valid[cpu],
                        pp.num_streams, line);
        break;
    }
    if (w >= 0) {
        StreamEntry &entry = table[unsigned(w)];
        entry.last_use = _stream_clock;
        entry.next_line =
            Addr(std::int64_t(line) + entry.stride * line_bytes);
        next_lines[w] = entry.next_line;
        sigs[w] = sigOf(entry.next_line);
        if (entry.confidence < pp.train_threshold) {
            ++entry.confidence;
            return;
        }
        if (entry.confidence == pp.train_threshold) {
            // Just confirmed: establish the full lookahead window.
            ++entry.confidence;
            Addr pf = entry.next_line;
            for (unsigned d = 0; d < pp.degree; ++d) {
                prefetchLine(cpu, pf, when);
                pf = Addr(std::int64_t(pf) + entry.stride * line_bytes);
            }
        } else {
            // Steady state: one line per demand keeps the window
            // `degree` lines deep.
            Addr pf = Addr(std::int64_t(line) +
                           entry.stride * line_bytes *
                               std::int64_t(pp.degree));
            prefetchLine(cpu, pf, when);
        }
        return;
    }

    // New streams are allocated on demand misses only.
    if (was_hit)
        return;

    unsigned victim = 0;
    for (unsigned s = 0; s < pp.num_streams; ++s) {
        if (!table[s].valid) {
            victim = s;
            break;
        }
        if (table[s].last_use < table[victim].last_use)
            victim = s;
    }
    StreamEntry &lru = table[victim];
    lru.valid = true;
    lru.stride = 1;
    lru.confidence = 0;
    lru.last_use = _stream_clock;
    lru.next_line = line + Addr(line_bytes);
    next_lines[victim] = lru.next_line;
    sigs[victim] = sigOf(lru.next_line);
    _stream_valid[cpu] |= std::uint32_t(1u) << victim;
}

void
MemoryHierarchy::prefetchLine(unsigned cpu, Addr line, Cycles when)
{
    if (_l1d[cpu]->probe(line))
        return;

    // Flow control: skip the prefetch when the resource it would
    // occupy is already booked far into the future; demand misses
    // must not starve behind speculative traffic.
    Cycles horizon = when + _params.prefetcher.max_backlog;
    bool llc_hit = _l2 ? _l2->probe(line)
                       : (_dram_cache && _dram_cache->probe(line));
    if (llc_hit) {
        if (_dram_banks && _dram_banks->busyUntil(line) > horizon)
            return;
    } else {
        if (_bus.nextFree() > horizon)
            return;
    }

    ++_ctr.prefetches;
    // Fill through the normal LLC path (reserving bus/bank time) and
    // install in the L1; completion time is discarded — prefetches
    // are off the critical path.
    llcAccess(cpu, line, /*is_store=*/false, when, /*speculative=*/true);
    CacheAccessResult res = _l1d[cpu]->access(line, /*is_store=*/false);
    if (res.evicted)
        handleL1Victim(cpu, res, when);
}

void
MemoryHierarchy::coherenceOnStore(unsigned cpu, Addr line)
{
    if (_params.num_cpus < 2)
        return;
    for (unsigned other = 0; other < _params.num_cpus; ++other) {
        if (other == cpu)
            continue;
        if (_l1d[other]->probe(line)) {
            bool was_dirty = _l1d[other]->invalidate(line);
            ++_ctr.coherence_invalidations;
            if (was_dirty) {
                // The remote dirty copy drains into the LLC.
                if (_l2) {
                    _l2->markDirty(line);
                } else if (_dram_cache &&
                           !_dram_cache->markSectorDirty(line)) {
                    _ctr.offdie_writeback_bytes +=
                        _params.l1d.line_bytes;
                }
            }
        }
    }
}

void
MemoryHierarchy::handleL1Victim(unsigned cpu, const CacheAccessResult &res,
                                Cycles when)
{
    (void)cpu;
    if (!res.writeback)
        return;
    // Dirty L1 victim drains into the LLC; inclusion normally
    // guarantees the line is there. If it is not (evicted between the
    // fill and this eviction), the data goes straight off die.
    if (_l2) {
        if (!_l2->markDirty(res.victim_addr)) {
            _bus.transfer(_params.l1d.line_bytes, when,
                          /*speculative=*/true);
            _main_memory.write(res.victim_addr, when);
            _ctr.offdie_writeback_bytes += _params.l1d.line_bytes;
        }
    } else if (_dram_cache) {
        if (!_dram_cache->markSectorDirty(res.victim_addr)) {
            _bus.transfer(_params.l1d.line_bytes, when,
                          /*speculative=*/true);
            _main_memory.write(res.victim_addr, when);
            _ctr.offdie_writeback_bytes += _params.l1d.line_bytes;
        }
    }
}

void
MemoryHierarchy::backInvalidateL1s(Addr line_addr)
{
    for (unsigned c = 0; c < _params.num_cpus; ++c) {
        if (_l1d[c]->probe(line_addr)) {
            bool dirty = _l1d[c]->invalidate(line_addr);
            if (dirty) {
                // Dirty data from the L1 accompanies the LLC victim
                // off die.
                _ctr.offdie_writeback_bytes += _params.l1d.line_bytes;
            }
        }
        if (_l1i[c]->probe(line_addr))
            _l1i[c]->invalidate(line_addr);
    }
}

Cycles
MemoryHierarchy::missToMemory(Addr line, std::uint64_t bytes,
                              Cycles when, bool speculative)
{
    Cycles mem_ready = _main_memory.read(line, when, speculative);
    Cycles t_data = _bus.transfer(bytes, mem_ready, speculative);
    _ctr.offdie_fill_bytes += bytes;
    return t_data;
}

Cycles
MemoryHierarchy::llcAccess(unsigned cpu, Addr line, bool is_store,
                           Cycles when, bool speculative)
{
    (void)cpu;
    (void)is_store;

    if (_l2) {
        // SRAM LLC. Fills are reads: dirtiness arrives later via L1
        // victim drains.
        Cycles t_l2 = when + _l2->params().latency;
        CacheAccessResult res = _l2->access(line, /*is_store=*/false);
        if (res.evicted) {
            backInvalidateL1s(res.victim_addr);
            if (res.writeback) {
                _bus.transfer(_l2->params().line_bytes, t_l2,
                              /*speculative=*/true);
                _main_memory.write(res.victim_addr, t_l2);
                _ctr.offdie_writeback_bytes += _l2->params().line_bytes;
            }
        }
        if (res.hit)
            return t_l2;
        return missToMemory(line, _l2->params().line_bytes, t_l2,
                            speculative);
    }

    // Stacked DRAM cache: on-die tag lookup first, then the data
    // array access crosses the die-to-die interface.
    const DramCacheParams &dp = _params.dram_cache;
    Cycles t_tag = when + dp.tag_latency;
    DramCacheResult res = _dram_cache->access(line, /*is_store=*/false);

    if (res.evicted) {
        // Back-invalidate every sector of the victim page and drain
        // its dirty sectors off die.
        for (unsigned s = 0; s * dp.sector_bytes < dp.page_bytes; ++s)
            backInvalidateL1s(res.victim_page + s * dp.sector_bytes);
        if (res.victim_dirty_sectors > 0) {
            std::uint64_t bytes =
                std::uint64_t(res.victim_dirty_sectors) *
                dp.sector_bytes;
            _bus.transfer(bytes, t_tag, /*speculative=*/true);
            _main_memory.write(res.victim_page, t_tag);
            _ctr.offdie_writeback_bytes += bytes;
        }
    }

    if (res.sector_hit) {
        Cycles t_data = _dram_banks->access(line, t_tag + dp.d2d_latency,
                                            speculative);
        return t_data + dp.d2d_latency;
    }

    // Sector fill from main memory; the arriving sector is written
    // into the stacked DRAM (bank occupancy, off the critical path).
    Cycles t_data =
        missToMemory(line, dp.sector_bytes, t_tag, speculative);
    _dram_banks->access(line, t_data + dp.d2d_latency,
                        /*speculative=*/true);
    return t_data;
}

void
MemoryHierarchy::dumpStats(std::ostream &os) const
{
    using stats::Formula;
    using stats::StatGroup;

    StatGroup root("hierarchy");
    std::vector<std::unique_ptr<Formula>> stats;
    auto add = [&](StatGroup &group, const char *name, const char *desc,
                   double value) {
        stats.push_back(std::make_unique<Formula>(
            &group, name, desc, [value] { return value; }));
    };

    add(root, "accesses", "total references", double(_ctr.accesses));
    add(root, "loads", "load references", double(_ctr.loads));
    add(root, "stores", "store references", double(_ctr.stores));
    add(root, "ifetches", "ifetch references", double(_ctr.ifetches));
    add(root, "prefetches", "prefetch fills issued",
        double(_ctr.prefetches));
    add(root, "demand_l1d_misses", "non-prefetch L1D misses",
        double(_ctr.demand_l1d_misses));
    add(root, "coherence_invals", "cross-core invalidations",
        double(_ctr.coherence_invalidations));
    add(root, "offdie_fill_bytes", "fills over the bus",
        double(_ctr.offdie_fill_bytes));
    add(root, "offdie_wb_bytes", "writebacks over the bus",
        double(_ctr.offdie_writeback_bytes));

    std::vector<std::unique_ptr<StatGroup>> groups;
    for (unsigned c = 0; c < _params.num_cpus; ++c) {
        auto group = std::make_unique<StatGroup>(
            "l1d" + std::to_string(c), &root);
        const CacheCounters &ctr = _l1d[c]->counters();
        add(*group, "hits", "L1D hits", double(ctr.hits));
        add(*group, "misses", "L1D misses", double(ctr.misses));
        add(*group, "writebacks", "dirty victims",
            double(ctr.writebacks));
        add(*group, "miss_rate", "miss ratio", ctr.missRate());
        groups.push_back(std::move(group));
    }

    if (_l2) {
        auto group = std::make_unique<StatGroup>("l2", &root);
        const CacheCounters &ctr = _l2->counters();
        add(*group, "hits", "L2 hits", double(ctr.hits));
        add(*group, "misses", "L2 misses", double(ctr.misses));
        add(*group, "writebacks", "dirty victims",
            double(ctr.writebacks));
        add(*group, "miss_rate", "miss ratio", ctr.missRate());
        groups.push_back(std::move(group));
    }
    if (_dram_cache) {
        auto group = std::make_unique<StatGroup>("dram_cache", &root);
        const DramCacheCounters &ctr = _dram_cache->counters();
        add(*group, "sector_hits", "sector hits",
            double(ctr.sector_hits));
        add(*group, "sector_misses", "page present, sector absent",
            double(ctr.sector_misses));
        add(*group, "page_misses", "page allocations",
            double(ctr.page_misses));
        add(*group, "wb_sectors", "dirty sectors written back",
            double(ctr.writeback_sectors));
        add(*group, "miss_rate", "miss ratio", ctr.missRate());
        groups.push_back(std::move(group));

        auto banks = std::make_unique<StatGroup>("dram_banks", &root);
        const DramBankCounters &bc = _dram_banks->counters();
        add(*banks, "page_hits", "open-page CAS accesses",
            double(bc.page_hits));
        add(*banks, "page_opens", "idle-bank activations",
            double(bc.page_misses));
        add(*banks, "conflicts", "precharge+activate accesses",
            double(bc.page_conflicts));
        groups.push_back(std::move(banks));
    }

    {
        auto group = std::make_unique<StatGroup>("bus", &root);
        add(*group, "bytes", "total bytes moved",
            double(_bus.totalBytes()));
        add(*group, "speculative_bytes",
            "prefetch/writeback share of bytes",
            double(_bus.speculativeBytes()));
        add(*group, "transactions", "bus transactions",
            double(_bus.transactions()));
        groups.push_back(std::move(group));
    }
    {
        auto group = std::make_unique<StatGroup>("memory", &root);
        add(*group, "reads", "DDR reads", double(_main_memory.reads()));
        add(*group, "writes", "DDR writes (buffered)",
            double(_main_memory.writes()));
        groups.push_back(std::move(group));
    }

    root.dump(os);
}

void
MemoryHierarchy::appendCounters(obs::CounterSet &out,
                                const std::string &prefix,
                                Cycles total_cycles) const
{
    double kilo_refs = double(_ctr.accesses) / 1000.0;
    auto addCache = [&](const std::string &level,
                        const CacheCounters &ctr) {
        out.set(prefix + level + ".hits", double(ctr.hits));
        out.set(prefix + level + ".misses", double(ctr.misses));
        out.set(prefix + level + ".writebacks",
                double(ctr.writebacks));
        out.set(prefix + level + ".miss_rate", ctr.missRate());
        out.set(prefix + level + ".mpkr",
                kilo_refs > 0.0 ? double(ctr.misses) / kilo_refs
                                : 0.0);
    };

    out.set(prefix + "accesses", double(_ctr.accesses));
    out.set(prefix + "loads", double(_ctr.loads));
    out.set(prefix + "stores", double(_ctr.stores));
    out.set(prefix + "ifetches", double(_ctr.ifetches));
    out.set(prefix + "prefetches", double(_ctr.prefetches));
    out.set(prefix + "demand_l1d_misses",
            double(_ctr.demand_l1d_misses));
    out.set(prefix + "coherence_invals",
            double(_ctr.coherence_invalidations));

    // Fold the per-core L1s into one logical level each, matching
    // how the paper reports them.
    CacheCounters l1d_all, l1i_all;
    auto fold = [](CacheCounters &acc, const CacheCounters &c) {
        acc.hits += c.hits;
        acc.misses += c.misses;
        acc.evictions += c.evictions;
        acc.writebacks += c.writebacks;
        acc.invalidations += c.invalidations;
        acc.tag_probes += c.tag_probes;
        acc.swar_hits += c.swar_hits;
    };
    for (unsigned c = 0; c < _params.num_cpus; ++c) {
        fold(l1d_all, _l1d[c]->counters());
        fold(l1i_all, _l1i[c]->counters());
    }
    addCache("l1d", l1d_all);
    addCache("l1i", l1i_all);
    if (_l2)
        addCache("l2", _l2->counters());

    // Whole-hierarchy tag-search telemetry: every demand lookup in
    // an SRAM tag array, and how many of the hits were found by the
    // vectorized (SWAR/SIMD) probe path.
    CacheCounters tag_all = l1d_all;
    fold(tag_all, l1i_all);
    if (_l2)
        fold(tag_all, _l2->counters());
    out.set(prefix + "tag_probe.probes", double(tag_all.tag_probes));
    out.set(prefix + "tag_probe.swar_hits",
            double(tag_all.swar_hits));
    if (_dram_cache) {
        const DramCacheCounters &dc = _dram_cache->counters();
        out.set(prefix + "dram_cache.sector_hits",
                double(dc.sector_hits));
        out.set(prefix + "dram_cache.sector_misses",
                double(dc.sector_misses));
        out.set(prefix + "dram_cache.page_misses",
                double(dc.page_misses));
        out.set(prefix + "dram_cache.evictions",
                double(dc.evictions));
        out.set(prefix + "dram_cache.writeback_sectors",
                double(dc.writeback_sectors));
        out.set(prefix + "dram_cache.miss_rate", dc.missRate());
        const DramBankCounters &bc = _dram_banks->counters();
        out.set(prefix + "dram_banks.page_hits",
                double(bc.page_hits));
        out.set(prefix + "dram_banks.page_opens",
                double(bc.page_misses));
        out.set(prefix + "dram_banks.conflicts",
                double(bc.page_conflicts));
    }

    out.set(prefix + "bus.bytes", double(_bus.totalBytes()));
    out.set(prefix + "bus.speculative_bytes",
            double(_bus.speculativeBytes()));
    out.set(prefix + "bus.transactions",
            double(_bus.transactions()));
    if (total_cycles > 0) {
        out.set(prefix + "bus.achieved_gbps",
                _bus.achievedGBps(total_cycles));
        out.set(prefix + "bus.occupancy",
                _bus.achievedGBps(total_cycles) /
                    _bus.params().bandwidth_gbps);
    }
    out.set(prefix + "memory.reads", double(_main_memory.reads()));
    out.set(prefix + "memory.writes", double(_main_memory.writes()));

    const DramBankCounters &mc = _main_memory.banks().counters();
    out.set(prefix + "memory.page_hits", double(mc.page_hits));
    out.set(prefix + "memory.page_opens", double(mc.page_misses));
    out.set(prefix + "memory.conflicts",
            double(mc.page_conflicts));
}

} // namespace mem
} // namespace stack3d
