/**
 * @file
 * Vectorized tag search for set-associative tag arrays.
 *
 * The classic per-set lookup is a linear scan over `assoc` fat line
 * structs — at 8–16 ways and millions of probes per study cell it is
 * the hottest loop in replay. This header provides the fast variants:
 *
 *  - each way keeps a 16-bit *signature* (XOR-fold of the full tag)
 *    in a contiguous per-set array;
 *  - a probe compares 4 signatures per step with portable SWAR (the
 *    classic has-zero-halfword trick), or 8 per step with SSE2 when
 *    compiled in;
 *  - signature matches are *candidates* only — the borrow in the SWAR
 *    zero test can smear across lanes and two tags can fold to the
 *    same signature — so every candidate is confirmed against the
 *    full 64-bit tag and the valid mask. False positives cost one
 *    extra compare; false negatives are impossible (equal tags have
 *    equal signatures and the zero test never misses a zero lane).
 *
 * Selection: compile-time availability (SSE2) intersected with the
 * STACK3D_TAG_SEARCH env override (scalar|swar|simd|auto), resolved
 * once per process. All variants return the same way index, which
 * the equivalence test in tests/test_mem_replay_determinism.cc pins
 * across associativities 1–16 with partial/invalid sets.
 */

#ifndef STACK3D_MEM_TAGSEARCH_HH
#define STACK3D_MEM_TAGSEARCH_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace stack3d {
namespace mem {

/** 16-bit tag signature: XOR-fold of the 64-bit tag. */
using TagSig = std::uint16_t;

inline TagSig
sigOf(std::uint64_t tag)
{
    tag ^= tag >> 32;
    tag ^= tag >> 16;
    return TagSig(tag & 0xFFFF);
}

/** Signatures are stored padded to a multiple of 8 lanes so SWAR /
 *  SSE2 probes can always load full groups. Padding lanes belong to
 *  no way and are rejected by the `way < assoc` candidate check. */
inline unsigned
sigStride(unsigned assoc)
{
    return (assoc + 7u) & ~7u;
}

/** Which probe implementation to use. */
enum class TagSearchMode
{
    Scalar,
    Swar,
    Simd,
};

namespace detail {
/** Programmatic override slot: -1 = unset (use the env resolution).
 *  Hierarchies capture the mode at construction, so flipping this
 *  affects hierarchies built afterwards — which is exactly what the
 *  in-process before/after benchmark legs and the equivalence tests
 *  need. */
inline std::atomic<int> g_tag_search_override{-1};
} // namespace detail

/** Override the probe mode for hierarchies built from now on. */
inline void
setTagSearchMode(TagSearchMode mode)
{
    detail::g_tag_search_override.store(int(mode),
                                        std::memory_order_relaxed);
}

/** Drop a setTagSearchMode() override, back to the env default. */
inline void
clearTagSearchMode()
{
    detail::g_tag_search_override.store(-1, std::memory_order_relaxed);
}

/**
 * Resolve the probe mode: a setTagSearchMode() override wins; else
 * STACK3D_TAG_SEARCH in {scalar, swar, simd, auto} (default auto =
 * best available), resolved once per process. Requesting simd
 * without SSE2 support falls back to swar.
 */
inline TagSearchMode
tagSearchMode()
{
    int over = detail::g_tag_search_override.load(
        std::memory_order_relaxed);
    if (over >= 0)
        return TagSearchMode(over);
    static const TagSearchMode mode = [] {
        const char *env = std::getenv("STACK3D_TAG_SEARCH");
        std::string v = env ? env : "auto";
        if (v == "scalar")
            return TagSearchMode::Scalar;
        if (v == "swar")
            return TagSearchMode::Swar;
#if defined(__SSE2__)
        if (v == "simd" || v == "auto")
            return TagSearchMode::Simd;
#else
        if (v == "simd")
            return TagSearchMode::Swar;
#endif
        return TagSearchMode::Swar;
    }();
    return mode;
}

/**
 * Reference scan: first way with a valid matching full tag, or -1.
 * All other variants must agree with this one exactly.
 */
inline int
findWayScalar(const std::uint64_t *tags, std::uint32_t valid_mask,
              unsigned assoc, std::uint64_t tag)
{
    for (unsigned w = 0; w < assoc; ++w) {
        if ((valid_mask >> w) & 1u) {
            if (tags[w] == tag)
                return int(w);
        }
    }
    return -1;
}

/**
 * SWAR probe: 4 signatures per 64-bit step. @p sigs must have
 * sigStride(assoc) valid-to-read lanes.
 */
inline int
findWaySwar(const TagSig *sigs, const std::uint64_t *tags,
            std::uint32_t valid_mask, unsigned assoc, std::uint64_t tag)
{
    const std::uint64_t pattern =
        std::uint64_t(sigOf(tag)) * 0x0001000100010001ULL;
    const unsigned stride = sigStride(assoc);
    for (unsigned base = 0; base < stride; base += 4) {
        std::uint64_t chunk;
        std::memcpy(&chunk, sigs + base, sizeof(chunk)); // lint3d: safe-memcpy-ok fixed 8-byte lane load from padded sig array
        std::uint64_t x = chunk ^ pattern;
        // Zero-halfword detector: a borrow from a lower lane can set
        // a spurious high bit in the lane above — candidates only.
        std::uint64_t cand = (x - 0x0001000100010001ULL) & ~x &
                             0x8000800080008000ULL;
        while (cand) {
            unsigned lane = unsigned(std::countr_zero(cand)) / 16u;
            cand &= cand - 1;
            unsigned w = base + lane;
            if (w < assoc && ((valid_mask >> w) & 1u) &&
                tags[w] == tag) {
                return int(w);
            }
        }
    }
    return -1;
}

#if defined(__SSE2__)
/** SSE2 probe: 8 signatures per step via cmpeq + movemask. */
inline int
findWaySimd(const TagSig *sigs, const std::uint64_t *tags,
            std::uint32_t valid_mask, unsigned assoc, std::uint64_t tag)
{
    const __m128i pattern = _mm_set1_epi16(short(sigOf(tag)));
    const unsigned stride = sigStride(assoc);
    for (unsigned base = 0; base < stride; base += 8) {
        __m128i chunk = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(sigs + base));
        unsigned cand = unsigned(
            _mm_movemask_epi8(_mm_cmpeq_epi16(chunk, pattern)));
        while (cand) {
            unsigned lane = unsigned(std::countr_zero(cand)) / 2u;
            cand &= cand - 1;   // clear low bit of the 2-bit lane pair
            cand &= cand - 1;
            unsigned w = base + lane;
            if (w < assoc && ((valid_mask >> w) & 1u) &&
                tags[w] == tag) {
                return int(w);
            }
        }
    }
    return -1;
}
#else
inline int
findWaySimd(const TagSig *sigs, const std::uint64_t *tags,
            std::uint32_t valid_mask, unsigned assoc, std::uint64_t tag)
{
    return findWaySwar(sigs, tags, valid_mask, assoc, tag);
}
#endif

/** Probe through the process-wide mode (see tagSearchMode()). */
inline int
findWay(const TagSig *sigs, const std::uint64_t *tags,
        std::uint32_t valid_mask, unsigned assoc, std::uint64_t tag)
{
    switch (tagSearchMode()) {
      case TagSearchMode::Scalar:
        return findWayScalar(tags, valid_mask, assoc, tag);
      case TagSearchMode::Swar:
        return findWaySwar(sigs, tags, valid_mask, assoc, tag);
      case TagSearchMode::Simd:
        return findWaySimd(sigs, tags, valid_mask, assoc, tag);
    }
    return findWayScalar(tags, valid_mask, assoc, tag);
}

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_TAGSEARCH_HH
