#include "dram.hh"

#include <bit>

#include "common/logging.hh"

namespace stack3d {
namespace mem {

DramBankEngine::DramBankEngine(unsigned num_banks,
                               std::uint32_t page_bytes,
                               const DramTiming &timing, std::string name,
                               bool xor_hash)
    : _page_bytes(page_bytes), _timing(timing), _name(std::move(name)),
      _xor_hash(xor_hash), _banks(num_banks)
{
    if (num_banks == 0)
        stack3d_fatal("DRAM '", _name, "' needs at least one bank");
    if (!units::isPowerOfTwo(page_bytes))
        stack3d_fatal("DRAM '", _name, "' page size not a power of two");
    _page_shift = units::floorLog2(page_bytes);
    if (units::isPowerOfTwo(num_banks))
        _bank_mask = Addr(num_banks) - 1;
}

unsigned
DramBankEngine::bankIndex(Addr addr) const
{
    Addr page = addr >> _page_shift;
    if (_xor_hash) {
        // XOR-folded bank hash: plain modulo interleaving makes
        // streams whose base addresses differ by a multiple of
        // num_banks pages collide on the same bank in lockstep
        // forever (bank camping); folding higher page bits into the
        // index decorrelates concurrent streams the way real
        // controllers' bank-address hashing does.
        page = page ^ (page >> 4) ^ (page >> 8) ^ (page >> 12);
    }
    if (_bank_mask != 0 || _banks.size() == 1)
        return unsigned(page & _bank_mask);
    return unsigned(page % _banks.size());
}

Cycles
DramBankEngine::access(Addr addr, Cycles start, bool speculative)
{
    Bank &bank = _banks[bankIndex(addr)];
    Addr page = addr >> _page_shift;

    Cycles queue_head =
        speculative ? bank.busy_any : bank.busy_demand;
    Cycles t0 = std::max(start, queue_head);

    // Idle auto-precharge: a long-idle bank has already closed its
    // page in the background.
    if (bank.page_open && _timing.idle_close > 0 && t0 > bank.busy_any &&
        t0 - bank.busy_any > _timing.idle_close &&
        bank.open_page != page) {
        bank.page_open = false;
    }

    Cycles data;
    Cycles busy_end;
    if (bank.page_open && bank.open_page == page) {
        ++_ctr.page_hits;
        data = t0 + _timing.read;
        busy_end = t0 + _timing.burst;
    } else if (!bank.page_open) {
        ++_ctr.page_misses;
        data = t0 + _timing.page_open + _timing.read;
        busy_end = _timing.pipelined_activate
                       ? t0 + _timing.burst
                       : t0 + _timing.page_open + _timing.burst;
    } else {
        ++_ctr.page_conflicts;
        data = t0 + _timing.precharge + _timing.page_open +
               _timing.read;
        busy_end = _timing.pipelined_activate
                       ? t0 + _timing.burst
                       : t0 + _timing.precharge + _timing.page_open +
                             _timing.burst;
    }
    if (speculative) {
        bank.busy_any = busy_end;
    } else {
        bank.busy_demand = busy_end;
        bank.busy_any = std::max(bank.busy_any, busy_end);
    }
    bank.page_open = true;
    bank.open_page = page;
    return data;
}

Cycles
DramBankEngine::busyUntil(Addr addr) const
{
    return _banks[bankIndex(addr)].busy_any;
}

void
DramBankEngine::reset()
{
    for (Bank &bank : _banks)
        bank = Bank{};
}

DramCacheArray::DramCacheArray(const DramCacheParams &params,
                               std::string name)
    : _params(params), _name(std::move(name))
{
    if (params.size_bytes == 0 || params.assoc == 0)
        stack3d_fatal("DRAM cache '", _name, "' has zero size or assoc");
    if (!units::isPowerOfTwo(params.page_bytes) ||
        !units::isPowerOfTwo(params.sector_bytes)) {
        stack3d_fatal("DRAM cache '", _name,
                      "' page/sector sizes must be powers of two");
    }
    if (params.sector_bytes > params.page_bytes)
        stack3d_fatal("DRAM cache '", _name, "' sector larger than page");

    _sectors_per_page = params.page_bytes / params.sector_bytes;
    if (_sectors_per_page > 64)
        stack3d_fatal("DRAM cache '", _name,
                      "' supports at most 64 sectors per page");

    _num_sets = params.size_bytes /
                (std::uint64_t(params.page_bytes) * params.assoc);
    if (_num_sets == 0 || !units::isPowerOfTwo(_num_sets)) {
        stack3d_fatal("DRAM cache '", _name, "': ", _num_sets,
                      " sets (must be a non-zero power of two)");
    }
    if (params.assoc > 32)
        stack3d_fatal("DRAM cache '", _name, "' assoc ", params.assoc,
                      " exceeds the 32-way metadata bitmasks");
    _page_shift = units::floorLog2(params.page_bytes);
    _sector_shift = units::floorLog2(params.sector_bytes);
    _sig_stride = sigStride(params.assoc);
    _mode = tagSearchMode();
    _pages.resize(_num_sets * params.assoc);
    _tags.resize(_num_sets * params.assoc);
    _sigs.resize(_num_sets * _sig_stride);
    _valid.resize(_num_sets);
}

std::uint64_t
DramCacheArray::setIndex(Addr addr) const
{
    return (addr >> _page_shift) & (_num_sets - 1);
}

Addr
DramCacheArray::pageTag(Addr addr) const
{
    return addr >> _page_shift;
}

unsigned
DramCacheArray::sectorIndex(Addr addr) const
{
    return unsigned((addr >> _sector_shift) &
                    (_sectors_per_page - 1));
}

int
DramCacheArray::findPageWay(std::uint64_t set, Addr tag) const
{
    const std::uint64_t *tags = &_tags[set * _params.assoc];
    switch (_mode) {
      case TagSearchMode::Scalar:
        return findWayScalar(tags, _valid[set], _params.assoc, tag);
      case TagSearchMode::Swar:
        return findWaySwar(&_sigs[set * _sig_stride], tags,
                           _valid[set], _params.assoc, tag);
      case TagSearchMode::Simd:
        break;
    }
    return findWaySimd(&_sigs[set * _sig_stride], tags, _valid[set],
                       _params.assoc, tag);
}

DramCacheResult
DramCacheArray::access(Addr addr, bool is_store)
{
    DramCacheResult res;
    ++_tick;

    std::uint64_t set = setIndex(addr);
    Addr tag = pageTag(addr);
    unsigned sector = sectorIndex(addr);
    std::uint64_t sector_bit = std::uint64_t(1) << sector;

    PageEntry *base = &_pages[set * _params.assoc];
    int way = findPageWay(set, tag);
    if (way >= 0) {
        PageEntry *entry = &base[unsigned(way)];
        res.page_hit = true;
        entry->lru = _tick;
        if (entry->sector_valid & sector_bit) {
            ++_ctr.sector_hits;
            res.sector_hit = true;
        } else {
            ++_ctr.sector_misses;
            entry->sector_valid |= sector_bit;
        }
        if (is_store)
            entry->sector_dirty |= sector_bit;
        return res;
    }

    // Page miss: allocate, evicting the LRU page if necessary
    // (first invalid way, else first strict-minimum LRU — same
    // order as the old struct scan).
    ++_ctr.page_misses;
    const std::uint32_t all_ways =
        _params.assoc == 32 ? ~std::uint32_t(0)
                            : (std::uint32_t(1u) << _params.assoc) - 1u;
    std::uint32_t invalid = ~_valid[set] & all_ways;
    unsigned victim_way;
    if (invalid) {
        victim_way = unsigned(std::countr_zero(invalid));
    } else {
        victim_way = 0;
        for (unsigned w = 1; w < _params.assoc; ++w) {
            if (base[w].lru < base[victim_way].lru)
                victim_way = w;
        }
    }

    PageEntry *victim = &base[victim_way];
    std::uint64_t flat = set * _params.assoc + victim_way;
    std::uint32_t way_bit = std::uint32_t(1u) << victim_way;
    if (_valid[set] & way_bit) {
        ++_ctr.evictions;
        res.evicted = true;
        res.victim_page = _tags[flat] << _page_shift;
        res.victim_dirty_sectors =
            unsigned(std::popcount(victim->sector_dirty));
        _ctr.writeback_sectors += res.victim_dirty_sectors;
    }

    _tags[flat] = tag;
    _sigs[set * _sig_stride + victim_way] = sigOf(tag);
    _valid[set] |= way_bit;
    victim->sector_valid = sector_bit;
    victim->sector_dirty = is_store ? sector_bit : 0;
    victim->lru = _tick;
    return res;
}

bool
DramCacheArray::markSectorDirty(Addr addr)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = pageTag(addr);
    std::uint64_t sector_bit = std::uint64_t(1) << sectorIndex(addr);
    PageEntry *base = &_pages[set * _params.assoc];
    int way = findPageWay(set, tag);
    if (way >= 0 && (base[unsigned(way)].sector_valid & sector_bit)) {
        base[unsigned(way)].sector_dirty |= sector_bit;
        return true;
    }
    return false;
}

bool
DramCacheArray::probe(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    Addr tag = pageTag(addr);
    std::uint64_t sector_bit = std::uint64_t(1) << sectorIndex(addr);
    const PageEntry *base = &_pages[set * _params.assoc];
    int way = findPageWay(set, tag);
    if (way >= 0)
        return (base[unsigned(way)].sector_valid & sector_bit) != 0;
    return false;
}

} // namespace mem
} // namespace stack3d
