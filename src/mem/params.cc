#include "params.hh"

#include "common/logging.hh"

namespace stack3d {
namespace mem {

const char *
stackOptionName(StackOption opt)
{
    switch (opt) {
      case StackOption::Baseline4MB:
        return "2D 4MB";
      case StackOption::Sram12MB:
        return "3D 12MB";
      case StackOption::Dram32MB:
        return "3D 32MB";
      case StackOption::Dram64MB:
        return "3D 64MB";
    }
    return "unknown";
}

unsigned
stackOptionCapacityMB(StackOption opt)
{
    switch (opt) {
      case StackOption::Baseline4MB:
        return 4;
      case StackOption::Sram12MB:
        return 12;
      case StackOption::Dram32MB:
        return 32;
      case StackOption::Dram64MB:
        return 64;
    }
    return 0;
}

HierarchyParams
makeHierarchyParams(StackOption opt)
{
    HierarchyParams p;
    p.stack = opt;

    switch (opt) {
      case StackOption::Baseline4MB:
        p.l2 = CacheParams{units::fromMiB(4), 64, 16, 16};
        break;

      case StackOption::Sram12MB:
        // 8 MB of stacked SRAM on top of the baseline 4 MB; modelled
        // as one 12 MB array at the paper's 24-cycle latency.
        p.l2 = CacheParams{units::fromMiB(12), 64, 24, 24};
        break;

      case StackOption::Dram32MB:
        p.dram_cache.size_bytes = units::fromMiB(32);
        // The dense face-to-face d2d via interface moves a 64 B
        // sector in ~2 core cycles (the paper: the all-copper d2d
        // interconnect has ~1/3 the RC of a conventional via stack).
        p.dram_cache.timing.burst = 2;
        // Cache-purpose DRAM: 512 B pages are small subarrays, and
        // activations to different pages of a bank group pipeline.
        p.dram_cache.timing.pipelined_activate = true;
        // Tags for the 32 MB DRAM sit on the processor die in a
        // dedicated (smaller than 4 MB) SRAM array: faster than the
        // 16-cycle 4 MB L2 lookup.
        p.dram_cache.tag_latency = 12;
        break;

      case StackOption::Dram64MB:
        p.dram_cache.size_bytes = units::fromMiB(64);
        p.dram_cache.timing.burst = 2;
        p.dram_cache.timing.pipelined_activate = true;
        // Tags stored in the former 4 MB SRAM L2: full 16-cycle
        // lookup before the DRAM access can start.
        p.dram_cache.tag_latency = 16;
        break;
    }
    return p;
}

} // namespace mem
} // namespace stack3d
