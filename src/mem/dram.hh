/**
 * @file
 * DRAM timing and state models shared by the 3D-stacked DRAM cache
 * and the off-die DDR main memory:
 *
 *  - DramBankEngine: per-bank open-page timing (RAS / CAS / precharge
 *    from Table 3) over N address-interleaved banks.
 *  - DramCacheArray: page-granular, sector-valid tag state of the
 *    stacked DRAM cache (512 B pages, 64 B sectors).
 */

#ifndef STACK3D_MEM_DRAM_HH
#define STACK3D_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "mem/params.hh"
#include "mem/tagsearch.hh"

namespace stack3d {
namespace mem {

/** Counters for a bank engine. */
struct DramBankCounters
{
    std::uint64_t page_hits = 0;      ///< open-page CAS-only accesses
    std::uint64_t page_misses = 0;    ///< bank idle, page opened
    std::uint64_t page_conflicts = 0; ///< other page open, precharged
};

/**
 * Open-page timing over address-interleaved banks. Each access picks
 * the bank from the page address, waits for the bank to go idle, then
 * pays CAS (open page), RAS+CAS (idle bank), or PRE+RAS+CAS (page
 * conflict).
 */
class DramBankEngine
{
  public:
    /**
     * @param xor_hash  XOR-fold the bank index. Right for a small-
     *     page DRAM cache where many concurrent streams would
     *     otherwise camp on the same bank in lockstep; wrong for
     *     sequential-heavy main memory where plain modulo gives
     *     perfect round-robin.
     */
    DramBankEngine(unsigned num_banks, std::uint32_t page_bytes,
                   const DramTiming &timing, std::string name,
                   bool xor_hash = false);

    /**
     * Access @p addr no earlier than @p start.
     *
     * Demand accesses queue only behind other demand traffic at the
     * bank (the controller prioritizes demand reads and lets them
     * preempt queued speculative requests); speculative accesses
     * (prefetch fills) queue behind everything.
     *
     * @return the cycle the column data is available.
     */
    Cycles access(Addr addr, Cycles start, bool speculative = false);

    const DramBankCounters &counters() const { return _ctr; }
    const std::string &name() const { return _name; }
    unsigned numBanks() const { return unsigned(_banks.size()); }

    /** Bank index servicing @p addr (page-interleaved). */
    unsigned bankIndex(Addr addr) const;

    /** Cycle the bank for @p addr goes idle (queue backlog probe). */
    Cycles busyUntil(Addr addr) const;

    /** Close all pages and return banks to idle at time 0. */
    void reset();

  private:
    struct Bank
    {
        Addr open_page = 0;
        bool page_open = false;
        /** Queue head for demand traffic (demand-priority lane). */
        Cycles busy_demand = 0;
        /** Queue head including speculative bookings. */
        Cycles busy_any = 0;
    };

    std::uint32_t _page_bytes;
    unsigned _page_shift;
    DramTiming _timing;
    std::string _name;
    bool _xor_hash;
    /** num_banks - 1 when the bank count is a power of two (the
     *  common configs), letting bankIndex mask instead of divide;
     *  0 means fall back to the modulo. */
    Addr _bank_mask = 0;
    std::vector<Bank> _banks;
    DramBankCounters _ctr;
};

/** Outcome of a DRAM-cache tag/sector lookup. */
struct DramCacheResult
{
    bool page_hit = false;    ///< tag matched an allocated page
    bool sector_hit = false;  ///< requested sector is valid
    bool evicted = false;     ///< a page was evicted to allocate
    Addr victim_page = 0;     ///< page-aligned address of the victim
    unsigned victim_dirty_sectors = 0; ///< writeback traffic (sectors)
};

/** Counters for the DRAM cache tag array. */
struct DramCacheCounters
{
    std::uint64_t sector_hits = 0;
    std::uint64_t sector_misses = 0;   ///< page present, sector not
    std::uint64_t page_misses = 0;     ///< page absent
    std::uint64_t evictions = 0;
    std::uint64_t writeback_sectors = 0;

    double
    missRate() const
    {
        std::uint64_t total =
            sector_hits + sector_misses + page_misses;
        return total
            ? double(sector_misses + page_misses) / double(total)
            : 0.0;
    }
};

/**
 * Tag state of the sectored stacked-DRAM cache. Pages are allocated
 * set-associatively with LRU replacement; sectors within a page are
 * filled on demand (the paper's 512 B pages with 64 B sectors).
 */
class DramCacheArray
{
  public:
    explicit DramCacheArray(const DramCacheParams &params,
                            std::string name);

    /**
     * Access the sector containing @p addr, allocating the page
     * and/or filling the sector as needed. Stores dirty the sector.
     */
    DramCacheResult access(Addr addr, bool is_store);

    /** True if the page and sector for @p addr are both valid. */
    bool probe(Addr addr) const;

    /**
     * Mark the sector containing @p addr dirty if it is resident
     * (an L1 victim draining into the DRAM cache).
     * @return true if the sector was resident.
     */
    bool markSectorDirty(Addr addr);

    const DramCacheCounters &counters() const { return _ctr; }
    const DramCacheParams &params() const { return _params; }
    std::uint64_t numSets() const { return _num_sets; }
    unsigned sectorsPerPage() const { return _sectors_per_page; }

  private:
    /** Per-page sector state; tags/valid live in contiguous arrays
     *  alongside so lookups use the vector signature probe. */
    struct PageEntry
    {
        std::uint64_t sector_valid = 0;
        std::uint64_t sector_dirty = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr pageTag(Addr addr) const;
    unsigned sectorIndex(Addr addr) const;
    int findPageWay(std::uint64_t set, Addr tag) const;

    DramCacheParams _params;
    std::string _name;
    std::uint64_t _num_sets;
    unsigned _page_shift;
    unsigned _sector_shift;
    unsigned _sectors_per_page;
    unsigned _sig_stride;
    /** Probe implementation, captured at construction (see
     *  tagSearchMode()). */
    TagSearchMode _mode;
    std::vector<PageEntry> _pages;       // num_sets * assoc
    std::vector<Addr> _tags;             // num_sets * assoc
    std::vector<TagSig> _sigs;           // num_sets * _sig_stride
    std::vector<std::uint32_t> _valid;   // num_sets (way bitmasks)
    std::uint64_t _tick = 0;
    DramCacheCounters _ctr;
};

} // namespace mem
} // namespace stack3d

#endif // STACK3D_MEM_DRAM_HH
