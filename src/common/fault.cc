#include "fault.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/digest.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace stack3d {

namespace fault_detail {

std::atomic<bool> g_faults_enabled{false};

namespace {

/** Live state of one configured point. */
struct Point
{
    FaultPointInfo info;
    Random rng;
};

/**
 * The registry singleton: a name-keyed map guarded by one mutex.
 * Fault points sit on failure-handling paths, not inner loops, so a
 * lock per *enabled* check is cheap; disabled checks never get here.
 */
struct State
{
    std::mutex mutex;
    std::map<std::string, Point> points;
    std::uint64_t seed = 1;
};

State &
state()
{
    static State s;
    return s;
}

Point *
findPoint(State &s, const char *name)
{
    auto it = s.points.find(name);
    return it == s.points.end() ? nullptr : &it->second;
}

/** One seeded draw; updates the point's counters. */
bool
draw(Point &point)
{
    ++point.info.checks;
    if (!point.rng.chance(point.info.probability))
        return false;
    ++point.info.fires;
    return true;
}

} // anonymous namespace

bool
shouldFire(const char *name)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    Point *point = findPoint(s, name);
    return point && draw(*point);
}

unsigned
delayMs(const char *name)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    Point *point = findPoint(s, name);
    if (!point || !draw(*point))
        return 0;
    return point->info.delay_ms;
}

} // namespace fault_detail

namespace {

using fault_detail::state;

/** Install @p infos as the active configuration. */
void
install(const std::vector<FaultPointInfo> &infos, std::uint64_t seed)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.points.clear();
    s.seed = seed;
    for (const FaultPointInfo &info : infos) {
        fault_detail::Point point;
        point.info = info;
        // Independent stream per point: the decision sequence of one
        // point is unaffected by how often any other point is hit.
        point.rng.reseed(seed ^ fnv1a(info.name));
        s.points.emplace(info.name, std::move(point));
    }
    fault_detail::g_faults_enabled.store(!infos.empty(),
                                         std::memory_order_relaxed);
}

[[nodiscard]] bool
parseProbability(const std::string &text, double &out,
                 std::string &error)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || out < 0.0 ||
        out > 1.0) {
        error = "fault probability must be in [0, 1], got '" + text +
                "'";
        return false;
    }
    return true;
}

/** Parse the "@file.json" form. */
[[nodiscard]] bool
parseJsonConfig(const std::string &path,
                std::vector<FaultPointInfo> &out, std::uint64_t &seed,
                std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read fault config '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    JsonValue root;
    if (!parseJson(ss.str(), root, error)) {
        error = path + ": " + error;
        return false;
    }
    if (!root.isObject()) {
        error = path + ": fault config must be a JSON object";
        return false;
    }
    for (const auto &member : root.object) {
        if (member.first == "seed") {
            if (!member.second.isNumber()) {
                error = path + ": seed must be a number";
                return false;
            }
            seed = std::uint64_t(member.second.number);
        } else if (member.first == "points") {
            if (!member.second.isObject()) {
                error = path + ": points must be an object";
                return false;
            }
            for (const auto &entry : member.second.object) {
                FaultPointInfo info;
                info.name = entry.first;
                const JsonValue &v = entry.second;
                if (v.isNumber()) {
                    info.probability = v.number;
                } else if (v.isObject()) {
                    const JsonValue *p = v.find("p");
                    if (!p || !p->isNumber()) {
                        error = path + ": point '" + entry.first +
                                "' needs a numeric \"p\"";
                        return false;
                    }
                    info.probability = p->number;
                    if (const JsonValue *delay = v.find("delay_ms")) {
                        if (!delay->isNumber()) {
                            error = path + ": delay_ms must be a "
                                           "number";
                            return false;
                        }
                        info.delay_ms = unsigned(delay->number);
                    }
                } else {
                    error = path + ": point '" + entry.first +
                            "' must be a probability or an object";
                    return false;
                }
                if (info.probability < 0.0 ||
                    info.probability > 1.0) {
                    error = path + ": point '" + entry.first +
                            "' probability must be in [0, 1]";
                    return false;
                }
                out.push_back(std::move(info));
            }
        } else {
            error = path + ": unknown fault-config key '" +
                    member.first + "'";
            return false;
        }
    }
    return true;
}

/** Parse the inline "name:prob[:delay_ms],..." form. */
[[nodiscard]] bool
parseInlineConfig(const std::string &spec,
                  std::vector<FaultPointInfo> &out, std::string &error)
{
    std::istringstream entries(spec);
    std::string entry;
    while (std::getline(entries, entry, ',')) {
        if (entry.empty())
            continue;
        std::size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0) {
            error = "fault spec entry '" + entry +
                    "' is not name:probability";
            return false;
        }
        FaultPointInfo info;
        info.name = entry.substr(0, colon);
        std::string rest = entry.substr(colon + 1);
        std::size_t colon2 = rest.find(':');
        std::string prob = rest.substr(0, colon2);
        if (!parseProbability(prob, info.probability, error))
            return false;
        if (colon2 != std::string::npos) {
            std::string delay = rest.substr(colon2 + 1);
            char *end = nullptr;
            unsigned long ms = std::strtoul(delay.c_str(), &end, 10);
            if (end == delay.c_str() || *end != '\0' ||
                ms > 60000ul) {
                error = "fault delay must be 0..60000 ms, got '" +
                        delay + "'";
                return false;
            }
            info.delay_ms = unsigned(ms);
        }
        out.push_back(std::move(info));
    }
    return true;
}

} // anonymous namespace

bool
FaultRegistry::configure(const std::string &spec, std::uint64_t seed,
                         std::string &error)
{
    std::vector<FaultPointInfo> infos;
    if (!spec.empty() && spec[0] == '@') {
        if (!parseJsonConfig(spec.substr(1), infos, seed, error))
            return false;
    } else if (!parseInlineConfig(spec, infos, error)) {
        return false;
    }
    install(infos, seed);
    return true;
}

void
FaultRegistry::configureFromEnvironment()
{
    const char *spec = std::getenv("STACK3D_FAULTS");
    if (!spec || !*spec)
        return;
    std::uint64_t seed = 1;
    if (const char *seed_text = std::getenv("STACK3D_FAULT_SEED")) {
        char *end = nullptr;
        seed = std::strtoull(seed_text, &end, 10);
        if (end == seed_text || *end != '\0')
            stack3d_fatal("STACK3D_FAULT_SEED must be an integer, "
                          "got '", seed_text, "'");
    }
    std::string error;
    if (!configure(spec, seed, error))
        stack3d_fatal("STACK3D_FAULTS: ", error);
    inform("fault injection armed: ", spec, " (seed ", seed, ")");
}

void
FaultRegistry::reset()
{
    install({}, 1);
}

std::vector<FaultPointInfo>
FaultRegistry::snapshot()
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<FaultPointInfo> infos;
    infos.reserve(s.points.size());
    for (const auto &entry : s.points)
        infos.push_back(entry.second.info);
    return infos;   // std::map iteration: already name-sorted
}

} // namespace stack3d
