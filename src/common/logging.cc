#include "logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace stack3d {
namespace detail {

namespace {

std::atomic<unsigned long> warn_counter{0};
std::atomic<bool> quiet_mode{false};
std::mutex warn_hook_mutex;
WarnHook warn_hook;

} // anonymous namespace

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "panic: " << message << "\n    @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "fatal: " << message << "\n    @ " << file << ":" << line
              << std::endl;
    // Throwing (rather than exit(1)) keeps fatal conditions testable;
    // main() wrappers treat an escaped FatalError as exit(1).
    throw std::runtime_error("fatal: " + message);
}

void
warnImpl(const std::string &message)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    if (!quiet_mode.load(std::memory_order_relaxed))
        std::cerr << "warn: " << message << std::endl;
    std::lock_guard<std::mutex> lock(warn_hook_mutex);
    if (warn_hook)
        warn_hook(message);
}

void
informImpl(const std::string &message)
{
    // stderr, like warn(): stdout stays clean for machine-readable
    // output (trace_tool stats --json pipes JSON through it).
    if (!quiet_mode.load(std::memory_order_relaxed))
        std::cerr << "info: " << message << std::endl;
}

unsigned long
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_mode.store(quiet, std::memory_order_relaxed);
}

WarnHook
setWarnHook(WarnHook hook)
{
    std::lock_guard<std::mutex> lock(warn_hook_mutex);
    WarnHook previous = std::move(warn_hook);
    warn_hook = std::move(hook);
    return previous;
}

} // namespace detail
} // namespace stack3d
