#include "logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/json.hh"

namespace stack3d {

namespace detail {
namespace {

std::atomic<unsigned long> warn_counter{0};
std::atomic<bool> quiet_mode{false};
std::atomic<bool> json_mode{false};
std::mutex warn_hook_mutex;
WarnHook warn_hook;

/** Serializes whole log lines so interleaved threads stay readable. */
std::mutex log_write_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        break;
    }
    return "error";
}

/**
 * UTC wall-clock timestamp with millisecond precision. The one
 * legitimate wall-clock read outside timing/provenance: operators
 * correlate daemon log lines with scrapes and other hosts' clocks,
 * which steady_clock cannot do. Never feeds simulation state.
 */
std::string
timestampUtc()
{
    using namespace std::chrono;
    auto now = system_clock::now();   // lint3d: det-wallclock-ok
    std::time_t seconds =
        system_clock::to_time_t(now);   // lint3d: det-wallclock-ok
    auto ms = duration_cast<milliseconds>(now.time_since_epoch())
                  .count() %
              1000;
    std::tm tm_utc{};
    ::gmtime_r(&seconds, &tm_utc);
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm_utc.tm_year + 1900, tm_utc.tm_mon + 1,
                  tm_utc.tm_mday, tm_utc.tm_hour, tm_utc.tm_min,
                  tm_utc.tm_sec, int(ms));
    return std::string(buf);
}

/** True when a field value can go unquoted in text format. */
bool
isBareValue(const std::string &v)
{
    if (v.empty())
        return false;
    for (char c : v) {
        if (c == ' ' || c == '"' || c == '=' || c == '\n' ||
            c == '\t')
            return false;
    }
    return true;
}

void
writeLine(LogLevel level, const std::string &message,
          const LogFields &fields)
{
    std::string line;
    if (json_mode.load(std::memory_order_relaxed)) {
        line = "{\"ts\":\"" + timestampUtc() + "\",\"level\":\"" +
               levelName(level) + "\",\"msg\":\"" +
               JsonWriter::escape(message) + "\"";
        for (const auto &field : fields) {
            line += ",\"" + JsonWriter::escape(field.first) +
                    "\":\"" + JsonWriter::escape(field.second) +
                    "\"";
        }
        line += "}";
    } else {
        line = timestampUtc() + " " + levelName(level) + ": " +
               message;
        for (const auto &field : fields) {
            line += " " + field.first + "=";
            if (isBareValue(field.second))
                line += field.second;
            else
                line += "\"" + JsonWriter::escape(field.second) +
                        "\"";
        }
    }
    std::lock_guard<std::mutex> lock(log_write_mutex);
    std::cerr << line << std::endl;
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "panic: " << message << "\n    @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "fatal: " << message << "\n    @ " << file << ":" << line
              << std::endl;
    // Throwing (rather than exit(1)) keeps fatal conditions testable;
    // main() wrappers treat an escaped FatalError as exit(1).
    throw std::runtime_error("fatal: " + message);
}

void
warnImpl(const std::string &message)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    if (!quiet_mode.load(std::memory_order_relaxed))
        writeLine(LogLevel::Warn, message, {});
    std::lock_guard<std::mutex> lock(warn_hook_mutex);
    if (warn_hook)
        warn_hook(message);
}

void
informImpl(const std::string &message)
{
    // stderr, like warn(): stdout stays clean for machine-readable
    // output (trace_tool stats --json pipes JSON through it).
    if (!quiet_mode.load(std::memory_order_relaxed))
        writeLine(LogLevel::Info, message, {});
}

unsigned long
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_mode.store(quiet, std::memory_order_relaxed);
}

WarnHook
setWarnHook(WarnHook hook)
{
    std::lock_guard<std::mutex> lock(warn_hook_mutex);
    WarnHook previous = std::move(warn_hook);
    warn_hook = std::move(hook);
    return previous;
}

} // namespace detail

void
logLine(LogLevel level, const std::string &message,
        const LogFields &fields)
{
    if (level == LogLevel::Warn) {
        // Keep the warn contract: counted, hook-observed, identical
        // whether it arrived via warn() or the structured API.
        detail::warn_counter.fetch_add(1, std::memory_order_relaxed);
    }
    bool quiet = detail::quiet_mode.load(std::memory_order_relaxed);
    if (!quiet || level == LogLevel::Error)
        detail::writeLine(level, message, fields);
    if (level == LogLevel::Warn) {
        std::lock_guard<std::mutex> lock(detail::warn_hook_mutex);
        if (detail::warn_hook)
            detail::warn_hook(message);
    }
}

void
setLogJson(bool json)
{
    detail::json_mode.store(json, std::memory_order_relaxed);
}

bool
logJson()
{
    return detail::json_mode.load(std::memory_order_relaxed);
}

} // namespace stack3d
