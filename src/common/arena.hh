/**
 * @file
 * Chunked bump allocator for replay-hot transient state.
 *
 * The trace-replay engine allocates its issue-window rings, MSHR-style
 * in-flight tables and completion queues once per run (and once per
 * shard in sharded replay). Individually those are a dozen small
 * vectors; at serve-traffic rates the malloc/free churn and the
 * scattered placement both show up. An Arena gives them one contiguous
 * backing store with pointer-bump allocation: allocation is a couple
 * of arithmetic ops, everything lands hot in cache together, and the
 * whole run's state is released in O(chunks) at destruction.
 *
 * Restrictions by design: only trivially-destructible element types
 * (nothing runs destructors), and no per-object deallocation — the
 * arena frees as a unit. That is exactly the lifetime shape of
 * per-replay scratch state.
 */

#ifndef STACK3D_COMMON_ARENA_HH
#define STACK3D_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace stack3d {

/** A chunked bump allocator; see file comment for the contract. */
class Arena
{
  public:
    /** @param chunk_bytes  granularity of backing allocations. */
    explicit Arena(std::size_t chunk_bytes = std::size_t(1) << 20)
        : _chunk_bytes(chunk_bytes)
    {
        stack3d_assert(chunk_bytes >= 4096,
                       "arena chunks below 4 KiB defeat the point");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p n default-initialized objects of trivial type T,
     * aligned for T. The memory is owned by the arena; do not free.
     */
    template <typename T>
    T *
    allocate(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        if (n == 0)
            return nullptr;
        std::size_t bytes = n * sizeof(T);
        void *raw = allocateBytes(bytes, alignof(T));
        // Value-initialize: replay state (completion times, ring
        // cursors) relies on zeroed starting contents the same way
        // the std::vector-based code did.
        // Placement-new into the arena's chunk, not a heap
        // allocation. lint3d: safe-naked-new-ok
        return new (raw) T[n]();
    }

    /** Total bytes handed out (excluding alignment padding). */
    std::size_t bytesAllocated() const { return _allocated; }

    /** Number of backing chunks currently held. */
    std::size_t numChunks() const { return _chunks.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    void *
    allocateBytes(std::size_t bytes, std::size_t align)
    {
        if (_chunks.empty() || !fits(_chunks.back(), bytes, align)) {
            Chunk chunk;
            chunk.size = bytes > _chunk_bytes ? bytes + align
                                              : _chunk_bytes;
            chunk.data = std::make_unique<std::byte[]>(chunk.size);
            _chunks.push_back(std::move(chunk));
        }
        Chunk &chunk = _chunks.back();
        std::size_t base =
            reinterpret_cast<std::size_t>(chunk.data.get());
        std::size_t aligned =
            (base + chunk.used + align - 1) & ~(align - 1);
        std::size_t offset = aligned - base;
        chunk.used = offset + bytes;
        _allocated += bytes;
        return chunk.data.get() + offset;
    }

    static bool
    fits(const Chunk &chunk, std::size_t bytes, std::size_t align)
    {
        std::size_t padded = chunk.used + align - 1;
        padded &= ~(align - 1);
        return padded + bytes <= chunk.size;
    }

    std::size_t _chunk_bytes;
    std::size_t _allocated = 0;
    std::vector<Chunk> _chunks;
};

} // namespace stack3d

#endif // STACK3D_COMMON_ARENA_HH
