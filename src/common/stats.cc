#include "stats.hh"

#include <algorithm>
#include <iomanip>

namespace stack3d {
namespace stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

namespace {

void
printLine(std::ostream &os, const std::string &prefix,
          const std::string &name, double value, const std::string &desc)
{
    std::ostringstream full;
    full << prefix << name;
    os << std::left << std::setw(44) << full.str() << " "
       << std::right << std::setw(14) << std::setprecision(6) << value
       << "  # " << desc << "\n";
}

} // anonymous namespace

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), _value, desc());
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), mean(), desc());
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double lo, double hi,
                           unsigned num_buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      _lo(lo), _hi(hi),
      _bucket_width(num_buckets ? (hi - lo) / double(num_buckets) : 0.0),
      _buckets(num_buckets, 0)
{
    stack3d_assert(hi > lo, "distribution bounds inverted");
    stack3d_assert(num_buckets > 0, "distribution needs >= 1 bucket");
}

void
Distribution::sample(double v)
{
    ++_count;
    _sum += v;
    _sum_sq += v * v;
    _min = std::min(_min, v);
    _max = std::max(_max, v);

    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = std::size_t((v - _lo) / _bucket_width);
        idx = std::min(idx, _buckets.size() - 1);
        ++_buckets[idx];
    }
}

double
Distribution::stddev() const
{
    if (_count < 2)
        return 0.0;
    double n = double(_count);
    double var = (_sum_sq - _sum * _sum / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::uint64_t
Distribution::bucketCount(unsigned i) const
{
    stack3d_assert(i < _buckets.size(), "bucket index out of range");
    return _buckets[i];
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + "::count", double(_count), desc());
    printLine(os, prefix, name() + "::mean", mean(), desc());
    printLine(os, prefix, name() + "::stdev", stddev(), desc());
    if (_count) {
        printLine(os, prefix, name() + "::min", _min, desc());
        printLine(os, prefix, name() + "::max", _max, desc());
    }
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = _sum_sq = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value(), desc());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), _parent(parent)
{
    if (_parent)
        _parent->addChild(this);
}

StatGroup::~StatGroup()
{
    if (_parent)
        _parent->removeChild(this);
}

void
StatGroup::addStat(StatBase *stat)
{
    stack3d_assert(stat != nullptr, "null stat registered");
    _stats.push_back(stat);
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    auto it = std::find_if(_stats.begin(), _stats.end(),
                           [&](const StatBase *s)
                           { return s->name() == name; });
    return it == _stats.end() ? nullptr : *it;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string my_prefix =
        prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const StatBase *stat : _stats)
        stat->print(os, my_prefix);
    for (const StatGroup *child : _children)
        child->dump(os, my_prefix);
}

void
StatGroup::resetAll()
{
    for (StatBase *stat : _stats)
        stat->reset();
    for (StatGroup *child : _children)
        child->resetAll();
}

void
StatGroup::addChild(StatGroup *child)
{
    _children.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(_children.begin(), _children.end(), child);
    if (it != _children.end())
        _children.erase(it);
}

} // namespace stats
} // namespace stack3d
