/**
 * @file
 * Cooperative cancellation with optional deadlines.
 *
 * A CancelToken is shared between a requester (who may cancel, or who
 * set a deadline at creation) and the workers executing on its behalf
 * (who poll shouldStop() at natural checkpoints: once per study cell,
 * once per CG outer iteration). Cancellation is advisory — nothing is
 * interrupted preemptively — which keeps the determinism story intact:
 * a run either completes with its usual bit-exact result or stops at a
 * checkpoint with CancelledError; there is no torn in-between state.
 *
 * Deadlines use steady_clock (monotonic; wall-clock rules in
 * .lint3d.toml ban only calendar time). A token with no deadline
 * never expires on its own and only stops when cancel() is called.
 */

#ifndef STACK3D_COMMON_CANCEL_HH
#define STACK3D_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace stack3d {

/** Thrown by workers when they observe cancellation at a checkpoint. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Shared stop-request flag, optionally armed with a deadline. */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;

    /** Token that expires @p deadline_ms from now (0 = no deadline).
     *  The atomic member makes tokens immovable; construct in place
     *  (typically inside a std::shared_ptr) and share the pointer. */
    explicit CancelToken(unsigned deadline_ms)
    {
        if (deadline_ms > 0) {
            _deadline =
                Clock::now() + std::chrono::milliseconds(deadline_ms);
            _has_deadline = true;
        }
    }

    /** Request a stop; idempotent, callable from any thread. */
    void cancel() { _cancelled.store(true, std::memory_order_relaxed); }

    /** True once cancel() was called (deadline expiry not included). */
    bool cancelled() const
    {
        return _cancelled.load(std::memory_order_relaxed);
    }

    /** True when work should stop: cancelled or past the deadline. */
    bool shouldStop() const
    {
        if (cancelled())
            return true;
        return _has_deadline && Clock::now() >= _deadline;
    }

    /** The checkpoint helper: throw CancelledError when stopping. */
    void throwIfStopped(const char *where) const
    {
        if (shouldStop())
            throw CancelledError(std::string("cancelled at ") + where);
    }

    bool hasDeadline() const { return _has_deadline; }
    Clock::time_point deadline() const { return _deadline; }

  private:
    std::atomic<bool> _cancelled{false};
    Clock::time_point _deadline{};
    bool _has_deadline = false;
};

} // namespace stack3d

#endif // STACK3D_COMMON_CANCEL_HH
