#include "json.hh"

#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace stack3d {

JsonWriter &
JsonWriter::beginObject()
{
    prepare();
    _os << "{";
    _scopes.push_back({false, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    stack3d_assert(!_scopes.empty() && !_scopes.back().is_array,
                   "endObject outside an object");
    bool had_items = _scopes.back().has_items;
    _scopes.pop_back();
    if (had_items && !_compact) {
        _os << "\n";
        indent();
    }
    _os << "}";
    if (_scopes.empty() && !_compact)
        _os << "\n";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepare();
    _os << "[";
    _scopes.push_back({true, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    stack3d_assert(!_scopes.empty() && _scopes.back().is_array,
                   "endArray outside an array");
    bool had_items = _scopes.back().has_items;
    _scopes.pop_back();
    if (had_items && !_compact) {
        _os << "\n";
        indent();
    }
    _os << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    stack3d_assert(!_scopes.empty() && !_scopes.back().is_array,
                   "key() outside an object");
    stack3d_assert(!_after_key, "key() directly after key()");
    if (_scopes.back().has_items)
        _os << ",";
    _scopes.back().has_items = true;
    if (_compact) {
        _os << "\"" << escape(name) << "\":";
    } else {
        _os << "\n";
        indent();
        _os << "\"" << escape(name) << "\": ";
    }
    _after_key = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepare();
    _os << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    prepare();
    if (!std::isfinite(v)) {
        _os << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    _os << buf;
    return *this;
}

JsonWriter &
JsonWriter::valueExact(double v)
{
    prepare();
    if (!std::isfinite(v)) {
        _os << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    _os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepare();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepare();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepare();
    _os << (v ? "true" : "false");
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::prepare()
{
    if (_after_key) {
        _after_key = false;
        return;
    }
    if (_scopes.empty())
        return;
    stack3d_assert(_scopes.back().is_array,
                   "bare value inside an object (missing key())");
    if (_scopes.back().has_items)
        _os << ",";
    _scopes.back().has_items = true;
    if (!_compact) {
        _os << "\n";
        indent();
    }
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < _scopes.size(); ++i)
        _os << "  ";
}

} // namespace stack3d
