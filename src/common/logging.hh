/**
 * @file
 * Logging and error-reporting primitives for stack3d.
 *
 * Follows the gem5 convention:
 *  - panic():  an internal invariant was violated (a stack3d bug);
 *              aborts so a debugger or core dump can capture state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly
 *              with a non-zero status.
 *  - warn():   something may not behave as the user expects, but the
 *              simulation continues.
 *  - inform(): status messages with no connotation of misbehaviour.
 */

#ifndef STACK3D_COMMON_LOGGING_HH
#define STACK3D_COMMON_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace stack3d {

/**
 * Severity of one structured log line. warn()/inform() map onto
 * Warn/Info; Error is used by services reporting non-fatal faults;
 * Debug lines are suppressed unless enabled.
 */
enum class LogLevel { Debug, Info, Warn, Error };

/** Key/value context attached to a structured log line. */
using LogFields = std::vector<std::pair<std::string, std::string>>;

/**
 * Emit one structured log line to stderr. Every line carries a
 * UTC timestamp and level; @p fields append machine-parsable
 * context (trace IDs, digests, latencies). Output is plain text by
 * default —
 *
 *   2026-08-07T12:00:00.123Z warn: message trace_id=t-1f digest=0x..
 *
 * — or one JSON object per line after setLogJson(true):
 *
 *   {"ts":"...","level":"warn","msg":"message","trace_id":"t-1f"}
 *
 * Honors setQuiet() like warn()/inform() (Error lines always print).
 * Thread-safe; a line is written atomically.
 */
void logLine(LogLevel level, const std::string &message,
             const LogFields &fields = {});

/** Switch structured output to JSON-per-line (false = text). */
void setLogJson(bool json);

/** True when JSON log output is active. */
bool logJson();

namespace detail {

/** Append the tail arguments of a log call to a stream. */
inline void
appendArgs(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendArgs(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendArgs(os, rest...);
}

/** Format a variadic argument pack into one string. */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    appendArgs(os, args...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

/** Number of warn() calls issued so far (used by tests). */
unsigned long warnCount();

/** Silence warn()/inform() output (messages are still counted). */
void setQuiet(bool quiet);

/** Callback observing every warn() message. */
using WarnHook = std::function<void(const std::string &)>;

/**
 * Install a hook invoked on each warn() in addition to the normal
 * output; returns the previously installed hook (so scoped users can
 * restore it). Invocations are serialized under an internal mutex,
 * making the hook safe to install around multi-threaded study runs.
 * Pass an empty function to uninstall.
 */
WarnHook setWarnHook(WarnHook hook);

} // namespace detail

/**
 * Abort with a message: something happened that should never happen
 * regardless of user input, i.e. an internal stack3d bug.
 */
#define stack3d_panic(...)                                                  \
    ::stack3d::detail::panicImpl(                                           \
        __FILE__, __LINE__, ::stack3d::detail::formatMessage(__VA_ARGS__))

/**
 * Exit with a message: the simulation cannot continue because of a
 * condition that is the user's fault (bad configuration, bad input).
 */
#define stack3d_fatal(...)                                                  \
    ::stack3d::detail::fatalImpl(                                           \
        __FILE__, __LINE__, ::stack3d::detail::formatMessage(__VA_ARGS__))

/**
 * Warn the user about questionable but survivable behaviour.
 * Emitted through the structured logger at LogLevel::Warn.
 */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::warnImpl(detail::formatMessage(args...));
}

/**
 * Print a status message (structured logger, LogLevel::Info).
 */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::informImpl(detail::formatMessage(args...));
}

/**
 * Internal-consistency check that survives NDEBUG builds.
 * Use for invariants whose violation means a stack3d bug.
 */
#define stack3d_assert(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::stack3d::detail::panicImpl(                                   \
                __FILE__, __LINE__,                                         \
                ::stack3d::detail::formatMessage(                           \
                    "assertion '" #cond "' failed: ", ##__VA_ARGS__));      \
        }                                                                   \
    } while (0)

} // namespace stack3d

#endif // STACK3D_COMMON_LOGGING_HH
