/**
 * @file
 * Physical units, conversions, and constants shared by the thermal,
 * power, and memory models. All internal computation is SI; helpers
 * exist for the unit mixes the paper reports in (µm, W/mK, °C, GB/s).
 */

#ifndef STACK3D_COMMON_UNITS_HH
#define STACK3D_COMMON_UNITS_HH

#include <cstdint>

namespace stack3d {

/** Simulation time/cycles. */
using Cycles = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

namespace units {

/** Metres from micrometres. */
constexpr double fromMicrometres(double um) { return um * 1e-6; }

/** Metres from millimetres. */
constexpr double fromMillimetres(double mm) { return mm * 1e-3; }

/** Celsius from Kelvin-referenced delta plus ambient, identity here:
 *  the thermal solver works directly in °C because only differences
 *  and linear boundary conditions appear in the steady-state problem.
 */
constexpr double celsius(double c) { return c; }

/** Bytes per gigabyte (decimal, as used for bandwidth figures). */
constexpr double bytesPerGB = 1e9;

/** Bytes from mebibytes (cache capacities: 4 MB == 4 MiB here). */
constexpr std::uint64_t fromMiB(std::uint64_t mib) { return mib << 20; }

/** Bytes from kibibytes. */
constexpr std::uint64_t fromKiB(std::uint64_t kib) { return kib << 10; }

/** Gigabytes/second given bytes and elapsed seconds. */
constexpr double
toGBps(double bytes, double seconds)
{
    return seconds > 0.0 ? bytes / bytesPerGB / seconds : 0.0;
}

/** True if @p v is a non-zero power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for non-zero v. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

} // namespace units
} // namespace stack3d

#endif // STACK3D_COMMON_UNITS_HH
