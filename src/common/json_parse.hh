/**
 * @file
 * A minimal recursive-descent JSON parser — the read-side counterpart
 * of JsonWriter. Used by tests (and the json_check tool) to validate
 * bench output and trace files; not a general-purpose library. Parses
 * the full JSON grammar into a JsonValue tree; object key order is
 * preserved.
 */

#ifndef STACK3D_COMMON_JSON_PARSE_HH
#define STACK3D_COMMON_JSON_PARSE_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stack3d {

/** One parsed JSON value (a tagged tree node). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String value; for numbers, the raw token (exact u64 re-parse). */
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key; nullptr when absent or not an object. */
    [[nodiscard]] const JsonValue *find(const std::string &key) const;

    /** Nested lookup: find("a.b.c") walks objects by dotted path. */
    [[nodiscard]] const JsonValue *
    findPath(const std::string &dotted_path) const;
};

/**
 * Parse a complete JSON document. On failure returns false and sets
 * @p error to "offset N: message"; on success @p out holds the root.
 * Trailing non-whitespace after the document is an error.
 */
[[nodiscard]] bool parseJson(const std::string &text, JsonValue &out,
                             std::string &error);

} // namespace stack3d

#endif // STACK3D_COMMON_JSON_PARSE_HH
