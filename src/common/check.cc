#include "common/check.hh"

#include "common/logging.hh"

namespace stack3d {
namespace check_detail {

FailureStream::FailureStream(const char *file, int line,
                             const char *macro, const char *expr)
    : _file(file), _line(line)
{
    _os << macro << " failed: '" << expr << "'";
}

FailureStream::~FailureStream()
{
    std::string message = _os.str();
    detail::panicImpl(_file, _line, message);
}

void
boundsFailure(const char *file, int line, unsigned long long index,
              unsigned long long size)
{
    std::ostringstream os;
    os << "S3D_BOUNDS failed: index " << index << " >= size " << size;
    detail::panicImpl(file, line, os.str());
}

} // namespace check_detail
} // namespace stack3d
