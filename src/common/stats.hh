/**
 * @file
 * A small statistics package in the spirit of gem5's stats framework.
 *
 * Statistics register themselves with a StatGroup; groups can be nested
 * and dumped as text. Supported kinds:
 *  - Scalar:       a single counter / value
 *  - Average:      mean of samples
 *  - Distribution: bucketed histogram with min/max/mean/stddev
 *  - Formula:      value computed from other stats at dump time
 */

#ifndef STACK3D_COMMON_STATS_HH
#define STACK3D_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace stack3d {
namespace stats {

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print "name value # desc" line(s). */
    virtual void print(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset to the initial (empty) state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A single scalar counter / accumulator. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {
    }

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** Arithmetic mean of samples. */
class Average : public StatBase
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {
    }

    void sample(double v) { _sum += v; ++_count; }

    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/** Bucketed distribution with running moments. */
class Distribution : public StatBase
{
  public:
    /**
     * @param lo        lower bound of the first bucket
     * @param hi        upper bound of the last bucket
     * @param num_buckets  number of equal-width buckets in [lo, hi)
     */
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double lo, double hi, unsigned num_buckets);

    void sample(double v);

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double stddev() const;
    double min() const { return _min; }
    double max() const { return _max; }
    std::uint64_t bucketCount(unsigned i) const;
    std::uint64_t underflows() const { return _underflow; }
    std::uint64_t overflows() const { return _overflow; }
    unsigned numBuckets() const { return unsigned(_buckets.size()); }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    double _lo;
    double _hi;
    double _bucket_width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sum_sq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** A value computed from other statistics at print time. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          _fn(std::move(fn))
    {
    }

    double value() const { return _fn ? _fn() : 0.0; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * A named collection of statistics and child groups. Groups do not own
 * their stats (stats are members of simulator objects); they hold
 * non-owning pointers valid for the lifetime of the owning object.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Register a statistic (called by StatBase's constructor). */
    void addStat(StatBase *stat);

    /** Find a directly-owned stat by name; nullptr if absent. */
    const StatBase *findStat(const std::string &name) const;

    /** Dump this group and all children as text. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and its children. */
    void resetAll();

    const std::vector<StatBase *> &statList() const { return _stats; }

    const std::vector<StatGroup *> &children() const { return _children; }

  private:
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    std::string _name;
    StatGroup *_parent = nullptr;
    std::vector<StatBase *> _stats;
    std::vector<StatGroup *> _children;
};

} // namespace stats
} // namespace stack3d

#endif // STACK3D_COMMON_STATS_HH
