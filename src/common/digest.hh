/**
 * @file
 * The one FNV-1a digest implementation shared by everything that
 * content-addresses configuration: RunManifest provenance digests,
 * study-cell seed keys, and stack3d-serve request/cache keys. Cache
 * correctness depends on these digests never silently shifting, so
 * the scheme lives here exactly once and tests pin known values.
 *
 * Two layers:
 *  - fnv1a(): the plain 64-bit FNV-1a hash of a byte string.
 *  - Fnv1aDigest: an order-sensitive streaming digest over a
 *    *sequence* of fields. Each field is mixed length-prefixed, so
 *    {"ab","c"} and {"a","bc"} digest differently.
 */

#ifndef STACK3D_COMMON_DIGEST_HH
#define STACK3D_COMMON_DIGEST_HH

#include <cstdint>
#include <string>

namespace stack3d {

/** 64-bit FNV-1a of a byte string (offset basis / prime per spec). */
[[nodiscard]] std::uint64_t fnv1a(const std::string &s);

/**
 * Order-sensitive streaming digest: mix() each field in a canonical
 * order, then read value(). Equal field sequences give equal digests
 * on every platform; any insertion, removal, or reordering changes
 * the result.
 */
class Fnv1aDigest
{
  public:
    /** Mix one string field (length-prefixed). */
    void mix(const std::string &s);

    /** Mix an integer field (as its decimal string). */
    void mix(std::uint64_t v);

    /**
     * Mix a double field via its canonical text form (%.17g, enough
     * digits to round-trip every finite double exactly).
     */
    void mixDouble(double v);

    [[nodiscard]] std::uint64_t value() const { return _hash; }

  private:
    std::uint64_t _hash = 0xcbf29ce484222325ull;
};

/**
 * Canonical text form of a double: %.17g, the same formatting the
 * digest mixes and the exact-JSON writer emits, so "the digest of a
 * spec" and "the digest of its JSON round-trip" agree.
 */
[[nodiscard]] std::string canonicalDouble(double v);

/** Digest rendered the way result files carry it: "0x%016x". */
[[nodiscard]] std::string digestHex(std::uint64_t digest);

} // namespace stack3d

#endif // STACK3D_COMMON_DIGEST_HH
