#include "table.hh"

#include <algorithm>
#include <iomanip>

#include "logging.hh"

namespace stack3d {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    stack3d_assert(!_headers.empty(), "table needs at least one column");
}

TextTable &
TextTable::newRow()
{
    _rows.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &value)
{
    stack3d_assert(!_rows.empty(), "cell() before newRow()");
    stack3d_assert(_rows.back().size() < _headers.size(),
                   "row has more cells than headers");
    _rows.back().push_back(value);
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

TextTable &
TextTable::cell(long long value)
{
    return cell(std::to_string(value));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < _headers.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << (c ? "  " : "") << std::left
               << std::setw(int(widths[c])) << v;
        }
        os << "\n";
    };

    print_row(_headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << "\n";
    };
    emit(_headers);
    for (const auto &row : _rows)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n==== " << title << " ====\n\n";
}

} // namespace stack3d
