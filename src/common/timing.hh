/**
 * @file
 * Wall-clock timing for study cells and bench drivers.
 */

#ifndef STACK3D_COMMON_TIMING_HH
#define STACK3D_COMMON_TIMING_HH

#include <chrono>

namespace stack3d {

/** Monotonic wall-clock stopwatch, running from construction. */
class WallTimer
{
  public:
    WallTimer() : _start(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { _start = Clock::now(); }

    /** Seconds elapsed since construction / the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - _start)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point _start;
};

} // namespace stack3d

#endif // STACK3D_COMMON_TIMING_HH
