/**
 * @file
 * Deterministic fault injection for chaos testing.
 *
 * A fault *point* is a named site in the code where a failure can be
 * provoked on purpose: a disk write that pretends the disk is full, a
 * pool task that dawdles, a study cell that throws halfway through.
 * Points are declared at the call site:
 *
 *    if (S3D_FAULT_POINT("serve.disk.write"))
 *        return;                        // behave as if write failed
 *    sleepMs(S3D_FAULT_DELAY("serve.disk.latency"));
 *
 * and configured externally, either via the environment
 *
 *    STACK3D_FAULTS=serve.disk.write:0.1,exec.task.slow:0.05:20
 *    STACK3D_FAULT_SEED=42
 *
 * (name:probability[:delay_ms] comma list; `@path` loads a JSON file
 * {"seed": 42, "points": {"serve.disk.write": 0.1,
 *  "exec.task.slow": {"p": 0.05, "delay_ms": 20}}}), or in process
 * with FaultRegistry::configure().
 *
 * Determinism: each point owns its own xoshiro stream derived from
 * (master seed, fnv1a(point name)), so the k-th decision of a point
 * is a pure function of the seed — two runs with the same seed and
 * the same (serialized) evaluation order fire identically, which is
 * what makes chaos runs replayable and their counters comparable.
 * Points evaluated concurrently from several threads still each see
 * a deterministic stream, but the assignment of decisions to callers
 * then depends on interleaving; chaos CI therefore drives the serial
 * transports. Unconfigured builds pay one inline atomic load per
 * S3D_FAULT_POINT — faults off is the zero-cost default.
 *
 * The registry keeps per-point evaluation/fire counters; servers
 * export them (serve.fault.*) so a chaos run's fault schedule is
 * visible in --stats-json and replays can be diffed.
 */

#ifndef STACK3D_COMMON_FAULT_HH
#define STACK3D_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace stack3d {

/** Configuration and live counters of one named fault point. */
struct FaultPointInfo
{
    std::string name;
    double probability = 0.0;    ///< chance each check fires, [0, 1]
    unsigned delay_ms = 10;      ///< injected latency when it fires
    std::uint64_t checks = 0;    ///< times the point was evaluated
    std::uint64_t fires = 0;     ///< times it fired
};

namespace fault_detail {

/** One branch on this is the whole cost of a disabled fault point. */
extern std::atomic<bool> g_faults_enabled;

/** Slow path: registry lookup + seeded draw (fault.cc). */
[[nodiscard]] bool shouldFire(const char *point);

/** Slow path: delay draw; 0 when the point did not fire. */
[[nodiscard]] unsigned delayMs(const char *point);

} // namespace fault_detail

/**
 * Process-wide fault-point registry. All methods are thread-safe;
 * points unknown to the configuration never fire.
 */
class FaultRegistry
{
  public:
    /**
     * Replace the configuration from a spec string
     * ("name:prob[:delay_ms],..." or "@file.json"; empty disables
     * all faults). @return false with @p error set on a malformed
     * spec (the previous configuration is kept).
     */
    static bool configure(const std::string &spec, std::uint64_t seed,
                          std::string &error);

    /**
     * Configure from $STACK3D_FAULTS / $STACK3D_FAULT_SEED. Called
     * once by daemon/bench mains; a malformed value is fatal()
     * (silently ignoring a chaos config would fake a green run).
     * No-op when the variable is unset.
     */
    static void configureFromEnvironment();

    /** Drop every point and disable injection. */
    static void reset();

    /** True when at least one point is configured. */
    static bool enabled()
    {
        return fault_detail::g_faults_enabled.load(
            std::memory_order_relaxed);
    }

    /**
     * Snapshot of every configured point (name-sorted). Exporters
     * (the serve daemon's serve.fault.* counters) fold this into
     * their own counter sets; common stays obs-free.
     */
    static std::vector<FaultPointInfo> snapshot();
};

} // namespace stack3d

/**
 * Evaluate the named fault point: true when the caller should act
 * out the failure. Near-zero when no faults are configured.
 */
#define S3D_FAULT_POINT(name)                                               \
    (::stack3d::FaultRegistry::enabled() &&                                 \
     ::stack3d::fault_detail::shouldFire(name))

/**
 * Latency variant: milliseconds of delay to inject (0 = none).
 * The draw consumes one decision of the point's stream, exactly like
 * S3D_FAULT_POINT.
 */
#define S3D_FAULT_DELAY(name)                                               \
    (::stack3d::FaultRegistry::enabled()                                    \
         ? ::stack3d::fault_detail::delayMs(name)                           \
         : 0u)

#endif // STACK3D_COMMON_FAULT_HH
