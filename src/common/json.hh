/**
 * @file
 * A minimal streaming JSON writer for machine-readable bench output.
 * Handles nesting, comma placement, string escaping, and non-finite
 * doubles (emitted as null, since JSON has no NaN/Inf).
 */

#ifndef STACK3D_COMMON_JSON_HH
#define STACK3D_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace stack3d {

/**
 * Streaming JSON writer.
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("threads").value(8);
 *   w.key("cells").beginArray();
 *   w.beginObject(); ... w.endObject();
 *   w.endArray();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    /**
     * @param compact emit no whitespace at all — for NDJSON wire
     *        lines and digest-canonical text, where byte layout is
     *        part of the contract. Default is pretty-printed.
     */
    explicit JsonWriter(std::ostream &os, bool compact = false)
        : _os(os), _compact(compact)
    {
    }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);

    /**
     * Emit a double with enough digits (%.17g) to round-trip the
     * exact bit pattern through parseJson. value(double) prints a
     * display-precision %.9g; serialized study specs must survive
     * fromJson(toJson(spec)) bit-exactly, so they use this.
     */
    JsonWriter &valueExact(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(bool v);

    static std::string escape(const std::string &s);

  private:
    /** Emit separator/newline/indent appropriate before a value. */
    void prepare();
    void indent();

    struct Scope
    {
        bool is_array = false;
        bool has_items = false;
    };

    std::ostream &_os;
    std::vector<Scope> _scopes;
    bool _after_key = false;
    bool _compact = false;
};

} // namespace stack3d

#endif // STACK3D_COMMON_JSON_HH
