/**
 * @file
 * The stack3d contract layer: assertion macros with a streaming
 * message API, used to make the determinism and lifecycle invariants
 * the simulator relies on *enforced* rather than documented.
 *
 *  - S3D_ASSERT(cond):  always-on invariant. Violation is a stack3d
 *    bug; aborts via panic so a debugger / core dump captures state.
 *  - S3D_DCHECK(cond):  debug contract. Compiled out entirely unless
 *    the build defines S3D_CHECKED (the `checked` CMake preset);
 *    free to use on hot paths (mesh indexing, per-record replay).
 *  - S3D_BOUNDS(i, n):  index guard that returns `i`, so it nests in
 *    subscripts: `_records[S3D_BOUNDS(i, _records.size())]`. Checked
 *    only under S3D_CHECKED; compiles to the bare index otherwise.
 *
 * Both macros stream extra context:
 *
 *    S3D_ASSERT(z < nz) << "z=" << z << " nz=" << nz;
 *
 * The message expressions after << are only evaluated on failure
 * (and never under the compiled-out S3D_DCHECK), so they may be
 * arbitrarily expensive.
 *
 * Relationship to logging.hh: stack3d_assert remains for variadic
 * call sites; S3D_* adds the streaming form, the Release/checked
 * split, and the bounds helper. Both funnel into detail::panicImpl,
 * so failure behaviour (abort + file:line message) is identical.
 */

#ifndef STACK3D_COMMON_CHECK_HH
#define STACK3D_COMMON_CHECK_HH

#include <cstddef>
#include <sstream>

namespace stack3d {
namespace check_detail {

/**
 * Collects the streamed message for one failed check and panics in
 * its destructor — the classic stream-until-end-of-statement trick,
 * so the macro can sit to the left of any number of `<<`.
 */
class FailureStream
{
  public:
    FailureStream(const char *file, int line, const char *macro,
                  const char *expr);

    /** Panics (aborts) with the accumulated message. */
    ~FailureStream();

    FailureStream(const FailureStream &) = delete;
    FailureStream &operator=(const FailureStream &) = delete;

    template <typename T>
    FailureStream &
    operator<<(const T &value)
    {
        if (_first) {
            _os << "; ";
            _first = false;
        }
        _os << value;
        return *this;
    }

  private:
    const char *_file;
    int _line;
    bool _first = true;
    std::ostringstream _os;
};

/**
 * Lowest-ish-precedence sink that turns a FailureStream expression
 * into void, so both arms of the macro's ?: have type void.
 */
struct StreamVoidifier
{
    /** const& so a bare, message-less check's temporary binds too. */
    void operator&(const FailureStream &) {}
};

[[noreturn]] void boundsFailure(const char *file, int line,
                                unsigned long long index,
                                unsigned long long size);

} // namespace check_detail
} // namespace stack3d

/** Always-on invariant with streaming context. */
#define S3D_ASSERT(cond)                                                    \
    (cond) ? (void)0                                                        \
           : ::stack3d::check_detail::StreamVoidifier() &                   \
                 ::stack3d::check_detail::FailureStream(                    \
                     __FILE__, __LINE__, "S3D_ASSERT", #cond)

#ifdef S3D_CHECKED

#define S3D_DCHECK(cond)                                                    \
    (cond) ? (void)0                                                        \
           : ::stack3d::check_detail::StreamVoidifier() &                   \
                 ::stack3d::check_detail::FailureStream(                    \
                     __FILE__, __LINE__, "S3D_DCHECK", #cond)

namespace stack3d {
namespace check_detail {

template <typename IndexT>
constexpr IndexT
boundsChecked(IndexT index, std::size_t size, const char *file,
              int line)
{
    if (static_cast<unsigned long long>(index) >=
        static_cast<unsigned long long>(size)) {
        boundsFailure(file, line,
                      static_cast<unsigned long long>(index),
                      static_cast<unsigned long long>(size));
    }
    return index;
}

} // namespace check_detail
} // namespace stack3d

#define S3D_BOUNDS(index, size)                                             \
    ::stack3d::check_detail::boundsChecked((index), (size), __FILE__,       \
                                           __LINE__)

#else // !S3D_CHECKED

/**
 * Compiled-out form: `true || (cond)` keeps the condition compiled
 * (so it cannot rot, and its operands count as used) while the
 * short-circuit guarantees it is never evaluated; the streamed
 * operands sit in the dead ?: branch and vanish with it.
 */
#define S3D_DCHECK(cond)                                                    \
    (true || (cond)) ? (void)0                                              \
                     : ::stack3d::check_detail::StreamVoidifier() &         \
                           ::stack3d::check_detail::FailureStream(          \
                               __FILE__, __LINE__, "S3D_DCHECK", #cond)

#define S3D_BOUNDS(index, size) (index)

#endif // S3D_CHECKED

#endif // STACK3D_COMMON_CHECK_HH
