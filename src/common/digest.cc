#include "common/digest.hh"

#include <cinttypes>
#include <cstdio>

namespace stack3d {

namespace {

constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kPrime = 0x100000001b3ull;

std::uint64_t
mixBytes(std::uint64_t hash, const std::string &s)
{
    for (char c : s) {
        hash ^= std::uint64_t(static_cast<unsigned char>(c));
        hash *= kPrime;
    }
    return hash;
}

} // anonymous namespace

std::uint64_t
fnv1a(const std::string &s)
{
    return mixBytes(kOffsetBasis, s);
}

void
Fnv1aDigest::mix(const std::string &s)
{
    // Length prefix keeps field boundaries in the digest.
    _hash ^= s.size();
    _hash *= kPrime;
    _hash = mixBytes(_hash, s);
}

void
Fnv1aDigest::mix(std::uint64_t v)
{
    mix(std::to_string(v));
}

void
Fnv1aDigest::mixDouble(double v)
{
    mix(canonicalDouble(v));
}

std::string
canonicalDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
digestHex(std::uint64_t digest)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, digest);
    return buf;
}

} // namespace stack3d
