/**
 * @file
 * A minimal discrete-event queue. Events are closures scheduled at an
 * absolute tick; ties are broken by insertion order so simulation is
 * fully deterministic.
 */

#ifndef STACK3D_COMMON_EVENT_QUEUE_HH
#define STACK3D_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "logging.hh"
#include "units.hh"

namespace stack3d {

/** Deterministic discrete-event queue keyed by Cycles. */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action at absolute time @p when (>= now). */
    void
    schedule(Cycles when, Action action)
    {
        stack3d_assert(when >= _now,
                       "scheduling into the past: when=", when,
                       " now=", _now);
        _heap.push(Event{when, _next_seq++, std::move(action)});
    }

    /** Current simulated time. */
    Cycles now() const { return _now; }

    /** True if no events remain. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return _heap.size(); }

    /**
     * Pop and run the next event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (_heap.empty())
            return false;
        // The action may schedule new events, so move it out first.
        Event ev = _heap.top();
        _heap.pop();
        _now = ev.when;
        ev.action();
        return true;
    }

    /** Run until the queue drains. @return final time. */
    Cycles
    runAll()
    {
        while (runOne()) {
        }
        return _now;
    }

    /** Run events with time <= @p limit. @return current time. */
    Cycles
    runUntil(Cycles limit)
    {
        while (!_heap.empty() && _heap.top().when <= limit)
            runOne();
        if (_now < limit)
            _now = limit;
        return _now;
    }

  private:
    struct Event
    {
        Cycles when;
        std::uint64_t seq;
        Action action;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> _heap;
    Cycles _now = 0;
    std::uint64_t _next_seq = 0;
};

} // namespace stack3d

#endif // STACK3D_COMMON_EVENT_QUEUE_HH
