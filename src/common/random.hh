/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulation. A thin wrapper over the xoshiro256** generator with
 * convenience draws used across the simulators.
 */

#ifndef STACK3D_COMMON_RANDOM_HH
#define STACK3D_COMMON_RANDOM_HH

#include <cstdint>

#include "logging.hh"

namespace stack3d {

/** Deterministic, seedable PRNG (xoshiro256**). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x5cafe3dULL) { reseed(seed); }

    /** Re-seed the state via splitmix64 expansion of @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : _state) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;

        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        stack3d_assert(bound != 0, "uniformInt with zero bound");
        // Multiply-shift rejection-free mapping (Lemire); tiny bias is
        // irrelevant for simulation workload generation.
        unsigned __int128 m = (unsigned __int128)next() * bound;
        return std::uint64_t(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniformDouble()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniformDouble(double lo, double hi)
    {
        return lo + (hi - lo) * uniformDouble();
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniformDouble() < p; }

    /**
     * Geometric-ish run length: number of consecutive successes with
     * probability @p p each, capped at @p cap.
     */
    unsigned
    runLength(double p, unsigned cap)
    {
        unsigned n = 0;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace stack3d

#endif // STACK3D_COMMON_RANDOM_HH
