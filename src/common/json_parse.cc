#include "common/json_parse.hh"

#include <cctype>
#include <cstdlib>

namespace stack3d {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &member : object) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

namespace {

/**
 * Resolve @p path from @p start against @p node. Keys are tried
 * shortest-first (up to the next dot), falling back to progressively
 * longer dotted prefixes with backtracking: flat counter names such
 * as "thermal.k=60/cu.v_cycles" legitimately contain dots, so inside
 * "counters" the whole remainder can be a single key.
 */
const JsonValue *
findPathFrom(const JsonValue &node, const std::string &path,
             std::size_t start)
{
    std::size_t dot = path.find('.', start);
    for (;;) {
        const std::string key = path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        if (const JsonValue *child = node.find(key)) {
            if (dot == std::string::npos)
                return child;
            if (const JsonValue *hit =
                    findPathFrom(*child, path, dot + 1))
                return hit;
        }
        if (dot == std::string::npos)
            return nullptr;
        dot = path.find('.', dot + 1);
    }
}

} // anonymous namespace

const JsonValue *
JsonValue::findPath(const std::string &dotted_path) const
{
    return findPathFrom(*this, dotted_path, 0);
}

namespace {

/** Single-pass parser over the input string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : _text(text), _error(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWhitespace();
        if (!parseValue(out))
            return false;
        skipWhitespace();
        if (_pos != _text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        _error = "offset " + std::to_string(_pos) + ": " + message;
        return false;
    }

    void
    skipWhitespace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    expect(char c)
    {
        if (_pos >= _text.size() || _text[_pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++_pos;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        switch (_text[_pos]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            return parseLiteral("true", out, JsonValue::Kind::Bool,
                                true);
          case 'f':
            return parseLiteral("false", out, JsonValue::Kind::Bool,
                                false);
          case 'n':
            return parseLiteral("null", out, JsonValue::Kind::Null,
                                false);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseLiteral(const char *word, JsonValue &out,
                 JsonValue::Kind kind, bool boolean)
    {
        for (const char *p = word; *p; ++p, ++_pos) {
            if (_pos >= _text.size() || _text[_pos] != *p)
                return fail(std::string("bad literal, expected ") +
                            word);
        }
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            return fail("expected a value");
        std::string token = _text.substr(start, _pos - start);
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number '" + token + "'");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        // Keep the raw token: consumers of 64-bit integer fields
        // (seeds, cache keys) re-parse it exactly, since a double
        // only holds integers up to 2^53.
        out.string = token;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c == '\\') {
                ++_pos;
                if (_pos >= _text.size())
                    return fail("unterminated escape");
                char esc = _text[_pos];
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (_pos + 4 >= _text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = _text[_pos + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    _pos += 4;
                    // UTF-8 encode (surrogate pairs kept as-is; the
                    // writer never emits them).
                    if (code < 0x80) {
                        out.push_back(char(code));
                    } else if (code < 0x800) {
                        out.push_back(char(0xC0 | (code >> 6)));
                        out.push_back(char(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(char(0xE0 | (code >> 12)));
                        out.push_back(
                            char(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(char(0x80 | (code & 0x3F)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++_pos;
            } else {
                out.push_back(c);
                ++_pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out)
    {
        if (!expect('['))
            return false;
        out.kind = JsonValue::Kind::Array;
        skipWhitespace();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            JsonValue element;
            skipWhitespace();
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipWhitespace();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        if (!expect('{'))
            return false;
        out.kind = JsonValue::Kind::Object;
        skipWhitespace();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (!expect(':'))
                return false;
            skipWhitespace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &_text;
    std::string &_error;
    std::size_t _pos = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue();
    error.clear();
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace stack3d
