/**
 * @file
 * Plain-text table formatter used by the bench harnesses to print the
 * paper's tables and figure data series in aligned columns, and to
 * emit the same data as CSV for plotting.
 */

#ifndef STACK3D_COMMON_TABLE_HH
#define STACK3D_COMMON_TABLE_HH

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace stack3d {

/** A simple column-aligned text/CSV table. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Start a new row; subsequent cell() calls fill it left to right. */
    TextTable &newRow();

    /** Append a string cell to the current row. */
    TextTable &cell(const std::string &value);

    /** Append a formatted numeric cell (fixed, @p precision digits). */
    TextTable &cell(double value, int precision = 2);

    /** Append an integer cell. */
    TextTable &cell(long long value);

    /** Number of data rows so far. */
    std::size_t numRows() const { return _rows.size(); }

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Print a section banner, e.g. "==== Figure 5 ====". */
void printBanner(std::ostream &os, const std::string &title);

} // namespace stack3d

#endif // STACK3D_COMMON_TABLE_HH
