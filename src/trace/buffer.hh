/**
 * @file
 * In-memory trace container with summary statistics (operation mix,
 * footprint, dependency-chain properties). Traces are immutable once
 * built by a writer; the memory-hierarchy engine iterates them.
 */

#ifndef STACK3D_TRACE_BUFFER_HH
#define STACK3D_TRACE_BUFFER_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace stack3d {
namespace trace {

class TraceColumns;

/** Summary statistics of a trace. */
struct TraceStats
{
    std::uint64_t num_records = 0;
    std::uint64_t num_loads = 0;
    std::uint64_t num_stores = 0;
    std::uint64_t num_ifetches = 0;
    std::uint64_t num_with_dep = 0;
    /** Unique 64 B lines touched. */
    std::uint64_t footprint_lines = 0;
    /** Footprint in bytes (lines * 64). */
    std::uint64_t footprint_bytes = 0;
    /** Longest dependency chain (records). */
    std::uint64_t max_dep_chain = 0;
    std::uint64_t records_cpu0 = 0;
    std::uint64_t records_cpu1 = 0;
};

/** An immutable sequence of trace records. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::vector<TraceRecord> records);

    // Copies share nothing; the column cache is rebuilt on demand.
    TraceBuffer(const TraceBuffer &other);
    TraceBuffer &operator=(const TraceBuffer &other);
    TraceBuffer(TraceBuffer &&other) noexcept;
    TraceBuffer &operator=(TraceBuffer &&other) noexcept;
    ~TraceBuffer();

    const TraceRecord &operator[](std::size_t i) const { return _records[i]; }
    std::size_t size() const { return _records.size(); }
    bool empty() const { return _records.empty(); }

    auto begin() const { return _records.begin(); }
    auto end() const { return _records.end(); }

    const std::vector<TraceRecord> &records() const { return _records; }

    /**
     * Validate structural invariants: every dependency points at an
     * earlier record. @return true if well-formed.
     */
    [[nodiscard]] bool validate() const;

    /** Compute summary statistics (O(n), walks the whole trace). */
    TraceStats computeStats() const;

    /**
     * SoA decode of this trace, built lazily on first use and cached
     * for the buffer's lifetime. Studies and benchmarks replay the
     * same immutable buffer many times (once per stack option, per
     * rep); decoding and order-indexing it once amortizes that work
     * across every replay. Thread-safe: concurrent first callers
     * race to publish one decode, losers discard theirs.
     */
    const TraceColumns &columns() const;

  private:
    std::vector<TraceRecord> _records;
    /** Lazily built column cache; owned, never mutated once set. */
    mutable std::atomic<const TraceColumns *> _columns{nullptr};
};

} // namespace trace
} // namespace stack3d

#endif // STACK3D_TRACE_BUFFER_HH
