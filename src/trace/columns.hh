/**
 * @file
 * Structure-of-arrays view of a trace for the hot replay loop.
 *
 * TraceBuffer stores 32-byte TraceRecord structs; replay only touches
 * addr/dep/cpu/op/size, and touches them millions of times per study
 * cell. TraceColumns decodes the AoS records batch-by-batch into
 * contiguous per-field column arrays so the engine streams narrow,
 * cache-dense data instead of striding through fat structs. The
 * columns are a *view* built from a TraceBuffer — the on-disk format
 * and `trace::File`/`Writer` round-trips are untouched, so existing
 * traces stay byte-identical.
 */

#ifndef STACK3D_TRACE_COLUMNS_HH
#define STACK3D_TRACE_COLUMNS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/buffer.hh"
#include "trace/record.hh"

namespace stack3d {
namespace trace {

/**
 * Batched SoA decode of a TraceBuffer.
 *
 * assign() walks the records in fixed-size batches (kDecodeBatch) so
 * the working set of one decode step stays inside L1; the number of
 * batches is reported for the mem.replay.batches counter. It also
 * builds the per-cpu program-order index the replay window refills
 * from, so replaying the same buffer repeatedly (one run per stack
 * option and rep) pays for decode and indexing exactly once — see
 * TraceBuffer::columns().
 */
class TraceColumns
{
  public:
    /** Records decoded per batch; sized so one batch's output columns
     *  (~18 B/record) fit comfortably in a 32 KiB L1D. */
    static constexpr std::size_t kDecodeBatch = 1024;

    TraceColumns() = default;
    explicit TraceColumns(const TraceBuffer &buf) { assign(buf); }

    /** Decode @p buf into columns, replacing previous contents. */
    void assign(const TraceBuffer &buf);

    std::size_t size() const { return _addr.size(); }
    bool empty() const { return _addr.empty(); }

    /** Number of decode batches the last assign() performed. */
    std::uint64_t decodeBatches() const { return _decode_batches; }

    const std::uint64_t *addr() const { return _addr.data(); }
    const std::uint64_t *dep() const { return _dep.data(); }
    const std::uint8_t *cpu() const { return _cpu.data(); }
    const MemOp *op() const { return _op.data(); }
    const std::uint8_t *accessSize() const { return _size.data(); }

    /** Highest cpu id seen plus one (0 for an empty trace). */
    unsigned numCpus() const { return unsigned(_cpu_count.size()); }

    /** Records tagged with @p cpu (0 past numCpus()). */
    std::uint64_t
    cpuCount(unsigned cpu) const
    {
        return cpu < _cpu_count.size() ? _cpu_count[cpu] : 0;
    }

    /** Offset of @p cpu's bucket in order() (size() past numCpus()). */
    std::uint64_t
    orderBase(unsigned cpu) const
    {
        return cpu < _order_base.size() ? _order_base[cpu] : size();
    }

    /** Record indices, bucketed per cpu in program order: the
     *  indices of cpu c's records, ascending, occupy
     *  [orderBase(c), orderBase(c) + cpuCount(c)). */
    const std::uint32_t *order() const { return _order.data(); }

  private:
    std::vector<std::uint64_t> _addr;
    std::vector<std::uint64_t> _dep;
    std::vector<std::uint8_t> _cpu;
    std::vector<MemOp> _op;
    std::vector<std::uint8_t> _size;
    std::vector<std::uint64_t> _cpu_count;
    std::vector<std::uint64_t> _order_base;
    std::vector<std::uint32_t> _order;
    std::uint64_t _decode_batches = 0;
};

} // namespace trace
} // namespace stack3d

#endif // STACK3D_TRACE_COLUMNS_HH
