/**
 * @file
 * Binary trace file serialization. The format is a fixed header
 * (magic, version, record count) followed by packed records. Intended
 * for caching generated traces between runs and for interchange.
 */

#ifndef STACK3D_TRACE_FILE_HH
#define STACK3D_TRACE_FILE_HH

#include <string>

#include "trace/buffer.hh"

namespace stack3d {
namespace trace {

/** Current trace file format version. */
constexpr std::uint32_t kTraceFileVersion = 1;

/**
 * Write @p buf to @p path.
 * Calls stack3d_fatal() if the file cannot be created or written.
 */
void writeTraceFile(const std::string &path, const TraceBuffer &buf);

/**
 * Read a trace file written by writeTraceFile().
 * Calls stack3d_fatal() on missing file, bad magic, or bad version.
 */
TraceBuffer readTraceFile(const std::string &path);

} // namespace trace
} // namespace stack3d

#endif // STACK3D_TRACE_FILE_HH
