#include "file.hh"

#include <cstring>
#include <fstream>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace stack3d {
namespace trace {

namespace {

constexpr char kMagic[8] = {'S', '3', 'D', 'T', 'R', 'A', 'C', 'E'};

/** On-disk packed record: 8+8+8+1+1+1 = 27 bytes + 5 pad = 32. */
struct PackedRecord
{
    std::uint64_t addr;
    std::uint64_t ip;
    std::uint64_t dep;
    std::uint8_t cpu;
    std::uint8_t op;
    std::uint8_t size;
    std::uint8_t pad[5];
};
static_assert(sizeof(PackedRecord) == 32, "packed record must be 32 B");

struct Header
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t num_records;
};
static_assert(sizeof(Header) == 24, "header must be 24 B");

} // anonymous namespace

void
writeTraceFile(const std::string &path, const TraceBuffer &buf)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        stack3d_fatal("cannot create trace file '", path, "'");

    Header hdr{};
    static_assert(std::is_trivially_copyable_v<Header>,
                  "header is written as raw bytes");
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic)); // lint3d: safe-memcpy-ok

    hdr.version = kTraceFileVersion;
    hdr.num_records = buf.size();
    out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));

    // Write in chunks to bound memory for very large traces.
    constexpr std::size_t chunk = 1 << 16;
    std::vector<PackedRecord> pack;
    pack.reserve(chunk);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceRecord &rec = buf[i];
        PackedRecord p{};
        p.addr = rec.addr;
        p.ip = rec.ip;
        p.dep = rec.dep;
        p.cpu = rec.cpu;
        p.op = std::uint8_t(rec.op);
        p.size = rec.size;
        pack.push_back(p);
        if (pack.size() == chunk) {
            out.write(reinterpret_cast<const char *>(pack.data()),
                      std::streamsize(pack.size() * sizeof(PackedRecord)));
            pack.clear();
        }
    }
    if (!pack.empty()) {
        out.write(reinterpret_cast<const char *>(pack.data()),
                  std::streamsize(pack.size() * sizeof(PackedRecord)));
    }
    if (!out)
        stack3d_fatal("write error on trace file '", path, "'");
}

TraceBuffer
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        stack3d_fatal("cannot open trace file '", path, "'");

    Header hdr{};
    in.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!in || std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        stack3d_fatal("'", path, "' is not a stack3d trace file");
    if (hdr.version != kTraceFileVersion) {
        stack3d_fatal("trace file version ", hdr.version,
                      " unsupported (expected ", kTraceFileVersion, ")");
    }

    std::vector<TraceRecord> records;
    records.reserve(hdr.num_records);
    constexpr std::size_t chunk = 1 << 16;
    std::vector<PackedRecord> pack(chunk);
    std::uint64_t remaining = hdr.num_records;
    while (remaining > 0) {
        std::size_t n = std::size_t(std::min<std::uint64_t>(remaining,
                                                            chunk));
        in.read(reinterpret_cast<char *>(pack.data()),
                std::streamsize(n * sizeof(PackedRecord)));
        if (!in)
            stack3d_fatal("truncated trace file '", path, "'");
        for (std::size_t i = 0; i < n; ++i) {
            const PackedRecord &p = pack[i];
            TraceRecord rec;
            rec.addr = p.addr;
            rec.ip = p.ip;
            rec.dep = p.dep;
            rec.cpu = p.cpu;
            rec.op = MemOp(p.op);
            rec.size = p.size;
            records.push_back(rec);
        }
        remaining -= n;
    }

    TraceBuffer buf(std::move(records));
    if (!buf.validate())
        stack3d_fatal("trace file '", path, "' contains invalid records");
    return buf;
}

} // namespace trace
} // namespace stack3d
