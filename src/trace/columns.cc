#include "trace/columns.hh"

#include <algorithm>

namespace stack3d {
namespace trace {

void
TraceColumns::assign(const TraceBuffer &buf)
{
    const std::size_t n = buf.size();
    _addr.resize(n);
    _dep.resize(n);
    _cpu.resize(n);
    _op.resize(n);
    _size.resize(n);
    _decode_batches = 0;

    const TraceRecord *recs = buf.records().data();
    for (std::size_t base = 0; base < n; base += kDecodeBatch) {
        const std::size_t end = std::min(n, base + kDecodeBatch);
        // One field at a time over the batch: each pass is a pure
        // gather with a single output stream, which the compiler
        // turns into tight unrolled copies.
        for (std::size_t i = base; i < end; ++i)
            _addr[i] = recs[i].addr;
        for (std::size_t i = base; i < end; ++i)
            _dep[i] = recs[i].dep;
        for (std::size_t i = base; i < end; ++i)
            _cpu[i] = recs[i].cpu;
        for (std::size_t i = base; i < end; ++i)
            _op[i] = recs[i].op;
        for (std::size_t i = base; i < end; ++i)
            _size[i] = recs[i].size;
        ++_decode_batches;
    }

    // Per-cpu program-order index, prefix-bucketed into one array —
    // built once here so every replay of this trace reuses it.
    unsigned cpus = 0;
    for (std::size_t i = 0; i < n; ++i)
        cpus = std::max(cpus, unsigned(_cpu[i]) + 1);
    _cpu_count.assign(cpus, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++_cpu_count[_cpu[i]];
    _order_base.assign(cpus, 0);
    for (unsigned c = 1; c < cpus; ++c)
        _order_base[c] = _order_base[c - 1] + _cpu_count[c - 1];
    _order.resize(n);
    std::vector<std::uint64_t> fill(_order_base);
    for (std::size_t i = 0; i < n; ++i)
        _order[fill[_cpu[i]]++] = std::uint32_t(i);
}

} // namespace trace
} // namespace stack3d
