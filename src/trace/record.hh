/**
 * @file
 * The memory-trace record format.
 *
 * Mirrors the trace the paper's generator emits (Section 2.1): one
 * record per memory instruction with the usual fields (cpu id, access
 * address, instruction pointer) plus the unique identification number
 * of an earlier record this record depends upon. The memory-hierarchy
 * simulator honors that dependency when issuing accesses.
 */

#ifndef STACK3D_TRACE_RECORD_HH
#define STACK3D_TRACE_RECORD_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace stack3d {
namespace trace {

/** Kind of memory operation a trace record describes. */
enum class MemOp : std::uint8_t
{
    Load = 0,
    Store = 1,
    Ifetch = 2,
};

/** Human-readable name of a MemOp. */
const char *memOpName(MemOp op);

/** Sentinel: record has no dependency. */
constexpr std::uint64_t kNoDep = ~std::uint64_t(0);

/**
 * One memory instruction in a trace. Records are identified by their
 * position (index) in the trace; @ref dep refers to such an index and
 * must be smaller than the record's own index.
 */
struct TraceRecord
{
    /** Virtual/physical address accessed (byte granularity). */
    Addr addr = 0;

    /** Instruction pointer of the memory instruction. */
    Addr ip = 0;

    /** Index of the earlier record this one depends on, or kNoDep. */
    std::uint64_t dep = kNoDep;

    /** Issuing processor (0-based). */
    std::uint8_t cpu = 0;

    /** Operation kind. */
    MemOp op = MemOp::Load;

    /** Access size in bytes (power of two, <= 64). */
    std::uint8_t size = 8;

    bool hasDep() const { return dep != kNoDep; }

    bool
    operator==(const TraceRecord &other) const
    {
        return addr == other.addr && ip == other.ip && dep == other.dep &&
               cpu == other.cpu && op == other.op && size == other.size;
    }
};

} // namespace trace
} // namespace stack3d

#endif // STACK3D_TRACE_RECORD_HH
