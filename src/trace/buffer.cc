#include "buffer.hh"

#include <algorithm>

namespace stack3d {
namespace trace {

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::Load:
        return "load";
      case MemOp::Store:
        return "store";
      case MemOp::Ifetch:
        return "ifetch";
    }
    return "unknown";
}

TraceBuffer::TraceBuffer(std::vector<TraceRecord> records)
    : _records(std::move(records))
{
}

bool
TraceBuffer::validate() const
{
    for (std::size_t i = 0; i < _records.size(); ++i) {
        const TraceRecord &rec = _records[i];
        if (rec.hasDep() && rec.dep >= i)
            return false;
        if (rec.size == 0 || rec.size > 64)
            return false;
    }
    return true;
}

TraceStats
TraceBuffer::computeStats() const
{
    TraceStats st;
    st.num_records = _records.size();

    // Unique 64 B lines via sort+unique: deterministic (no hash
    // iteration anywhere near results) and cache-friendlier than a
    // node-based set for multi-million-record traces.
    std::vector<Addr> lines;
    lines.reserve(_records.size());
    // depth[i] = length of the dependency chain ending at record i.
    std::vector<std::uint32_t> depth(_records.size(), 1);

    for (std::size_t i = 0; i < _records.size(); ++i) {
        const TraceRecord &rec = _records[i];
        switch (rec.op) {
          case MemOp::Load:
            ++st.num_loads;
            break;
          case MemOp::Store:
            ++st.num_stores;
            break;
          case MemOp::Ifetch:
            ++st.num_ifetches;
            break;
        }
        if (rec.hasDep()) {
            ++st.num_with_dep;
            depth[i] = depth[rec.dep] + 1;
        }
        st.max_dep_chain = std::max<std::uint64_t>(st.max_dep_chain,
                                                   depth[i]);
        if (rec.cpu == 0)
            ++st.records_cpu0;
        else
            ++st.records_cpu1;
        lines.push_back(rec.addr >> 6);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    st.footprint_lines = lines.size();
    st.footprint_bytes = st.footprint_lines * 64;
    return st;
}

} // namespace trace
} // namespace stack3d
