#include "buffer.hh"

#include <algorithm>

#include "trace/columns.hh"

namespace stack3d {
namespace trace {

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::Load:
        return "load";
      case MemOp::Store:
        return "store";
      case MemOp::Ifetch:
        return "ifetch";
    }
    return "unknown";
}

TraceBuffer::TraceBuffer(std::vector<TraceRecord> records)
    : _records(std::move(records))
{
}

TraceBuffer::TraceBuffer(const TraceBuffer &other)
    : _records(other._records)
{
}

TraceBuffer &
TraceBuffer::operator=(const TraceBuffer &other)
{
    if (this != &other) {
        _records = other._records;
        // lint3d: safe-naked-new-ok (atomic publish owns the cache)
        delete _columns.exchange(nullptr, std::memory_order_acq_rel);
    }
    return *this;
}

TraceBuffer::TraceBuffer(TraceBuffer &&other) noexcept
    : _records(std::move(other._records)),
      _columns(other._columns.exchange(nullptr,
                                       std::memory_order_acq_rel))
{
}

TraceBuffer &
TraceBuffer::operator=(TraceBuffer &&other) noexcept
{
    if (this != &other) {
        _records = std::move(other._records);
        // lint3d: safe-naked-new-ok (atomic publish owns the cache)
        delete _columns.exchange(
            other._columns.exchange(nullptr,
                                    std::memory_order_acq_rel),
            std::memory_order_acq_rel);
    }
    return *this;
}

TraceBuffer::~TraceBuffer()
{
    // lint3d: safe-naked-new-ok (atomic publish owns the cache)
    delete _columns.load(std::memory_order_acquire);
}

const TraceColumns &
TraceBuffer::columns() const
{
    const TraceColumns *cols = _columns.load(std::memory_order_acquire);
    if (cols)
        return *cols;
    // First use (or a race between first users): decode off to the
    // side, then try to publish. Exactly one decode wins; a loser
    // frees its copy and reads the winner's.
    // The cache pointer is published by CAS; std::atomic cannot hold
    // a unique_ptr, so lifetime is managed manually here and released
    // in the special members.
    // lint3d: safe-naked-new-ok (CAS-published owner)
    auto *fresh = new TraceColumns(*this);
    const TraceColumns *expected = nullptr;
    if (_columns.compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return *fresh;
    }
    delete fresh; // lint3d: safe-naked-new-ok (lost the publish race)
    return *expected;
}

bool
TraceBuffer::validate() const
{
    for (std::size_t i = 0; i < _records.size(); ++i) {
        const TraceRecord &rec = _records[i];
        if (rec.hasDep() && rec.dep >= i)
            return false;
        if (rec.size == 0 || rec.size > 64)
            return false;
    }
    return true;
}

TraceStats
TraceBuffer::computeStats() const
{
    TraceStats st;
    st.num_records = _records.size();

    // Unique 64 B lines via sort+unique: deterministic (no hash
    // iteration anywhere near results) and cache-friendlier than a
    // node-based set for multi-million-record traces.
    std::vector<Addr> lines;
    lines.reserve(_records.size());
    // depth[i] = length of the dependency chain ending at record i.
    std::vector<std::uint32_t> depth(_records.size(), 1);

    for (std::size_t i = 0; i < _records.size(); ++i) {
        const TraceRecord &rec = _records[i];
        switch (rec.op) {
          case MemOp::Load:
            ++st.num_loads;
            break;
          case MemOp::Store:
            ++st.num_stores;
            break;
          case MemOp::Ifetch:
            ++st.num_ifetches;
            break;
        }
        if (rec.hasDep()) {
            ++st.num_with_dep;
            depth[i] = depth[rec.dep] + 1;
        }
        st.max_dep_chain = std::max<std::uint64_t>(st.max_dep_chain,
                                                   depth[i]);
        if (rec.cpu == 0)
            ++st.records_cpu0;
        else
            ++st.records_cpu1;
        lines.push_back(rec.addr >> 6);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    st.footprint_lines = lines.size();
    st.footprint_bytes = st.footprint_lines * 64;
    return st;
}

} // namespace trace
} // namespace stack3d
