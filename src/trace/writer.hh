/**
 * @file
 * Trace generation with automatic dependency tracking.
 *
 * The paper's trace generator runs alongside a full-system simulator
 * and tags every memory record with the id of an earlier record it
 * depends on. Here, instrumented workload kernels call load()/store()
 * on a ThreadTracer. Dependencies come from two sources:
 *
 *  1. Explicit: the caller passes the record id that produced the
 *     address (e.g. the index-array load in a sparse gather) or the
 *     data being stored. This captures the address-generation chains
 *     that limit memory-level parallelism in sparse kernels.
 *  2. Implicit: a load depends on the most recent store to the same
 *     64 B line (RAW through memory), tracked automatically.
 *
 * Each record carries at most one dependency (the paper's format);
 * the explicit dependency wins when both exist.
 *
 * Per-thread traces are combined by TraceMerger, which interleaves
 * records from the threads in fixed-size chunks (modelling two cores
 * making progress at a similar rate) and remaps dependency ids into
 * the merged id space.
 */

#ifndef STACK3D_TRACE_WRITER_HH
#define STACK3D_TRACE_WRITER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "trace/buffer.hh"
#include "trace/record.hh"

namespace stack3d {
namespace trace {

/** Id of a record within a (per-thread) trace under construction. */
using RecordId = std::uint64_t;

/** Sentinel meaning "no explicit dependency". */
constexpr RecordId kNone = kNoDep;

/** Records one thread's memory instructions with dependency tracking. */
class ThreadTracer
{
  public:
    /**
     * @param cpu  cpu id stamped on every record
     * @param track_raw  track store->load dependencies through memory
     */
    explicit ThreadTracer(std::uint8_t cpu, bool track_raw = true)
        : _cpu(cpu), _track_raw(track_raw)
    {
    }

    /**
     * Record a load.
     * @param addr  byte address
     * @param ip    instruction pointer
     * @param addr_dep  record that produced this address (or kNone)
     * @param size  access size in bytes
     * @return id of the new record (usable as a future dependency)
     */
    RecordId load(Addr addr, Addr ip, RecordId addr_dep = kNone,
                  std::uint8_t size = 8);

    /**
     * Record a store.
     * @param data_dep  record that produced the stored value (or kNone)
     */
    RecordId store(Addr addr, Addr ip, RecordId data_dep = kNone,
                   std::uint8_t size = 8);

    /** Record an instruction fetch. */
    RecordId ifetch(Addr addr, std::uint8_t size = 16);

    /**
     * Pre-size the record store. Kernels know their record budget
     * (records_per_thread) up front; reserving once avoids the
     * doubling-regrowth copies of a multi-hundred-thousand-record
     * push sequence.
     */
    void reserve(std::size_t n) { _records.reserve(n); }

    std::size_t size() const { return _records.size(); }

    /** Steal the accumulated records (tracer resets to empty). */
    std::vector<TraceRecord> take();

  private:
    RecordId push(TraceRecord rec);

    std::uint8_t _cpu;
    bool _track_raw;
    std::vector<TraceRecord> _records;
    /**
     * 64 B line -> id of last store to it. Ordered map by policy
     * (lint3d det-unordered-container): only point lookups today,
     * but trace construction feeds bit-reproducible studies, and an
     * ordered container can never leak hash order into results.
     */
    std::map<Addr, RecordId> _last_writer;
};

/**
 * Merge per-thread traces into one SMP trace by chunk-wise round-robin
 * interleaving, remapping dependency ids into the merged space.
 */
class TraceMerger
{
  public:
    /** @param chunk  records taken from each thread per turn */
    explicit TraceMerger(std::size_t chunk = 64) : _chunk(chunk) {}

    /**
     * Interleave @p thread_traces (already stamped with cpu ids).
     * Dependencies always reference records from the same source
     * thread, so remapping preserves the "earlier record" invariant.
     */
    TraceBuffer merge(std::vector<std::vector<TraceRecord>> thread_traces)
        const;

  private:
    std::size_t _chunk;
};

} // namespace trace
} // namespace stack3d

#endif // STACK3D_TRACE_WRITER_HH
