#include "writer.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace stack3d {
namespace trace {

RecordId
ThreadTracer::push(TraceRecord rec)
{
    RecordId id = _records.size();
    stack3d_assert(!rec.hasDep() || rec.dep < id,
                   "dependency must reference an earlier record");
    _records.push_back(rec);
    return id;
}

RecordId
ThreadTracer::load(Addr addr, Addr ip, RecordId addr_dep, std::uint8_t size)
{
    TraceRecord rec;
    rec.addr = addr;
    rec.ip = ip;
    rec.cpu = _cpu;
    rec.op = MemOp::Load;
    rec.size = size;

    if (addr_dep != kNone) {
        rec.dep = addr_dep;
    } else if (_track_raw) {
        auto it = _last_writer.find(addr >> 6);
        if (it != _last_writer.end())
            rec.dep = it->second;
    }
    return push(rec);
}

RecordId
ThreadTracer::store(Addr addr, Addr ip, RecordId data_dep, std::uint8_t size)
{
    TraceRecord rec;
    rec.addr = addr;
    rec.ip = ip;
    rec.cpu = _cpu;
    rec.op = MemOp::Store;
    rec.size = size;
    if (data_dep != kNone)
        rec.dep = data_dep;

    RecordId id = push(rec);
    if (_track_raw)
        _last_writer[addr >> 6] = id;
    return id;
}

RecordId
ThreadTracer::ifetch(Addr addr, std::uint8_t size)
{
    TraceRecord rec;
    rec.addr = addr;
    rec.ip = addr;
    rec.cpu = _cpu;
    rec.op = MemOp::Ifetch;
    rec.size = size;
    return push(rec);
}

std::vector<TraceRecord>
ThreadTracer::take()
{
    _last_writer.clear();
    return std::move(_records);
}

TraceBuffer
TraceMerger::merge(std::vector<std::vector<TraceRecord>> thread_traces) const
{
    stack3d_assert(_chunk > 0, "merge chunk must be positive");

    std::size_t total = 0;
    for (const auto &tt : thread_traces)
        total += tt.size();

    std::vector<TraceRecord> merged;
    merged.reserve(total);

    // For each thread, map local record id -> merged id.
    std::vector<std::vector<std::uint64_t>> remap(thread_traces.size());
    for (std::size_t t = 0; t < thread_traces.size(); ++t)
        remap[t].resize(thread_traces[t].size());

    std::vector<std::size_t> pos(thread_traces.size(), 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t t = 0; t < thread_traces.size(); ++t) {
            auto &src = thread_traces[t];
            std::size_t take_n = std::min(_chunk, src.size() - pos[t]);
            for (std::size_t k = 0; k < take_n; ++k) {
                std::size_t local = pos[t] + k;
                TraceRecord rec = src[local];
                if (rec.hasDep()) {
                    // Same-thread, earlier-record dependency: its
                    // remap entry was filled in a previous iteration.
                    S3D_DCHECK(rec.dep < local)
                        << "thread " << t << " record " << local
                        << " depends on " << rec.dep;
                    rec.dep = remap[t][S3D_BOUNDS(rec.dep,
                                                  remap[t].size())];
                }
                remap[t][local] = merged.size();
                merged.push_back(rec);
            }
            pos[t] += take_n;
            progress = progress || take_n > 0;
        }
    }

    S3D_DCHECK(merged.size() == total)
        << "merged " << merged.size() << " of " << total;
    TraceBuffer buf(std::move(merged));
    stack3d_assert(buf.validate(), "merged trace failed validation");
    return buf;
}

} // namespace trace
} // namespace stack3d
