#include "config.hh"

#include "common/logging.hh"

namespace stack3d {
namespace cpu {

const char *
pathName(Path path)
{
    switch (path) {
      case Path::FrontEnd:
        return "Front-end pipeline";
      case Path::TraceCache:
        return "Trace cache read";
      case Path::RenameAlloc:
        return "Rename allocation";
      case Path::FpLatency:
        return "FP inst. latency";
      case Path::IntRfRead:
        return "Int register file read";
      case Path::DcacheRead:
        return "Data cache read";
      case Path::InstrLoop:
        return "Instruction loop";
      case Path::RetireDealloc:
        return "Retire to de-allocation";
      case Path::FpLoad:
        return "FP load latency";
      case Path::StoreLifetime:
        return "Store lifetime";
    }
    return "unknown";
}

PipelineConfig
PipelineConfig::planar()
{
    return PipelineConfig{};
}

void
PipelineConfig::applyPathReduction(Path path)
{
    switch (path) {
      case Path::FrontEnd:
        frontend_stages = 7;          // 12.5% of 8
        break;
      case Path::TraceCache:
        trace_cache_stages = 4;       // 20% of 5
        break;
      case Path::RenameAlloc:
        rename_stages = 3;            // 25% of 4
        break;
      case Path::FpLatency:
        fp_extra_latency = 0;         // RF->FP direct in 3D
        break;
      case Path::IntRfRead:
        int_rf_stages = 3;            // 25% of 4
        break;
      case Path::DcacheRead:
        dcache_stages = 3;            // 25% of 4
        break;
      case Path::InstrLoop:
        instr_loop_stages = 5;        // 17% of 6
        break;
      case Path::RetireDealloc:
        retire_dealloc_stages = 4;    // 20% of 5
        break;
      case Path::FpLoad:
        fp_load_extra = 5;            // ~35% of the fp-load wire
        break;
      case Path::StoreLifetime:
        store_lifetime = 28;          // 30% of 40
        break;
    }
}

PipelineConfig
PipelineConfig::stacked3d()
{
    PipelineConfig cfg = planar();
    for (unsigned p = 0; p < kNumPaths; ++p)
        cfg.applyPathReduction(Path(p));
    return cfg;
}

} // namespace cpu
} // namespace stack3d
