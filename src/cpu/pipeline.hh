/**
 * @file
 * Cycle-accounting model of the deeply pipelined out-of-order
 * machine. Each µop's fetch, dispatch, issue, completion and
 * retirement times are derived in one in-order pass with full
 * dataflow (register dependencies), structural (ROB, rename pool,
 * store queue, execution units) and control (misprediction redirect,
 * trace-break bubbles) constraints — the standard dataflow-schedule
 * formulation of a dynamically scheduled pipeline.
 *
 * All ten Table 4 wire paths enter the timing:
 *   - trace cache / front end / rename / RF-read stages form the
 *     in-order front depth and the misprediction refill;
 *   - D$ read and FP-load wire set load-to-use latencies;
 *   - the RF->SIMD->FP detour lengthens every FP op;
 *   - the instruction-loop bubble hits trace-breaking branches;
 *   - retire-to-deallocation delays rename-pool recycling;
 *   - the store lifetime holds store-queue entries past retirement.
 */

#ifndef STACK3D_CPU_PIPELINE_HH
#define STACK3D_CPU_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "cpu/config.hh"
#include "workloads/cpu_workload.hh"

namespace stack3d {
namespace cpu {

/** Result of one trace simulation. */
struct CpuResult
{
    std::uint64_t num_uops = 0;
    Cycles cycles = 0;
    double ipc = 0.0;

    std::uint64_t mispredicts = 0;
    std::uint64_t trace_breaks = 0;
    /** Dispatch cycles lost to a full store queue. */
    std::uint64_t sq_stall_cycles = 0;
    /** Dispatch cycles lost to ROB / rename-pool pressure. */
    std::uint64_t window_stall_cycles = 0;
};

/** The pipeline timing model. */
class PipelineModel
{
  public:
    explicit PipelineModel(const PipelineConfig &config);

    const PipelineConfig &config() const { return _config; }

    /** Simulate one µop trace. */
    CpuResult run(const std::vector<workloads::CpuUop> &uops) const;

  private:
    PipelineConfig _config;
};

} // namespace cpu
} // namespace stack3d

#endif // STACK3D_CPU_PIPELINE_HH
