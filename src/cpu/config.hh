/**
 * @file
 * Pipeline configuration for the Pentium 4-class deeply pipelined
 * microarchitecture model. The ten wire-delay paths of Table 4 are
 * explicit parameters; Logic+Logic stacking (Figure 10) shortens
 * them by eliminating whole pipe stages.
 */

#ifndef STACK3D_CPU_CONFIG_HH
#define STACK3D_CPU_CONFIG_HH

#include <cstdint>

#include "common/units.hh"

namespace stack3d {
namespace cpu {

/** The Table 4 wire-delay paths. */
enum class Path
{
    FrontEnd,       ///< front-end pipeline (12.5% of stages)
    TraceCache,     ///< trace cache read (20%)
    RenameAlloc,    ///< rename / allocation (25%)
    FpLatency,      ///< FP instruction latency (RF->SIMD->FP detour)
    IntRfRead,      ///< integer register file read (25%)
    DcacheRead,     ///< data cache read (25%)
    InstrLoop,      ///< instruction loop (17%)
    RetireDealloc,  ///< retire to de-allocation (20%)
    FpLoad,         ///< FP load latency (35%)
    StoreLifetime,  ///< store lifetime after retirement (30%)
};

constexpr unsigned kNumPaths = 10;

/** Display name of a path (Table 4's row labels). */
const char *pathName(Path path);

/** The machine configuration. */
struct PipelineConfig
{
    // ---- Table 4 paths (pipe stages / cycles), planar values ----
    unsigned frontend_stages = 8;      ///< decode/deliver pipeline
    unsigned trace_cache_stages = 5;   ///< trace cache read
    unsigned rename_stages = 4;        ///< rename / allocation
    unsigned fp_extra_latency = 2;     ///< planar RF->SIMD->FP wire
    unsigned int_rf_stages = 4;        ///< RF read before execute
    unsigned dcache_stages = 4;        ///< load-to-use latency
    unsigned instr_loop_stages = 6;    ///< taken-branch fetch bubble
    unsigned retire_dealloc_stages = 5;///< retire to resource free
    unsigned fp_load_extra = 8;        ///< extra wire on FP load data
    unsigned store_lifetime = 40;      ///< SQ occupancy past retire

    // ---- structures ----
    unsigned rob_size = 126;
    unsigned store_queue_size = 11;
    unsigned alloc_pool_size = 96;     ///< renamed resources

    // ---- widths ----
    unsigned fetch_width = 3;
    unsigned retire_width = 3;

    // ---- execution units (count, latency) ----
    unsigned num_int_units = 3;
    unsigned num_fp_units = 1;
    unsigned num_simd_units = 1;
    unsigned num_load_ports = 1;
    unsigned num_store_ports = 1;
    unsigned int_latency = 1;
    unsigned fp_latency = 4;
    unsigned simd_latency = 4;

    // ---- memory ----
    unsigned l2_latency = 18;
    unsigned memory_latency = 300;

    /** Fraction of taken branches that end a trace-cache line and
     *  pay the instruction-loop bubble. */
    double trace_break_rate = 0.45;

    /**
     * Branch misprediction redirect penalty: the wrong-path flush
     * plus the front pipeline refill through trace cache, decode,
     * rename and register read — "more than 30 clock cycles".
     */
    unsigned
    mispredictPenalty() const
    {
        return trace_cache_stages + frontend_stages + rename_stages +
               int_rf_stages + 12;
    }

    /** Total load-to-use latency for an L1 hit. */
    unsigned loadToUse() const { return dcache_stages; }

    /** The planar (Figure 9) configuration. */
    static PipelineConfig planar();

    /**
     * The 3D (Figure 10) configuration: every Table 4 path reduced.
     */
    static PipelineConfig stacked3d();

    /**
     * Apply only one path's 3D reduction to a planar config (used to
     * attribute Table 4's per-path performance gains).
     */
    void applyPathReduction(Path path);
};

} // namespace cpu
} // namespace stack3d

#endif // STACK3D_CPU_CONFIG_HH
