#include "suite.hh"

#include <cmath>
#include <map>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace cpu {

TraceSuite::TraceSuite(const SuiteOptions &options)
{
    auto classes = workloads::cpuAppClasses(options.full_suite);
    for (const auto &cls : classes) {
        for (unsigned v = 0; v < cls.variants; ++v) {
            Entry entry;
            entry.class_name = cls.name;
            auto params = workloads::makeVariantParams(cls, v);
            entry.uops = workloads::generateCpuTrace(
                params, options.uops_per_trace,
                options.seed ^ (std::uint64_t(v) << 20) ^
                    std::hash<std::string>{}(cls.name));
            _traces.push_back(std::move(entry));
        }
    }
    stack3d_assert(!_traces.empty(), "empty cpu trace suite");
}

SuiteResult
TraceSuite::run(const PipelineConfig &config) const
{
    obs::Span span("cpu.suite", "cpu");

    PipelineModel model(config);
    SuiteResult result;
    result.num_traces = unsigned(_traces.size());

    double log_sum = 0.0;
    std::map<std::string, std::pair<double, unsigned>> per_class;
    for (const Entry &entry : _traces) {
        CpuResult r = model.run(entry.uops);
        stack3d_assert(r.ipc > 0.0, "zero IPC for trace");
        log_sum += std::log(r.ipc);
        auto &[cls_log, cls_n] = per_class[entry.class_name];
        cls_log += std::log(r.ipc);
        ++cls_n;
        result.uops += r.num_uops;
        result.cycles += r.cycles;
        result.mispredicts += r.mispredicts;
        result.trace_breaks += r.trace_breaks;
        result.sq_stall_cycles += r.sq_stall_cycles;
        result.window_stall_cycles += r.window_stall_cycles;
    }
    result.geomean_ipc = std::exp(log_sum / double(_traces.size()));
    for (const auto &[name, acc] : per_class) {
        result.class_ipc.emplace_back(
            name, std::exp(acc.first / double(acc.second)));
    }
    return result;
}

double
TraceSuite::speedupOver(const PipelineConfig &baseline,
                        const PipelineConfig &config) const
{
    PipelineModel base_model(baseline);
    PipelineModel new_model(config);
    double log_sum = 0.0;
    for (const Entry &entry : _traces) {
        CpuResult b = base_model.run(entry.uops);
        CpuResult n = new_model.run(entry.uops);
        log_sum += std::log(n.ipc / b.ipc);
    }
    return std::exp(log_sum / double(_traces.size()));
}

namespace {

double
stagesEliminatedPct(Path path)
{
    switch (path) {
      case Path::FrontEnd:
        return 12.5;
      case Path::TraceCache:
        return 20.0;
      case Path::RenameAlloc:
        return 25.0;
      case Path::FpLatency:
        return -1.0;   // "Variable" in the paper
      case Path::IntRfRead:
        return 25.0;
      case Path::DcacheRead:
        return 25.0;
      case Path::InstrLoop:
        return 17.0;
      case Path::RetireDealloc:
        return 20.0;
      case Path::FpLoad:
        return 35.0;
      case Path::StoreLifetime:
        return 30.0;
    }
    return 0.0;
}

} // anonymous namespace

Table4Result
computeTable4(const SuiteOptions &options)
{
    TraceSuite suite(options);
    PipelineConfig planar = PipelineConfig::planar();

    Table4Result result;
    for (unsigned p = 0; p < kNumPaths; ++p) {
        PipelineConfig cfg = planar;
        cfg.applyPathReduction(Path(p));
        Table4Row row;
        row.path = Path(p);
        row.stages_eliminated_pct = stagesEliminatedPct(Path(p));
        row.perf_gain_pct =
            (suite.speedupOver(planar, cfg) - 1.0) * 100.0;
        result.rows.push_back(row);
    }

    PipelineConfig stacked = PipelineConfig::stacked3d();
    result.total_perf_gain_pct =
        (suite.speedupOver(planar, stacked) - 1.0) * 100.0;
    result.planar = suite.run(planar);
    result.stacked = suite.run(stacked);
    return result;
}

void
appendSuiteCounters(const SuiteResult &result, obs::CounterSet &out,
                    const std::string &prefix)
{
    out.set(prefix + "traces", double(result.num_traces));
    out.set(prefix + "geomean_ipc", result.geomean_ipc);
    out.set(prefix + "uops", double(result.uops));
    out.set(prefix + "cycles", double(result.cycles));
    out.set(prefix + "ipc",
            result.cycles ? double(result.uops) /
                                double(result.cycles)
                          : 0.0);
    out.set(prefix + "mispredicts", double(result.mispredicts));
    out.set(prefix + "trace_breaks", double(result.trace_breaks));
    out.set(prefix + "sq_stall_cycles",
            double(result.sq_stall_cycles));
    out.set(prefix + "window_stall_cycles",
            double(result.window_stall_cycles));
}

} // namespace cpu
} // namespace stack3d
