/**
 * @file
 * Benchmark-suite driver for the Logic+Logic study: runs the ~650
 * synthetic single-thread traces (Section 2.2's populations) through
 * pipeline configurations and aggregates speedups, reproducing
 * Table 4's per-path attribution.
 */

#ifndef STACK3D_CPU_SUITE_HH
#define STACK3D_CPU_SUITE_HH

#include <string>
#include <vector>

#include "cpu/pipeline.hh"

namespace stack3d {

namespace obs {
class CounterSet;
} // namespace obs

namespace cpu {

/** Suite execution options. */
struct SuiteOptions
{
    /** Use the full ~650-trace population (8x the default). */
    bool full_suite = false;

    /** µops simulated per trace. */
    std::uint64_t uops_per_trace = 200000;

    std::uint64_t seed = 7;
};

/** Aggregated per-class and overall results for one configuration. */
struct SuiteResult
{
    /** Geometric-mean IPC across all traces. */
    double geomean_ipc = 0.0;

    /** Per application class: name and geomean IPC. */
    std::vector<std::pair<std::string, double>> class_ipc;

    unsigned num_traces = 0;

    // Pipeline activity summed over every trace of the suite run —
    // the per-stage stall / squash attribution behind the IPC.
    std::uint64_t uops = 0;
    std::uint64_t cycles = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t trace_breaks = 0;
    std::uint64_t sq_stall_cycles = 0;
    std::uint64_t window_stall_cycles = 0;
};

/** One row of Table 4. */
struct Table4Row
{
    Path path;
    /** Percent of the path's planar pipe stages eliminated. */
    double stages_eliminated_pct = 0.0;
    /** Geomean performance gain of eliminating only this path. */
    double perf_gain_pct = 0.0;
};

/** Full Table 4: per-path rows plus the all-paths total. */
struct Table4Result
{
    std::vector<Table4Row> rows;
    /** Gain of the full 3D configuration (all paths at once). */
    double total_perf_gain_pct = 0.0;
    SuiteResult planar;
    SuiteResult stacked;
};

/**
 * The shared trace population (generated once, reused across
 * configurations).
 */
class TraceSuite
{
  public:
    explicit TraceSuite(const SuiteOptions &options);

    /** Run one configuration over every trace. */
    SuiteResult run(const PipelineConfig &config) const;

    /** Geomean speedup of @p config relative to @p baseline. */
    double speedupOver(const PipelineConfig &baseline,
                       const PipelineConfig &config) const;

    unsigned numTraces() const { return unsigned(_traces.size()); }

  private:
    struct Entry
    {
        std::string class_name;
        std::vector<workloads::CpuUop> uops;
    };

    std::vector<Entry> _traces;
};

/** Compute Table 4 (per-path and total gains). */
Table4Result computeTable4(const SuiteOptions &options = {});

/**
 * Fold a suite run's aggregate pipeline counters into @p out under
 * @p prefix (e.g. "cpu.planar."): uops, cycles, ipc, mispredicts,
 * trace_breaks, and the per-cause stall-cycle attribution.
 */
void appendSuiteCounters(const SuiteResult &result,
                         obs::CounterSet &out,
                         const std::string &prefix);

} // namespace cpu
} // namespace stack3d

#endif // STACK3D_CPU_SUITE_HH
