#include "pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace cpu {

using workloads::CpuUop;
using workloads::MemLevel;
using workloads::UopClass;

namespace {

/** A pool of k pipelined units: returns the start cycle granted. */
class UnitPool
{
  public:
    explicit UnitPool(unsigned count) : _next_free(count, 0) {}

    Cycles
    acquire(Cycles ready)
    {
        auto it = std::min_element(_next_free.begin(),
                                   _next_free.end());
        Cycles start = std::max(ready, *it);
        *it = start + 1;   // fully pipelined: one issue per cycle
        return start;
    }

  private:
    std::vector<Cycles> _next_free;
};

/** Deterministic per-uop hash for trace-break decisions. */
inline bool
hashChance(std::uint64_t i, double p)
{
    std::uint64_t h = i * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return double(h & 0xffffff) / double(0x1000000) < p;
}

} // anonymous namespace

PipelineModel::PipelineModel(const PipelineConfig &config)
    : _config(config)
{
    stack3d_assert(config.fetch_width > 0 && config.retire_width > 0,
                   "pipeline widths must be positive");
    stack3d_assert(config.rob_size > 0 && config.store_queue_size > 0,
                   "pipeline structures must be non-empty");
}

CpuResult
PipelineModel::run(const std::vector<CpuUop> &uops) const
{
    obs::Span span("cpu.pipeline", "cpu");

    CpuResult result;
    result.num_uops = uops.size();
    if (uops.empty())
        return result;

    const PipelineConfig &cfg = _config;
    std::size_t n = uops.size();

    // Front pipeline depth from fetch to execute-ready: trace cache
    // read, decode/deliver, rename/alloc, register read.
    const Cycles front_depth = cfg.trace_cache_stages +
                               cfg.frontend_stages + cfg.rename_stages +
                               cfg.int_rf_stages;

    std::vector<Cycles> done(n, 0);
    std::vector<Cycles> retire(n, 0);

    // Ring of store retire times for store-queue occupancy.
    std::vector<std::uint64_t> store_indices;
    store_indices.reserve(n / 4 + 1);

    UnitPool int_units(cfg.num_int_units);
    UnitPool fp_units(cfg.num_fp_units);
    UnitPool simd_units(cfg.num_simd_units);
    UnitPool load_ports(cfg.num_load_ports);
    UnitPool store_ports(cfg.num_store_ports);

    // In-order fetch: groups of fetch_width per cycle, pushed out by
    // redirects and bubbles.
    Cycles fetch_cycle = 0;
    unsigned fetch_in_group = 0;

    Cycles prev_dispatch = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const CpuUop &uop = uops[i];

        // ---- fetch ----
        if (fetch_in_group >= cfg.fetch_width) {
            fetch_in_group = 0;
            ++fetch_cycle;
        }
        Cycles fetch_time = fetch_cycle;
        ++fetch_in_group;

        // ---- dispatch (rename/alloc output, in order) ----
        Cycles dispatch = std::max(fetch_time + front_depth,
                                   prev_dispatch);

        // ROB window: the uop rob_size back must have retired.
        if (i >= cfg.rob_size) {
            Cycles rob_ready = retire[i - cfg.rob_size];
            if (rob_ready > dispatch) {
                result.window_stall_cycles += rob_ready - dispatch;
                dispatch = rob_ready;
            }
        }

        // Rename pool: resources recycle retire_dealloc stages after
        // retirement.
        if (i >= cfg.alloc_pool_size) {
            Cycles pool_ready = retire[i - cfg.alloc_pool_size] +
                                cfg.retire_dealloc_stages;
            if (pool_ready > dispatch) {
                result.window_stall_cycles += pool_ready - dispatch;
                dispatch = pool_ready;
            }
        }

        // Store queue: entries live until store_lifetime past retire.
        if (uop.cls == UopClass::Store) {
            if (store_indices.size() >= cfg.store_queue_size) {
                std::uint64_t old = store_indices[store_indices.size() -
                                                  cfg.store_queue_size];
                Cycles sq_ready = retire[old] + cfg.store_lifetime +
                                  cfg.retire_dealloc_stages;
                if (sq_ready > dispatch) {
                    result.sq_stall_cycles += sq_ready - dispatch;
                    dispatch = sq_ready;
                }
            }
            store_indices.push_back(i);
        }

        prev_dispatch = dispatch;

        // ---- operand readiness ----
        Cycles ready = dispatch;
        for (unsigned s = 0; s < 2; ++s) {
            if (uop.src_dist[s] != 0 && uop.src_dist[s] <= i) {
                ready = std::max(ready, done[i - uop.src_dist[s]]);
            }
        }

        // ---- issue + execute ----
        Cycles finish;
        switch (uop.cls) {
          case UopClass::IntAlu: {
            Cycles start = int_units.acquire(ready);
            finish = start + cfg.int_latency;
            break;
          }
          case UopClass::FpOp: {
            Cycles start = fp_units.acquire(ready);
            finish = start + cfg.fp_latency + cfg.fp_extra_latency;
            break;
          }
          case UopClass::SimdOp: {
            Cycles start = simd_units.acquire(ready);
            finish = start + cfg.simd_latency;
            break;
          }
          case UopClass::Load:
          case UopClass::FpLoad: {
            Cycles start = load_ports.acquire(ready);
            Cycles lat = cfg.dcache_stages;
            if (uop.mem_level == MemLevel::L2)
                lat += cfg.l2_latency;
            else if (uop.mem_level == MemLevel::Memory)
                lat += cfg.memory_latency;
            if (uop.cls == UopClass::FpLoad)
                lat += cfg.fp_load_extra;
            finish = start + lat;
            break;
          }
          case UopClass::Store: {
            Cycles start = store_ports.acquire(ready);
            finish = start + 1;   // address generation / SQ write
            break;
          }
          case UopClass::Branch: {
            Cycles start = int_units.acquire(ready);
            finish = start + cfg.int_latency;
            break;
          }
          default:
            finish = ready + 1;
            break;
        }
        done[i] = finish;

        // ---- retire (in order, retire_width per cycle) ----
        Cycles ret = finish;
        if (i > 0)
            ret = std::max(ret, retire[i - 1]);
        if (i >= cfg.retire_width)
            ret = std::max(ret, retire[i - cfg.retire_width] + 1);
        retire[i] = ret;

        // ---- control flow ----
        if (uop.cls == UopClass::Branch) {
            if (uop.mispredict) {
                ++result.mispredicts;
                // Fetch resumes after resolution plus the back-end
                // share of the redirect; the front pipeline refill
                // (front_depth) is paid naturally by later uops.
                // Allocation cannot restart until the flushed
                // entries' resources have been reclaimed, which
                // takes the retire-to-deallocation pipeline.
                Cycles resume = done[i] +
                                (cfg.mispredictPenalty() - front_depth) +
                                cfg.retire_dealloc_stages;
                if (resume > fetch_cycle) {
                    fetch_cycle = resume;
                    fetch_in_group = 0;
                }
            } else if (hashChance(i, cfg.trace_break_rate)) {
                ++result.trace_breaks;
                fetch_cycle += cfg.instr_loop_stages;
                fetch_in_group = 0;
            }
        }
    }

    result.cycles = retire[n - 1];
    result.ipc = double(n) / double(result.cycles);
    return result;
}

} // namespace cpu
} // namespace stack3d
