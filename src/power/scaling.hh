/**
 * @file
 * Power models for the Logic+Logic study: the analytic roll-up that
 * yields the 3D floorplan's 15% power reduction (fewer repeaters,
 * fewer repeating latches, a halved clock grid, less global wire),
 * the voltage/frequency scaling laws of Table 5 (1% frequency per 1%
 * Vcc; 0.82% performance per 1% frequency; P ~ V^2 f), and the
 * Figure 7 cache power budgets.
 */

#ifndef STACK3D_POWER_SCALING_HH
#define STACK3D_POWER_SCALING_HH

#include <vector>

#include "mem/params.hh"

namespace stack3d {
namespace power {

/**
 * Decomposition of the planar design's power by wire-related
 * category, with the 3D floorplan's reduction factor per category.
 * The defaults reproduce the paper's overall ~15% reduction:
 * repeaters and repeating latches halve (the removed pipe stages are
 * dominated by long global metal), the shared clock grid loses half
 * its metal RC, and eliminated pipe stages drop their latches.
 */
struct LogicPowerBreakdown
{
    /** Fraction of total power in global-wire repeaters. */
    double repeater_fraction = 0.10;
    /** Fraction in repeating (staging) latches. */
    double repeating_latch_fraction = 0.07;
    /** Fraction in the clock grid. */
    double clock_fraction = 0.10;
    /** Fraction in pipeline latches. */
    double pipeline_latch_fraction = 0.08;

    /** 3D reduction factors per category. */
    double repeater_reduction = 0.50;         ///< 50% fewer repeaters
    double repeating_latch_reduction = 0.50;  ///< 50% fewer
    double clock_reduction = 0.50;            ///< 50% less metal RC
    double pipeline_latch_reduction = 0.25;   ///< 25% of stages gone

    /** Overall relative power of the 3D design (~0.85). */
    double
    stackedRelativePower() const
    {
        return 1.0 -
               (repeater_fraction * repeater_reduction +
                repeating_latch_fraction * repeating_latch_reduction +
                clock_fraction * clock_reduction +
                pipeline_latch_fraction * pipeline_latch_reduction);
    }
};

/** Table 5's conversion laws. */
struct VfScalingModel
{
    /** Performance change per unit frequency change (0.82%/1%). */
    double perf_per_freq = 0.82;
    /** Frequency change per unit Vcc change (1%/1%). */
    double freq_per_vcc = 1.0;

    /** Relative performance at relative frequency @p f. */
    double
    relativePerf(double f) const
    {
        return 1.0 + perf_per_freq * (f - 1.0);
    }

    /** Relative frequency at relative voltage @p v. */
    double relativeFreq(double v) const
    {
        return 1.0 + freq_per_vcc * (v - 1.0);
    }

    /** Relative dynamic power at voltage @p v and frequency @p f. */
    double relativePower(double v, double f) const { return v * v * f; }
};

/** One operating point (a row of Table 5). */
struct OperatingPoint
{
    const char *label = "";
    double power_w = 0.0;
    double power_rel = 1.0;   ///< vs the 2D baseline
    double perf_rel = 1.0;    ///< vs the 2D baseline
    double vcc = 1.0;
    double freq = 1.0;
};

/**
 * Compute Table 5's rows analytically (temperatures are attached by
 * the caller via the thermal solver).
 *
 * @param baseline_watts  planar design power (147 W)
 * @param perf_gain_3d    3D IPC gain at constant frequency (~0.15)
 * @param power_saving_3d 3D power reduction at constant V/f (~0.15)
 */
std::vector<OperatingPoint> computeTable5Points(
    double baseline_watts, double perf_gain_3d, double power_saving_3d,
    const VfScalingModel &model = {});

/** Figure 7 cache power budgets for a stacking option. */
double cachePowerWatts(mem::StackOption option);

/**
 * Off-die bus power at the given achieved bandwidth (the paper's
 * 20 mW/Gb/s figure).
 */
double busPowerWatts(double achieved_gbps, double mw_per_gbit = 20.0);

} // namespace power
} // namespace stack3d

#endif // STACK3D_POWER_SCALING_HH
