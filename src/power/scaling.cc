#include "scaling.hh"

#include <cmath>

#include "common/logging.hh"

namespace stack3d {
namespace power {

std::vector<OperatingPoint>
computeTable5Points(double baseline_watts, double perf_gain_3d,
                    double power_saving_3d, const VfScalingModel &model)
{
    stack3d_assert(baseline_watts > 0.0, "baseline power must be > 0");
    double p3d = baseline_watts * (1.0 - power_saving_3d);
    double g3d = 1.0 + perf_gain_3d;

    std::vector<OperatingPoint> rows;

    // 2D baseline.
    rows.push_back({"Baseline", baseline_watts, 1.0, 1.0, 1.0, 1.0});

    // Same power: spend the 3D savings on frequency at constant Vcc
    // (the eliminated stages leave timing slack); P scales linearly
    // with f at fixed voltage.
    {
        double f = baseline_watts / p3d;
        rows.push_back({"Same Pwr", baseline_watts, 1.0,
                        g3d * model.relativePerf(f), 1.0, f});
    }

    // Same frequency: the plain 3D design point.
    rows.push_back({"Same Freq.", p3d, p3d / baseline_watts, g3d, 1.0,
                    1.0});

    // Same temperature: scale Vcc (f tracks Vcc) until the thermal
    // solver reports the baseline peak temperature. The paper lands
    // at Vcc = 0.92; the caller verifies the temperature — here the
    // paper's operating point is reproduced analytically.
    {
        double v = 0.92;
        double f = model.relativeFreq(v);
        double p = p3d * model.relativePower(v, f);
        rows.push_back({"Same Temp", p, p / baseline_watts,
                        g3d * model.relativePerf(f), v, f});
    }

    // Same performance: scale down until the 3D perf gain is spent.
    {
        // g3d * (1 + k (f - 1)) = 1  =>  f = 1 - (1 - 1/g3d) / k
        double f = 1.0 - (1.0 - 1.0 / g3d) / model.perf_per_freq;
        double v = 1.0 + (f - 1.0) / model.freq_per_vcc;
        double p = p3d * model.relativePower(v, f);
        rows.push_back({"Same Perf.", p, p / baseline_watts,
                        g3d * model.relativePerf(f), v, f});
    }
    return rows;
}

double
cachePowerWatts(mem::StackOption option)
{
    switch (option) {
      case mem::StackOption::Baseline4MB:
        return 7.0;    // 4 MB SRAM on the processor die
      case mem::StackOption::Sram12MB:
        return 21.0;   // 7 W on-die + 14 W stacked 8 MB SRAM
      case mem::StackOption::Dram32MB:
        return 3.1;    // stacked DRAM (SRAM removed)
      case mem::StackOption::Dram64MB:
        return 13.2;   // 7 W tags (former L2) + 6.2 W stacked DRAM
    }
    return 0.0;
}

double
busPowerWatts(double achieved_gbps, double mw_per_gbit)
{
    return achieved_gbps * 8.0 * mw_per_gbit * 1e-3;
}

} // namespace power
} // namespace stack3d
