/**
 * @file
 * FutureSet: collect futures in submission order and harvest them
 * deterministically.
 *
 * The collection rule every study runner relies on: wait for *all*
 * futures to finish before rethrowing anything. Tasks reference
 * caller-owned result slots, so unwinding while siblings are still
 * running would hand them dangling references. When several tasks
 * fail, the exception of the earliest-submitted failing task wins —
 * independent of which thread happened to fail first.
 */

#ifndef STACK3D_EXEC_FUTURE_SET_HH
#define STACK3D_EXEC_FUTURE_SET_HH

#include <cstddef>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "exec/pool.hh"

namespace stack3d {
namespace exec {

/** An ordered set of futures of the same type. */
template <typename T>
class FutureSet
{
  public:
    void add(std::future<T> future) { _futures.push_back(std::move(future)); }

    std::size_t size() const { return _futures.size(); }

    /**
     * Wait for every future, then return the results in submission
     * order (rethrowing the first failure only after all finished).
     */
    std::vector<T>
    collect()
    {
        std::vector<T> results;
        results.reserve(_futures.size());
        std::exception_ptr first_error;
        for (std::future<T> &f : _futures) {
            try {
                results.push_back(f.get());
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        _futures.clear();
        if (first_error)
            std::rethrow_exception(first_error);
        return results;
    }

  private:
    std::vector<std::future<T>> _futures;
};

/** Void specialization: wait() instead of collect(). */
template <>
class FutureSet<void>
{
  public:
    void add(std::future<void> future) { _futures.push_back(std::move(future)); }

    std::size_t size() const { return _futures.size(); }

    /** Wait for all, then rethrow the first failure (if any). */
    void
    wait()
    {
        std::exception_ptr first_error;
        for (std::future<void> &f : _futures) {
            try {
                f.get();
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        _futures.clear();
        if (first_error)
            std::rethrow_exception(first_error);
    }

  private:
    std::vector<std::future<void>> _futures;
};

/**
 * Run fn(0) .. fn(n-1) on the pool and wait for all of them.
 * With an inline-mode pool this is exactly a serial for-loop in index
 * order; with workers the iterations run concurrently. Either way the
 * first-failing-index exception is what propagates.
 */
template <typename F>
void
parallelFor(ThreadPool &pool, std::size_t n, F &&fn)
{
    FutureSet<void> futures;
    for (std::size_t i = 0; i < n; ++i)
        futures.add(pool.submit([&fn, i] { fn(i); }));
    futures.wait();
}

} // namespace exec
} // namespace stack3d

#endif // STACK3D_EXEC_FUTURE_SET_HH
