/**
 * @file
 * Deterministic slab-parallel helpers for numerical kernels.
 *
 * The contract: work is partitioned into a *fixed* number of slabs
 * chosen by the problem (z-planes of a thermal mesh, rows of a grid),
 * never by the thread count. Each slab produces its result — a side
 * effect on disjoint output ranges, or a partial sum — independently,
 * and partial sums are combined in slab-index order after every slab
 * finished. An N-thread run therefore performs bit-identical
 * floating-point arithmetic to a 1-thread run: the same slabs, the
 * same per-slab loop order, the same final summation order. Threads
 * only change *when* each slab runs, never *what* it computes.
 *
 * Both helpers degrade gracefully: with a null pool, an inline-mode
 * pool, or when called from inside a pool worker (where submitting
 * sub-tasks and blocking on their futures could deadlock the pool),
 * they run the slab loop serially — through the exact same code path.
 */

#ifndef STACK3D_EXEC_REDUCE_HH
#define STACK3D_EXEC_REDUCE_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"

namespace stack3d {
namespace exec {

/** True when @p pool can actually run sub-tasks for the caller. */
inline bool
canFanOut(const ThreadPool *pool)
{
    return pool != nullptr && pool->numThreads() > 0 &&
           !ThreadPool::currentThreadIsWorker();
}

/**
 * Run fn(slab) for every slab in [0, n). Slabs are grouped into
 * contiguous chunks for submission (fewer tasks than slabs), which
 * affects scheduling only — each fn(slab) call is identical to the
 * serial loop's.
 */
template <typename F>
void
parallelSlabs(ThreadPool *pool, std::size_t n, F &&fn)
{
    if (!canFanOut(pool) || n < 2) {
        for (std::size_t s = 0; s < n; ++s)
            fn(s);
        return;
    }
    std::size_t chunks = std::min<std::size_t>(
        n, std::size_t(pool->numThreads()) * 2);
    std::size_t per = (n + chunks - 1) / chunks;
    // Partition contract: the chunks must tile [0, n) exactly — no
    // gap, no overlap — or the "same slabs as serial" guarantee (and
    // with it bit-reproducibility) is silently broken.
    S3D_DCHECK(per >= 1 && per * chunks >= n)
        << "n=" << n << " chunks=" << chunks << " per=" << per;
    std::size_t covered = 0;
    FutureSet<void> futures;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t begin = c * per;
        std::size_t end = std::min(begin + per, n);
        if (begin >= end)
            break;
        covered += end - begin;
        futures.add(pool->submit([&fn, begin, end] {
            for (std::size_t s = begin; s < end; ++s)
                fn(s);
        }));
    }
    S3D_DCHECK(covered == n)
        << "covered=" << covered << " n=" << n << " per=" << per;
    futures.wait();
}

/**
 * Run fn(slab) -> double for every slab in [0, n) and return the sum
 * of the partials, always added in slab-index order. The serial path
 * computes the identical per-slab partials and sums them in the same
 * order, so the result is independent of the thread count.
 */
template <typename F>
double
parallelSlabReduce(ThreadPool *pool, std::size_t n, F &&fn)
{
    std::vector<double> partial(n, 0.0);
    parallelSlabs(pool, n, [&fn, &partial, n](std::size_t s) {
        partial[S3D_BOUNDS(s, n)] = fn(s);
    });
    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s)
        total += partial[s];
    return total;
}

} // namespace exec
} // namespace stack3d

#endif // STACK3D_EXEC_REDUCE_HH
