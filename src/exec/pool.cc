#include "pool.hh"

#include <chrono>
#include <thread>

#include "common/fault.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace exec {

namespace {
thread_local bool t_is_pool_worker = false;
} // anonymous namespace

bool
ThreadPool::currentThreadIsWorker()
{
    return t_is_pool_worker;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    _workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_sleep_mutex);
        _stopping = true;
    }
    _wakeup.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
ThreadPool::enqueue(Task task)
{
    std::size_t i =
        _next_worker.fetch_add(1, std::memory_order_relaxed) %
        _workers.size();
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(_workers[i]->mutex);
        _workers[i]->deque.push_back(std::move(task));
        depth = _workers[i]->deque.size();
    }
    std::uint64_t seen =
        _queue_high_water.load(std::memory_order_relaxed);
    while (depth > seen &&
           !_queue_high_water.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed))
        ;
    // Lock/unlock pairs the push with the sleeper's predicate check so
    // a worker can never miss the wakeup for a task it failed to see.
    {
        std::lock_guard<std::mutex> lock(_sleep_mutex);
    }
    _wakeup.notify_one();
}

bool
ThreadPool::popOwn(unsigned self, Task &out)
{
    Worker &w = *_workers[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty())
        return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    return true;
}

bool
ThreadPool::stealFromOthers(unsigned self, Task &out)
{
    const std::size_t n = _workers.size();
    for (std::size_t k = 1; k < n; ++k) {
        Worker &victim = *_workers[(self + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.deque.empty())
            continue;
        out = std::move(victim.deque.front());
        victim.deque.pop_front();
        return true;
    }
    return false;
}

bool
ThreadPool::anyQueued()
{
    for (auto &w : _workers) {
        std::lock_guard<std::mutex> lock(w->mutex);
        if (!w->deque.empty())
            return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    t_is_pool_worker = true;
    for (;;) {
        Task task;
        bool stole = false;
        if (popOwn(self, task) ||
            (stole = stealFromOthers(self, task))) {
            _n_executed.fetch_add(1, std::memory_order_relaxed);
            if (stole) {
                _n_stolen.fetch_add(1, std::memory_order_relaxed);
                obs::instant("pool.steal", "exec");
            }
            // Chaos hook: stall a task as a wedged worker would,
            // without changing what the task computes.
            if (unsigned stall_ms = S3D_FAULT_DELAY("exec.task.slow"))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stall_ms));
            obs::Span span("pool.task", "exec");
            task();
            continue;
        }
        _n_sleeps.fetch_add(1, std::memory_order_relaxed);
        obs::Span idle("pool.idle", "exec");
        std::unique_lock<std::mutex> lock(_sleep_mutex);
        if (_stopping && !anyQueued())
            return;
        _wakeup.wait(lock,
                     [this] { return _stopping || anyQueued(); });
        if (_stopping && !anyQueued())
            return;
    }
}

PoolCounters
ThreadPool::counters() const
{
    PoolCounters c;
    c.submitted = _n_submitted.load(std::memory_order_relaxed);
    c.inline_executed = _n_inline.load(std::memory_order_relaxed);
    c.executed = _n_executed.load(std::memory_order_relaxed);
    c.stolen = _n_stolen.load(std::memory_order_relaxed);
    c.sleeps = _n_sleeps.load(std::memory_order_relaxed);
    c.queue_high_water =
        _queue_high_water.load(std::memory_order_relaxed);
    return c;
}

void
ThreadPool::appendCounters(obs::CounterSet &out,
                           const std::string &prefix) const
{
    PoolCounters c = counters();
    out.set(prefix + "threads", double(numThreads()));
    out.set(prefix + "submitted", double(c.submitted));
    out.set(prefix + "inline_executed", double(c.inline_executed));
    out.set(prefix + "executed", double(c.executed));
    out.set(prefix + "stolen", double(c.stolen));
    out.set(prefix + "sleeps", double(c.sleeps));
    out.set(prefix + "queue_high_water",
            double(c.queue_high_water));
}

} // namespace exec
} // namespace stack3d
