#include "pool.hh"

namespace stack3d {
namespace exec {

ThreadPool::ThreadPool(unsigned num_threads)
{
    _workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_sleep_mutex);
        _stopping = true;
    }
    _wakeup.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
ThreadPool::enqueue(Task task)
{
    std::size_t i =
        _next_worker.fetch_add(1, std::memory_order_relaxed) %
        _workers.size();
    {
        std::lock_guard<std::mutex> lock(_workers[i]->mutex);
        _workers[i]->deque.push_back(std::move(task));
    }
    // Lock/unlock pairs the push with the sleeper's predicate check so
    // a worker can never miss the wakeup for a task it failed to see.
    {
        std::lock_guard<std::mutex> lock(_sleep_mutex);
    }
    _wakeup.notify_one();
}

bool
ThreadPool::popOwn(unsigned self, Task &out)
{
    Worker &w = *_workers[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty())
        return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    return true;
}

bool
ThreadPool::stealFromOthers(unsigned self, Task &out)
{
    const std::size_t n = _workers.size();
    for (std::size_t k = 1; k < n; ++k) {
        Worker &victim = *_workers[(self + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.deque.empty())
            continue;
        out = std::move(victim.deque.front());
        victim.deque.pop_front();
        return true;
    }
    return false;
}

bool
ThreadPool::anyQueued()
{
    for (auto &w : _workers) {
        std::lock_guard<std::mutex> lock(w->mutex);
        if (!w->deque.empty())
            return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        Task task;
        if (popOwn(self, task) || stealFromOthers(self, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(_sleep_mutex);
        if (_stopping && !anyQueued())
            return;
        _wakeup.wait(lock,
                     [this] { return _stopping || anyQueued(); });
        if (_stopping && !anyQueued())
            return;
    }
}

} // namespace exec
} // namespace stack3d
