/**
 * @file
 * A small work-stealing thread pool for fanning independent study
 * cells out across cores.
 *
 * Each worker owns a deque: the owner pushes and pops at the back
 * (LIFO, cache-friendly for task trees) while idle workers steal from
 * the front of other workers' deques (FIFO, oldest-first). External
 * submissions are distributed round-robin across the worker deques.
 *
 * Tasks are wrapped in std::packaged_task, so exceptions thrown inside
 * a task are captured and rethrown from the corresponding future —
 * never on the worker thread itself.
 *
 * A pool constructed with zero threads runs every task inline on the
 * submitting thread at submit() time. This degenerate mode is what the
 * study runners use for `threads == 1`: the serial path is the same
 * code as the parallel path, which is how the determinism guarantee
 * (N-thread results bit-identical to 1-thread results) stays testable.
 */

#ifndef STACK3D_EXEC_POOL_HH
#define STACK3D_EXEC_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace stack3d {

namespace obs {
class CounterSet;
} // namespace obs

namespace exec {

/** Snapshot of a pool's activity counters (see ThreadPool::counters). */
struct PoolCounters
{
    std::uint64_t submitted = 0;       ///< tasks handed to submit()
    std::uint64_t inline_executed = 0; ///< ran inline (0-thread mode)
    std::uint64_t executed = 0;        ///< ran on a worker thread
    std::uint64_t stolen = 0;          ///< executed via work stealing
    std::uint64_t sleeps = 0;          ///< times a worker went idle
    std::uint64_t queue_high_water = 0; ///< deepest single deque seen
};

/** Work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker threads to spawn; 0 means "inline
     *        mode" (tasks run on the submitting thread immediately).
     */
    explicit ThreadPool(unsigned num_threads);

    /** Joins after draining every task already submitted. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 in inline mode). */
    unsigned numThreads() const { return unsigned(_threads.size()); }

    /**
     * Submit a nullary callable; returns a future for its result.
     * In inline mode the callable runs before submit() returns.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F> &>>
    {
        using R = std::invoke_result_t<std::decay_t<F> &>;
        std::packaged_task<R()> task(std::forward<F>(fn));
        std::future<R> future = task.get_future();
        _n_submitted.fetch_add(1, std::memory_order_relaxed);
        if (_workers.empty()) {
            _n_inline.fetch_add(1, std::memory_order_relaxed);
            task();   // inline mode
            return future;
        }
        enqueue(Task(std::move(task)));
        return future;
    }

    /** Consistent-enough snapshot of the activity counters. */
    PoolCounters counters() const;

    /** Fold counters() into @p out under @p prefix ("pool."). */
    void appendCounters(obs::CounterSet &out,
                        const std::string &prefix = "pool.") const;

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static unsigned hardwareThreads();

    /**
     * True when the calling thread is a worker of *any* ThreadPool.
     * Nested parallel helpers (the thermal solver's slab kernels) use
     * this to fall back to their serial path instead of submitting
     * sub-tasks and blocking a worker on their futures — the classic
     * nested-fork deadlock.
     */
    static bool currentThreadIsWorker();

  private:
    /** Type-erased move-only task (packaged_task<R()> wrapped). */
    class Task
    {
      public:
        Task() = default;

        template <typename R>
        explicit Task(std::packaged_task<R()> task)
            : _impl(std::make_unique<Model<R>>(std::move(task)))
        {
        }

        explicit operator bool() const { return bool(_impl); }
        void operator()() { _impl->run(); }

      private:
        struct Concept
        {
            virtual ~Concept() = default;
            virtual void run() = 0;
        };
        template <typename R>
        struct Model : Concept
        {
            explicit Model(std::packaged_task<R()> t)
                : task(std::move(t))
            {
            }
            void run() override { task(); }
            std::packaged_task<R()> task;
        };
        std::unique_ptr<Concept> _impl;
    };

    /** One worker's deque; the mutex only guards this deque. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> deque;
    };

    void enqueue(Task task);
    void workerLoop(unsigned self);
    bool popOwn(unsigned self, Task &out);
    bool stealFromOthers(unsigned self, Task &out);
    bool anyQueued();

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    /** Guards sleeping/waking; queues have their own locks. */
    std::mutex _sleep_mutex;
    std::condition_variable _wakeup;
    bool _stopping = false;

    /** Round-robin cursor for external submissions. */
    std::atomic<std::size_t> _next_worker{0};

    // Activity counters (relaxed; read via counters()).
    std::atomic<std::uint64_t> _n_submitted{0};
    std::atomic<std::uint64_t> _n_inline{0};
    std::atomic<std::uint64_t> _n_executed{0};
    std::atomic<std::uint64_t> _n_stolen{0};
    std::atomic<std::uint64_t> _n_sleeps{0};
    std::atomic<std::uint64_t> _queue_high_water{0};
};

} // namespace exec
} // namespace stack3d

#endif // STACK3D_EXEC_POOL_HH
