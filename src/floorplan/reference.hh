/**
 * @file
 * Reference floorplans entered from the paper's figures:
 *
 *  - the Intel Core 2 Duo baseline (Figures 4 and 6): two cores plus
 *    a 4 MB shared L2 occupying ~50% of the die, 92 W total;
 *  - the Figure 7 stacking variants (cache-only second dies and the
 *    shrunk 32 MB-option base die);
 *  - the Pentium 4-class deeply pipelined processor, planar
 *    (Figure 9) and folded onto two dies (Figure 10), with the nets
 *    of the performance-critical paths of Table 4.
 */

#ifndef STACK3D_FLOORPLAN_REFERENCE_HH
#define STACK3D_FLOORPLAN_REFERENCE_HH

#include "floorplan/floorplan.hh"

namespace stack3d {
namespace floorplan {

/** Power budgets from the paper (Figure 7 and Section 4). */
namespace budgets {

constexpr double core2_total = 92.0;        ///< baseline 92 W skew
constexpr double core2_l2_sram_4mb = 7.0;   ///< 4 MB SRAM
constexpr double stacked_sram_8mb = 14.0;   ///< +14 W for +8 MB
constexpr double stacked_dram_32mb = 3.1;
constexpr double stacked_dram_64mb = 6.2;
constexpr double p4_total = 147.0;          ///< Table 5 baseline

} // namespace budgets

/** Baseline planar Core 2 Duo: 13.5 x 10.6 mm, 92 W (Figure 6). */
Floorplan makeCore2Duo();

/**
 * Base die for the 32 MB DRAM option (Figure 7c): the 4 MB SRAM is
 * removed, a 2 MB tag array is added, and the die shrinks.
 */
Floorplan makeCore2BaseDie32M();

/**
 * Same logical content as makeCore2BaseDie32M() but keeping the
 * baseline die outline (the vacated cache area left unpowered).
 * This is the thermally conservative reading used for Figure 8's
 * option (c): the cores keep their full lateral silicon spreading.
 */
Floorplan makeCore2BaseDie32MKeepOutline();

/**
 * A uniform-power cache-only die matching @p base's outline (the
 * stacked SRAM or DRAM die of Figure 7). Blocks land on die 1.
 */
Floorplan makeCacheDie(const Floorplan &base, const char *name,
                       double watts);

/**
 * Merge a base-die floorplan (die 0) with a stacked-die floorplan
 * (blocks re-tagged to die 1) into one two-die plan.
 */
Floorplan stackFloorplans(const Floorplan &die0, const Floorplan &die1,
                          const char *name);

/** Planar Pentium 4-class floorplan, 147 W (Figure 9), with the
 *  Table 4 critical-path nets attached. */
Floorplan makePentium4Planar();

/**
 * The hand-optimized two-die Pentium 4 floorplan of Figure 10:
 * 50% footprint, D$ folded over the functional units, RF adjacent
 * to both FP and SIMD, and every block's power scaled by
 * @p power_scale (0.85 for the paper's 15% reduction; 1.0 for the
 * "3D worst case" bar of Figure 11).
 */
Floorplan makePentium43D(double power_scale = 0.85);

/**
 * The Figure 11 "3D Worstcase" configuration: no power savings and
 * naive stacking that doubles the peak power density (the scheduler
 * of one die lands under the execution cluster of the other).
 */
Floorplan makePentium43DWorstCase();

} // namespace floorplan
} // namespace stack3d

#endif // STACK3D_FLOORPLAN_REFERENCE_HH
