#include "floorplan.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stack3d {
namespace floorplan {

void
Floorplan::addBlock(const Block &block)
{
    if (block.width <= 0.0 || block.height <= 0.0)
        stack3d_fatal("block '", block.name, "' has non-positive size");
    constexpr double eps = 1e-9;
    if (block.x < -eps || block.y < -eps ||
        block.x + block.width > _width + eps ||
        block.y + block.height > _height + eps) {
        stack3d_fatal("block '", block.name,
                      "' extends outside the die outline");
    }
    for (const Block &other : _blocks) {
        if (other.name == block.name)
            stack3d_fatal("duplicate block name '", block.name, "'");
    }
    _blocks.push_back(block);
}

void
Floorplan::addNet(const Net &net)
{
    // Both endpoints must exist.
    (void)block(net.from);
    (void)block(net.to);
    _nets.push_back(net);
}

const Block &
Floorplan::block(const std::string &name) const
{
    for (const Block &b : _blocks) {
        if (b.name == name)
            return b;
    }
    stack3d_fatal("no block named '", name, "' in floorplan '", _name,
                  "'");
}

Block &
Floorplan::mutableBlock(const std::string &name)
{
    for (Block &b : _blocks) {
        if (b.name == name)
            return b;
    }
    stack3d_fatal("no block named '", name, "' in floorplan '", _name,
                  "'");
}

double
Floorplan::totalPower() const
{
    double total = 0.0;
    for (const Block &b : _blocks)
        total += b.power;
    return total;
}

double
Floorplan::diePower(unsigned die) const
{
    double total = 0.0;
    for (const Block &b : _blocks) {
        if (b.die == die)
            total += b.power;
    }
    return total;
}

double
Floorplan::dieArea(unsigned die) const
{
    double total = 0.0;
    for (const Block &b : _blocks) {
        if (b.die == die)
            total += b.area();
    }
    return total;
}

double
Floorplan::peakBlockDensity(unsigned die) const
{
    double peak = 0.0;
    for (const Block &b : _blocks) {
        if (b.die == die)
            peak = std::max(peak, b.powerDensity());
    }
    return peak;
}

double
Floorplan::peakStackedDensity(unsigned samples) const
{
    stack3d_assert(samples > 1, "need a sampling grid");
    double peak = 0.0;
    for (unsigned j = 0; j < samples; ++j) {
        double y = (j + 0.5) * _height / samples;
        for (unsigned i = 0; i < samples; ++i) {
            double x = (i + 0.5) * _width / samples;
            double density = 0.0;
            for (const Block &b : _blocks) {
                if (x >= b.x && x < b.x + b.width && y >= b.y &&
                    y < b.y + b.height) {
                    density += b.powerDensity();
                }
            }
            peak = std::max(peak, density);
        }
    }
    return peak;
}

double
Floorplan::wireDistance(const std::string &from,
                        const std::string &to) const
{
    const Block &a = block(from);
    const Block &b = block(to);
    double dist = std::abs(a.centerX() - b.centerX()) +
                  std::abs(a.centerY() - b.centerY());
    // The d2d via crossing is electrically a conventional via: no
    // meaningful lateral distance is added for changing dies.
    return dist;
}

thermal::PowerMap
Floorplan::powerMap(unsigned nx, unsigned ny, unsigned die) const
{
    thermal::PowerMap map(nx, ny, _width, _height);
    for (const Block &b : _blocks) {
        if (b.die == die && b.power > 0.0)
            map.addRect(b.x, b.y, b.x + b.width, b.y + b.height,
                        b.power);
    }
    return map;
}

bool
Floorplan::validateNoOverlap() const
{
    constexpr double eps = 1e-9;
    for (std::size_t i = 0; i < _blocks.size(); ++i) {
        for (std::size_t j = i + 1; j < _blocks.size(); ++j) {
            const Block &a = _blocks[i];
            const Block &b = _blocks[j];
            if (a.die != b.die)
                continue;
            bool separated = a.x + a.width <= b.x + eps ||
                             b.x + b.width <= a.x + eps ||
                             a.y + a.height <= b.y + eps ||
                             b.y + b.height <= a.y + eps;
            if (!separated)
                return false;
        }
    }
    return true;
}

} // namespace floorplan
} // namespace stack3d
