#include "planner.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace stack3d {
namespace floorplan {

namespace {

/**
 * A candidate solution: per-die ordered block sequences; physical
 * positions are derived by shelf packing, which keeps every
 * candidate overlap-free by construction.
 */
struct Candidate
{
    std::vector<std::size_t> order[2];   // indices into blocks
};

/** Shelf-pack one die's sequence; false if it does not fit. */
bool
shelfPack(const std::vector<Block> &blocks,
          const std::vector<std::size_t> &order, double width,
          double height, std::vector<std::pair<double, double>> &pos)
{
    double shelf_y = 0.0;
    double shelf_h = 0.0;
    double cursor_x = 0.0;
    for (std::size_t idx : order) {
        const Block &b = blocks[idx];
        if (b.width > width)
            return false;
        if (cursor_x + b.width > width) {
            shelf_y += shelf_h;
            shelf_h = 0.0;
            cursor_x = 0.0;
        }
        if (shelf_y + b.height > height)
            return false;
        pos[idx] = {cursor_x, shelf_y};
        cursor_x += b.width;
        shelf_h = std::max(shelf_h, b.height);
    }
    return true;
}

/** Build a two-die floorplan from a packed candidate. */
Floorplan
materialize(const std::vector<Block> &blocks, const Candidate &cand,
            double width, double height, const std::string &name,
            const std::vector<Net> &nets)
{
    std::vector<std::pair<double, double>> pos(blocks.size());
    for (unsigned die = 0; die < 2; ++die) {
        bool ok = shelfPack(blocks, cand.order[die], width, height, pos);
        stack3d_assert(ok, "materializing an infeasible candidate");
    }
    Floorplan fp(name, width, height);
    for (unsigned die = 0; die < 2; ++die) {
        for (std::size_t idx : cand.order[die]) {
            Block b = blocks[idx];
            b.die = die;
            b.x = pos[idx].first;
            b.y = pos[idx].second;
            fp.addBlock(b);
        }
    }
    for (const Net &net : nets)
        fp.addNet(net);
    return fp;
}

double
weightedWirelength(const Floorplan &fp)
{
    double total = 0.0;
    for (const Net &net : fp.nets())
        total += net.weight * fp.wireDistance(net.from, net.to);
    return total;
}

} // anonymous namespace

PlannerResult
planStacking(const Floorplan &planar, const PlannerParams &params)
{
    if (planar.blocks().size() < 2)
        stack3d_fatal("stacking planner needs at least two blocks");

    // Half-footprint outline (times the packing slack), preserving
    // the aspect ratio: each linear dimension scales by
    // sqrt(slack / 2).
    double scale = std::sqrt(params.outline_slack / 2.0);
    double width = planar.width() * scale;
    double height = planar.height() * scale;

    // Blocks larger than the new outline (e.g. a full-width cache
    // strip) are split in half along their long axis, recursively —
    // memory arrays partition freely in a real fold.
    std::vector<Block> blocks = planar.blocks();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        Block &b = blocks[i];
        // Split anything longer than ~half the outline: oversize
        // blocks both fail to fit and wreck shelf-packing density.
        if (b.width <= width * 0.55 && b.height <= height * 0.55)
            continue;
        Block half = b;
        if (b.width >= b.height) {
            b.width /= 2.0;
            half.width = b.width;
        } else {
            b.height /= 2.0;
            half.height = b.height;
        }
        b.power /= 2.0;
        half.power = b.power;
        half.name = b.name + "#s" + std::to_string(blocks.size());
        blocks.push_back(half);
        --i;   // re-check the shrunk block
    }

    double planar_peak = planar.peakBlockDensity(0);
    double density_cap = planar_peak * params.density_cap_ratio;

    Random rng(params.seed);

    // Initial assignment: alternate blocks by descending area so the
    // dies start area-balanced.
    std::vector<std::size_t> by_area(blocks.size());
    std::iota(by_area.begin(), by_area.end(), 0);
    std::sort(by_area.begin(), by_area.end(),
              [&](std::size_t a, std::size_t b)
              { return blocks[a].area() > blocks[b].area(); });

    Candidate current;
    for (std::size_t k = 0; k < by_area.size(); ++k)
        current.order[k % 2].push_back(by_area[k]);

    std::vector<std::pair<double, double>> pos(blocks.size());
    auto evaluate = [&](const Candidate &cand, double &wl,
                        double &ratio) -> double {
        for (unsigned die = 0; die < 2; ++die) {
            if (!shelfPack(blocks, cand.order[die], width, height, pos))
                return 1e18;   // infeasible packing
        }
        Floorplan fp =
            materialize(blocks, cand, width, height, "trial", {});
        for (const Net &net : planar.nets())
            fp.addNet(net);
        wl = weightedWirelength(fp);
        double peak = fp.peakStackedDensity(48);
        ratio = planar_peak > 0.0 ? peak / planar_peak : 0.0;
        double over = std::max(0.0, peak - density_cap) / planar_peak;
        return params.alpha_wire * wl +
               params.beta_density * over * over;
    };

    double wl = 0.0, ratio = 0.0;
    double best_cost = evaluate(current, wl, ratio);
    if (best_cost >= 1e17) {
        // The initial alternating assignment did not pack; retry
        // with progressively more outline slack.
        PlannerParams relaxed = params;
        relaxed.outline_slack = params.outline_slack * 1.15;
        if (relaxed.outline_slack > 2.0)
            stack3d_fatal("stacking planner cannot pack the blocks "
                          "even with 2x outline slack");
        return planStacking(planar, relaxed);
    }

    unsigned accepted = 0;
    for (unsigned iter = 0; iter < params.iterations; ++iter) {
        Candidate trial = current;
        unsigned move = unsigned(rng.uniformInt(3));
        if (move == 0) {
            // Move a random block to the other die, random position.
            unsigned from = unsigned(rng.uniformInt(2));
            if (trial.order[from].empty())
                continue;
            std::size_t pick = rng.uniformInt(trial.order[from].size());
            std::size_t blk = trial.order[from][pick];
            trial.order[from].erase(trial.order[from].begin() + pick);
            auto &dst = trial.order[1 - from];
            dst.insert(dst.begin() + rng.uniformInt(dst.size() + 1),
                       blk);
        } else if (move == 1) {
            // Swap two blocks across dies.
            if (trial.order[0].empty() || trial.order[1].empty())
                continue;
            std::size_t a = rng.uniformInt(trial.order[0].size());
            std::size_t b = rng.uniformInt(trial.order[1].size());
            std::swap(trial.order[0][a], trial.order[1][b]);
        } else {
            // Reorder within a die (changes packing position).
            unsigned die = unsigned(rng.uniformInt(2));
            if (trial.order[die].size() < 2)
                continue;
            std::size_t a = rng.uniformInt(trial.order[die].size());
            std::size_t b = rng.uniformInt(trial.order[die].size());
            std::swap(trial.order[die][a], trial.order[die][b]);
        }

        double t_wl = 0.0, t_ratio = 0.0;
        double cost = evaluate(trial, t_wl, t_ratio);
        if (cost <= best_cost) {
            best_cost = cost;
            current = trial;
            wl = t_wl;
            ratio = t_ratio;
            ++accepted;
        }
    }

    PlannerResult result{
        materialize(blocks, current, width, height,
                    planar.name() + "_3d", planar.nets()),
        wl, weightedWirelength(planar), ratio, accepted};
    return result;
}

} // namespace floorplan
} // namespace stack3d
