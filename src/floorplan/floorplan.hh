/**
 * @file
 * Block-level floorplans: rectangular blocks with power, optionally
 * assigned to one of two stacked dies, plus the netlist and wire-
 * delay machinery used to convert block-to-block distance into pipe
 * stages (the quantity Logic+Logic stacking eliminates).
 */

#ifndef STACK3D_FLOORPLAN_FLOORPLAN_HH
#define STACK3D_FLOORPLAN_FLOORPLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "thermal/power_map.hh"

namespace stack3d {
namespace floorplan {

/** A placed rectangular block. */
struct Block
{
    std::string name;
    double x = 0.0;        ///< lower-left corner, metres
    double y = 0.0;
    double width = 0.0;    ///< metres
    double height = 0.0;
    double power = 0.0;    ///< watts
    unsigned die = 0;      ///< 0 = die #1 (next to heat sink)

    double area() const { return width * height; }
    double powerDensity() const { return power / area(); }
    double centerX() const { return x + width / 2.0; }
    double centerY() const { return y + height / 2.0; }
};

/** A weighted connection between two blocks. */
struct Net
{
    std::string from;
    std::string to;
    /** Relative wiring weight (bus width / criticality). */
    double weight = 1.0;
};

/** A named floorplan over one- or two-die extents. */
class Floorplan
{
  public:
    Floorplan(std::string name, double width, double height)
        : _name(std::move(name)), _width(width), _height(height)
    {
    }

    const std::string &name() const { return _name; }
    double width() const { return _width; }
    double height() const { return _height; }

    /** Add a block; fatal if it extends outside the die. */
    void addBlock(const Block &block);

    void addNet(const Net &net);

    const std::vector<Block> &blocks() const { return _blocks; }
    const std::vector<Net> &nets() const { return _nets; }
    std::vector<Block> &mutableBlocks() { return _blocks; }

    /** Block by name; fatal if absent. */
    const Block &block(const std::string &name) const;
    Block &mutableBlock(const std::string &name);

    /** Sum of block power, optionally restricted to one die. */
    double totalPower() const;
    double diePower(unsigned die) const;

    /** Sum of block areas on a die. */
    double dieArea(unsigned die) const;

    /** Highest single-block power density on a die (W/m^2). */
    double peakBlockDensity(unsigned die) const;

    /**
     * Combined vertical power density of the two dies: the maximum
     * over the plane of (density die0 + density die1), computed on a
     * sampling grid. For a single-die plan this equals the planar
     * peak density. Used by the iterative "observe density and
     * repair outliers" loop.
     */
    double peakStackedDensity(unsigned samples = 64) const;

    /** Manhattan center-to-center distance between two blocks;
     *  blocks on different dies add only the (negligible) d2d hop. */
    double wireDistance(const std::string &from,
                        const std::string &to) const;

    /** Rasterize one die's blocks into a thermal power map. */
    thermal::PowerMap powerMap(unsigned nx, unsigned ny,
                               unsigned die) const;

    /** True if no two same-die blocks overlap (within tolerance). */
    [[nodiscard]] bool validateNoOverlap() const;

  private:
    std::string _name;
    double _width, _height;
    std::vector<Block> _blocks;
    std::vector<Net> _nets;
};

/**
 * Wire-delay model: converts wire length into whole pipe stages.
 */
struct WireModel
{
    /** Distance a repeated global wire covers per clock, metres. */
    double reach_per_cycle = 2.5e-3;

    /** Full pipe stages needed for @p distance of wire. */
    unsigned
    pipeStages(double distance) const
    {
        stack3d_assert(reach_per_cycle > 0.0, "wire reach must be > 0");
        return unsigned(distance / reach_per_cycle);
    }
};

} // namespace floorplan
} // namespace stack3d

#endif // STACK3D_FLOORPLAN_FLOORPLAN_HH
