/**
 * @file
 * Iterative Logic+Logic stacking planner. Implements the paper's
 * "simple iterative process of placing blocks, observing the new
 * power densities and repairing outliers": blocks of a planar
 * floorplan are distributed over two half-footprint dies, shelf-
 * packed for legality, and improved by randomized moves that trade
 * off net wirelength against stacked power density.
 */

#ifndef STACK3D_FLOORPLAN_PLANNER_HH
#define STACK3D_FLOORPLAN_PLANNER_HH

#include "common/random.hh"
#include "floorplan/floorplan.hh"

namespace stack3d {
namespace floorplan {

/** Planner knobs. */
struct PlannerParams
{
    /** Optimization moves attempted. */
    unsigned iterations = 4000;

    /** Weight of total weighted wirelength (per metre). */
    double alpha_wire = 1.0;

    /**
     * Peak stacked density ceiling, as a multiple of the planar
     * floorplan's peak block density; overshoot is penalized
     * quadratically. The paper's repaired plan reaches ~1.3x.
     */
    double density_cap_ratio = 1.35;

    /** Penalty weight for exceeding the density cap. */
    double beta_density = 5.0;

    /** Lateral slack of the two-die outline vs. area/2 (>= 1). */
    double outline_slack = 1.12;

    std::uint64_t seed = 1;
};

/** Result of a planning run. */
struct PlannerResult
{
    Floorplan plan;
    double wirelength = 0.0;          ///< weighted total, metres
    double planar_wirelength = 0.0;   ///< same metric on the input
    double peak_density_ratio = 0.0;  ///< vs planar peak density
    unsigned accepted_moves = 0;
};

/**
 * Fold @p planar onto two dies of ~half the footprint.
 * The input must have at least two blocks; nets drive wirelength.
 */
PlannerResult planStacking(const Floorplan &planar,
                           const PlannerParams &params = {});

} // namespace floorplan
} // namespace stack3d

#endif // STACK3D_FLOORPLAN_PLANNER_HH
