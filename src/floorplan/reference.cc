#include "reference.hh"

#include "common/logging.hh"

namespace stack3d {
namespace floorplan {

namespace {

constexpr double mm = 1e-3;

/** Add one Core 2 core's blocks, mirrored for the second core. */
void
addCore2Core(Floorplan &fp, unsigned core, double die_width)
{
    struct Spec
    {
        const char *name;
        double x, y, w, h;   // mm, core-0 coordinates
        double power;
    };
    // Core region: x in [0, 6.75), y in [5.3, 10.6) mm. The FP unit,
    // reservation stations, and load/store unit are the hot spots
    // Figure 6(b) points at.
    static const Spec specs[] = {
        {"l1d", 0.30, 5.50, 2.00, 1.50, 2.9},
        {"ldst", 2.50, 5.50, 1.55, 1.35, 6.3},
        {"fp", 4.30, 5.50, 1.55, 1.60, 7.2},
        {"rs", 2.50, 7.00, 1.40, 1.40, 6.0},
        {"alu", 4.00, 7.30, 1.50, 1.40, 6.3},
        {"rob", 1.00, 7.20, 1.20, 1.10, 4.0},
        {"decode", 0.30, 8.70, 2.00, 1.20, 5.4},
        {"ifu", 2.80, 8.80, 2.00, 1.50, 4.4},
    };

    for (const Spec &s : specs) {
        Block b;
        b.name = std::string("core") + std::to_string(core) + "." +
                 s.name;
        b.width = s.w * mm;
        b.height = s.h * mm;
        b.y = s.y * mm;
        b.power = s.power;
        if (core == 0)
            b.x = s.x * mm;
        else
            b.x = die_width - (s.x + s.w) * mm;   // mirrored
        fp.addBlock(b);
    }
}

} // anonymous namespace

Floorplan
makeCore2Duo()
{
    const double w = 13.5 * mm;
    const double h = 10.6 * mm;
    Floorplan fp("core2duo", w, h);

    // Shared 4 MB L2: the bottom ~50% of the die.
    Block l2;
    l2.name = "l2";
    l2.x = 0.0;
    l2.y = 0.0;
    l2.width = w;
    l2.height = 5.3 * mm;
    l2.power = budgets::core2_l2_sram_4mb;
    fp.addBlock(l2);

    addCore2Core(fp, 0, w);
    addCore2Core(fp, 1, w);

    stack3d_assert(fp.validateNoOverlap(), "core2duo blocks overlap");
    return fp;
}

Floorplan
makeCore2BaseDie32M()
{
    // The 4 MB SRAM is gone; a ~2 MB tag array replaces it. Die
    // height shrinks from 10.6 mm to 7.0 mm (cores + tag strip).
    const double w = 13.5 * mm;
    const double h = 7.0 * mm;
    Floorplan fp("core2_base_32m", w, h);

    Block tags;
    tags.name = "dram_tags";
    tags.x = 0.0;
    tags.y = 0.0;
    tags.width = w;
    tags.height = 1.7 * mm;
    tags.power = 3.5;
    fp.addBlock(tags);

    // Cores sit where they were, shifted down by the removed cache:
    // reuse the standard core layout but offset y by -3.6 mm.
    Floorplan donor("donor", 13.5 * mm, 10.6 * mm);
    addCore2Core(donor, 0, w);
    addCore2Core(donor, 1, w);
    for (Block b : donor.blocks()) {
        b.y -= 3.6 * mm;
        fp.addBlock(b);
    }

    stack3d_assert(fp.validateNoOverlap(),
                   "core2 32M base blocks overlap");
    return fp;
}

Floorplan
makeCore2BaseDie32MKeepOutline()
{
    const double w = 13.5 * mm;
    const double h = 10.6 * mm;
    Floorplan fp("core2_base_32m_full", w, h);

    Block tags;
    tags.name = "dram_tags";
    tags.x = 0.0;
    tags.y = 0.0;
    tags.width = w;
    tags.height = 1.7 * mm;
    tags.power = 3.5;
    fp.addBlock(tags);

    addCore2Core(fp, 0, w);
    addCore2Core(fp, 1, w);

    stack3d_assert(fp.validateNoOverlap(),
                   "core2 32M full-outline blocks overlap");
    return fp;
}

Floorplan
makeCacheDie(const Floorplan &base, const char *name, double watts)
{
    Floorplan fp(name, base.width(), base.height());
    Block cache;
    cache.name = "stacked_cache";
    cache.x = 0.0;
    cache.y = 0.0;
    cache.width = base.width();
    cache.height = base.height();
    cache.power = watts;
    cache.die = 1;
    fp.addBlock(cache);
    return fp;
}

Floorplan
stackFloorplans(const Floorplan &die0, const Floorplan &die1,
                const char *name)
{
    if (die0.width() != die1.width() ||
        die0.height() != die1.height()) {
        stack3d_fatal("stacked dies have different outlines: ",
                      die0.name(), " vs ", die1.name());
    }
    Floorplan fp(name, die0.width(), die0.height());
    for (const Block &b : die0.blocks()) {
        Block copy = b;
        copy.die = 0;
        fp.addBlock(copy);
    }
    for (const Block &b : die1.blocks()) {
        Block copy = b;
        copy.die = 1;
        fp.addBlock(copy);
    }
    return fp;
}

namespace {

/** Table 4's performance-critical paths as nets. */
void
addP4Nets(Floorplan &fp)
{
    fp.addNet({"dcache", "falu", 2.0});        // load-to-use
    fp.addNet({"rf", "fp", 2.0});              // FP register read
    fp.addNet({"rf", "simd", 1.5});            // SIMD register read
    fp.addNet({"trace_cache", "frontend", 1.0});
    fp.addNet({"frontend", "rename", 1.0});
    fp.addNet({"rename", "sched", 1.0});
    fp.addNet({"sched", "falu", 1.5});
    fp.addNet({"dcache", "fp", 1.0});          // FP load
    fp.addNet({"ldst", "dcache", 1.5});        // store pipeline
    fp.addNet({"rob", "rename", 1.0});         // retire-to-dealloc
    fp.addNet({"sched", "rob", 1.0});
}

} // anonymous namespace

Floorplan
makePentium4Planar()
{
    const double w = 11.0 * mm;
    const double h = 10.0 * mm;
    Floorplan fp("p4_planar", w, h);

    struct Spec
    {
        const char *name;
        double x, y, ww, hh;   // mm
        double power;
    };
    // Figure 9's arrangement: D$ and the integer functional units
    // (F) along the top, the FP / SIMD / RF row beneath them (SIMD
    // deliberately between RF and FP — the planar plan optimizes
    // SIMD at the cost of 2 cycles on every FP register read), the
    // front end and L2 at the bottom.
    static const Spec specs[] = {
        {"l2", 0.0, 0.0, 11.0, 2.5, 11.5},
        {"dcache", 0.4, 7.2, 2.6, 2.2, 12.0},
        {"falu", 3.3, 7.1, 2.5, 2.5, 18.0},
        {"sched", 6.1, 7.2, 2.4, 2.35, 16.0},
        {"rename", 8.8, 7.3, 1.0, 1.8, 5.0},
        {"fp", 0.3, 4.3, 3.4, 2.2, 15.0},
        {"simd", 3.9, 4.4, 2.1, 2.0, 12.0},
        {"rf", 6.2, 4.3, 1.8, 2.4, 8.0},
        {"ldst", 8.1, 2.7, 1.7, 2.5, 12.0},
        {"trace_cache", 0.3, 2.8, 3.0, 1.4, 10.0},
        {"frontend", 3.5, 2.8, 2.4, 1.4, 8.0},
        {"rob", 6.1, 2.8, 1.9, 1.4, 7.5},
        {"misc", 9.9, 2.8, 1.0, 5.6, 12.0},
    };
    for (const Spec &s : specs) {
        Block b;
        b.name = s.name;
        b.x = s.x * mm;
        b.y = s.y * mm;
        b.width = s.ww * mm;
        b.height = s.hh * mm;
        b.power = s.power;
        fp.addBlock(b);
    }

    addP4Nets(fp);
    stack3d_assert(fp.validateNoOverlap(), "p4 planar blocks overlap");
    stack3d_assert(fp.totalPower() == budgets::p4_total,
                   "p4 planar power must sum to 147 W, got ",
                   fp.totalPower());
    return fp;
}

Floorplan
makePentium43D(double power_scale)
{
    // Half the footprint: 7.8 x 7.3 mm (~57 mm^2). The hot execution
    // cluster concentrates on die 0 (next to the heat sink). Die 1
    // carries the D$ folded directly over falu/sched and the FP unit
    // folded directly over the RF (Figure 10: SIMD no longer
    // separates them, eliminating the 2 planar cycles), with the L2
    // spread over the remainder. Positions follow the paper's
    // iterative density-repair discipline: the D$ and FP blocks are
    // large/cool enough that every vertical pair stays near 1.3x the
    // planar peak density.
    const double w = 7.8 * mm;
    const double h = 7.3 * mm;
    Floorplan fp("p4_3d", w, h);

    struct Spec
    {
        const char *name;
        unsigned die;
        double x, y, ww, hh;   // mm
        double power;
    };
    static const Spec specs[] = {
        // Die 0: execution cluster, register file, front end.
        {"falu", 0, 0.1, 4.6, 2.5, 2.5, 18.0},
        {"sched", 0, 2.7, 4.6, 2.4, 2.35, 16.0},
        {"rf", 0, 5.3, 4.6, 1.8, 2.4, 8.0},
        {"ldst", 0, 0.2, 2.0, 1.7, 2.5, 12.0},
        {"simd", 0, 2.1, 2.3, 2.1, 2.0, 12.0},
        {"rename", 0, 5.3, 2.4, 1.0, 1.8, 5.0},
        {"frontend", 0, 0.2, 0.3, 2.4, 1.4, 8.0},
        {"misc", 0, 3.6, 0.2, 2.7, 2.0, 12.0},
        {"trace_cache", 0, 6.4, 0.3, 1.4, 3.0, 10.0},
        // Die 1: D$ over falu/sched; FP directly over the RF; the
        // enlarged ROB over misc; L2 strips over the rest.
        {"dcache", 1, 0.3, 4.7, 2.6, 2.2, 12.0},
        {"fp", 1, 5.2, 4.3, 2.6, 2.9, 15.0},
        {"rob", 1, 4.0, 0.3, 2.2, 1.8, 7.5},
        {"l2a", 1, 0.2, 0.3, 3.6, 2.0, 5.75},
        {"l2b", 1, 0.2, 2.5, 4.8, 2.0, 5.75},
    };
    for (const Spec &s : specs) {
        Block b;
        b.name = s.name;
        b.die = s.die;
        b.x = s.x * mm;
        b.y = s.y * mm;
        b.width = s.ww * mm;
        b.height = s.hh * mm;
        b.power = s.power * power_scale;
        fp.addBlock(b);
    }

    addP4Nets(fp);
    stack3d_assert(fp.validateNoOverlap(), "p4 3D blocks overlap");
    return fp;
}

Floorplan
makePentium43DWorstCase()
{
    // No power savings, and the naive fold stacks hot logic over hot
    // logic: the FP unit lands on the integer execution block and
    // the load/store unit on the scheduler, doubling the peak
    // vertical power density.
    Floorplan fp = makePentium43D(/*power_scale=*/1.0);

    Block &fpu = fp.mutableBlock("fp");
    fpu.x = 0.2 * mm;
    fpu.y = 4.4 * mm;   // over falu

    Block &ldst = fp.mutableBlock("ldst");
    ldst.die = 1;
    ldst.x = 2.8 * mm;
    ldst.y = 4.6 * mm;  // over sched

    Block &dcache = fp.mutableBlock("dcache");
    dcache.x = 5.2 * mm;
    dcache.y = 4.5 * mm;   // displaced over the (cool) RF

    // Slide the second L2 strip down so the relocated FP unit fits.
    Block &l2b = fp.mutableBlock("l2b");
    l2b.y = 2.4 * mm;

    stack3d_assert(fp.validateNoOverlap(),
                   "p4 3D worst-case blocks overlap");
    return fp;
}

} // namespace floorplan
} // namespace stack3d
