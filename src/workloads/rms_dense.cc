/**
 * @file
 * Dense-matrix RMS kernels: dSym (dense matrix multiplication),
 * gauss (Gauss-Jordan linear solver), svd (Jacobi SVD).
 *
 * Footprints at scale 1.0 are calibrated against the Figure 5
 * capacity points: dSym and svd fit inside the 4 MB baseline L2
 * (capacity-insensitive), gauss's active matrix (~6.5 MB) fits only
 * from the 12 MB configuration up.
 */

#include "workloads/rms_factories.hh"

#include <algorithm>
#include <cmath>

namespace stack3d {
namespace workloads {
namespace detail {

namespace {

// ---------------------------------------------------------------------
// dSym: blocked dense matrix multiplication C = A * B.
// ---------------------------------------------------------------------

struct DSymState : KernelState
{
    std::uint64_t n = 0;     // matrix dimension
    std::uint64_t nb = 0;    // blocks per dimension
    ArrayRef a, b, c;        // n x n doubles each
};

class DSymKernel : public RmsKernel
{
  public:
    const char *name() const override { return "dSym"; }

    const char *
    description() const override
    {
        return "Dense Matrix Multiplication";
    }

    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        std::uint64_t n = dim(cfg);
        return 3 * n * n * 8;
    }

  protected:
    static constexpr std::uint64_t kBlock = 64;

    static std::uint64_t
    dim(const WorkloadConfig &cfg)
    {
        // 320 -> 3 * 320^2 * 8 B = 2.46 MB (fits the 4 MB baseline).
        auto n = std::uint64_t(320 * std::sqrt(cfg.scale));
        n = std::max<std::uint64_t>(n, 2 * kBlock);
        return (n / kBlock) * kBlock;
    }

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<DSymState>();
        st->n = dim(setup.config());
        st->nb = st->n / kBlock;
        st->a = setup.alloc(st->n * st->n, 8);
        st->b = setup.alloc(st->n * st->n, 8);
        st->c = setup.alloc(st->n * st->n, 8);
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const DSymState &>(state);
        auto [ib_lo, ib_hi] = ctx.myRange(st.nb);
        constexpr std::uint64_t row_bytes = kBlock * 8;

        while (!ctx.done()) {
            // One full multiplication over this thread's C block rows.
            for (std::uint64_t ib = ib_lo; ib < ib_hi && !ctx.done();
                 ++ib) {
                for (std::uint64_t jb = 0; jb < st.nb; ++jb) {
                    for (std::uint64_t kb = 0; kb < st.nb; ++kb) {
                        // Stream the 64x64 blocks of A and B, then
                        // read-modify-write the C block, row by row.
                        for (std::uint64_t r = 0; r < kBlock; ++r) {
                            std::uint64_t a_row =
                                (ib * kBlock + r) * st.n + kb * kBlock;
                            std::uint64_t b_row =
                                (kb * kBlock + r) * st.n + jb * kBlock;
                            std::uint64_t c_row =
                                (ib * kBlock + r) * st.n + jb * kBlock;
                            ctx.streamLoad(st.a, a_row, row_bytes, 16, 10);
                            ctx.streamLoad(st.b, b_row, row_bytes, 16, 11);
                            ctx.streamLoad(st.c, c_row, row_bytes, 16, 12);
                            ctx.streamStore(st.c, c_row, row_bytes, 16, 13);
                        }
                    }
                }
            }
        }
    }
};

// ---------------------------------------------------------------------
// gauss: Gauss-Jordan elimination with partial pivoting over an
// augmented dense system. The trace covers the leading pivots of the
// elimination; each pivot sweeps the active submatrix.
// ---------------------------------------------------------------------

struct GaussState : KernelState
{
    std::uint64_t n = 0;
    ArrayRef m;    // n x (n+1) doubles, augmented matrix
};

class GaussKernel : public RmsKernel
{
  public:
    const char *name() const override { return "gauss"; }

    const char *
    description() const override
    {
        return "Linear Equation Solver using Gauss-Jordan Elimination";
    }

    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        std::uint64_t n = dim(cfg);
        return n * (n + 1) * 8;
    }

  protected:
    static std::uint64_t
    dim(const WorkloadConfig &cfg)
    {
        // 900 -> 900*901*8 B = 6.49 MB: misses in 4 MB, fits in 12 MB.
        return std::max<std::uint64_t>(
            std::uint64_t(900 * std::sqrt(cfg.scale)), 64);
    }

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<GaussState>();
        st->n = dim(setup.config());
        st->m = setup.alloc(st->n * (st->n + 1), 8);
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const GaussState &>(state);
        std::uint64_t cols = st.n + 1;

        std::uint64_t k = 0;
        while (!ctx.done()) {
            // Pivot search: scan column k of the active rows.
            for (std::uint64_t r = k; r < st.n; r += 8)
                ctx.load(st.m, r * cols + k, 20);

            // Eliminate column k from every other active row; rows
            // are partitioned between the threads.
            std::uint64_t row_bytes = (cols - k) * 8;
            auto [r_lo, r_hi] = ctx.myRange(st.n);
            for (std::uint64_t r = std::max(r_lo, k + 1); r < r_hi;
                 ++r) {
                // Pivot-row reload (cache-resident in practice).
                ctx.streamLoad(st.m, k * cols + k, row_bytes, 64, 21);
                // Row update: read-modify-write the active segment.
                ctx.streamLoad(st.m, r * cols + k, row_bytes, 16, 22);
                ctx.streamStore(st.m, r * cols + k, row_bytes, 16, 23);
                if (ctx.done())
                    break;
            }

            // Advance the pivot; restart the elimination once the
            // active submatrix becomes trivially small.
            k = (k + 1) % std::max<std::uint64_t>(st.n / 4, 1);
        }
    }
};

// ---------------------------------------------------------------------
// svd: one-sided Jacobi SVD. Each rotation reads and rewrites a pair
// of columns of the working matrix and of the accumulated V.
// ---------------------------------------------------------------------

struct SvdState : KernelState
{
    std::uint64_t n = 0;
    ArrayRef a;    // n x n doubles, column-major working matrix
    ArrayRef v;    // n x n doubles, accumulated right vectors
};

class SvdKernel : public RmsKernel
{
  public:
    const char *name() const override { return "svd"; }

    const char *
    description() const override
    {
        return "Singular Value Decomposition with Jacobi Method";
    }

    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        std::uint64_t n = dim(cfg);
        return 2 * n * n * 8;
    }

  protected:
    static std::uint64_t
    dim(const WorkloadConfig &cfg)
    {
        // 400 -> 2 * 400^2 * 8 B = 2.56 MB (fits the 4 MB baseline).
        return std::max<std::uint64_t>(
            std::uint64_t(400 * std::sqrt(cfg.scale)), 64);
    }

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<SvdState>();
        st->n = dim(setup.config());
        st->a = setup.alloc(st->n * st->n, 8);
        st->v = setup.alloc(st->n * st->n, 8);
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const SvdState &>(state);
        std::uint64_t col_bytes = st.n * 8;

        // Round-robin sweep over column pairs; threads own disjoint
        // halves of the pair space (cyclic Jacobi ordering).
        std::uint64_t i = ctx.threadId();
        std::uint64_t j = i + 1;
        while (!ctx.done()) {
            // Dot products a_i . a_i, a_j . a_j, a_i . a_j.
            ctx.streamLoad(st.a, i * st.n, col_bytes, 16, 30);
            ctx.streamLoad(st.a, j * st.n, col_bytes, 16, 31);
            // Apply the rotation to both columns of A and V.
            ctx.streamStore(st.a, i * st.n, col_bytes, 16, 32);
            ctx.streamStore(st.a, j * st.n, col_bytes, 16, 33);
            ctx.streamLoad(st.v, i * st.n, col_bytes, 16, 34);
            ctx.streamLoad(st.v, j * st.n, col_bytes, 16, 35);
            ctx.streamStore(st.v, i * st.n, col_bytes, 16, 36);
            ctx.streamStore(st.v, j * st.n, col_bytes, 16, 37);

            j += ctx.numThreads();
            if (j >= st.n) {
                i = (i + 1) % (st.n - 1);
                j = i + 1 + ctx.threadId();
                if (j >= st.n)
                    j = i + 1;
            }
        }
    }
};

} // anonymous namespace

std::unique_ptr<RmsKernel>
makeDSym()
{
    return std::make_unique<DSymKernel>();
}

std::unique_ptr<RmsKernel>
makeGauss()
{
    return std::make_unique<GaussKernel>();
}

std::unique_ptr<RmsKernel>
makeSvd()
{
    return std::make_unique<SvdKernel>();
}

} // namespace detail
} // namespace workloads
} // namespace stack3d
