/**
 * @file
 * Structural-rigidity RMS kernels (sAVDF, sAVIF, sUS): finite-element
 * style assembly sweeps over an unstructured tetrahedral mesh. Per
 * element the kernel loads the connectivity record, gathers the four
 * node positions (addresses depend on the connectivity load), streams
 * the element's stiffness data, and scatters accumulations back to
 * the nodes.
 *
 * The three kernels share the traversal but differ in element-data
 * width and mesh size: sAVDF (~2.5 MB) and sAVIF (~3.5 MB) fit the
 * 4 MB baseline; sUS (~39 MB) fits only the 64 MB configuration.
 */

#include "workloads/rms_factories.hh"

#include <algorithm>

#include "common/random.hh"

namespace stack3d {
namespace workloads {
namespace detail {

namespace {

struct RigidityState : KernelState
{
    std::uint64_t num_elems = 0;
    std::uint64_t num_nodes = 0;
    std::vector<std::uint32_t> conn;   // 4 node ids per element
    ArrayRef conn_arr;   // num_elems x 16 B connectivity records
    ArrayRef node_pos;   // num_nodes x 24 B coordinates
    ArrayRef node_acc;   // num_nodes x 24 B force accumulators
    ArrayRef elem_data;  // num_elems x data_bytes stiffness data
};

/**
 * Shared rigidity-kernel skeleton; subclasses pick the mesh size and
 * per-element data width.
 */
class RigidityKernelBase : public RmsKernel
{
  protected:
    virtual std::uint64_t numElems(const WorkloadConfig &cfg) const = 0;
    virtual std::uint32_t elemDataBytes() const = 0;

    /** Nodes ~= elements / 3.3 for a typical tet mesh. */
    static std::uint64_t
    numNodes(std::uint64_t elems)
    {
        return std::max<std::uint64_t>(elems * 3 / 10, 16);
    }

  public:
    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        std::uint64_t e = numElems(cfg);
        std::uint64_t n = numNodes(e);
        return e * 16 + 2 * n * 24 + e * elemDataBytes();
    }

  protected:
    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<RigidityState>();
        st->num_elems = numElems(setup.config());
        st->num_nodes = numNodes(st->num_elems);

        // Connectivity with spatial locality: elements reference
        // nodes near a moving front, plus occasional far links.
        st->conn.resize(st->num_elems * 4);
        Random &rng = setup.rng();
        for (std::uint64_t e = 0; e < st->num_elems; ++e) {
            std::uint64_t center =
                (e * st->num_nodes) / st->num_elems;
            for (unsigned k = 0; k < 4; ++k) {
                std::uint64_t node;
                if (rng.chance(0.85)) {
                    std::uint64_t span = 128;
                    std::uint64_t off = rng.uniformInt(2 * span + 1);
                    std::int64_t v = std::int64_t(center) +
                                     std::int64_t(off) -
                                     std::int64_t(span);
                    v = std::clamp<std::int64_t>(
                        v, 0, std::int64_t(st->num_nodes) - 1);
                    node = std::uint64_t(v);
                } else {
                    node = rng.uniformInt(st->num_nodes);
                }
                st->conn[e * 4 + k] = std::uint32_t(node);
            }
        }

        st->conn_arr = setup.alloc(st->num_elems, 16);
        st->node_pos = setup.alloc(st->num_nodes, 24);
        st->node_acc = setup.alloc(st->num_nodes, 24);
        st->elem_data = setup.alloc(st->num_elems, elemDataBytes());
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const RigidityState &>(state);
        auto [e_lo, e_hi] = ctx.myRange(st.num_elems);
        std::uint32_t data_bytes = elemDataBytes();

        while (!ctx.done()) {
            for (std::uint64_t e = e_lo; e < e_hi; ++e) {
                // Connectivity record -> node addresses.
                auto conn_rec = ctx.load(st.conn_arr, e, 110);
                // Gather node positions.
                trace::RecordId gathers[4];
                for (unsigned k = 0; k < 4; ++k) {
                    gathers[k] = ctx.load(
                        st.node_pos, st.conn[e * 4 + k], 111, conn_rec);
                }
                // Element stiffness data streams past once.
                ctx.streamLoad(st.elem_data, e, data_bytes,
                               16, 112);
                // Scatter accumulate into the four nodes.
                for (unsigned k = 0; k < 4; ++k) {
                    auto acc = ctx.load(st.node_acc, st.conn[e * 4 + k],
                                        113, gathers[k]);
                    ctx.store(st.node_acc, st.conn[e * 4 + k], 114, acc);
                }
                if (ctx.done())
                    return;
            }
        }
    }
};

class SAvdfKernel : public RigidityKernelBase
{
  public:
    const char *name() const override { return "sAVDF"; }

    const char *
    description() const override
    {
        return "Structural Rigidity Computation with AVDF Kernel";
    }

  protected:
    std::uint64_t
    numElems(const WorkloadConfig &cfg) const override
    {
        return std::max<std::uint64_t>(
            std::uint64_t(40000 * cfg.scale), 64);
    }

    std::uint32_t elemDataBytes() const override { return 32; }
};

class SAvifKernel : public RigidityKernelBase
{
  public:
    const char *name() const override { return "sAVIF"; }

    const char *
    description() const override
    {
        return "Structural Rigidity Computation with AVIF Kernel";
    }

  protected:
    std::uint64_t
    numElems(const WorkloadConfig &cfg) const override
    {
        return std::max<std::uint64_t>(
            std::uint64_t(50000 * cfg.scale), 64);
    }

    std::uint32_t elemDataBytes() const override { return 40; }
};

class SUsKernel : public RigidityKernelBase
{
  public:
    const char *name() const override { return "sUS"; }

    const char *
    description() const override
    {
        return "Structural Rigidity Computation with US Kernel";
    }

  protected:
    std::uint64_t
    numElems(const WorkloadConfig &cfg) const override
    {
        // 250k elements x 128 B stiffness blocks -> ~39 MB:
        // thrashes even the 32 MB option, fits only in 64 MB.
        return std::max<std::uint64_t>(
            std::uint64_t(250000 * cfg.scale), 64);
    }

    std::uint32_t elemDataBytes() const override { return 128; }
};

} // anonymous namespace

std::unique_ptr<RmsKernel>
makeSAvdf()
{
    return std::make_unique<SAvdfKernel>();
}

std::unique_ptr<RmsKernel>
makeSAvif()
{
    return std::make_unique<SAvifKernel>();
}

std::unique_ptr<RmsKernel>
makeSUs()
{
    return std::make_unique<SUsKernel>();
}

} // namespace detail
} // namespace workloads
} // namespace stack3d
