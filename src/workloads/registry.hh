/**
 * @file
 * Registry of the RMS workload kernels (the paper's Table 1).
 */

#ifndef STACK3D_WORKLOADS_REGISTRY_HH
#define STACK3D_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/kernel.hh"

namespace stack3d {
namespace workloads {

/** Names of all RMS kernels, in Figure 5's order. */
std::vector<std::string> rmsKernelNames();

/**
 * Create the kernel with the given Figure 5 name (e.g. "gauss").
 * Calls stack3d_fatal() for unknown names.
 */
std::unique_ptr<RmsKernel> makeRmsKernel(const std::string &name);

/** Create all 12 kernels in Figure 5's order. */
std::vector<std::unique_ptr<RmsKernel>> makeAllRmsKernels();

} // namespace workloads
} // namespace stack3d

#endif // STACK3D_WORKLOADS_REGISTRY_HH
