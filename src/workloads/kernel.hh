/**
 * @file
 * Base classes for instrumented RMS workload kernels.
 *
 * Each kernel (Table 1 of the paper) implements the real algorithm's
 * memory-access pattern: setup builds the shared data structures
 * (array placement, sparse structure), then each simulated thread
 * traces its share of the computation through a ThreadTracer. The
 * per-thread traces are merged chunk-wise into one SMP trace.
 */

#ifndef STACK3D_WORKLOADS_KERNEL_HH
#define STACK3D_WORKLOADS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "trace/buffer.hh"
#include "trace/writer.hh"
#include "workloads/config.hh"

namespace stack3d {
namespace workloads {

/**
 * A named, placed array in the simulated address space. Element
 * addresses are base + index * elem_size.
 */
struct ArrayRef
{
    Addr base = 0;
    std::uint32_t elem_size = 8;
    std::uint64_t count = 0;

    Addr
    at(std::uint64_t idx) const
    {
        stack3d_assert(idx < count, "array index out of range: ", idx,
                       " >= ", count);
        return base + idx * elem_size;
    }

    std::uint64_t sizeBytes() const { return count * elem_size; }
};

/**
 * Allocates arrays in the simulated address space during kernel
 * setup. Allocation is a 4 KB-aligned bump pointer; threads share
 * the same placement so shared structures have shared addresses.
 */
class SetupContext
{
  public:
    explicit SetupContext(const WorkloadConfig &cfg)
        : _cfg(cfg), _rng(cfg.seed)
    {
    }

    /** Allocate an array of @p count elements of @p elem_size bytes. */
    ArrayRef alloc(std::uint64_t count, std::uint32_t elem_size);

    const WorkloadConfig &config() const { return _cfg; }
    Random &rng() { return _rng; }

    /** Scaled element count: max(floor(n * scale), minimum). */
    std::uint64_t
    scaled(std::uint64_t n, std::uint64_t minimum = 64) const
    {
        auto v = std::uint64_t(double(n) * _cfg.scale);
        return v < minimum ? minimum : v;
    }

    /** Total bytes allocated so far. */
    std::uint64_t allocatedBytes() const { return _next - kBase; }

  private:
    static constexpr Addr kBase = 0x10000000;
    const WorkloadConfig &_cfg;
    Random _rng;
    Addr _next = kBase;
};

/** Opaque per-kernel shared state (sparse structures, dimensions). */
struct KernelState
{
    virtual ~KernelState() = default;
};

/**
 * Per-thread tracing context handed to RmsKernel::runThread. Wraps a
 * ThreadTracer with convenience element and streaming accessors, a
 * per-thread RNG, and the record budget.
 */
class KernelContext
{
  public:
    KernelContext(unsigned thread_id, unsigned num_threads,
                  std::uint64_t budget, std::uint64_t seed)
        : _thread_id(thread_id), _num_threads(num_threads),
          _budget(budget), _tracer(std::uint8_t(thread_id)),
          _rng(seed ^ (0x9e3779b9ULL * (thread_id + 1)))
    {
        // Kernels stop within one loop body of the budget, so this
        // single reservation absorbs nearly every regrowth copy.
        _tracer.reserve(budget);
    }

    unsigned threadId() const { return _thread_id; }
    unsigned numThreads() const { return _num_threads; }
    Random &rng() { return _rng; }

    /** True once this thread has produced its share of records. */
    bool done() const { return _tracer.size() >= _budget; }

    std::uint64_t recordCount() const { return _tracer.size(); }

    /**
     * Trace one element load.
     * @param site static access-site id (becomes the record's IP)
     * @param dep record that produced the address or input value
     */
    trace::RecordId
    load(const ArrayRef &arr, std::uint64_t idx, unsigned site,
         trace::RecordId dep = trace::kNone)
    {
        return _tracer.load(arr.at(idx), siteIp(site), dep,
                            accessSize(arr));
    }

    /** Trace one element store. */
    trace::RecordId
    store(const ArrayRef &arr, std::uint64_t idx, unsigned site,
          trace::RecordId dep = trace::kNone)
    {
        return _tracer.store(arr.at(idx), siteIp(site), dep,
                             accessSize(arr));
    }

    /**
     * Trace a sequential sweep of @p bytes starting at element @p idx,
     * one record per @p gran bytes (modelling vectorized/unrolled
     * code). @return id of the last record.
     */
    trace::RecordId
    streamLoad(const ArrayRef &arr, std::uint64_t idx, std::uint64_t bytes,
               unsigned gran, unsigned site)
    {
        return stream(arr, idx, bytes, gran, site, /*is_store=*/false);
    }

    /** Store variant of streamLoad(). */
    trace::RecordId
    streamStore(const ArrayRef &arr, std::uint64_t idx, std::uint64_t bytes,
                unsigned gran, unsigned site)
    {
        return stream(arr, idx, bytes, gran, site, /*is_store=*/true);
    }

    /** Partition [0, n) among threads; this thread's half-open range. */
    std::pair<std::uint64_t, std::uint64_t>
    myRange(std::uint64_t n) const
    {
        std::uint64_t per = n / _num_threads;
        std::uint64_t lo = per * _thread_id;
        std::uint64_t hi =
            _thread_id + 1 == _num_threads ? n : lo + per;
        return {lo, hi};
    }

    /** Steal the thread's records (called by the generator). */
    std::vector<trace::TraceRecord> takeRecords() { return _tracer.take(); }

  private:
    static Addr siteIp(unsigned site) { return 0x400000 + Addr(site) * 16; }

    static std::uint8_t
    accessSize(const ArrayRef &arr)
    {
        return std::uint8_t(arr.elem_size <= 64 ? arr.elem_size : 64);
    }

    trace::RecordId stream(const ArrayRef &arr, std::uint64_t idx,
                           std::uint64_t bytes, unsigned gran,
                           unsigned site, bool is_store);

    unsigned _thread_id;
    unsigned _num_threads;
    std::uint64_t _budget;
    trace::ThreadTracer _tracer;
    Random _rng;
};

/**
 * An instrumented RMS benchmark kernel (one row of Table 1).
 */
class RmsKernel
{
  public:
    virtual ~RmsKernel() = default;

    /** Short benchmark name as used in Figure 5 (e.g. "gauss"). */
    virtual const char *name() const = 0;

    /** One-line description from Table 1. */
    virtual const char *description() const = 0;

    /**
     * Approximate data footprint in bytes at the given config's scale
     * (used by tests and to document Figure 5 capacity sensitivity).
     */
    virtual std::uint64_t nominalFootprintBytes(
        const WorkloadConfig &cfg) const = 0;

    /** Generate the merged SMP trace for this kernel. */
    trace::TraceBuffer generate(const WorkloadConfig &cfg) const;

  protected:
    /** Build shared data structures (dimensions, sparse patterns). */
    virtual std::unique_ptr<KernelState> buildState(
        SetupContext &setup) const = 0;

    /** Trace one thread's share of the computation until ctx.done(). */
    virtual void runThread(KernelContext &ctx,
                           const KernelState &state) const = 0;
};

} // namespace workloads
} // namespace stack3d

#endif // STACK3D_WORKLOADS_KERNEL_HH
