#include "sparse_util.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stack3d {
namespace workloads {

CsrPattern
makeRandomCsr(std::uint64_t rows, std::uint64_t cols,
              unsigned nnz_per_row, Random &rng, double locality,
              std::uint64_t bandwidth)
{
    stack3d_assert(rows > 0 && cols > 0, "degenerate CSR dimensions");
    stack3d_assert(nnz_per_row > 0 && nnz_per_row <= cols,
                   "nnz per row out of range");

    CsrPattern csr;
    csr.rows = rows;
    csr.cols = cols;
    csr.row_ptr.resize(rows + 1);
    csr.col_idx.reserve(rows * nnz_per_row);

    std::vector<std::uint32_t> row;
    for (std::uint64_t r = 0; r < rows; ++r) {
        csr.row_ptr[r] = csr.col_idx.size();
        row.clear();
        while (row.size() < nnz_per_row) {
            std::uint64_t c;
            if (rng.chance(locality)) {
                // Banded draw around the diagonal (clamped).
                std::uint64_t center =
                    cols == rows ? r : (r * cols) / rows;
                std::uint64_t span = 2 * bandwidth + 1;
                std::uint64_t off = rng.uniformInt(span);
                std::int64_t c_signed =
                    std::int64_t(center) + std::int64_t(off) -
                    std::int64_t(bandwidth);
                if (c_signed < 0)
                    c_signed = 0;
                if (c_signed >= std::int64_t(cols))
                    c_signed = std::int64_t(cols) - 1;
                c = std::uint64_t(c_signed);
            } else {
                c = rng.uniformInt(cols);
            }
            auto c32 = std::uint32_t(c);
            if (std::find(row.begin(), row.end(), c32) == row.end())
                row.push_back(c32);
        }
        std::sort(row.begin(), row.end());
        csr.col_idx.insert(csr.col_idx.end(), row.begin(), row.end());
    }
    csr.row_ptr[rows] = csr.col_idx.size();
    return csr;
}

} // namespace workloads
} // namespace stack3d
