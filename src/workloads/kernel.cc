#include "kernel.hh"

namespace stack3d {
namespace workloads {

ArrayRef
SetupContext::alloc(std::uint64_t count, std::uint32_t elem_size)
{
    stack3d_assert(count > 0 && elem_size > 0, "empty allocation");
    ArrayRef ref;
    ref.base = _next;
    ref.elem_size = elem_size;
    ref.count = count;
    std::uint64_t bytes = count * std::uint64_t(elem_size);
    // 4 KB-align the next array, matching page-granular placement.
    _next += (bytes + 4095) & ~std::uint64_t(4095);
    return ref;
}

trace::RecordId
KernelContext::stream(const ArrayRef &arr, std::uint64_t idx,
                      std::uint64_t bytes, unsigned gran, unsigned site,
                      bool is_store)
{
    stack3d_assert(gran > 0 && gran <= 64,
                   "stream granularity must be in (0, 64]");
    Addr start = arr.at(idx);
    stack3d_assert(start + bytes <= arr.base + arr.sizeBytes(),
                   "stream overruns array");
    trace::RecordId last = trace::kNone;
    std::uint8_t rec_size = std::uint8_t(gran);
    for (Addr a = start; a < start + bytes; a += gran) {
        if (is_store)
            last = _tracer.store(a, siteIp(site), trace::kNone, rec_size);
        else
            last = _tracer.load(a, siteIp(site), trace::kNone, rec_size);
    }
    return last;
}

trace::TraceBuffer
RmsKernel::generate(const WorkloadConfig &cfg) const
{
    stack3d_assert(cfg.num_threads >= 1, "need at least one thread");
    SetupContext setup(cfg);
    std::unique_ptr<KernelState> state = buildState(setup);
    stack3d_assert(state != nullptr, "kernel produced no state");

    std::vector<std::vector<trace::TraceRecord>> threads;
    threads.reserve(cfg.num_threads);
    for (unsigned t = 0; t < cfg.num_threads; ++t) {
        KernelContext ctx(t, cfg.num_threads, cfg.records_per_thread,
                          cfg.seed);
        runThread(ctx, *state);
        stack3d_assert(ctx.recordCount() > 0,
                       "kernel '", name(), "' produced an empty trace");
        threads.push_back(ctx.takeRecords());
    }
    return trace::TraceMerger().merge(std::move(threads));
}

} // namespace workloads
} // namespace stack3d
