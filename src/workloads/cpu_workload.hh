/**
 * @file
 * Synthetic single-thread µop streams for the Logic+Logic study.
 *
 * The paper drives its Pentium 4 product simulator with over 650
 * single-thread traces spanning SPECINT, SPECFP, hand-written
 * kernels, multimedia, internet, productivity, server, and
 * workstation applications. We reproduce that population with a
 * parameterized µop-stream generator: each application class fixes a
 * characteristic instruction mix, dependency-distance distribution,
 * branch behaviour, and cache-miss profile, and each "trace" is a
 * seeded random variant of its class.
 */

#ifndef STACK3D_WORKLOADS_CPU_WORKLOAD_HH
#define STACK3D_WORKLOADS_CPU_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"

namespace stack3d {
namespace workloads {

/** Micro-operation classes executed by the cpu model. */
enum class UopClass : std::uint8_t
{
    IntAlu,
    FpOp,      ///< floating-point arithmetic (add/mul pipeline)
    SimdOp,    ///< packed SIMD arithmetic
    Load,
    FpLoad,    ///< load feeding the FP unit (longer planar path)
    Store,
    Branch,
};

/** Which level of the cache hierarchy a memory µop hits. */
enum class MemLevel : std::uint8_t
{
    L1,
    L2,
    Memory,
};

/** One micro-operation of a synthetic trace. */
struct CpuUop
{
    UopClass cls = UopClass::IntAlu;

    /**
     * Distances (in µops, backwards) to the producers of the two
     * source operands; 0 means no register dependency on that slot.
     */
    std::uint16_t src_dist[2] = {0, 0};

    /** For Load/FpLoad: hierarchy level that services it. */
    MemLevel mem_level = MemLevel::L1;

    /** For Branch: predicted wrongly (triggers a pipeline redirect). */
    bool mispredict = false;
};

/** Parameters characterizing an application class. */
struct CpuWorkloadParams
{
    std::string name;

    // Instruction mix (fractions sum to <= 1; remainder is IntAlu).
    double frac_load = 0.22;
    double frac_fp_load = 0.0;
    double frac_store = 0.12;
    double frac_fp = 0.0;
    double frac_simd = 0.0;
    double frac_branch = 0.16;

    /** Misprediction probability per branch. */
    double mispredict_rate = 0.05;

    /** Mean register dependency distance (geometric-ish). */
    double mean_dep_dist = 6.0;

    /** Probability a µop carries a first source dependency at all. */
    double dep_prob = 0.75;

    /** Mean length of store bursts (spill/copy sequences); stores
     *  arrive in runs, which is what pressures the store queue. */
    double store_burst = 6.0;

    /** Probability a value chains directly into the next FP op
     *  (long FP dependency chains make FP latency visible). */
    double fp_chain = 0.0;

    /** Cache profile for loads. */
    double l1_miss_rate = 0.06;
    double l2_miss_rate = 0.20;   ///< of L1 misses
};

/** A named application class with baseline parameters. */
struct CpuAppClass
{
    std::string name;
    CpuWorkloadParams params;
    /** Number of trace variants in the suite for this class. */
    unsigned variants;
};

/**
 * The benchmark suite: application classes matching the populations
 * named in Section 2.2. Variant counts total ~650 traces at
 * full_suite scale; the default suite uses proportional smaller
 * counts for tractable run times.
 */
std::vector<CpuAppClass> cpuAppClasses(bool full_suite = false);

/**
 * Generate one synthetic µop trace.
 * @param params  class parameters (jittered per variant by caller or
 *                via makeVariantParams)
 * @param num_uops trace length
 * @param seed    deterministic seed
 */
std::vector<CpuUop> generateCpuTrace(const CpuWorkloadParams &params,
                                     std::uint64_t num_uops,
                                     std::uint64_t seed);

/**
 * Produce variant @p idx of an application class: the class
 * parameters with deterministic per-variant jitter (+-20%) applied,
 * modelling the spread of real traces within a category.
 */
CpuWorkloadParams makeVariantParams(const CpuAppClass &cls, unsigned idx);

} // namespace workloads
} // namespace stack3d

#endif // STACK3D_WORKLOADS_CPU_WORKLOAD_HH
