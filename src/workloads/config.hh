/**
 * @file
 * Configuration for workload trace generation.
 */

#ifndef STACK3D_WORKLOADS_CONFIG_HH
#define STACK3D_WORKLOADS_CONFIG_HH

#include <cstdint>

namespace stack3d {
namespace workloads {

/**
 * Parameters controlling RMS trace generation. The paper collects
 * 1 billion memory references per two-threaded benchmark; the default
 * here is smaller but preserves the number of working-set sweeps
 * (reuse structure), which is what determines the CPMA-vs-capacity
 * shape. Scale up records_per_thread for higher fidelity.
 */
struct WorkloadConfig
{
    /** Simulated SMP threads (the paper uses 2). */
    unsigned num_threads = 2;

    /** Approximate trace records generated per thread. */
    std::uint64_t records_per_thread = 2000000;

    /** PRNG seed for sparse structures / access ordering. */
    std::uint64_t seed = 1;

    /**
     * Working-set scale factor, 1.0 = paper-calibrated footprints
     * (see each kernel's nominalFootprintBytes()). Tests use small
     * values to run quickly.
     */
    double scale = 1.0;
};

} // namespace workloads
} // namespace stack3d

#endif // STACK3D_WORKLOADS_CONFIG_HH
