#include "registry.hh"

#include <functional>
#include <utility>

#include "common/logging.hh"
#include "workloads/rms_factories.hh"

namespace stack3d {
namespace workloads {

namespace {

using Factory = std::unique_ptr<RmsKernel> (*)();

const std::pair<const char *, Factory> kKernels[] = {
    {"conj", detail::makeConj},     {"dSym", detail::makeDSym},
    {"gauss", detail::makeGauss},   {"pcg", detail::makePcg},
    {"sMVM", detail::makeSMvm},     {"sSym", detail::makeSSym},
    {"sTrans", detail::makeSTrans}, {"sAVDF", detail::makeSAvdf},
    {"sAVIF", detail::makeSAvif},   {"sUS", detail::makeSUs},
    {"svd", detail::makeSvd},       {"svm", detail::makeSvm},
};

} // anonymous namespace

std::vector<std::string>
rmsKernelNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : kKernels)
        names.emplace_back(name);
    return names;
}

std::unique_ptr<RmsKernel>
makeRmsKernel(const std::string &name)
{
    for (const auto &[kname, factory] : kKernels) {
        if (name == kname)
            return factory();
    }
    stack3d_fatal("unknown RMS kernel '", name, "'");
}

std::vector<std::unique_ptr<RmsKernel>>
makeAllRmsKernels()
{
    std::vector<std::unique_ptr<RmsKernel>> all;
    for (const auto &[name, factory] : kKernels)
        all.push_back(factory());
    return all;
}

} // namespace workloads
} // namespace stack3d
