/**
 * @file
 * Iterative solver RMS kernels: conj (conjugate gradient on a 3-D
 * 7-point stencil) and pcg (preconditioned conjugate gradient with a
 * red-black-reordered Cholesky preconditioner on a 2-D 5-point grid).
 *
 * conj's four solution vectors total ~3.5 MB (capacity-insensitive);
 * pcg's five vectors total ~16.4 MB, fitting only from 32 MB up.
 */

#include "workloads/rms_factories.hh"

#include <algorithm>
#include <cmath>

namespace stack3d {
namespace workloads {
namespace detail {

namespace {

// ---------------------------------------------------------------------
// conj: CG with an implicit (matrix-free) 3-D 7-point stencil.
// ---------------------------------------------------------------------

struct ConjState : KernelState
{
    std::uint64_t nx = 0, ny = 0, nz = 0, n = 0;
    ArrayRef x, r, p, q;   // solution, residual, direction, A*p
};

class ConjKernel : public RmsKernel
{
  public:
    const char *name() const override { return "conj"; }

    const char *
    description() const override
    {
        return "Conjugate Gradient Solver";
    }

    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        std::uint64_t nx = dim(cfg);
        return 4 * nx * nx * nx * 8;
    }

  protected:
    static std::uint64_t
    dim(const WorkloadConfig &cfg)
    {
        // 48^3 nodes -> 4 vectors * 0.88 MB = 3.5 MB (fits 4 MB).
        return std::max<std::uint64_t>(
            std::uint64_t(48 * std::cbrt(cfg.scale)), 8);
    }

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<ConjState>();
        st->nx = st->ny = st->nz = dim(setup.config());
        st->n = st->nx * st->ny * st->nz;
        st->x = setup.alloc(st->n, 8);
        st->r = setup.alloc(st->n, 8);
        st->p = setup.alloc(st->n, 8);
        st->q = setup.alloc(st->n, 8);
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const ConjState &>(state);
        std::uint64_t plane = st.nx * st.ny;
        auto [z_lo, z_hi] = ctx.myRange(st.nz);

        while (!ctx.done()) {
            // q = A p over this thread's z-slab: 7-point stencil,
            // traced per 4-node vector group (32 B).
            for (std::uint64_t z = z_lo; z < z_hi; ++z) {
                for (std::uint64_t y = 0; y < st.ny; ++y) {
                    std::uint64_t row = z * plane + y * st.nx;
                    for (std::uint64_t i = 0; i < st.nx; i += 4) {
                        std::uint64_t c = row + i;
                        ctx.load(st.p, c, 70);                 // centre
                        if (i + 4 < st.nx)
                            ctx.load(st.p, c + 4, 71);         // +x
                        if (y + 1 < st.ny)
                            ctx.load(st.p, c + st.nx, 72);     // +y
                        if (y > 0)
                            ctx.load(st.p, c - st.nx, 73);     // -y
                        if (z + 1 < st.nz)
                            ctx.load(st.p, c + plane, 74);     // +z
                        if (z > 0)
                            ctx.load(st.p, c - plane, 75);     // -z
                        ctx.store(st.q, c, 76);
                    }
                }
                if (ctx.done())
                    return;
            }

            // alpha = r.r / p.q; x += alpha p; r -= alpha q;
            // beta, p = r + beta p -- all streaming vector sweeps.
            std::uint64_t lo = z_lo * plane;
            std::uint64_t bytes = (z_hi - z_lo) * plane * 8;
            ctx.streamLoad(st.p, lo, bytes, 16, 77);
            ctx.streamLoad(st.q, lo, bytes, 16, 78);
            ctx.streamLoad(st.x, lo, bytes, 16, 79);
            ctx.streamStore(st.x, lo, bytes, 16, 80);
            ctx.streamLoad(st.r, lo, bytes, 16, 81);
            ctx.streamStore(st.r, lo, bytes, 16, 82);
            ctx.streamStore(st.p, lo, bytes, 16, 83);
        }
    }
};

// ---------------------------------------------------------------------
// pcg: preconditioned CG, red-black Gauss-Seidel/IC-style
// preconditioner on a 2-D 5-point grid.
// ---------------------------------------------------------------------

struct PcgState : KernelState
{
    std::uint64_t nx = 0, ny = 0, n = 0;
    ArrayRef x, r, p, q, z;
};

class PcgKernel : public RmsKernel
{
  public:
    const char *name() const override { return "pcg"; }

    const char *
    description() const override
    {
        return "Preconditioned Conjugate Gradient Solver using "
               "Cholesky Preconditioner, Red-Black Reordering";
    }

    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        std::uint64_t nx = dim(cfg);
        return 5 * nx * nx * 8;
    }

  protected:
    static std::uint64_t
    dim(const WorkloadConfig &cfg)
    {
        // 640^2 nodes -> 5 vectors * 3.28 MB = 16.4 MB (needs 32 MB).
        return std::max<std::uint64_t>(
            std::uint64_t(640 * std::sqrt(cfg.scale)), 16);
    }

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<PcgState>();
        st->nx = st->ny = dim(setup.config());
        st->n = st->nx * st->ny;
        st->x = setup.alloc(st->n, 8);
        st->r = setup.alloc(st->n, 8);
        st->p = setup.alloc(st->n, 8);
        st->q = setup.alloc(st->n, 8);
        st->z = setup.alloc(st->n, 8);
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const PcgState &>(state);
        auto [y_lo, y_hi] = ctx.myRange(st.ny);
        std::uint64_t lo = y_lo * st.nx;
        std::uint64_t bytes = (y_hi - y_lo) * st.nx * 8;

        while (!ctx.done()) {
            // q = A p: 5-point stencil per 8-node group (64 B).
            for (std::uint64_t y = y_lo; y < y_hi; ++y) {
                std::uint64_t row = y * st.nx;
                for (std::uint64_t i = 0; i < st.nx; i += 8) {
                    std::uint64_t c = row + i;
                    ctx.load(st.p, c, 90);
                    if (y + 1 < st.ny)
                        ctx.load(st.p, c + st.nx, 91);
                    if (y > 0)
                        ctx.load(st.p, c - st.nx, 92);
                    ctx.store(st.q, c, 93);
                }
                if (ctx.done())
                    return;
            }

            // Preconditioner z = M^-1 r: red sweep then black sweep,
            // each reading r and the opposite colour of z.
            for (unsigned colour = 0; colour < 2; ++colour) {
                for (std::uint64_t y = y_lo; y < y_hi; ++y) {
                    std::uint64_t row = y * st.nx;
                    for (std::uint64_t i = 0; i < st.nx; i += 16) {
                        std::uint64_t c = row + i;
                        ctx.load(st.r, c, 94);
                        ctx.load(st.z, c, 95);
                        if (y + 1 < st.ny)
                            ctx.load(st.z, c + st.nx, 96);
                        ctx.store(st.z, c, 97);
                    }
                }
                if (ctx.done())
                    return;
            }

            // Vector updates: beta/p, alpha/x, r.
            ctx.streamLoad(st.z, lo, bytes, 16, 98);
            ctx.streamLoad(st.p, lo, bytes, 16, 99);
            ctx.streamStore(st.p, lo, bytes, 16, 100);
            ctx.streamLoad(st.x, lo, bytes, 16, 101);
            ctx.streamStore(st.x, lo, bytes, 16, 102);
            ctx.streamLoad(st.q, lo, bytes, 16, 103);
            ctx.streamLoad(st.r, lo, bytes, 16, 104);
            ctx.streamStore(st.r, lo, bytes, 16, 105);
        }
    }
};

} // anonymous namespace

std::unique_ptr<RmsKernel>
makeConj()
{
    return std::make_unique<ConjKernel>();
}

std::unique_ptr<RmsKernel>
makePcg()
{
    return std::make_unique<PcgKernel>();
}

} // namespace detail
} // namespace workloads
} // namespace stack3d
