/**
 * @file
 * Sparse-matrix structure generation shared by the sparse RMS
 * kernels. Structures are deterministic given a seed so traces are
 * reproducible run to run.
 */

#ifndef STACK3D_WORKLOADS_SPARSE_UTIL_HH
#define STACK3D_WORKLOADS_SPARSE_UTIL_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace stack3d {
namespace workloads {

/** Compressed-sparse-row structure (pattern only, no values). */
struct CsrPattern
{
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    /** row_ptr[r]..row_ptr[r+1] index into col_idx. */
    std::vector<std::uint64_t> row_ptr;
    std::vector<std::uint32_t> col_idx;

    std::uint64_t nnz() const { return col_idx.size(); }
};

/**
 * Build a random CSR pattern with exactly @p nnz_per_row sorted,
 * distinct column indices per row. Column draws mix local (banded)
 * and global (uniform) positions with probability @p locality of a
 * near-diagonal draw, matching the banded-plus-fill structure of
 * assembled FEM/graph matrices.
 */
CsrPattern makeRandomCsr(std::uint64_t rows, std::uint64_t cols,
                         unsigned nnz_per_row, Random &rng,
                         double locality = 0.7,
                         std::uint64_t bandwidth = 512);

} // namespace workloads
} // namespace stack3d

#endif // STACK3D_WORKLOADS_SPARSE_UTIL_HH
