/**
 * @file
 * Sparse matrix-vector RMS kernels: sMVM (CSR SpMV), sSym (symmetric
 * SpMV touching both x[col] and y[col]), sTrans (transposed SpMV with
 * scatter updates).
 *
 * The defining memory behaviour is the indirection chain: the column
 * index load produces the address of the x/y element access, which is
 * expressed as a trace dependency and limits memory-level parallelism
 * exactly the way the paper's dependency-annotated traces do.
 */

#include "workloads/rms_factories.hh"

#include <algorithm>
#include <cmath>

#include "workloads/sparse_util.hh"

namespace stack3d {
namespace workloads {
namespace detail {

namespace {

/** Shared state for all three sparse kernels. */
struct SparseState : KernelState
{
    CsrPattern csr;
    ArrayRef vals;     // nnz doubles
    ArrayRef cols;     // nnz uint32 column indices
    ArrayRef row_ptr;  // rows+1 uint64
    ArrayRef x;        // cols doubles
    ArrayRef y;        // rows doubles
};

/** Common setup: build a CSR pattern and place the arrays. */
std::unique_ptr<SparseState>
buildSparse(SetupContext &setup, std::uint64_t rows, unsigned nnz_per_row)
{
    auto st = std::make_unique<SparseState>();
    st->csr = makeRandomCsr(rows, rows, nnz_per_row, setup.rng());
    st->vals = setup.alloc(st->csr.nnz(), 8);
    st->cols = setup.alloc(st->csr.nnz(), 4);
    st->row_ptr = setup.alloc(rows + 1, 8);
    st->x = setup.alloc(rows, 8);
    st->y = setup.alloc(rows, 8);
    return st;
}

std::uint64_t
sparseFootprint(std::uint64_t rows, unsigned nnz_per_row)
{
    std::uint64_t nnz = rows * nnz_per_row;
    return nnz * 8 + nnz * 4 + (rows + 1) * 8 + 2 * rows * 8;
}

/** Base class factoring the common y = A x traversal skeleton. */
class SparseKernelBase : public RmsKernel
{
  protected:
    virtual std::uint64_t rows(const WorkloadConfig &cfg) const = 0;
    virtual unsigned nnzPerRow() const = 0;

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        return buildSparse(setup, rows(setup.config()), nnzPerRow());
    }

  public:
    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        return sparseFootprint(rows(cfg), nnzPerRow());
    }
};

// ---------------------------------------------------------------------
// sMVM: y = A x, CSR gather form.
// ---------------------------------------------------------------------

class SMvmKernel : public SparseKernelBase
{
  public:
    const char *name() const override { return "sMVM"; }

    const char *
    description() const override
    {
        return "Sparse Matrix Multiplication";
    }

  protected:
    std::uint64_t
    rows(const WorkloadConfig &cfg) const override
    {
        // 120k rows x 8 nnz -> ~13.4 MB: fits only from 32 MB up.
        return std::max<std::uint64_t>(
            std::uint64_t(120000 * cfg.scale), 512);
    }

    unsigned nnzPerRow() const override { return 8; }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const SparseState &>(state);
        auto [r_lo, r_hi] = ctx.myRange(st.csr.rows);

        while (!ctx.done()) {
            for (std::uint64_t r = r_lo; r < r_hi; ++r) {
                std::uint64_t lo = st.csr.row_ptr[r];
                std::uint64_t hi = st.csr.row_ptr[r + 1];
                ctx.load(st.row_ptr, r, 40);
                // Column indices and values stream in vector chunks.
                auto col_rec = ctx.streamLoad(st.cols, lo, (hi - lo) * 4,
                                              16, 41);
                ctx.streamLoad(st.vals, lo, (hi - lo) * 8, 16, 42);
                // Gather x[col]: address depends on the index load.
                for (std::uint64_t e = lo; e < hi; ++e)
                    ctx.load(st.x, st.csr.col_idx[e], 43, col_rec);
                ctx.store(st.y, r, 44);
                if (ctx.done())
                    return;
            }
        }
    }
};

// ---------------------------------------------------------------------
// sSym: symmetric SpMV; each stored element (r, c) updates both
// y[r] += v * x[c] and y[c] += v * x[r].
// ---------------------------------------------------------------------

class SSymKernel : public SparseKernelBase
{
  public:
    const char *name() const override { return "sSym"; }

    const char *
    description() const override
    {
        return "Symmetrical Sparse Matrix Multiplication";
    }

  protected:
    std::uint64_t
    rows(const WorkloadConfig &cfg) const override
    {
        // 40k rows x 6 nnz -> ~3.2 MB: fits the 4 MB baseline.
        return std::max<std::uint64_t>(
            std::uint64_t(40000 * cfg.scale), 512);
    }

    unsigned nnzPerRow() const override { return 6; }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const SparseState &>(state);
        auto [r_lo, r_hi] = ctx.myRange(st.csr.rows);

        while (!ctx.done()) {
            for (std::uint64_t r = r_lo; r < r_hi; ++r) {
                std::uint64_t lo = st.csr.row_ptr[r];
                std::uint64_t hi = st.csr.row_ptr[r + 1];
                ctx.load(st.row_ptr, r, 50);
                auto col_rec = ctx.streamLoad(st.cols, lo, (hi - lo) * 4,
                                              16, 51);
                ctx.streamLoad(st.vals, lo, (hi - lo) * 8, 16, 52);
                ctx.load(st.x, r, 53);
                for (std::uint64_t e = lo; e < hi; ++e) {
                    std::uint32_t c = st.csr.col_idx[e];
                    ctx.load(st.x, c, 54, col_rec);
                    // Scatter side: read-modify-write y[c].
                    auto y_old = ctx.load(st.y, c, 55, col_rec);
                    ctx.store(st.y, c, 56, y_old);
                }
                ctx.store(st.y, r, 57);
                if (ctx.done())
                    return;
            }
        }
    }
};

// ---------------------------------------------------------------------
// sTrans: y = A^T x; CSR rows become scatter updates of y.
// ---------------------------------------------------------------------

class STransKernel : public SparseKernelBase
{
  public:
    const char *name() const override { return "sTrans"; }

    const char *
    description() const override
    {
        return "Transposed Sparse Matrix Multiplication";
    }

  protected:
    std::uint64_t
    rows(const WorkloadConfig &cfg) const override
    {
        // 200k rows x 4 nnz -> ~12.8 MB: fits only from 32 MB up.
        return std::max<std::uint64_t>(
            std::uint64_t(200000 * cfg.scale), 512);
    }

    unsigned nnzPerRow() const override { return 4; }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const SparseState &>(state);
        auto [r_lo, r_hi] = ctx.myRange(st.csr.rows);

        while (!ctx.done()) {
            for (std::uint64_t r = r_lo; r < r_hi; ++r) {
                std::uint64_t lo = st.csr.row_ptr[r];
                std::uint64_t hi = st.csr.row_ptr[r + 1];
                ctx.load(st.row_ptr, r, 60);
                auto x_rec = ctx.load(st.x, r, 61);
                auto col_rec = ctx.streamLoad(st.cols, lo, (hi - lo) * 4,
                                              16, 62);
                ctx.streamLoad(st.vals, lo, (hi - lo) * 8, 16, 63);
                for (std::uint64_t e = lo; e < hi; ++e) {
                    std::uint32_t c = st.csr.col_idx[e];
                    // y[c] += v * x[r]: RMW dependent on both the
                    // column index and the x load.
                    auto y_old = ctx.load(st.y, c, 64, col_rec);
                    (void)x_rec;
                    ctx.store(st.y, c, 65, y_old);
                }
                if (ctx.done())
                    return;
            }
        }
    }
};

} // anonymous namespace

std::unique_ptr<RmsKernel>
makeSMvm()
{
    return std::make_unique<SMvmKernel>();
}

std::unique_ptr<RmsKernel>
makeSSym()
{
    return std::make_unique<SSymKernel>();
}

std::unique_ptr<RmsKernel>
makeSTrans()
{
    return std::make_unique<STransKernel>();
}

} // namespace detail
} // namespace workloads
} // namespace stack3d
