/**
 * @file
 * svm: support-vector-machine scoring for face recognition in images.
 * Classifying one image region evaluates the kernel function of the
 * query feature vector against every support vector, streaming the
 * whole support-vector matrix (~24.6 MB) per query. The matrix is
 * re-used across queries, so CPMA collapses once the last-level cache
 * reaches 32 MB — svm is the paper's best-case benchmark (up to 55%).
 */

#include "workloads/rms_factories.hh"

#include <algorithm>

namespace stack3d {
namespace workloads {
namespace detail {

namespace {

struct SvmState : KernelState
{
    std::uint64_t num_sv = 0;      // support vectors
    std::uint64_t dim = 0;         // features per vector (floats)
    ArrayRef sv;                   // num_sv x dim floats
    ArrayRef alpha;                // num_sv doubles
    ArrayRef query;                // num_queries x dim floats
    std::uint64_t num_queries = 0;
    /** Streaming camera frames: each query classifies a freshly
     *  captured image window, so this region is touched exactly
     *  once (compulsory traffic at every cache size). */
    ArrayRef frames;
    std::uint64_t frame_bytes = 0; // per query
};

class SvmKernel : public RmsKernel
{
  public:
    const char *name() const override { return "svm"; }

    const char *
    description() const override
    {
        return "Pattern Recognition Algorithm for Face Recognition "
               "in Images";
    }

    std::uint64_t
    nominalFootprintBytes(const WorkloadConfig &cfg) const override
    {
        return numSv(cfg) * kDim * 4 + numSv(cfg) * 8;
    }

  protected:
    static constexpr std::uint64_t kDim = 1024;
    static constexpr std::uint64_t kQueries = 64;

    static std::uint64_t
    numSv(const WorkloadConfig &cfg)
    {
        // 6000 SVs x 1024 floats -> 24.6 MB (fits only from 32 MB up).
        return std::max<std::uint64_t>(
            std::uint64_t(6000 * cfg.scale), 16);
    }

    std::unique_ptr<KernelState>
    buildState(SetupContext &setup) const override
    {
        auto st = std::make_unique<SvmState>();
        st->num_sv = numSv(setup.config());
        st->dim = kDim;
        st->num_queries = kQueries;
        st->sv = setup.alloc(st->num_sv * st->dim, 4);
        st->alpha = setup.alloc(st->num_sv, 8);
        st->query = setup.alloc(st->num_queries * st->dim, 4);
        // A large circular frame region, re-read only after ~256
        // queries (far beyond any cache's reach).
        st->frame_bytes = 384 * 1024;   // one camera window
        st->frames = setup.alloc(256 * st->frame_bytes / 512, 512);
        return st;
    }

    void
    runThread(KernelContext &ctx, const KernelState &state) const override
    {
        const auto &st = static_cast<const SvmState &>(state);
        auto [sv_lo, sv_hi] = ctx.myRange(st.num_sv);
        std::uint64_t row_bytes = st.dim * 4;

        std::uint64_t q = 0;
        std::uint64_t frame_pos = ctx.threadId();
        while (!ctx.done()) {
            // Ingest the freshly captured frame window (feature
            // extraction reads it once; compulsory misses).
            {
                std::uint64_t frames_total = st.frames.count;
                std::uint64_t chunk =
                    st.frame_bytes / st.frames.elem_size /
                    ctx.numThreads();
                for (std::uint64_t f = 0; f < chunk; ++f) {
                    std::uint64_t idx =
                        (frame_pos + f * ctx.numThreads()) %
                        frames_total;
                    ctx.streamLoad(st.frames, idx,
                                   st.frames.elem_size, 16, 123);
                }
                frame_pos = (frame_pos + chunk * ctx.numThreads()) %
                            frames_total;
            }

            // Score query q against this thread's share of the SVs.
            for (std::uint64_t s = sv_lo; s < sv_hi; ++s) {
                // Kernel evaluation K(sv_s, query_q): both vectors
                // stream through SIMD loads (64 B per record).
                ctx.streamLoad(st.sv, s * st.dim, row_bytes, 16, 120);
                ctx.streamLoad(st.query, q * st.dim, row_bytes, 64, 121);
                ctx.load(st.alpha, s, 122);
                if (ctx.done())
                    return;
            }
            q = (q + 1) % st.num_queries;
        }
    }
};

} // anonymous namespace

std::unique_ptr<RmsKernel>
makeSvm()
{
    return std::make_unique<SvmKernel>();
}

} // namespace detail
} // namespace workloads
} // namespace stack3d
