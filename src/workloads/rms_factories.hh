/**
 * @file
 * Internal factory functions for the 12 RMS kernels (Table 1).
 * Users go through workloads/registry.hh instead.
 */

#ifndef STACK3D_WORKLOADS_RMS_FACTORIES_HH
#define STACK3D_WORKLOADS_RMS_FACTORIES_HH

#include <memory>

#include "workloads/kernel.hh"

namespace stack3d {
namespace workloads {
namespace detail {

std::unique_ptr<RmsKernel> makeConj();   ///< Conjugate gradient solver
std::unique_ptr<RmsKernel> makeDSym();   ///< Dense matrix multiplication
std::unique_ptr<RmsKernel> makeGauss();  ///< Gauss-Jordan elimination
std::unique_ptr<RmsKernel> makePcg();    ///< Preconditioned CG (red-black)
std::unique_ptr<RmsKernel> makeSMvm();   ///< Sparse matrix-vector mult
std::unique_ptr<RmsKernel> makeSSym();   ///< Symmetric sparse MVM
std::unique_ptr<RmsKernel> makeSTrans(); ///< Transposed sparse MVM
std::unique_ptr<RmsKernel> makeSAvdf();  ///< Structural rigidity, AVDF
std::unique_ptr<RmsKernel> makeSAvif();  ///< Structural rigidity, AVIF
std::unique_ptr<RmsKernel> makeSUs();    ///< Structural rigidity, US
std::unique_ptr<RmsKernel> makeSvd();    ///< Jacobi SVD
std::unique_ptr<RmsKernel> makeSvm();    ///< SVM face recognition

} // namespace detail
} // namespace workloads
} // namespace stack3d

#endif // STACK3D_WORKLOADS_RMS_FACTORIES_HH
