#include "cpu_workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stack3d {
namespace workloads {

std::vector<CpuAppClass>
cpuAppClasses(bool full_suite)
{
    // Variant counts sum to 656 at full-suite scale (the paper ran
    // "over 650" traces); the default scale divides by 8.
    auto scale = [&](unsigned n) {
        return full_suite ? n : std::max(1u, n / 8);
    };

    std::vector<CpuAppClass> classes;

    {
        CpuWorkloadParams p;
        p.name = "specint";
        p.frac_load = 0.24; p.frac_store = 0.11; p.frac_branch = 0.19;
        p.mispredict_rate = 0.072; p.mean_dep_dist = 6.5;
        p.l1_miss_rate = 0.04; p.l2_miss_rate = 0.15;
        classes.push_back({p.name, p, scale(96)});
    }
    {
        CpuWorkloadParams p;
        p.name = "specfp";
        p.frac_load = 0.08; p.frac_fp_load = 0.18; p.frac_store = 0.09;
        p.frac_fp = 0.34; p.frac_branch = 0.06;
        p.mispredict_rate = 0.016; p.mean_dep_dist = 9.0;
        p.fp_chain = 0.78;
        p.l1_miss_rate = 0.07; p.l2_miss_rate = 0.30;
        classes.push_back({p.name, p, scale(96)});
    }
    {
        CpuWorkloadParams p;
        p.name = "kernels";
        p.frac_load = 0.06; p.frac_fp_load = 0.20; p.frac_store = 0.10;
        p.frac_fp = 0.36; p.frac_branch = 0.04;
        p.mispredict_rate = 0.008; p.mean_dep_dist = 10.0;
        p.fp_chain = 0.85;
        p.l1_miss_rate = 0.05; p.l2_miss_rate = 0.25;
        classes.push_back({p.name, p, scale(64)});
    }
    {
        CpuWorkloadParams p;
        p.name = "multimedia";
        p.frac_load = 0.20; p.frac_store = 0.12; p.frac_simd = 0.28;
        p.frac_branch = 0.08;
        p.mispredict_rate = 0.026; p.mean_dep_dist = 8.0;
        p.l1_miss_rate = 0.05; p.l2_miss_rate = 0.18;
        classes.push_back({p.name, p, scale(88)});
    }
    {
        CpuWorkloadParams p;
        p.name = "internet";
        p.frac_load = 0.26; p.frac_store = 0.13; p.frac_branch = 0.20;
        p.mispredict_rate = 0.085; p.mean_dep_dist = 6.0;
        p.l1_miss_rate = 0.05; p.l2_miss_rate = 0.22;
        classes.push_back({p.name, p, scale(80)});
    }
    {
        CpuWorkloadParams p;
        p.name = "productivity";
        p.frac_load = 0.25; p.frac_store = 0.14; p.frac_branch = 0.18;
        p.mispredict_rate = 0.065; p.mean_dep_dist = 6.0;
        p.l1_miss_rate = 0.045; p.l2_miss_rate = 0.20;
        classes.push_back({p.name, p, scale(88)});
    }
    {
        CpuWorkloadParams p;
        p.name = "server";
        p.frac_load = 0.28; p.frac_store = 0.15; p.frac_branch = 0.17;
        p.mispredict_rate = 0.078; p.mean_dep_dist = 5.5;
        p.l1_miss_rate = 0.09; p.l2_miss_rate = 0.40;
        classes.push_back({p.name, p, scale(80)});
    }
    {
        CpuWorkloadParams p;
        p.name = "workstation";
        p.frac_load = 0.18; p.frac_fp_load = 0.08; p.frac_store = 0.11;
        p.frac_fp = 0.18; p.frac_simd = 0.10; p.frac_branch = 0.11;
        p.mispredict_rate = 0.04; p.mean_dep_dist = 7.5;
        p.fp_chain = 0.45;
        p.l1_miss_rate = 0.06; p.l2_miss_rate = 0.25;
        classes.push_back({p.name, p, scale(64)});
    }
    return classes;
}

CpuWorkloadParams
makeVariantParams(const CpuAppClass &cls, unsigned idx)
{
    CpuWorkloadParams p = cls.params;
    Random rng(0xabcdef ^ (std::uint64_t(idx) << 16) ^
               std::hash<std::string>{}(cls.name));
    auto jitter = [&](double v, double rel = 0.2) {
        return v * rng.uniformDouble(1.0 - rel, 1.0 + rel);
    };
    p.frac_load = jitter(p.frac_load);
    p.frac_fp_load = jitter(p.frac_fp_load);
    p.frac_store = jitter(p.frac_store);
    p.frac_fp = jitter(p.frac_fp);
    p.frac_simd = jitter(p.frac_simd);
    p.frac_branch = jitter(p.frac_branch);
    p.mispredict_rate = jitter(p.mispredict_rate, 0.35);
    p.mean_dep_dist = jitter(p.mean_dep_dist);
    p.fp_chain = std::min(0.9, jitter(p.fp_chain));
    p.l1_miss_rate = jitter(p.l1_miss_rate, 0.35);
    p.l2_miss_rate = jitter(p.l2_miss_rate, 0.35);
    p.name = cls.name + "." + std::to_string(idx);
    return p;
}

std::vector<CpuUop>
generateCpuTrace(const CpuWorkloadParams &params_in,
                 std::uint64_t num_uops, std::uint64_t seed)
{
    // Store bursts multiply each selected store by ~store_burst, so
    // the entry probability is divided accordingly to preserve the
    // overall store fraction.
    CpuWorkloadParams params = params_in;
    if (params.store_burst > 1.0)
        params.frac_store /= params.store_burst;
    double total = params.frac_load + params.frac_fp_load +
                   params.frac_store + params.frac_fp +
                   params.frac_simd + params.frac_branch;
    if (total > 1.0)
        stack3d_fatal("instruction mix fractions exceed 1 (", total,
                      ") in workload '", params.name, "'");

    Random rng(seed);
    std::vector<CpuUop> uops;
    uops.reserve(num_uops);

    // Track the distance back to the most recent FP producer so FP
    // chains can link to it explicitly.
    std::uint64_t last_fp_producer = 0;   // index+1, 0 = none
    unsigned store_run = 0;               // remaining burst stores

    for (std::uint64_t i = 0; i < num_uops; ++i) {
        CpuUop uop;
        double draw = rng.uniformDouble();
        double acc = 0.0;

        auto pick = [&](double frac) {
            acc += frac;
            return draw < acc;
        };

        bool burst_store = false;
        if (store_run > 0) {
            // Stores cluster into bursts (register spills, copies).
            --store_run;
            uop.cls = UopClass::Store;
            burst_store = true;   // skip the mix draw below
        }

        if (burst_store) {
            // burst store selected above
        } else if (pick(params.frac_load)) {
            uop.cls = UopClass::Load;
        } else if (pick(params.frac_fp_load)) {
            uop.cls = UopClass::FpLoad;
        } else if (pick(params.frac_store)) {
            uop.cls = UopClass::Store;
            if (params.store_burst > 1.0) {
                store_run = unsigned(
                    rng.uniformDouble() * 2.0 * (params.store_burst - 1.0));
            }
        } else if (pick(params.frac_fp)) {
            uop.cls = UopClass::FpOp;
        } else if (pick(params.frac_simd)) {
            uop.cls = UopClass::SimdOp;
        } else if (pick(params.frac_branch)) {
            uop.cls = UopClass::Branch;
            uop.mispredict = rng.chance(params.mispredict_rate);
        } else {
            uop.cls = UopClass::IntAlu;
        }

        // Register dependencies: geometric distances, clamped to the
        // instructions generated so far.
        auto draw_dist = [&]() -> std::uint16_t {
            double u = rng.uniformDouble();
            double d = 1.0 - std::log(1.0 - u) * params.mean_dep_dist;
            auto dist = std::uint64_t(d);
            dist = std::min<std::uint64_t>(dist, i);
            dist = std::min<std::uint64_t>(dist, 60000);
            return std::uint16_t(dist);
        };

        if (uop.cls == UopClass::FpOp && last_fp_producer &&
            rng.chance(params.fp_chain)) {
            // Chain to the previous FP result.
            std::uint64_t dist = i - (last_fp_producer - 1);
            if (dist <= 60000)
                uop.src_dist[0] = std::uint16_t(dist);
            uop.src_dist[1] = draw_dist();
        } else if ((uop.cls != UopClass::Branch || rng.chance(0.8)) &&
                   rng.chance(params.dep_prob)) {
            uop.src_dist[0] = draw_dist();
            if (rng.chance(0.5))
                uop.src_dist[1] = draw_dist();
        }

        // Memory level for loads.
        if (uop.cls == UopClass::Load || uop.cls == UopClass::FpLoad) {
            if (rng.chance(params.l1_miss_rate)) {
                uop.mem_level = rng.chance(params.l2_miss_rate)
                                    ? MemLevel::Memory
                                    : MemLevel::L2;
            } else {
                uop.mem_level = MemLevel::L1;
            }
        }

        if (uop.cls == UopClass::FpOp || uop.cls == UopClass::FpLoad)
            last_fp_producer = i + 1;

        uops.push_back(uop);
    }
    return uops;
}

} // namespace workloads
} // namespace stack3d
