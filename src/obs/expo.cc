#include "obs/expo.hh"

#include <cctype>
#include <cstdio>

#include "obs/registry.hh"

namespace stack3d {
namespace obs {

namespace {

/** Shortest %g form that round-trips typical counter values. */
std::string
formatNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // Counters are almost always integers; drop a redundant %.17g
    // mantissa for them so the page stays human-readable.
    double as_ll = double(static_cast<long long>(v));
    if (as_ll == v && v >= -1e15 && v <= 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        s = buf;
    }
    return s;
}

std::string
formatBound(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
}

} // anonymous namespace

std::string
prometheusName(const std::string &dotted)
{
    std::string out;
    out.reserve(dotted.size());
    for (char c : dotted) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

void
writePrometheusText(std::ostream &os, const Registry &registry)
{
    CounterSet counters = registry.counters();
    for (const CounterSet::Scalar &s : counters.scalars()) {
        std::string name = prometheusName(s.first);
        const char *type =
            registry.kindOf(s.first) == MetricKind::Gauge
                ? "gauge"
                : "counter";
        os << "# TYPE " << name << " " << type << "\n";
        os << name << " " << formatNumber(s.second) << "\n";
    }
    for (const auto &entry : registry.histogramSnapshots()) {
        const std::string name = prometheusName(entry.first);
        const Histogram::Snapshot &snap = entry.second;
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (unsigned i = 0; i < snap.buckets.size(); ++i) {
            if (snap.buckets[i] == 0)
                continue;
            cumulative += snap.buckets[i];
            os << name << "_bucket{le=\""
               << formatBound(Histogram::bucketUpperBound(i))
               << "\"} " << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
        os << name << "_sum " << formatNumber(snap.sum) << "\n";
        os << name << "_count " << snap.count << "\n";
    }
}

} // namespace obs
} // namespace stack3d
