/**
 * @file
 * Prometheus text exposition (format 0.0.4) for a Registry snapshot,
 * so any standard scraper can watch a stack3d daemon:
 *
 *   # TYPE serve_requests counter
 *   serve_requests 42
 *   # TYPE serve_draining gauge
 *   serve_draining 0
 *   # TYPE serve_latency_cold_seconds histogram
 *   serve_latency_cold_seconds_bucket{le="0.001"} 3
 *   ...
 *   serve_latency_cold_seconds_bucket{le="+Inf"} 17
 *   serve_latency_cold_seconds_sum 0.82
 *   serve_latency_cold_seconds_count 17
 *
 * Dotted stack3d counter names map to Prometheus names by replacing
 * every character outside [a-zA-Z0-9_] with '_' ("serve.cache.hits"
 * -> "serve_cache_hits"). Counter vs gauge `# TYPE` lines come from
 * the registry's kind tags; histogram buckets are emitted cumulative
 * as the format requires. Series counters are skipped — a residual
 * curve is not a scrapeable metric.
 */

#ifndef STACK3D_OBS_EXPO_HH
#define STACK3D_OBS_EXPO_HH

#include <ostream>
#include <string>

namespace stack3d {
namespace obs {

class Registry;

/** Map a dotted counter name to a legal Prometheus metric name. */
std::string prometheusName(const std::string &dotted);

/** Write a full exposition page for @p registry's current state. */
void writePrometheusText(std::ostream &os, const Registry &registry);

} // namespace obs
} // namespace stack3d

#endif // STACK3D_OBS_EXPO_HH
