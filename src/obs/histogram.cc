#include "obs/histogram.hh"

#include <cmath>
#include <functional>
#include <thread>

#include "common/check.hh"
#include "common/json.hh"

namespace stack3d {
namespace obs {

Histogram::Histogram() : _shards(kShards)
{
}

unsigned
Histogram::bucketIndex(double value)
{
    if (!(value > kMinValue))   // NaN and sub-span values: bucket 0
        return 0;
    double octaves = std::log2(value / kMinValue);
    double slot = octaves * double(kSubBucketsPerOctave);
    if (slot >= double(kBuckets - 1))
        return kBuckets - 1;   // saturate: the last bucket is +inf
    return unsigned(slot);
}

double
Histogram::bucketUpperBound(unsigned index)
{
    S3D_DCHECK(index < kBuckets) << "index=" << index;
    return kMinValue *
           std::exp2(double(index + 1) /
                     double(kSubBucketsPerOctave));
}

Histogram::Shard &
Histogram::shardForThisThread()
{
    // Thread identity -> shard. Hashing the id spreads consecutively
    // created pool workers across shards; the map is stable for a
    // thread's lifetime so a single-threaded writer always hits the
    // same cache line.
    std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return _shards[h % kShards];
}

void
Histogram::record(double value)
{
    Shard &shard = shardForThisThread();
    shard.buckets[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    // CAS loop instead of fetch_add: atomic<double>::fetch_add is
    // C++20 but not universally lock-free; this compiles to the same
    // LL/SC-style loop either way.
    double sum = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(
        sum, sum + value, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.buckets.assign(kBuckets, 0);
    for (const Shard &shard : _shards) {
        for (unsigned i = 0; i < kBuckets; ++i)
            snap.buckets[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
        snap.count += shard.count.load(std::memory_order_relaxed);
        snap.sum += shard.sum.load(std::memory_order_relaxed);
    }
    return snap;
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : _shards)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

void
Histogram::Snapshot::merge(const Snapshot &other)
{
    if (buckets.empty())
        buckets.assign(kBuckets, 0);
    S3D_DCHECK(other.buckets.size() == buckets.size());
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
}

double
Histogram::Snapshot::quantile(double p) const
{
    if (count == 0 || buckets.empty())
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Rank of the wanted sample (1-based), nearest-rank style.
    std::uint64_t rank = std::uint64_t(
        std::ceil(p * double(count)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        cumulative += buckets[i];
        if (cumulative >= rank) {
            // Log-midpoint of the bucket: halves the worst-case
            // relative error vs returning an edge.
            double hi = bucketUpperBound(i);
            double lo = i == 0
                            ? kMinValue
                            : bucketUpperBound(i - 1);
            return std::sqrt(lo * hi);
        }
    }
    return bucketUpperBound(unsigned(buckets.size()) - 1);
}

void
Histogram::Snapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("count").value(count);
    w.key("sum").value(sum);
    w.key("p50").value(quantile(0.50));
    w.key("p95").value(quantile(0.95));
    w.key("p99").value(quantile(0.99));
    w.key("buckets");
    w.beginArray();
    for (unsigned i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        w.beginArray();
        w.value(bucketUpperBound(i));
        w.value(buckets[i]);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

} // namespace obs
} // namespace stack3d
