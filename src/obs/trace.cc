#include "obs/trace.hh"

#include "common/check.hh"
#include "common/json.hh"

namespace stack3d {
namespace obs {
namespace detail {

std::atomic<TraceCollector *> g_collector{nullptr};

namespace {

/**
 * Install generation. Bumped on every install() so a thread whose
 * cached buffer belongs to a dead session re-registers instead of
 * writing into freed memory.
 */
std::atomic<std::uint64_t> g_generation{0};

struct ThreadCache
{
    std::uint64_t generation = 0;
    ThreadBuffer *buffer = nullptr;
};

thread_local ThreadCache t_cache;

} // namespace

ThreadBuffer::~ThreadBuffer()
{
    // Chunks are manually owned: the record path publishes `next`
    // with a release store and may never touch a lock or allocator
    // bookkeeping that a smart pointer would add.
    EventChunk *chunk = _head->next.load(std::memory_order_acquire);
    delete _head; // lint3d: safe-naked-new-ok
    while (chunk) {
        EventChunk *next = chunk->next.load(std::memory_order_acquire);
        delete chunk; // lint3d: safe-naked-new-ok
        chunk = next;
    }
}

void
ThreadBuffer::append(TraceEvent &&event)
{
    EventChunk *chunk = _tail;
    std::size_t n = chunk->count.load(std::memory_order_relaxed);
    S3D_DCHECK(n <= EventChunk::kCapacity) << "count=" << n;
    if (n == EventChunk::kCapacity) {
        // A full chunk is sealed: its `next` must still be null,
        // otherwise two writers raced on this single-writer buffer.
        S3D_DCHECK(chunk->next.load(std::memory_order_relaxed) ==
                   nullptr);
        auto *fresh = new EventChunk; // lint3d: safe-naked-new-ok
        chunk->next.store(fresh, std::memory_order_release);
        _tail = fresh;
        chunk = fresh;
        n = 0;
    }
    chunk->events[S3D_BOUNDS(n, chunk->events.size())] =
        std::move(event);
    chunk->count.store(n + 1, std::memory_order_release);
}

ThreadBuffer *
currentBuffer()
{
    TraceCollector *collector =
        g_collector.load(std::memory_order_acquire);
    if (!collector)
        return nullptr;
    std::uint64_t generation =
        g_generation.load(std::memory_order_acquire);
    if (t_cache.generation != generation || !t_cache.buffer) {
        t_cache.buffer = collector->registerThread();
        t_cache.generation = generation;
    }
    return t_cache.buffer;
}

void
record(const char *name, const std::string *label, const char *cat,
       char phase)
{
    ThreadBuffer *buffer = currentBuffer();
    if (!buffer)
        return;
    TraceCollector *collector =
        g_collector.load(std::memory_order_acquire);
    TraceEvent event;
    event.ts_ns = collector->nowNs();
    event.name = name;
    if (label)
        event.label = *label;
    event.cat = cat;
    event.phase = phase;
    buffer->append(std::move(event));
}

} // namespace detail

TraceCollector::TraceCollector()
    : _epoch(std::chrono::steady_clock::now())
{
}

TraceCollector::~TraceCollector()
{
    uninstall();
}

void
TraceCollector::install()
{
    detail::g_generation.fetch_add(1, std::memory_order_acq_rel);
    detail::g_collector.store(this, std::memory_order_release);
}

void
TraceCollector::uninstall()
{
    TraceCollector *expected = this;
    detail::g_collector.compare_exchange_strong(
        expected, nullptr, std::memory_order_acq_rel);
}

bool
TraceCollector::installed() const
{
    return detail::g_collector.load(std::memory_order_acquire) == this;
}

std::uint64_t
TraceCollector::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - _epoch)
            .count());
}

detail::ThreadBuffer *
TraceCollector::registerThread()
{
    std::lock_guard<std::mutex> lock(_mutex);
    unsigned tid = static_cast<unsigned>(_buffers.size()) + 1;
    _buffers.push_back(std::make_unique<detail::ThreadBuffer>(tid));
    return _buffers.back().get();
}

std::size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t total = 0;
    for (const auto &buffer : _buffers) {
        const detail::EventChunk *chunk = buffer->head();
        while (chunk) {
            total += chunk->count.load(std::memory_order_acquire);
            chunk = chunk->next.load(std::memory_order_acquire);
        }
    }
    return total;
}

void
TraceCollector::writeChromeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents");
    w.beginArray();
    for (const auto &buffer : _buffers) {
        const detail::EventChunk *chunk = buffer->head();
        while (chunk) {
            std::size_t n =
                chunk->count.load(std::memory_order_acquire);
            S3D_DCHECK(n <= detail::EventChunk::kCapacity)
                << "count=" << n;
            for (std::size_t i = 0; i < n; ++i) {
                const detail::TraceEvent &ev = chunk->events[i];
                w.beginObject();
                w.key("name").value(ev.name ? ev.name
                                            : ev.label.c_str());
                w.key("cat").value(ev.cat);
                w.key("ph").value(std::string(1, ev.phase));
                if (ev.phase == 'i')
                    w.key("s").value("t");
                w.key("pid").value(std::uint64_t(1));
                w.key("tid").value(std::uint64_t(buffer->tid()));
                // Chrome expects microseconds; keep sub-us precision.
                w.key("ts").value(double(ev.ts_ns) / 1000.0);
                w.endObject();
            }
            chunk = chunk->next.load(std::memory_order_acquire);
        }
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace obs
} // namespace stack3d
