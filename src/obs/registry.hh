/**
 * @file
 * obs::Registry — the live-telemetry hub a long-running process
 * exposes itself through.
 *
 * Subsystems (the study service, its result cache, the exec pool,
 * the fault registry, ...) register *providers*: callbacks that
 * append their current counters into a CounterSet when a snapshot is
 * taken. Histogram instruments register by pointer. A snapshot —
 * counters() + histogramSnapshots() — is therefore always coherent
 * "now" data pulled from the owners, never a stale copy pushed on a
 * schedule, and taking one costs microseconds (see BM_StatsSnapshot).
 *
 * Metric kinds: CounterSet values are doubles with no semantics
 * attached, but exposition formats need to know whether a value is a
 * monotonic counter or a point-in-time gauge (Prometheus emits
 * different `# TYPE` lines, and scrape consumers apply rate() only
 * to counters). Registrants tag gauge names — exactly or by
 * "prefix*" pattern — and kindOf() answers for any metric name;
 * untagged names default to Counter, which matches the bulk of the
 * serve.* namespace.
 *
 * Thread safety: registration and snapshotting are serialized by an
 * internal mutex. Providers are invoked under that mutex, so they
 * must not call back into the registry; they may (and do) take their
 * owners' locks — registry -> owner is the one permitted order.
 */

#ifndef STACK3D_OBS_REGISTRY_HH
#define STACK3D_OBS_REGISTRY_HH

#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hh"
#include "obs/metrics.hh"

namespace stack3d {
namespace obs {

/** Exposition semantics of one metric name. */
enum class MetricKind { Counter, Gauge };

/** Provider/instrument hub for one process. See file comment. */
class Registry
{
  public:
    /** Appends the owner's current counters into the snapshot. */
    using Provider = std::function<void(CounterSet &)>;

    /**
     * Register a snapshot provider. Providers run in registration
     * order, so snapshot key order is stable across calls.
     */
    void addProvider(Provider provider);

    /**
     * Register a histogram instrument under @p name. The registry
     * does not own the histogram; the registrant must keep it alive
     * for the registry's lifetime (instruments are members of the
     * service, which owns the registry — the natural shape).
     */
    void registerHistogram(std::string name,
                           const Histogram *histogram);

    /**
     * Tag metric names as gauges: @p pattern is an exact name, or a
     * prefix match when it ends in '*' ("serve.latency.*").
     */
    void tagGauge(std::string pattern);

    /** Kind of @p name (Counter unless tagged). */
    MetricKind kindOf(const std::string &name) const;

    /** Run every provider into one merged CounterSet. */
    CounterSet counters() const;

    /** Snapshot every registered histogram, in registration order. */
    std::vector<std::pair<std::string, Histogram::Snapshot>>
    histogramSnapshots() const;

  private:
    bool gaugeLocked(const std::string &name) const;

    mutable std::mutex _mutex;
    std::vector<Provider> _providers;
    std::vector<std::pair<std::string, const Histogram *>> _histograms;
    std::vector<std::string> _gauge_patterns;
};

} // namespace obs
} // namespace stack3d

#endif // STACK3D_OBS_REGISTRY_HH
