/**
 * @file
 * Run provenance: a manifest describing exactly how a result file was
 * produced — tool name, stack3d version, build flags, seed, run
 * options, and a digest over all configuration key/value pairs.
 * Every bench embeds the manifest at the top of its --json output so
 * any result is reproducible from its header alone.
 */

#ifndef STACK3D_OBS_PROVENANCE_HH
#define STACK3D_OBS_PROVENANCE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stack3d {

class JsonWriter;

namespace obs {

/** stack3d release version (from the CMake project version). */
const char *version();

/** CMake build type ("Release", "RelWithDebInfo", ...). */
const char *buildType();

/** Compiler id + version string ("GNU 13.2.0", ...). */
const char *compiler();

/**
 * Version of every machine-readable schema stack3d emits or accepts:
 * the manifest header of --json / --stats-json files and the
 * stack3d-serve request/response wire format. Bump on any
 * incompatible change; stack3d-serve rejects requests whose
 * schema_version does not match.
 */
constexpr unsigned kSchemaVersion = 2;

/**
 * Provenance record for one run. Fill the run fields from
 * RunOptions, addConfig() every knob that shaped the result (trace
 * sizes, mesh resolution, benchmark list, ...), then emit with
 * writeManifestJson(). The digest covers tool, version, seed, run
 * fields, and every config pair, in order.
 */
struct RunManifest
{
    unsigned schema_version = kSchemaVersion;
    std::string tool;
    std::string version;
    std::string build_type;
    std::string compiler;
    long cplusplus = 0;

    std::uint64_t seed = 0;
    unsigned threads = 0;
    double depth = 1.0;
    double scale = 1.0;
    std::string verbosity = "normal";

    /** Config knobs in insertion order (kept stable for the digest). */
    std::vector<std::pair<std::string, std::string>> config;

    void addConfig(std::string key, std::string value);
    void addConfig(std::string key, std::uint64_t value);
    void addConfig(std::string key, double value);

    /** Order-sensitive FNV-1a digest over the whole manifest. */
    std::uint64_t digest() const;
};

/** Manifest pre-filled with tool name, version, and build info. */
RunManifest makeManifest(std::string tool);

/** Emit the manifest as one JSON object value (digest as hex). */
void writeManifestJson(JsonWriter &w, const RunManifest &m);

} // namespace obs
} // namespace stack3d

#endif // STACK3D_OBS_PROVENANCE_HH
