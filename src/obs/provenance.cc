#include "obs/provenance.hh"

#include "common/digest.hh"
#include "common/json.hh"

#ifndef STACK3D_VERSION
#define STACK3D_VERSION "0.0.0"
#endif
#ifndef STACK3D_BUILD_TYPE
#define STACK3D_BUILD_TYPE "unknown"
#endif
#ifndef STACK3D_COMPILER
#define STACK3D_COMPILER "unknown"
#endif

namespace stack3d {
namespace obs {

const char *
version()
{
    return STACK3D_VERSION;
}

const char *
buildType()
{
    return STACK3D_BUILD_TYPE;
}

const char *
compiler()
{
    return STACK3D_COMPILER;
}

void
RunManifest::addConfig(std::string key, std::string value)
{
    config.emplace_back(std::move(key), std::move(value));
}

void
RunManifest::addConfig(std::string key, std::uint64_t value)
{
    config.emplace_back(std::move(key), std::to_string(value));
}

void
RunManifest::addConfig(std::string key, double value)
{
    config.emplace_back(std::move(key), canonicalDouble(value));
}

std::uint64_t
RunManifest::digest() const
{
    Fnv1aDigest d;
    d.mix(std::uint64_t(schema_version));
    d.mix(tool);
    d.mix(version);
    d.mix(seed);
    d.mix(std::uint64_t(threads));
    d.mixDouble(depth);
    d.mixDouble(scale);
    d.mix(verbosity);
    for (const auto &kv : config) {
        d.mix(kv.first);
        d.mix(kv.second);
    }
    return d.value();
}

RunManifest
makeManifest(std::string tool)
{
    RunManifest m;
    m.tool = std::move(tool);
    m.version = version();
    m.build_type = buildType();
    m.compiler = compiler();
    m.cplusplus = __cplusplus;
    return m;
}

void
writeManifestJson(JsonWriter &w, const RunManifest &m)
{
    w.beginObject();
    w.key("schema_version").value(unsigned(m.schema_version));
    w.key("tool").value(m.tool);
    w.key("version").value(m.version);
    w.key("build");
    w.beginObject();
    w.key("type").value(m.build_type);
    w.key("compiler").value(m.compiler);
    w.key("cplusplus").value(std::int64_t(m.cplusplus));
    w.endObject();
    w.key("seed").value(std::uint64_t(m.seed));
    w.key("threads").value(unsigned(m.threads));
    w.key("depth").value(m.depth);
    w.key("scale").value(m.scale);
    w.key("verbosity").value(m.verbosity);
    w.key("config");
    w.beginObject();
    for (const auto &kv : m.config)
        w.key(kv.first).value(kv.second);
    w.endObject();
    w.key("config_digest").value(digestHex(m.digest()));
    w.endObject();
}

} // namespace obs
} // namespace stack3d
