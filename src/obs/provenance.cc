#include "obs/provenance.hh"

#include <cinttypes>
#include <cstdio>

#include "common/json.hh"

#ifndef STACK3D_VERSION
#define STACK3D_VERSION "0.0.0"
#endif
#ifndef STACK3D_BUILD_TYPE
#define STACK3D_BUILD_TYPE "unknown"
#endif
#ifndef STACK3D_COMPILER
#define STACK3D_COMPILER "unknown"
#endif

namespace stack3d {
namespace obs {

const char *
version()
{
    return STACK3D_VERSION;
}

const char *
buildType()
{
    return STACK3D_BUILD_TYPE;
}

const char *
compiler()
{
    return STACK3D_COMPILER;
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : s) {
        hash ^= std::uint64_t(static_cast<unsigned char>(c));
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

void
mix(std::uint64_t &hash, const std::string &s)
{
    // Hash the length too so {"ab","c"} != {"a","bc"}.
    hash ^= s.size();
    hash *= 0x100000001b3ull;
    for (char c : s) {
        hash ^= std::uint64_t(static_cast<unsigned char>(c));
        hash *= 0x100000001b3ull;
    }
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
RunManifest::addConfig(std::string key, std::string value)
{
    config.emplace_back(std::move(key), std::move(value));
}

void
RunManifest::addConfig(std::string key, std::uint64_t value)
{
    config.emplace_back(std::move(key), std::to_string(value));
}

void
RunManifest::addConfig(std::string key, double value)
{
    config.emplace_back(std::move(key), formatDouble(value));
}

std::uint64_t
RunManifest::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    mix(hash, tool);
    mix(hash, version);
    mix(hash, std::to_string(seed));
    mix(hash, std::to_string(threads));
    mix(hash, formatDouble(depth));
    mix(hash, formatDouble(scale));
    mix(hash, verbosity);
    for (const auto &kv : config) {
        mix(hash, kv.first);
        mix(hash, kv.second);
    }
    return hash;
}

RunManifest
makeManifest(std::string tool)
{
    RunManifest m;
    m.tool = std::move(tool);
    m.version = version();
    m.build_type = buildType();
    m.compiler = compiler();
    m.cplusplus = __cplusplus;
    return m;
}

void
writeManifestJson(JsonWriter &w, const RunManifest &m)
{
    w.beginObject();
    w.key("tool").value(m.tool);
    w.key("version").value(m.version);
    w.key("build");
    w.beginObject();
    w.key("type").value(m.build_type);
    w.key("compiler").value(m.compiler);
    w.key("cplusplus").value(std::int64_t(m.cplusplus));
    w.endObject();
    w.key("seed").value(std::uint64_t(m.seed));
    w.key("threads").value(unsigned(m.threads));
    w.key("depth").value(m.depth);
    w.key("scale").value(m.scale);
    w.key("verbosity").value(m.verbosity);
    w.key("config");
    w.beginObject();
    for (const auto &kv : m.config)
        w.key(kv.first).value(kv.second);
    w.endObject();
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "0x%016" PRIx64,
                  m.digest());
    w.key("config_digest").value(digest_hex);
    w.endObject();
}

} // namespace obs
} // namespace stack3d
