#include "obs/registry.hh"

namespace stack3d {
namespace obs {

void
Registry::addProvider(Provider provider)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _providers.push_back(std::move(provider));
}

void
Registry::registerHistogram(std::string name,
                            const Histogram *histogram)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _histograms.emplace_back(std::move(name), histogram);
}

void
Registry::tagGauge(std::string pattern)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _gauge_patterns.push_back(std::move(pattern));
}

bool
Registry::gaugeLocked(const std::string &name) const
{
    for (const std::string &pattern : _gauge_patterns) {
        if (!pattern.empty() && pattern.back() == '*') {
            if (name.compare(0, pattern.size() - 1, pattern, 0,
                             pattern.size() - 1) == 0)
                return true;
        } else if (name == pattern) {
            return true;
        }
    }
    return false;
}

MetricKind
Registry::kindOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return gaugeLocked(name) ? MetricKind::Gauge
                             : MetricKind::Counter;
}

CounterSet
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    CounterSet set;
    for (const Provider &provider : _providers)
        provider(set);
    return set;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::histogramSnapshots() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::pair<std::string, Histogram::Snapshot>> snaps;
    snaps.reserve(_histograms.size());
    for (const auto &entry : _histograms)
        snaps.emplace_back(entry.first, entry.second->snapshot());
    return snaps;
}

} // namespace obs
} // namespace stack3d
