/**
 * @file
 * Low-overhead tracing: scoped spans and instant events recorded into
 * per-thread lock-free buffers, flushed on demand to Chrome
 * trace-event JSON (loadable in chrome://tracing or Perfetto).
 *
 * Design:
 *  - A single TraceCollector may be installed process-wide. Span and
 *    instant() check one relaxed atomic load when no collector is
 *    installed — instrumentation compiles to a test-and-branch, so
 *    hot paths pay (near) nothing by default.
 *  - Each recording thread owns a chunked append-only buffer. The
 *    owning thread writes events and publishes them with a release
 *    store of the chunk's count; the flusher reads counts with
 *    acquire loads. No locks on the record path (a mutex is taken
 *    only when a thread registers or a chunk is allocated).
 *  - Spans are emitted as matched B/E event pairs, so per-thread
 *    timestamps are monotonic in buffer order and nesting falls out
 *    of the Chrome trace model for free.
 *
 * Lifecycle contract: uninstall/flush only while no span is open and
 * recording threads have quiesced (study pools are joined before
 * benches flush, so this holds naturally).
 */

#ifndef STACK3D_OBS_TRACE_HH
#define STACK3D_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace stack3d {
namespace obs {

class TraceCollector;

namespace detail {

/** One recorded trace event (a B/E span edge or an instant). */
struct TraceEvent
{
    std::uint64_t ts_ns = 0;
    /** Static-storage name; when null, @ref label carries the name. */
    const char *name = nullptr;
    std::string label;
    const char *cat = "";
    char phase = 'B';   ///< 'B' begin, 'E' end, 'i' instant
};

/** Fixed-capacity chunk of a per-thread event buffer. */
struct EventChunk
{
    static constexpr std::size_t kCapacity = 2048;

    EventChunk() : events(kCapacity) {}

    std::vector<TraceEvent> events;
    /** Committed events in this chunk (published with release). */
    std::atomic<std::size_t> count{0};
    std::atomic<EventChunk *> next{nullptr};
};

/** A single thread's chunked, single-writer event buffer. */
class ThreadBuffer
{
  public:
    explicit ThreadBuffer(unsigned tid)
        // Manual chunk ownership is the lock-free design; freed in
        // order in the destructor. lint3d: safe-naked-new-ok
        : _tid(tid), _head(new EventChunk), _tail(_head)
    {
    }

    ~ThreadBuffer();

    ThreadBuffer(const ThreadBuffer &) = delete;
    ThreadBuffer &operator=(const ThreadBuffer &) = delete;

    /** Record one event; called only by the owning thread. */
    void append(TraceEvent &&event);

    unsigned tid() const { return _tid; }
    const EventChunk *head() const { return _head; }

  private:
    unsigned _tid;
    EventChunk *_head;
    EventChunk *_tail;   ///< writer-owned cursor
};

extern std::atomic<TraceCollector *> g_collector;

/** Buffer of the calling thread under the installed collector. */
ThreadBuffer *currentBuffer();

void record(const char *name, const std::string *label, const char *cat,
            char phase);

} // namespace detail

/** True when a collector is installed (spans will record). */
inline bool
tracingActive()
{
    return detail::g_collector.load(std::memory_order_relaxed) !=
           nullptr;
}

/**
 * Owns every recorded event of one tracing session. Construct,
 * install(), run instrumented code, then writeChromeJson() after the
 * instrumented threads have quiesced.
 */
class TraceCollector
{
  public:
    TraceCollector();
    ~TraceCollector();

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /** Make this the process-wide collector (replaces any other). */
    void install();

    /** Stop recording into this collector. */
    void uninstall();

    bool installed() const;

    /** Committed events across all thread buffers. */
    std::size_t eventCount() const;

    /**
     * Write everything recorded so far as Chrome trace-event JSON:
     * an object with a "traceEvents" array of B/E/i events with
     * microsecond timestamps, one Chrome tid per recording thread.
     */
    void writeChromeJson(std::ostream &os) const;

    /** Nanoseconds since this collector's epoch. */
    std::uint64_t nowNs() const;

  private:
    friend detail::ThreadBuffer *detail::currentBuffer();

    /** Create + register the calling thread's buffer. */
    detail::ThreadBuffer *registerThread();

    std::chrono::steady_clock::time_point _epoch;
    mutable std::mutex _mutex;   ///< guards _buffers growth
    std::vector<std::unique_ptr<detail::ThreadBuffer>> _buffers;
};

/**
 * RAII span: records a 'B' event at construction and the matching
 * 'E' at destruction. When no collector is installed the constructor
 * is one relaxed atomic load and a branch.
 */
class Span
{
  public:
    /** @param name static-storage string (a literal). */
    explicit Span(const char *name, const char *cat = "app")
    {
        if (tracingActive()) {
            _active = true;
            detail::record(name, nullptr, cat, 'B');
        }
    }

    /** Dynamic-label overload (copies the label when active). */
    explicit Span(const std::string &label, const char *cat = "app")
    {
        if (tracingActive()) {
            _active = true;
            detail::record(nullptr, &label, cat, 'B');
        }
    }

    ~Span()
    {
        if (_active)
            detail::record(nullptr, nullptr, "", 'E');
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    bool _active = false;
};

/** Record an instant event (a zero-duration marker). */
inline void
instant(const char *name, const char *cat = "app")
{
    if (tracingActive())
        detail::record(name, nullptr, cat, 'i');
}

/** Dynamic-label instant event. */
inline void
instant(const std::string &label, const char *cat = "app")
{
    if (tracingActive())
        detail::record(nullptr, &label, cat, 'i');
}

} // namespace obs
} // namespace stack3d

#endif // STACK3D_OBS_TRACE_HH
