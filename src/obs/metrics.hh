/**
 * @file
 * Metrics export: CounterSet, an insertion-ordered bag of named
 * numeric counters (scalars plus optional series such as a thermal
 * residual curve), and JSON serializers for CounterSet and for whole
 * stats::StatGroup trees.
 *
 * CounterSet is the interchange format between subsystems and run
 * output: the mem hierarchy, cpu suite, thermal solver, and exec pool
 * each append their snapshot under a dotted prefix
 * ("mem.<option>.l2.misses", "pool.steals", ...), the study runners
 * fold the snapshots into StudyMeta, and the benches emit them as the
 * "counters" object of every --json / --stats-json output.
 */

#ifndef STACK3D_OBS_METRICS_HH
#define STACK3D_OBS_METRICS_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace stack3d {

class JsonWriter;

namespace stats {
class StatGroup;
} // namespace stats

namespace obs {

/**
 * Named numeric counters with insertion order preserved (so JSON
 * output is stable and diffable across runs). Lookup is linear —
 * sets hold tens of entries, and the record path is set()/add(),
 * not queries.
 */
class CounterSet
{
  public:
    using Scalar = std::pair<std::string, double>;
    using Series = std::pair<std::string, std::vector<double>>;

    /** Set (or overwrite) a scalar counter. */
    void set(const std::string &name, double value);

    /** Add to a scalar counter, creating it at zero if absent. */
    void add(const std::string &name, double delta);

    /** Set (or overwrite) a series counter. */
    void setSeries(const std::string &name, std::vector<double> values);

    /**
     * Sum other's scalars into this set; series absent here are
     * copied, series present keep this set's values.
     */
    void accumulate(const CounterSet &other);

    /** Copy other's entries into this set under "prefix" + name. */
    void mergePrefixed(const CounterSet &other,
                       const std::string &prefix);

    bool has(const std::string &name) const;

    /** Scalar value, or fallback when absent. */
    double value(const std::string &name, double fallback = 0.0) const;

    bool empty() const { return _scalars.empty() && _series.empty(); }
    std::size_t size() const { return _scalars.size() + _series.size(); }

    const std::vector<Scalar> &scalars() const { return _scalars; }
    const std::vector<Series> &series() const { return _series; }

  private:
    double *find(const std::string &name);

    std::vector<Scalar> _scalars;
    std::vector<Series> _series;
};

/**
 * Emit a CounterSet as one JSON object value: scalars first (in
 * insertion order), then series as arrays. Series longer than
 * @p max_series_points are downsampled by striding (first and last
 * points always kept) so residual curves stay plot-usable without
 * bloating result files.
 */
void writeCountersJson(JsonWriter &w, const CounterSet &counters,
                       std::size_t max_series_points = 256);

/**
 * Serialize a stats::StatGroup tree as one JSON object value:
 *   {"name": ..., "stats": {<stat>: {"kind": ..., ...}},
 *    "children": [...]}.
 * Scalar/Formula carry "value"; Average carries count/sum/mean;
 * Distribution carries count/min/max/mean/stddev plus bucket counts.
 */
void writeStatsJson(JsonWriter &w, const stats::StatGroup &group);

} // namespace obs
} // namespace stack3d

#endif // STACK3D_OBS_METRICS_HH
