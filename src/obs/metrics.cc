#include "obs/metrics.hh"

#include "common/json.hh"
#include "common/stats.hh"

namespace stack3d {
namespace obs {

double *
CounterSet::find(const std::string &name)
{
    for (Scalar &s : _scalars) {
        if (s.first == name)
            return &s.second;
    }
    return nullptr;
}

void
CounterSet::set(const std::string &name, double value)
{
    if (double *slot = find(name))
        *slot = value;
    else
        _scalars.emplace_back(name, value);
}

void
CounterSet::add(const std::string &name, double delta)
{
    if (double *slot = find(name))
        *slot += delta;
    else
        _scalars.emplace_back(name, delta);
}

void
CounterSet::setSeries(const std::string &name,
                      std::vector<double> values)
{
    for (Series &s : _series) {
        if (s.first == name) {
            s.second = std::move(values);
            return;
        }
    }
    _series.emplace_back(name, std::move(values));
}

void
CounterSet::accumulate(const CounterSet &other)
{
    for (const Scalar &s : other._scalars)
        add(s.first, s.second);
    for (const Series &s : other._series) {
        bool present = false;
        for (const Series &mine : _series) {
            if (mine.first == s.first) {
                present = true;
                break;
            }
        }
        if (!present)
            _series.push_back(s);
    }
}

void
CounterSet::mergePrefixed(const CounterSet &other,
                          const std::string &prefix)
{
    for (const Scalar &s : other._scalars)
        set(prefix + s.first, s.second);
    for (const Series &s : other._series)
        setSeries(prefix + s.first, s.second);
}

bool
CounterSet::has(const std::string &name) const
{
    for (const Scalar &s : _scalars) {
        if (s.first == name)
            return true;
    }
    for (const Series &s : _series) {
        if (s.first == name)
            return true;
    }
    return false;
}

double
CounterSet::value(const std::string &name, double fallback) const
{
    for (const Scalar &s : _scalars) {
        if (s.first == name)
            return s.second;
    }
    return fallback;
}

namespace {

/** Stride-downsample keeping the first and last points. */
std::vector<double>
downsample(const std::vector<double> &xs, std::size_t max_points)
{
    if (xs.size() <= max_points || max_points < 2)
        return xs;
    std::vector<double> out;
    out.reserve(max_points);
    double stride = double(xs.size() - 1) / double(max_points - 1);
    for (std::size_t i = 0; i < max_points; ++i) {
        std::size_t idx = std::size_t(double(i) * stride + 0.5);
        if (idx >= xs.size())
            idx = xs.size() - 1;
        out.push_back(xs[idx]);
    }
    out.back() = xs.back();
    return out;
}

} // namespace

void
writeCountersJson(JsonWriter &w, const CounterSet &counters,
                  std::size_t max_series_points)
{
    w.beginObject();
    for (const CounterSet::Scalar &s : counters.scalars())
        w.key(s.first).value(s.second);
    for (const CounterSet::Series &s : counters.series()) {
        w.key(s.first);
        w.beginArray();
        for (double v : downsample(s.second, max_series_points))
            w.value(v);
        w.endArray();
    }
    w.endObject();
}

void
writeStatsJson(JsonWriter &w, const stats::StatGroup &group)
{
    w.beginObject();
    w.key("name").value(group.name());
    w.key("stats");
    w.beginObject();
    for (const stats::StatBase *stat : group.statList()) {
        w.key(stat->name());
        w.beginObject();
        if (auto *s = dynamic_cast<const stats::Scalar *>(stat)) {
            w.key("kind").value("scalar");
            w.key("value").value(s->value());
        } else if (auto *a =
                       dynamic_cast<const stats::Average *>(stat)) {
            w.key("kind").value("average");
            w.key("count").value(std::uint64_t(a->count()));
            w.key("sum").value(a->sum());
            w.key("mean").value(a->mean());
        } else if (auto *d =
                       dynamic_cast<const stats::Distribution *>(
                           stat)) {
            w.key("kind").value("distribution");
            w.key("count").value(std::uint64_t(d->count()));
            w.key("min").value(d->count() ? d->min() : 0.0);
            w.key("max").value(d->count() ? d->max() : 0.0);
            w.key("mean").value(d->mean());
            w.key("stddev").value(d->stddev());
            w.key("underflows").value(std::uint64_t(d->underflows()));
            w.key("overflows").value(std::uint64_t(d->overflows()));
            w.key("buckets");
            w.beginArray();
            for (unsigned i = 0; i < d->numBuckets(); ++i)
                w.value(std::uint64_t(d->bucketCount(i)));
            w.endArray();
        } else if (auto *f =
                       dynamic_cast<const stats::Formula *>(stat)) {
            w.key("kind").value("formula");
            w.key("value").value(f->value());
        } else {
            w.key("kind").value("unknown");
        }
        w.key("desc").value(stat->desc());
        w.endObject();
    }
    w.endObject();
    w.key("children");
    w.beginArray();
    for (const stats::StatGroup *child : group.children())
        writeStatsJson(w, *child);
    w.endArray();
    w.endObject();
}

} // namespace obs
} // namespace stack3d
