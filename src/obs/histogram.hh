/**
 * @file
 * obs::Histogram — a fixed log-bucket latency/size instrument built
 * for service hot paths.
 *
 * Layout: buckets are log2-spaced with kSubBucketsPerOctave buckets
 * per doubling, spanning [kMinValue, kMinValue * 2^kOctaves). With
 * the defaults (1e-6, 4/octave, 32 octaves) that is 128 buckets from
 * 1 µs to ~71 minutes when values are seconds — enough for a cache
 * hit and a cancelled week-long study to land in the same instrument.
 * Values below the span count into bucket 0; values above saturate
 * into the last bucket. The layout is a compile-time constant, so two
 * histograms are always mergeable and snapshots are comparable across
 * processes and runs.
 *
 * Concurrency: record() is wait-free — one relaxed fetch_add into a
 * shard selected by thread identity (plus a CAS loop for the running
 * sum). There is no lock anywhere on the record path, so instruments
 * can sit inside the service's request path without adding a
 * contention point. snapshot() merges the shards; because merging is
 * plain addition of per-bucket counts, the merged bucket counts for a
 * given multiset of samples are identical no matter how the samples
 * were spread across shards or threads (determinism preserved).
 *
 * Quantiles are estimated from the merged buckets by log-midpoint
 * interpolation: the estimate is off by at most half a bucket in log
 * space, i.e. a relative error bounded by 2^(1/(2*sub)) - 1 (~9% at
 * 4 sub-buckets per octave) — pinned by tests/test_telemetry.cc
 * against exact sorted quantiles.
 */

#ifndef STACK3D_OBS_HISTOGRAM_HH
#define STACK3D_OBS_HISTOGRAM_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stack3d {

class JsonWriter;

namespace obs {

/** Lock-free log-bucket histogram. See file comment. */
class Histogram
{
  public:
    /** Lower edge of bucket 0 (values are typically seconds). */
    static constexpr double kMinValue = 1e-6;
    /** Buckets per doubling of the value. */
    static constexpr unsigned kSubBucketsPerOctave = 4;
    /** Doublings covered before the last bucket saturates. */
    static constexpr unsigned kOctaves = 32;
    /** Total bucket count (the fixed, shared layout). */
    static constexpr unsigned kBuckets =
        kOctaves * kSubBucketsPerOctave;

    /**
     * Merged point-in-time view of one histogram (or of several, via
     * merge()). Plain data: safe to copy, compare, serialize.
     */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        std::vector<std::uint64_t> buckets;   ///< kBuckets entries

        /**
         * Estimated value at quantile @p p in [0, 1] (0 with no
         * samples). Monotonic in p; log-midpoint interpolated.
         */
        double quantile(double p) const;

        /** Mean of the recorded values (0 with no samples). */
        double mean() const { return count ? sum / double(count) : 0.0; }

        /** Add another snapshot's counts into this one. */
        void merge(const Snapshot &other);

        /**
         * Emit as one JSON object value:
         *   {"count": N, "sum": S, "p50": ..., "p95": ..., "p99":
         *    ..., "buckets": [[upper_bound, count], ...]}
         * Only non-empty buckets are listed, so idle instruments cost
         * a few bytes, not kBuckets entries.
         */
        void writeJson(JsonWriter &w) const;
    };

    Histogram();

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one sample. Wait-free, callable from any thread. */
    void record(double value);

    /** Merge all shards into one snapshot. */
    Snapshot snapshot() const;

    /** Total samples recorded (cheaper than a full snapshot). */
    std::uint64_t count() const;

    /** Bucket index a value lands in (exposed for tests). */
    static unsigned bucketIndex(double value);

    /** Inclusive upper bound of bucket @p index. */
    static double bucketUpperBound(unsigned index);

  private:
    /**
     * One shard: a cache-line-padded array of bucket counters plus
     * the count/sum pair. Threads scatter across shards by thread
     * identity so concurrent record() calls rarely share a line.
     */
    struct alignas(64) Shard
    {
        std::vector<std::atomic<std::uint64_t>> buckets;
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};

        Shard() : buckets(kBuckets) {}
    };

    static constexpr unsigned kShards = 8;

    Shard &shardForThisThread();

    std::vector<Shard> _shards;
};

} // namespace obs
} // namespace stack3d

#endif // STACK3D_OBS_HISTOGRAM_HH
