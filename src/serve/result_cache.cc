#include "serve/result_cache.hh"

#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <sys/types.h>
#include <thread>
#include <vector>

#include "common/digest.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace stack3d {
namespace serve {

namespace {

// Disk-entry trailer: "\n#fnv1a:" + digestHex (= "0x" + 16 hex) +
// "\n". Fixed-size, so the payload boundary needs no scanning.
constexpr char kTrailerTag[] = "\n#fnv1a:";
constexpr std::size_t kTrailerSize = sizeof(kTrailerTag) - 1 + 18 + 1;

std::string
trailerFor(const std::string &payload)
{
    return kTrailerTag + digestHex(fnv1a(payload)) + "\n";
}

/** Split a raw disk entry into payload + verified trailer. */
[[nodiscard]] bool
splitVerified(const std::string &raw, std::string &payload)
{
    if (raw.size() < kTrailerSize)
        return false;
    const std::size_t payload_size = raw.size() - kTrailerSize;
    if (raw.compare(payload_size, std::string::npos,
                    trailerFor(raw.substr(0, payload_size))) != 0)
        return false;
    payload = raw.substr(0, payload_size);
    return true;
}

[[nodiscard]] bool
endsWith(const std::string &text, const char *suffix)
{
    const std::size_t n = std::string(suffix).size();
    return text.size() >= n &&
           text.compare(text.size() - n, n, suffix) == 0;
}

void
injectDiskLatency()
{
    if (unsigned ms = S3D_FAULT_DELAY("serve.disk.latency"))
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // anonymous namespace

ResultCache::ResultCache(std::size_t capacity, std::string disk_dir)
    : _capacity(capacity), _dir(std::move(disk_dir))
{
    if (!_dir.empty())
        scrubDiskTier();
}

std::string
ResultCache::diskPath(std::uint64_t digest) const
{
    // digestHex gives "0x<16 hex>"; drop the prefix for the filename.
    return _dir + "/" + digestHex(digest).substr(2) + ".json";
}

void
ResultCache::quarantine(const std::string &path)
{
    // Keep the bytes for postmortems; fall back to deletion when
    // even the rename fails (read-only dir), so the entry cannot be
    // re-served either way.
    std::string bad = path + ".corrupt";
    if (std::rename(path.c_str(), bad.c_str()) != 0)
        std::remove(path.c_str());
    ++_stats.corrupt;
    warn("result cache: quarantined corrupt entry " + path);
}

bool
ResultCache::readDiskEntry(const std::string &path,
                           std::string &payload)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return false;
    if (!splitVerified(raw, payload)) {
        quarantine(path);
        return false;
    }
    return true;
}

void
ResultCache::scrubDiskTier()
{
    DIR *dir = ::opendir(_dir.c_str());
    if (!dir)
        return;   // tier not created yet: nothing to scrub
    // Collect names first: quarantine renames entries while we walk.
    std::vector<std::string> names;
    while (const struct dirent *entry = ::readdir(dir))
        names.push_back(entry->d_name);
    ::closedir(dir);
    for (const std::string &name : names) {
        std::string path = _dir + "/" + name;
        if (endsWith(name, ".json.tmp")) {
            // A crash mid-put; the rename never happened, so the
            // entry was never visible. Just clean up.
            std::remove(path.c_str());
            ++_stats.scrubbed;
        } else if (endsWith(name, ".json")) {
            std::string payload;
            (void)readDiskEntry(path, payload);
            ++_stats.scrubbed;
        }
    }
    _dir_ready = true;
}

bool
ResultCache::tryGet(std::uint64_t digest, std::string &out)
{
    if (_capacity == 0) {
        ++_stats.misses;
        return false;
    }
    auto it = _entries.find(digest);
    if (it != _entries.end()) {
        _order.splice(_order.begin(), _order, it->second.order);
        out = it->second.json;
        ++_stats.hits;
        return true;
    }
    if (!_dir.empty() && !S3D_FAULT_POINT("serve.disk.read")) {
        injectDiskLatency();
        std::string payload;
        if (readDiskEntry(diskPath(digest), payload)) {
            insert(digest, payload);
            out = std::move(payload);
            ++_stats.hits;
            ++_stats.disk_hits;
            return true;
        }
    }
    ++_stats.misses;
    return false;
}

void
ResultCache::insert(std::uint64_t digest, const std::string &report_json)
{
    _order.push_front(digest);
    _entries[digest] = Entry{_order.begin(), report_json};
    while (_entries.size() > _capacity) {
        std::uint64_t victim = _order.back();
        _order.pop_back();
        _entries.erase(victim);
        ++_stats.evictions;
    }
}

void
ResultCache::put(std::uint64_t digest, const std::string &report_json)
{
    if (_capacity == 0)
        return;
    auto it = _entries.find(digest);
    if (it != _entries.end()) {
        _order.splice(_order.begin(), _order, it->second.order);
        it->second.json = report_json;
    } else {
        insert(digest, report_json);
    }
    if (_dir.empty())
        return;
    if (!_dir_ready) {
        ::mkdir(_dir.c_str(), 0755);   // a pre-existing dir is fine
        _dir_ready = true;
    }
    if (S3D_FAULT_POINT("serve.disk.write")) {
        warn("result cache: fault-injected write failure");
        return;
    }
    injectDiskLatency();
    // The chaos corruption flips one payload byte *after* the
    // trailer was computed, so the next read must quarantine it.
    std::string body = report_json;
    if (!body.empty() && S3D_FAULT_POINT("serve.disk.corrupt"))
        body[body.size() / 2] ^= 0x20;
    // Write-then-rename so a concurrent reader never sees a torn
    // file (the service lock covers this process, not a second one).
    std::string path = diskPath(digest);
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("result cache: cannot write " + tmp);
            return;
        }
        os << body << trailerFor(report_json);
        if (!os.good()) {
            warn("result cache: short write to " + tmp);
            return;
        }
    }
    if (S3D_FAULT_POINT("serve.disk.rename")) {
        std::remove(tmp.c_str());
        warn("result cache: fault-injected rename failure");
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        warn("result cache: cannot rename " + tmp);
    else
        ++_stats.disk_writes;
}

} // namespace serve
} // namespace stack3d
