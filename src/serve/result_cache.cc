#include "serve/result_cache.hh"

#include <cstdio>
#include <fstream>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/digest.hh"
#include "common/logging.hh"

namespace stack3d {
namespace serve {

ResultCache::ResultCache(std::size_t capacity, std::string disk_dir)
    : _capacity(capacity), _dir(std::move(disk_dir))
{
}

std::string
ResultCache::diskPath(std::uint64_t digest) const
{
    // digestHex gives "0x<16 hex>"; drop the prefix for the filename.
    return _dir + "/" + digestHex(digest).substr(2) + ".json";
}

bool
ResultCache::tryGet(std::uint64_t digest, std::string &out)
{
    if (_capacity == 0) {
        ++_stats.misses;
        return false;
    }
    auto it = _entries.find(digest);
    if (it != _entries.end()) {
        _order.splice(_order.begin(), _order, it->second.order);
        out = it->second.json;
        ++_stats.hits;
        return true;
    }
    if (!_dir.empty()) {
        std::ifstream in(diskPath(digest), std::ios::binary);
        if (in) {
            std::string json((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            if (in.good() || in.eof()) {
                insert(digest, json);
                out = std::move(json);
                ++_stats.hits;
                ++_stats.disk_hits;
                return true;
            }
        }
    }
    ++_stats.misses;
    return false;
}

void
ResultCache::insert(std::uint64_t digest, const std::string &report_json)
{
    _order.push_front(digest);
    _entries[digest] = Entry{_order.begin(), report_json};
    while (_entries.size() > _capacity) {
        std::uint64_t victim = _order.back();
        _order.pop_back();
        _entries.erase(victim);
        ++_stats.evictions;
    }
}

void
ResultCache::put(std::uint64_t digest, const std::string &report_json)
{
    if (_capacity == 0)
        return;
    auto it = _entries.find(digest);
    if (it != _entries.end()) {
        _order.splice(_order.begin(), _order, it->second.order);
        it->second.json = report_json;
    } else {
        insert(digest, report_json);
    }
    if (_dir.empty())
        return;
    if (!_dir_ready) {
        ::mkdir(_dir.c_str(), 0755);   // a pre-existing dir is fine
        _dir_ready = true;
    }
    // Write-then-rename so a concurrent reader never sees a torn
    // file (the service lock covers this process, not a second one).
    std::string path = diskPath(digest);
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("result cache: cannot write " + tmp);
            return;
        }
        os << report_json;
        if (!os.good()) {
            warn("result cache: short write to " + tmp);
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        warn("result cache: cannot rename " + tmp);
    else
        ++_stats.disk_writes;
}

} // namespace serve
} // namespace stack3d
