#include "serve/request.hh"

#include <cmath>

#include "common/json_parse.hh"
#include "core/study_json.hh"
#include "obs/provenance.hh"

namespace stack3d {
namespace serve {

const char *
studyKindName(StudyKind kind)
{
    switch (kind) {
      case StudyKind::Memory:
        return "memory";
      case StudyKind::Logic:
        return "logic";
      case StudyKind::Sensitivity:
        return "sensitivity";
      case StudyKind::StackThermal:
        break;
    }
    return "stack-thermal";
}

std::string
Request::canonicalSpec() const
{
    switch (kind) {
      case StudyKind::Memory:
        return core::canonicalSpecJson(memory);
      case StudyKind::Logic:
        return core::canonicalSpecJson(logic);
      case StudyKind::Sensitivity:
        return core::canonicalSpecJson(sensitivity);
      case StudyKind::StackThermal:
        break;
    }
    return core::canonicalSpecJson(stack_thermal);
}

std::uint64_t
Request::digest() const
{
    return core::specDigest(studyKindName(kind), options,
                            canonicalSpec());
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    JsonValue root;
    if (!parseJson(line, root, error)) {
        error = "request: " + error;
        return false;
    }

    core::JsonObjectReader r(root, "request");

    unsigned schema_version = 0;
    if (!r.readUnsigned("schema_version", schema_version) &&
        r.error().empty()) {
        error = "request: missing 'schema_version'";
        return false;
    }
    if (r.error().empty() && schema_version != obs::kSchemaVersion) {
        error = "request: schema_version " +
                std::to_string(schema_version) +
                " not supported (this server speaks " +
                std::to_string(obs::kSchemaVersion) + ")";
        return false;
    }

    std::string study;
    if (!r.readString("study", study) && r.error().empty()) {
        error = "request: missing 'study'";
        return false;
    }
    if (r.error().empty()) {
        if (study == "memory")
            out.kind = StudyKind::Memory;
        else if (study == "logic")
            out.kind = StudyKind::Logic;
        else if (study == "stack-thermal")
            out.kind = StudyKind::StackThermal;
        else if (study == "sensitivity")
            out.kind = StudyKind::Sensitivity;
        else {
            error = "request: unknown study '" + study + "'";
            return false;
        }
    }

    r.readString("id", out.id);
    r.readUnsigned("deadline_ms", out.deadline_ms);
    r.readString("trace_id", out.trace_id);

    if (const JsonValue *options = r.readMember("options")) {
        if (!core::parseRunOptions(*options, out.options, error))
            return false;
    }
    if (const JsonValue *spec = r.readMember("spec")) {
        bool ok = false;
        switch (out.kind) {
          case StudyKind::Memory:
            ok = core::parseMemoryStudySpec(*spec, out.memory, error);
            break;
          case StudyKind::Logic:
            ok = core::parseLogicStudySpec(*spec, out.logic, error);
            break;
          case StudyKind::StackThermal:
            ok = core::parseStackThermalSpec(*spec, out.stack_thermal,
                                             error);
            break;
          case StudyKind::Sensitivity:
            ok = core::parseSensitivitySpec(*spec, out.sensitivity,
                                            error);
            break;
        }
        if (!ok)
            return false;
    }

    if (!r.finish()) {
        error = r.error();
        return false;
    }
    return true;
}

} // namespace serve
} // namespace stack3d
