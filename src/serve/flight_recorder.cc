#include "serve/flight_recorder.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"

namespace stack3d {
namespace serve {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : _capacity(std::max<std::size_t>(capacity, 1))
{
    _ring.reserve(_capacity);
}

void
FlightRecorder::note(FlightEntry entry)
{
    std::lock_guard<std::mutex> lock(_mutex);
    entry.seq = ++_noted;
    if (_ring.size() < _capacity) {
        _ring.push_back(std::move(entry));
    } else {
        _ring[_next] = std::move(entry);
        _next = (_next + 1) % _capacity;
    }
}

std::vector<FlightEntry>
FlightRecorder::entries() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<FlightEntry> out;
    out.reserve(_ring.size());
    // Once wrapped, _next is the oldest slot.
    for (std::size_t i = 0; i < _ring.size(); ++i)
        out.push_back(_ring[(_next + i) % _ring.size()]);
    return out;
}

std::uint64_t
FlightRecorder::noted() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _noted;
}

void
FlightRecorder::writeJson(JsonWriter &w) const
{
    w.beginArray();
    for (const FlightEntry &e : entries()) {
        w.beginObject();
        w.key("seq").value(e.seq);
        w.key("trace_id").value(e.trace_id);
        if (!e.digest_hex.empty())
            w.key("digest").value(e.digest_hex);
        if (!e.study.empty())
            w.key("study").value(e.study);
        w.key("status").value(e.status);
        w.key("cached").value(e.cached);
        w.key("coalesced").value(e.coalesced);
        w.key("latency_ms").value(e.latency_ms);
        w.key("queue_depth").value(std::uint64_t(e.queue_depth));
        w.endObject();
    }
    w.endArray();
}

void
FlightRecorder::dumpToLog(const std::string &reason) const
{
    std::vector<FlightEntry> snapshot = entries();
    logLine(LogLevel::Info, "flight recorder dump",
            {{"reason", reason},
             {"entries", std::to_string(snapshot.size())},
             {"noted", std::to_string(noted())}});
    for (const FlightEntry &e : snapshot) {
        char latency[32];
        std::snprintf(latency, sizeof(latency), "%.3f",
                      e.latency_ms);
        logLine(LogLevel::Info, "flight",
                {{"seq", std::to_string(e.seq)},
                 {"trace_id", e.trace_id},
                 {"digest", e.digest_hex},
                 {"study", e.study},
                 {"status", e.status},
                 {"cached", e.cached ? "true" : "false"},
                 {"coalesced", e.coalesced ? "true" : "false"},
                 {"latency_ms", latency},
                 {"queue_depth", std::to_string(e.queue_depth)}});
    }
}

} // namespace serve
} // namespace stack3d
