/**
 * @file
 * The stack3d-serve wire request: one newline-delimited JSON object
 * per study run.
 *
 *   {"schema_version": 2, "study": "stack-thermal", "id": "r1",
 *    "options": {"seed": 3}, "spec": {"die_nx": 20, "die_ny": 18}}
 *
 * Top-level keys:
 *   schema_version  required; must equal obs::kSchemaVersion, any
 *                   other value is rejected (no best-effort parsing
 *                   of foreign schema generations)
 *   study           required; "memory", "logic", "stack-thermal" or
 *                   "sensitivity"
 *   id              optional client correlation id, echoed back
 *   options         optional RunOptions object (core/study_json.hh)
 *   spec            optional study-spec object; absent keys keep the
 *                   spec defaults
 *   deadline_ms     optional response deadline; past it the service
 *                   answers status "timeout" and cancels the
 *                   execution (0 = none, the default)
 *   trace_id        optional client-supplied trace identifier, echoed
 *                   in the response and every log line about the
 *                   request; generated server-side when absent
 *
 * Parsing is strict throughout: unknown keys anywhere are an error.
 */

#ifndef STACK3D_SERVE_REQUEST_HH
#define STACK3D_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "core/logic_study.hh"
#include "core/memory_study.hh"
#include "core/run_options.hh"
#include "core/thermal_study.hh"

namespace stack3d {
namespace serve {

/** The four study entry points a request can target. */
enum class StudyKind { Memory, Logic, StackThermal, Sensitivity };

/** Wire name of a study kind ("memory", "stack-thermal", ...). */
const char *studyKindName(StudyKind kind);

/** One parsed, validated study request. */
struct Request
{
    std::string id;
    StudyKind kind = StudyKind::StackThermal;
    core::RunOptions options;

    /**
     * Response deadline in milliseconds (0 = none). Like threads and
     * verbosity, this is delivery QoS, not study identity — it is
     * excluded from digest(), so a deadline request can still hit
     * the cache of (or coalesce with) an undeadlined twin.
     */
    unsigned deadline_ms = 0;

    /**
     * Trace identifier threaded through spans, log lines, the flight
     * recorder, and the response. Pure observability: excluded from
     * digest() by construction (specDigest never sees it), so two
     * requests differing only in trace_id share a cache entry.
     */
    std::string trace_id;

    // Only the spec matching `kind` is meaningful; the others stay
    // default-constructed.
    core::MemoryStudySpec memory;
    core::LogicStudySpec logic;
    core::StackThermalSpec stack_thermal;
    core::SensitivitySpec sensitivity;

    /** Canonical (compact) JSON of the active spec. */
    std::string canonicalSpec() const;

    /**
     * Content digest of this request — the result-cache key. Two
     * requests that must produce identical reports share a digest;
     * threads and verbosity are excluded (see core::specDigest).
     */
    std::uint64_t digest() const;
};

/**
 * Parse one request line. @return false with @p error set on
 * malformed JSON, schema_version mismatch, unknown study, unknown or
 * ill-typed keys, or invalid field values.
 */
[[nodiscard]] bool parseRequest(const std::string &line, Request &out,
                                std::string &error);

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_REQUEST_HH
