/**
 * @file
 * The study service behind stack3d-serve: takes request lines,
 * schedules study execution on a stack3d::exec pool, memoizes
 * results in a ResultCache, and renders NDJSON response lines.
 *
 * Scheduling model:
 *  - Executions run on an exec::ThreadPool of `workers` threads
 *    (0 = inline on the calling thread), so `workers` studies
 *    compute concurrently; each study may itself fan cells out on
 *    its own internal pool (request options.threads, capped by
 *    max_study_threads).
 *  - Admission is bounded: at most workers + queue_limit requests
 *    may be in flight (computing or queued). handle() blocks its
 *    caller until the result is ready — the bound is what creates
 *    backpressure on the connection handlers — and requests beyond
 *    the bound are rejected immediately with status "rejected".
 *  - Duplicate in-flight requests coalesce: the second arrival of a
 *    digest waits on the first execution's future instead of
 *    computing (and does not consume an admission slot).
 *
 * Caching model: the serialized report (study + meta + payload JSON,
 * compact) is the cached unit. A cache hit splices the stored bytes
 * into the response envelope verbatim, so hit and miss responses
 * carry byte-identical reports. The digest excludes threads and
 * verbosity — the determinism guarantee makes results independent of
 * them — so e.g. a 4-thread re-run of a cached 1-thread request hits.
 */

#ifndef STACK3D_SERVE_SERVICE_HH
#define STACK3D_SERVE_SERVICE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/pool.hh"
#include "obs/metrics.hh"
#include "serve/request.hh"
#include "serve/result_cache.hh"

namespace stack3d {
namespace serve {

/** StudyService configuration. */
struct ServiceOptions
{
    /** Concurrent study executions (0 = run inline in handle()). */
    unsigned workers = 2;

    /** Extra requests admitted beyond `workers` before rejecting. */
    unsigned queue_limit = 16;

    /** In-memory result-cache entries (0 disables caching). */
    std::size_t cache_entries = 64;

    /** On-disk result store directory ("" = memory only). */
    std::string cache_dir;

    /** Cap on a request's options.threads (0 = leave uncapped). */
    unsigned max_study_threads = 8;
};

/** Outcome of one handled request line. */
struct ServeResult
{
    enum class Status { Ok, Error, Rejected };

    Status status = Status::Error;
    bool cached = false;      ///< served from the result cache
    bool coalesced = false;   ///< shared an in-flight execution
    std::string digest_hex;   ///< "0x..." (empty when unparsable)
    std::string report_json;  ///< the cached unit (ok only)
    std::string error;        ///< message (error/rejected only)

    /** The full NDJSON response line (no trailing newline). */
    std::string line;
};

/** The request scheduler + cache. Thread-safe. */
class StudyService
{
  public:
    explicit StudyService(const ServiceOptions &options);
    ~StudyService();

    StudyService(const StudyService &) = delete;
    StudyService &operator=(const StudyService &) = delete;

    /**
     * Handle one request line end to end; blocks until the response
     * is ready. Callable from any thread.
     */
    ServeResult handle(const std::string &line);

    /** Snapshot of the serve.* counters (including cache stats). */
    obs::CounterSet counters() const;

  private:
    /** Run the study and serialize its report (the cached unit). */
    std::string execute(const Request &request);

    ServiceOptions _options;
    exec::ThreadPool _pool;

    mutable std::mutex _mutex;
    /** Admitted executions (computing or queued), bounded. */
    unsigned _in_flight = 0;
    unsigned _in_flight_high_water = 0;
    /** digest -> future of the execution already running it. */
    std::map<std::uint64_t, std::shared_future<std::string>> _pending;
    ResultCache _cache;

    /**
     * Ring of the most recent latency samples (seconds), enough for
     * stable p50/p95/p99 without unbounded growth on a long-lived
     * daemon. Guarded by _mutex like the counters.
     */
    struct LatencyRing
    {
        static constexpr std::size_t kCapacity = 4096;
        std::vector<double> samples;
        std::size_t next = 0;

        void add(double seconds);
        /** p in [0,1]; 0 when no samples yet. */
        double percentile(double p) const;
    };

    // serve.* counters (guarded by _mutex).
    std::uint64_t _n_requests = 0;
    std::uint64_t _n_ok = 0;
    std::uint64_t _n_errors = 0;
    std::uint64_t _n_rejected = 0;
    std::uint64_t _n_coalesced = 0;
    double _hit_seconds = 0.0;
    double _cold_seconds = 0.0;
    std::uint64_t _n_hit = 0;
    std::uint64_t _n_cold = 0;
    LatencyRing _hit_latency;
    LatencyRing _cold_latency;
};

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_SERVICE_HH
