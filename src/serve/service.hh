/**
 * @file
 * The study service behind stack3d-serve: takes request lines,
 * schedules study execution on a stack3d::exec pool, memoizes
 * results in a ResultCache, and renders NDJSON response lines.
 *
 * Scheduling model:
 *  - Executions run on an exec::ThreadPool of `workers` threads
 *    (0 = inline on the calling thread), so `workers` studies
 *    compute concurrently; each study may itself fan cells out on
 *    its own internal pool (request options.threads, capped by
 *    max_study_threads).
 *  - Admission is bounded: at most workers + queue_limit requests
 *    may be in flight (computing or queued). handle() blocks its
 *    caller until the result is ready — the bound is what creates
 *    backpressure on the connection handlers — and requests beyond
 *    the bound are rejected immediately with status "rejected" and a
 *    retry_after_ms backoff hint sized from the queue depth and the
 *    cold-latency p95.
 *  - Duplicate in-flight requests coalesce: the second arrival of a
 *    digest waits on the first execution's future instead of
 *    computing (and does not consume an admission slot).
 *
 * Deadlines: a request may carry deadline_ms. Past it the caller
 * gets status "timeout", the admission slot is reclaimed
 * immediately, and the abandoned execution's CancelToken is
 * cancelled so the study stops at its next checkpoint instead of
 * burning a worker. Coalesced waiters time out against their own
 * deadlines without disturbing the shared execution; if the owning
 * execution itself observes cancellation, every waiter sees
 * "timeout". A finished-but-abandoned execution still populates the
 * cache — the work is never thrown away.
 *
 * Lifecycle: drain() stops admission ("draining" rejections), waits
 * out in-flight work within drain_timeout_ms, then cancels
 * stragglers. A watchdog (workers > 0) flags executions running
 * longer than watchdog_factor × cold p99 to stderr and
 * serve.watchdog.flagged.
 *
 * Caching model: the serialized report (study + meta + payload JSON,
 * compact) is the cached unit. A cache hit splices the stored bytes
 * into the response envelope verbatim, so hit and miss responses
 * carry byte-identical reports. The digest excludes threads and
 * verbosity — the determinism guarantee makes results independent of
 * them — so e.g. a 4-thread re-run of a cached 1-thread request hits.
 */

#ifndef STACK3D_SERVE_SERVICE_HH
#define STACK3D_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.hh"
#include "exec/pool.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "serve/flight_recorder.hh"
#include "serve/request.hh"
#include "serve/result_cache.hh"

namespace stack3d {
namespace serve {

/** StudyService configuration. */
struct ServiceOptions
{
    /** Concurrent study executions (0 = run inline in handle()). */
    unsigned workers = 2;

    /** Extra requests admitted beyond `workers` before rejecting. */
    unsigned queue_limit = 16;

    /** In-memory result-cache entries (0 disables caching). */
    std::size_t cache_entries = 64;

    /** On-disk result store directory ("" = memory only). */
    std::string cache_dir;

    /** Cap on a request's options.threads (0 = leave uncapped). */
    unsigned max_study_threads = 8;

    /** Request-line byte cap both transports enforce. */
    std::size_t max_line_bytes = std::size_t(1) << 20;

    /** drain(): budget to let in-flight work finish uncancelled. */
    unsigned drain_timeout_ms = 5000;

    /** Watchdog flags executions over factor × cold p99 (0 = off). */
    unsigned watchdog_factor = 4;

    /** Watchdog scan period. */
    unsigned watchdog_interval_ms = 250;

    /** Flight-recorder ring capacity (last N request summaries). */
    std::size_t flight_entries = 128;
};

/** Outcome of one handled request line. */
struct ServeResult
{
    enum class Status { Ok, Error, Rejected, Timeout };

    Status status = Status::Error;
    bool cached = false;      ///< served from the result cache
    bool coalesced = false;   ///< shared an in-flight execution
    std::string trace_id;     ///< client-supplied or generated
    std::string digest_hex;   ///< "0x..." (empty when unparsable)
    std::string report_json;  ///< the cached unit (ok only)
    std::string error;        ///< message (error/rejected/timeout)
    unsigned retry_after_ms = 0;   ///< backoff hint (rejected only)

    /** The full NDJSON response line (no trailing newline). */
    std::string line;
};

/** The request scheduler + cache. Thread-safe. */
class StudyService
{
  public:
    explicit StudyService(const ServiceOptions &options);
    ~StudyService();

    StudyService(const StudyService &) = delete;
    StudyService &operator=(const StudyService &) = delete;

    /**
     * Handle one request line end to end; blocks until the response
     * is ready (or the request's deadline expires). Callable from
     * any thread.
     */
    ServeResult handle(const std::string &line);

    /**
     * Stop admitting (new requests get a "draining" rejection), give
     * in-flight executions drain_timeout_ms to finish, then cancel
     * the rest and wait for them to stop. Idempotent; called by the
     * transports on shutdown and by the destructor.
     */
    void drain();

    /** Count one transport-rejected oversized request line. */
    void noteOversizedLine();

    const ServiceOptions &options() const { return _options; }

    /**
     * Snapshot of the serve.* counters (including cache stats).
     * Pulled through the registry, so the wire {"op":"stats"}, the
     * /metrics exposition, and the exit-stats JSON all see one
     * coherent set of keys.
     */
    obs::CounterSet counters() const;

    /** The telemetry hub (providers, instruments, metric kinds). */
    const obs::Registry &registry() const { return _registry; }

    /**
     * {"op":"stats"} payload: the full counter snapshot plus the
     * latency histogram snapshots, as one NDJSON response line.
     */
    std::string statsJson() const;

    /** {"op":"health"}: a cheap liveness/readiness summary line. */
    std::string healthJson() const;

    /** {"op":"flight"}: the flight-recorder ring as a response line. */
    std::string flightJson() const;

    /**
     * Start a tracing session ({"op":"trace","action":"start"}).
     * @return false with @p error set when one is already active.
     */
    bool traceStart(std::string &error);

    /**
     * Stop the active session and write Chrome trace JSON to @p path.
     * @return false with @p message set when none is active or the
     * file cannot be written; true with a summary message otherwise.
     */
    bool traceStop(const std::string &path, std::string &message);

    /**
     * Ask the service to dump its flight recorder to the log at the
     * next safe point (watchdog tick or request arrival). Async-
     * signal-safe — this is the SIGUSR1 handler's body.
     */
    static void requestFlightDump();

  private:
    /**
     * One admitted execution. Shared between the owning handle()
     * call, the pool task computing it, coalesced waiters, the
     * watchdog, and drain() — whichever of task or abandoning owner
     * gets there first finalizes (releases the admission slot and
     * the pending entry, exactly once).
     */
    struct Execution
    {
        std::uint64_t digest = 0;
        std::string label;      ///< study name, for watchdog reports
        std::string trace_id;   ///< owner's trace id, for watchdog logs
        std::shared_ptr<CancelToken> cancel;
        std::shared_ptr<std::promise<std::string>> promise;
        std::shared_future<std::string> future;
        CancelToken::Clock::time_point started;
        bool finalized = false;
        bool flagged = false;   ///< watchdog warned already
    };

    /** Run the study and serialize its report (the cached unit). */
    std::string execute(const Request &request,
                        const CancelToken *cancel);

    /** Release slot + pending entry exactly once (_mutex held). */
    void finalizeLocked(Execution &exec);

    /** Backoff hint for a rejection (_mutex held). */
    unsigned retryHintLocked() const;

    /** Periodic scan for overdue executions (watchdog task body). */
    void watchdogLoop();

    /** "t-<hex>" from an atomic sequence (no wallclock, no rand). */
    std::string makeTraceId();

    /** Append the serve.* scalar counters (the registry provider). */
    void appendServeCounters(obs::CounterSet &out) const;

    /** Fold a memory-study report's replay/tag-probe counters into
     *  the serve.study.mem.* totals (takes _mutex). */
    void noteReplayCounters(const obs::CounterSet &counters);

    /** Note one terminal request outcome in the flight recorder. */
    void recordOutcome(const std::string &study,
                       const ServeResult &result, double latency_ms);

    /** Honor a pending requestFlightDump() (log dump), if any. */
    void pollFlightDump();

    ServiceOptions _options;
    exec::ThreadPool _pool;

    mutable std::mutex _mutex;
    /** Admitted executions (computing or queued), bounded. */
    unsigned _in_flight = 0;
    unsigned _in_flight_high_water = 0;
    /** digest -> the execution already running it. */
    std::map<std::uint64_t, std::shared_ptr<Execution>> _pending;
    ResultCache _cache;
    bool _draining = false;

    // serve.* counters (guarded by _mutex).
    std::uint64_t _n_requests = 0;
    std::uint64_t _n_ok = 0;
    std::uint64_t _n_errors = 0;
    std::uint64_t _n_rejected = 0;
    std::uint64_t _n_coalesced = 0;
    std::uint64_t _n_timeouts = 0;
    std::uint64_t _n_line_overflows = 0;
    std::uint64_t _n_watchdog_flagged = 0;
    double _hit_seconds = 0.0;
    double _cold_seconds = 0.0;
    std::uint64_t _n_hit = 0;
    std::uint64_t _n_cold = 0;
    /** Replay-path totals folded out of memory-study reports, so the
     *  daemon's /metrics shows how much trace-replay work it has done
     *  and which tag-probe path served it. */
    double _replay_batches = 0.0;
    double _replay_shards = 0.0;
    double _tag_probes = 0.0;
    double _tag_swar_hits = 0.0;

    /**
     * Latency instruments (seconds). Lock-free: record() happens on
     * the request path without touching _mutex, and a quantile query
     * is a bucket walk over a snapshot — the O(n log n) copy-and-sort
     * the old sample ring paid under _mutex is gone (BM_StatsSnapshot
     * pins the cost).
     */
    obs::Histogram _hit_latency;
    obs::Histogram _cold_latency;

    /** Telemetry hub; providers wired in the constructor. */
    obs::Registry _registry;

    /** Last-N request summaries ({"op":"flight"}, SIGUSR1 dumps). */
    FlightRecorder _flight;

    /** Source of generated trace ids ("t-1", "t-2", ...). */
    std::atomic<std::uint64_t> _trace_seq{0};

    /**
     * Runtime tracing session ({"op":"trace"}). The collector is kept
     * alive (uninstalled) after a stop rather than destroyed: a
     * recording thread may still be inside a record() call when the
     * stop arrives, and uninstall-then-keep makes that race benign.
     */
    mutable std::mutex _trace_mutex;
    std::unique_ptr<obs::TraceCollector> _trace;

    // Watchdog (only armed when workers > 0 and factor > 0). Its
    // pool must outlive the loop task; both torn down in ~StudyService
    // before _pool.
    std::condition_variable _watchdog_cv;
    bool _watchdog_stop = false;
    std::unique_ptr<exec::ThreadPool> _watchdog_pool;
    std::future<void> _watchdog_done;
};

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_SERVICE_HH
